#!/usr/bin/env python
"""Workstation vs server GC study (§VII-B / Fig 14 of the paper).

Sweeps GC flavor x maximum heap size for a .NET category and reports
GC/Triggered, LLC MPKI and execution time — the three metrics the paper
finds most affected.  Reproduces the paper's headline effects: server GC
triggers far more often, cuts LLC MPKI, and speeds up allocation-heavy
workloads while slightly hurting cache-light ones.

Usage::

    python examples/gc_study.py [--category System.Collections]
"""

import argparse

from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_workload
from repro.runtime.gc import (GcConfig, OutOfManagedMemory, SERVER,
                              WORKSTATION)
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

MB = 2 ** 20
HEAPS_MIB = (200, 2_000, 20_000)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--category", default="System.Collections")
    parser.add_argument("--instructions", type=int, default=300_000)
    args = parser.parse_args()

    spec = next((s for s in dotnet_category_specs()
                 if s.name == args.category), None)
    if spec is None:
        raise SystemExit(f"unknown category {args.category!r}")
    fidelity = Fidelity(warmup_instructions=100_000,
                        measure_instructions=args.instructions)
    machine = get_machine("i9")

    rows = []
    cells = {}
    for heap_mib in HEAPS_MIB:
        for flavor in (WORKSTATION, SERVER):
            try:
                r = run_workload(spec, machine, fidelity, seed=3,
                                 gc_config=GcConfig(
                                     flavor=flavor,
                                     max_heap_bytes=heap_mib * MB))
                c = r.counters
                cells[(heap_mib, flavor)] = r
                rows.append([heap_mib, flavor, c.gc_triggered,
                             c.mpki(c.llc_misses), c.mpki(c.l2_misses),
                             r.seconds * 1e6])
            except OutOfManagedMemory as exc:
                rows.append([heap_mib, flavor, "OOM", "-", "-", "-"])
                print(f"note: {flavor} @ {heap_mib} MiB: {exc}")
    print(format_table(["max heap MiB", "GC flavor", "GC/Triggered",
                        "LLC MPKI", "L2 MPKI", "time (us)"], rows))

    print("\nserver-vs-workstation factors (paper: triggers 6.18x, "
          "LLC 0.59x, time 1.14x faster):")
    for heap_mib in HEAPS_MIB:
        ws = cells.get((heap_mib, WORKSTATION))
        srv = cells.get((heap_mib, SERVER))
        if not ws or not srv:
            continue
        wc, sc = ws.counters, srv.counters
        trig = sc.gc_triggered / max(1, wc.gc_triggered)
        llc = ((sc.mpki(sc.llc_misses) + 1e-3)
               / (wc.mpki(wc.llc_misses) + 1e-3))
        speedup = ws.seconds / srv.seconds
        print(f"  {heap_mib:6d} MiB: triggers {trig:5.2f}x  "
              f"LLC {llc:5.2f}x  speedup {speedup:5.3f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
