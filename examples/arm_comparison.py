#!/usr/bin/env python
"""x86-64 vs AArch64 comparison (§V-D / Fig 7 of the paper).

Characterizes a slice of the .NET microbenchmark suite on the simulated
Intel i9 and the Arm server, then compares control-flow / memory /
runtime-event behaviour in PC space and the raw I-TLB / LLC gaps the
paper highlights.

Usage::

    python examples/arm_comparison.py [--categories N]
"""

import argparse

from repro.core.comparison import compare_suites, relabelled
from repro.core.metrics import (CONTROL_FLOW_IDS, MEMORY_IDS,
                                RUNTIME_EVENT_IDS)
from repro.harness.report import format_table, geomean
from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--categories", type=int, default=12,
                        help="number of .NET categories to run per ISA")
    parser.add_argument("--instructions", type=int, default=120_000)
    args = parser.parse_args()

    specs = dotnet_category_specs()[:args.categories]
    fidelity = Fidelity(warmup_instructions=args.instructions // 2,
                        measure_instructions=args.instructions)

    suites = {}
    for key in ("i9", "arm"):
        print(f"characterizing {len(specs)} categories on {key} ...")
        suites[key] = characterize_suite(specs, get_machine(key), fidelity)

    label = {"i9": "x86-64", "arm": "aarch64"}
    both = (relabelled(suites["i9"].metric_matrix(), "x86-64")
            .concat(relabelled(suites["arm"].metric_matrix(), "aarch64")))

    print("\n-- PC-space variance ratios (Arm / x86), Fig 7 analog --")
    rows = []
    for name, ids in (("control flow", CONTROL_FLOW_IDS),
                      ("memory", MEMORY_IDS),
                      ("runtime events", RUNTIME_EVENT_IDS)):
        cmp = compare_suites(both, ids)
        r1, r2 = cmp.std_ratio_per_pc("aarch64", "x86-64")
        rows.append([name, r1, r2])
    print(format_table(["metric set", "PRCO1 ratio", "PRCO2 ratio"], rows))

    print("\n-- raw counter gaps (suite geomeans) --")
    def gm(key, metric):
        return geomean([metric(r.counters) + 1e-4
                        for r in suites[key].results])

    counters = (("iTLB MPKI", lambda c: c.mpki(c.itlb_misses)),
                ("L1i MPKI", lambda c: c.mpki(c.l1i_misses)),
                ("LLC MPKI", lambda c: c.mpki(c.llc_misses)),
                ("CPI", lambda c: c.cpi))
    rows = []
    for name, metric in counters:
        x86, arm = gm("i9", metric), gm("arm", metric)
        rows.append([name, x86, arm, arm / x86])
    print(format_table(["counter", "x86-64", "aarch64", "arm/x86"], rows))
    print("\nPaper §V-D: Arm measured 80x worse I-TLB and 8x worse LLC "
          "MPKI — attributed largely to software-stack immaturity; the "
          "model reproduces the microarchitectural share of the gap.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
