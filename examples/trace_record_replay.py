#!/usr/bin/env python
"""Trace record / replay: decouple workload generation from simulation.

Records a benchmark's op stream to a compact binary trace, inspects it,
then replays it through two different machine configurations — the
standard trace-driven-simulation workflow, useful when sweeping
microarchitecture parameters against a fixed instruction stream.

Usage::

    python examples/trace_record_replay.py [--benchmark System.Linq]
"""

import argparse
import tempfile
from pathlib import Path

from repro.harness.report import format_table
from repro.kernel.vm import VirtualMemory
from repro.perf.counters import collect_counters
from repro.perf.trace_io import record, replay, trace_info
from repro.uarch.machine import CacheConfig, get_machine, scaled
from repro.uarch.pipeline import Core
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.program import build_program


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="System.Linq")
    parser.add_argument("--instructions", type=int, default=120_000)
    parser.add_argument("--out", help="trace path (default: temp file)")
    args = parser.parse_args()

    spec = next((s for s in dotnet_category_specs() + aspnet_specs()
                 if s.name == args.benchmark), None)
    if spec is None:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")

    path = Path(args.out) if args.out else \
        Path(tempfile.mkstemp(suffix=".trace")[1])
    program = build_program(spec, seed=7)
    n = record(program.ops(), path, max_instructions=args.instructions)
    info = trace_info(path)
    print(f"recorded {n} instructions to {path} "
          f"({info['bytes'] / 1024:.0f} KiB)")
    print(format_table(["records", "count"],
                       [[k, v] for k, v in info.items()]))

    # Replay the same trace against two cache configurations.
    stock = get_machine("i9")
    variants = {
        "i9 (stock)": stock,
        "i9, half L2": scaled(stock, l2=CacheConfig(
            stock.l2.size_bytes // 2, stock.l2.ways,
            latency=stock.l2.latency)),
    }
    rows = []
    for label, machine in variants.items():
        vm = VirtualMemory()
        core = Core(machine, vm)
        core.set_hints(spec.hints())
        core.consume(replay(path))
        c = collect_counters(core)
        rows.append([label, c.cpi, c.mpki(c.l1d_misses),
                     c.mpki(c.l2_misses), c.mpki(c.llc_misses)])
    print("\nsame trace, different machines:")
    print(format_table(["machine", "cpi", "l1d", "l2", "llc"], rows))
    if not args.out:
        path.unlink()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
