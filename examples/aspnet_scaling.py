#!/usr/bin/env python
"""ASP.NET core-count scaling study (Figs 11-12 of the paper).

Runs a server benchmark on 1..16 cores sharing one sliced LLC and shows
the paper's scaling story: per-core LLC MPKI stays roughly flat, yet
L3-bound pipeline stalls climb because slice-port queueing and NoC
traversal inflate the effective LLC latency.

Usage::

    python examples/aspnet_scaling.py [--benchmark Plaintext]
"""

import argparse

from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_multicore
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs

CORE_COUNTS = (1, 2, 4, 8, 16)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="Plaintext")
    parser.add_argument("--instructions", type=int, default=150_000,
                        help="measured instructions per core")
    args = parser.parse_args()

    spec = next((s for s in aspnet_specs()
                 if s.name == args.benchmark), None)
    if spec is None:
        raise SystemExit(f"unknown ASP.NET benchmark {args.benchmark!r}")
    machine = get_machine("i9")
    fidelity = Fidelity(warmup_instructions=60_000,
                        measure_instructions=args.instructions)

    rows = []
    for n in CORE_COUNTS:
        print(f"running {args.benchmark} on {n} core(s) ...")
        result, td, counters = run_multicore(spec, machine, n, fidelity)
        rows.append([n, td.retiring, td.frontend_bound, td.backend_bound,
                     td.be_l3_bound, result.per_core_llc_mpki(),
                     result.llc.extra_latency,
                     result.llc.effective_latency])
    print()
    print(format_table(
        ["cores", "retiring", "FE bound", "BE bound", "L3 bound",
         "per-core LLC MPKI", "contention delay (cyc)",
         "effective LLC latency"], rows))
    print("\nPaper's reading (§VI-B2): the rising L3-bound share with a "
          "flat per-core LLC MPKI means the stalls come from *latency* — "
          "contention at LLC slice ports and in the NoC — not from more "
          "misses.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
