#!/usr/bin/env python
"""Quickstart: characterize one benchmark and read its profile.

Runs a .NET microbenchmark category, an ASP.NET server benchmark and a
SPEC CPU17 analog on the simulated i9-9980XE, then prints the Table I
metrics and the Top-Down profile for each — the basic workflow behind
every experiment in the paper.

Usage::

    python examples/quickstart.py [benchmark ...]
"""

import sys

from repro import Fidelity, quick_characterize
from repro.core.metrics import METRICS, metric_vector
from repro.harness.report import format_table

DEFAULTS = ("System.Runtime", "Json", "mcf")


def characterize(name: str) -> None:
    print(f"\n=== {name} " + "=" * max(1, 60 - len(name)))
    result = quick_characterize(
        name, fidelity=Fidelity(warmup_instructions=80_000,
                                measure_instructions=150_000))
    vec = metric_vector(result.counters)
    rows = [[m.id, m.name, vec[m.id], m.unit] for m in METRICS]
    print(format_table(["id", "metric", "value", "unit"], rows,
                       float_fmt="{:.4g}"))

    td = result.topdown
    print(f"\nTop-Down: retiring={td.retiring:6.1%}  "
          f"bad-speculation={td.bad_speculation:6.1%}  "
          f"frontend-bound={td.frontend_bound:6.1%}  "
          f"backend-bound={td.backend_bound:6.1%}")
    print("Frontend breakdown: "
          + "  ".join(f"{k}={v:.1%}"
                      for k, v in td.frontend_breakdown().items()
                      if v > 0.02))
    print("Backend breakdown:  "
          + "  ".join(f"{k}={v:.1%}"
                      for k, v in td.backend_breakdown().items()
                      if v > 0.02))
    print(f"Simulated time: {result.seconds * 1e6:.1f} us "
          f"({result.counters.instructions} instructions, "
          f"IPC {result.ipc:.2f})")


def main() -> int:
    names = sys.argv[1:] or DEFAULTS
    for name in names:
        characterize(name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
