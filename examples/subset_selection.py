#!/usr/bin/env python
"""Representative-subset creation, end to end (§IV of the paper).

Characterizes the 44 .NET microbenchmark categories, runs the
metric-redundancy PCA (Table III), clusters the categories in PC space
(Fig 1), picks an 8-category representative subset (Table IV) and
validates it with SPECspeed-style cross-machine scores (Fig 2).

Usage::

    python examples/subset_selection.py [--k 8] [--instructions 150000]
"""

import argparse

from repro.core.characterize import characterization_pca
from repro.core.clustering import ClusterTree, linkage_matrix
from repro.core.metrics import METRIC_NAMES
from repro.core.subset import (select_representatives, speed_scores,
                               validate_subset)
from repro.harness.report import format_table
from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=8,
                        help="subset size (paper: 8)")
    parser.add_argument("--instructions", type=int, default=120_000)
    args = parser.parse_args()

    fidelity = Fidelity(warmup_instructions=args.instructions // 2,
                        measure_instructions=args.instructions)
    specs = dotnet_category_specs()

    print(f"characterizing {len(specs)} categories on the i9 ...")
    i9 = characterize_suite(specs, get_machine("i9"), fidelity,
                            progress=lambda i, n, name:
                            print(f"  [{i + 1:2d}/{n}] {name}"))
    matrix = i9.metric_matrix()

    print("\n-- PCA (Table III analog) --")
    pca = characterization_pca(matrix, n_components=4)
    for prco in pca.prcos:
        tops = ", ".join(f"{m.metric}={m.loading:+.2f}"
                         for m in prco.top_metrics)
        print(f"PRCO{prco.index} ({prco.variance_share:.3f}): {tops}")
    print(f"top-4 cumulative variance: {pca.cumulative_variance_4:.2%} "
          f"(paper: 79%)")

    print("\n-- dendrogram (Fig 1 analog) --")
    tree = ClusterTree(linkage_matrix(pca.scores(4)), matrix.names)
    print(tree.render(max_width=90))

    subset = select_representatives(matrix.names, pca.scores(4), k=args.k,
                                    seed=0)
    print(f"\n-- representative subset (Table IV analog, k={args.k}) --")
    for name in subset:
        print(f"  {name}")

    print("\ncharacterizing the same categories on the baseline Xeon ...")
    xeon = characterize_suite(specs, get_machine("xeon"), fidelity)
    scores = speed_scores(xeon.times(), i9.times())
    validation = validate_subset("subset", scores, subset)
    print(format_table(
        ["quantity", "value"],
        [["composite score, full suite", validation.composite_full],
         ["composite score, subset", validation.composite_subset],
         ["subset accuracy (paper: 98.7%)",
          f"{validation.accuracy_percent:.1f}%"]]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
