#!/usr/bin/env python
"""JIT cold-start study (§VII-A1 of the paper).

Shows the two sides of the paper's JIT finding:

1. the *correlation* view: sampled runtime-event and counter series,
   Pearson-correlated — JIT-start events coincide with elevated branch
   MPKI, L1i MPKI, LLC MPKI and page faults, while the useless-prefetch
   fraction drops (JITed pages are prefetchable);
2. the *counterfactual* view: the paper proposes preserving/transforming
   PC-indexed state across JIT events; the simulator can actually do it
   (``reuse_code_pages=True``) and the cold-start penalties shrink.

Usage::

    python examples/jit_coldstart.py [--benchmark System.Xml]
"""

import argparse

from repro.core.correlation import correlate_many
from repro.harness.report import format_table
from repro.harness.runner import Fidelity, run_with_sampling, run_workload
from repro.runtime.gc import GcConfig, WORKSTATION
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs

MB = 2 ** 20
COUNTERS = ("branch_mpki", "l1i_mpki", "llc_mpki", "page_faults",
            "useless_prefetch_frac")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="System.Xml")
    parser.add_argument("--instructions", type=int, default=500_000)
    args = parser.parse_args()

    spec = next((s for s in dotnet_category_specs() + aspnet_specs()
                 if s.name == args.benchmark), None)
    if spec is None:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    machine = get_machine("i9")
    fidelity = Fidelity(warmup_instructions=50_000,
                        measure_instructions=args.instructions)

    print("== correlation view (paper Fig 13a methodology) ==")
    result = run_with_sampling(
        spec, machine, fidelity, sample_interval=5e-6, seed=1,
        gc_config=GcConfig(flavor=WORKSTATION,
                           max_heap_bytes=20_000 * MB))
    samples = result.samples
    corr = correlate_many(samples, "jit_started", COUNTERS, max_lag=3)
    print(f"JIT events observed: {sum(samples['jit_started']):g} over "
          f"{len(samples)} sample buckets")
    print(format_table(["counter", "pearson r", "lag"],
                       [[c.counter, c.r, c.best_lag] for c in corr]))

    print("\n== counterfactual view: reuse code pages on re-JIT ==")
    normal = run_workload(spec, machine, fidelity, seed=5)
    reuse = run_workload(spec, machine, fidelity, seed=5,
                         reuse_code_pages=True)
    n, r = normal.counters, reuse.counters
    print(format_table(
        ["counter", "fresh pages (normal)", "reused pages (ablation)"],
        [["L1i MPKI", n.mpki(n.l1i_misses), r.mpki(r.l1i_misses)],
         ["iTLB MPKI", n.mpki(n.itlb_misses), r.mpki(r.itlb_misses)],
         ["branch MPKI", n.mpki(n.branch_misses),
          r.mpki(r.branch_misses)],
         ["page faults", float(n.page_faults), float(r.page_faults)],
         ["CPI", n.cpi, r.cpi]]))
    print("\nThe delta is the cost of PC-indexed state lost to fresh "
          "code pages — the paper's motivation for JIT-aware hardware.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
