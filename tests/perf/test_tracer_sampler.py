"""Tests for the LTTng-like tracer and the counter sampler."""

import pytest

from repro.kernel.vm import VirtualMemory
from repro.perf.sampler import SERIES_NAMES, CounterSampler, SampleSeries
from repro.perf.tracer import LttngTracer
from repro.runtime.events import RuntimeEventCounts
from repro.trace import (OP_BLOCK, OP_EVENT, OP_LOAD, EV_GC_TRIGGERED,
                         EV_JIT_STARTED)
from repro.uarch.machine import i9_9980xe
from repro.uarch.pipeline import Core


class TestTracer:
    def test_records_events_with_timestamps(self):
        tr = LttngTracer(freq_hz=1e9)
        tr.hook(EV_JIT_STARTED, 42, cycles=2e6)
        assert len(tr.events) == 1
        ev = tr.events[0]
        assert ev.kind == EV_JIT_STARTED
        assert ev.payload == 42
        assert ev.timestamp == pytest.approx(2e-3)

    def test_counts_table1_kinds(self):
        tr = LttngTracer(freq_hz=1e9)
        tr.hook(EV_JIT_STARTED, None, 0)
        tr.hook(EV_GC_TRIGGERED, None, 10)
        tr.hook(EV_GC_TRIGGERED, None, 20)
        assert tr.counts.jit_started == 1
        assert tr.counts.gc_triggered == 2

    def test_unknown_kind_recorded_not_counted(self):
        tr = LttngTracer(freq_hz=1e9)
        tr.hook("custom/event", None, 0)
        assert len(tr.events) == 1

    def test_filters(self):
        tr = LttngTracer(freq_hz=1e9)
        tr.hook(EV_JIT_STARTED, None, 0)
        tr.hook(EV_GC_TRIGGERED, None, 1)
        assert tr.count_of(EV_JIT_STARTED) == 1
        assert len(tr.events_of(EV_GC_TRIGGERED)) == 1

    def test_clear(self):
        tr = LttngTracer(freq_hz=1e9)
        tr.hook(EV_JIT_STARTED, None, 0)
        tr.clear()
        assert not tr.events
        assert tr.counts.jit_started == 0

    def test_integrates_with_core_event_hook(self):
        core = Core(i9_9980xe(), VirtualMemory())
        tr = LttngTracer(core.machine.max_freq_hz)
        core.event_hook = tr.hook
        core.consume([(OP_EVENT, EV_JIT_STARTED, 1),
                      (OP_BLOCK, 0x4000_0000, 10, 48, False)])
        assert tr.count_of(EV_JIT_STARTED) == 1


class TestSampler:
    def run_sampled(self, interval=2e-6, n_blocks=4000):
        core = Core(i9_9980xe(), VirtualMemory())
        events = RuntimeEventCounts()
        sampler = CounterSampler(core, events, interval_seconds=interval)
        ops = []
        for i in range(n_blocks):
            ops.append((OP_BLOCK, 0x4000_0000 + (i % 32) * 64, 10, 48,
                        False))
            ops.append((OP_LOAD, 0x8000_0000 + (i * 64) % (1 << 16)))
        core.consume(ops)
        return sampler.finish(), core

    def test_produces_multiple_buckets(self):
        series, _ = self.run_sampled()
        assert len(series) >= 3

    def test_all_columns_same_length(self):
        series, _ = self.run_sampled()
        lengths = {name: len(series[name]) for name in SERIES_NAMES}
        assert len(set(lengths.values())) == 1

    def test_instruction_deltas_sum_to_total(self):
        series, core = self.run_sampled()
        assert sum(series["instructions"]) \
            == pytest.approx(core.counts.instructions)

    def test_timestamps_monotonic(self):
        series, _ = self.run_sampled()
        ts = series.timestamps()
        assert ts == sorted(ts)
        assert ts[0] == 0.0

    def test_mpki_columns_non_negative(self):
        series, _ = self.run_sampled()
        for name in ("branch_mpki", "l1i_mpki", "llc_mpki"):
            assert all(v >= 0 for v in series[name])

    def test_series_getitem_unknown_raises(self):
        s = SampleSeries(1e-3)
        with pytest.raises(KeyError):
            s["nope"]
