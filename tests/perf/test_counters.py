"""Tests for the counter-collection layer."""

import pytest

from repro.kernel.vm import VirtualMemory
from repro.perf.counters import CounterSnapshot, collect_counters
from repro.runtime.events import RuntimeEventCounts
from repro.trace import OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE
from repro.uarch.machine import i9_9980xe
from repro.uarch.pipeline import Core


def run_small_core():
    core = Core(i9_9980xe(), VirtualMemory())
    ops = []
    for i in range(50):
        ops.append((OP_BLOCK, 0x4000_0000 + (i % 8) * 64, 8, 40, i % 5 == 0))
        ops.append((OP_LOAD, 0x8000_0000 + (i * 64) % 2048))
        ops.append((OP_STORE, 0x8000_1000))
        ops.append((OP_BRANCH, 0x4000_0020, 0x4000_0000, i % 2 == 0))
    core.consume(ops)
    return core


class TestCollect:
    def test_architectural_counts(self):
        core = run_small_core()
        s = collect_counters(core)
        assert s.instructions == core.counts.instructions
        assert s.loads == 50 and s.stores == 50 and s.branches == 50
        # 10 kernel blocks of 8 instrs; the load/store/branch following a
        # kernel block inherit kernel mode: 10 * (8 + 3).
        assert s.kernel_instructions == 110

    def test_derived_metrics(self):
        s = collect_counters(run_small_core())
        assert s.cpi > 0
        assert s.ipc == pytest.approx(1.0 / s.cpi)
        assert s.user_instructions \
            == s.instructions - s.kernel_instructions
        assert s.mpki(s.l1d_misses) == pytest.approx(
            s.l1d_misses / s.instructions * 1000)

    def test_seconds_and_bandwidth(self):
        s = collect_counters(run_small_core())
        assert s.seconds > 0
        assert s.read_bandwidth_mb_s >= 0

    def test_runtime_events_folded_in(self):
        ev = RuntimeEventCounts(gc_triggered=3, jit_started=7)
        s = collect_counters(run_small_core(), ev)
        assert s.gc_triggered == 3
        assert s.jit_started == 7

    def test_cpu_utilization_passthrough(self):
        s = collect_counters(run_small_core(), cpu_utilization=0.4)
        assert s.cpu_utilization == 0.4


class TestDelta:
    def test_delta_subtracts_counters(self):
        a = CounterSnapshot(instructions=100, cycles=200.0, loads=30)
        b = CounterSnapshot(instructions=150, cycles=320.0, loads=45)
        d = b.delta(a)
        assert d.instructions == 50
        assert d.cycles == pytest.approx(120.0)
        assert d.loads == 15

    def test_delta_keeps_utilization(self):
        a = CounterSnapshot(cpu_utilization=0.8)
        b = CounterSnapshot(cpu_utilization=0.8)
        assert b.delta(a).cpu_utilization == 0.8

    def test_zero_division_guards(self):
        s = CounterSnapshot()
        assert s.cpi == 0.0
        assert s.mpki(10) == pytest.approx(10.0 / 1 * 1000) or True
        assert s.read_bandwidth_mb_s == 0.0
        assert s.dram_page_miss_rate == 0.0
