"""Tests for the toplev-style hierarchical reporting."""

import pytest

from repro.harness.runner import Fidelity, run_workload
from repro.perf.toplev import (NOISE_FLOOR, bottlenecks, build_tree,
                               compare, render)
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

FID = Fidelity(warmup_instructions=30_000, measure_instructions=40_000)


def profile_of(name):
    specs = {s.name: s for s in (dotnet_category_specs()
                                 + speccpu_specs())}
    return run_workload(specs[name], get_machine("i9"), FID).topdown


@pytest.fixture(scope="module")
def runtime_profile():
    return profile_of("System.Runtime")


@pytest.fixture(scope="module")
def mcf_profile():
    return profile_of("mcf")


class TestTree:
    def test_level1_children_sum_to_one(self, runtime_profile):
        root = build_tree(runtime_profile)
        total = sum(child.fraction for child in root.children)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_hierarchy_internal_consistency(self, runtime_profile):
        root = build_tree(runtime_profile)
        fe = root.find("Frontend_Bound")
        assert fe.fraction == pytest.approx(
            sum(c.fraction for c in fe.children), abs=1e-9)
        mem = root.find("Memory_Bound")
        assert mem.fraction == pytest.approx(
            sum(c.fraction for c in mem.children), abs=1e-9)

    def test_find(self, runtime_profile):
        root = build_tree(runtime_profile)
        assert root.find("L3_Bound") is not None
        assert root.find("NoSuchNode") is None

    def test_walk_depths(self, runtime_profile):
        depths = [d for d, _ in build_tree(runtime_profile).walk()]
        assert min(depths) == 0
        assert max(depths) == 3


class TestBottlenecks:
    def test_mcf_is_dram_bound(self, mcf_profile):
        flagged = bottlenecks(mcf_profile, threshold=0.15)
        assert "DRAM_Bound" in flagged
        assert flagged[0] in ("Memory_Bound", "DRAM_Bound")

    def test_threshold_filters(self, mcf_profile):
        assert len(bottlenecks(mcf_profile, threshold=0.9)) == 0


class TestRender:
    def test_render_contains_hierarchy(self, runtime_profile):
        text = render(runtime_profile)
        for name in ("Retiring", "Frontend_Bound", "Backend_Bound"):
            assert name in text

    def test_bottleneck_marker(self, mcf_profile):
        text = render(mcf_profile, threshold=0.15)
        assert "<== bottleneck" in text

    def test_noise_caveat_present(self, runtime_profile):
        text = render(runtime_profile)
        assert f"{NOISE_FLOOR:.0%}" in text

    def test_compare_table(self, runtime_profile, mcf_profile):
        text = compare({"System.Runtime": runtime_profile,
                        "mcf": mcf_profile})
        assert "System.Runtime" in text and "mcf" in text
        assert "DRAM_Bound" in text
