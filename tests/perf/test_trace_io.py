"""Tests for trace record / replay."""

import itertools
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.trace_io import (TraceFormatError, TraceWriteError, record,
                                 record_buffers, replay, replay_buffers,
                                 trace_info)
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         EV_GC_TRIGGERED, EV_JIT_STARTED, TraceBuffer)
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.program import build_program

SAMPLE_OPS = [
    (OP_BLOCK, 0x4000_0000, 10, 48, False),
    (OP_LOAD, 0x8000_0000),
    (OP_STORE, 0x8000_0040),
    (OP_BRANCH, 0x4000_0030, 0x4000_0000, True),
    (OP_EVENT, EV_JIT_STARTED, 42),
    (OP_BLOCK, 0xFFFF_8000_0000, 5, 24, True),
    (OP_EVENT, EV_GC_TRIGGERED, None),
]


class TestRoundTrip:
    def test_ops_survive_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace"
        record(iter(SAMPLE_OPS), path)
        out = list(replay(path))
        assert len(out) == len(SAMPLE_OPS)
        for orig, back in zip(SAMPLE_OPS, out):
            assert back[0] == orig[0]
            if orig[0] in (OP_LOAD, OP_STORE):
                assert back[1] == orig[1]
            elif orig[0] == OP_BLOCK:
                assert back[1:] == orig[1:]
            elif orig[0] == OP_BRANCH:
                assert back[1:] == (orig[1], orig[2], orig[3])
            elif orig[0] == OP_EVENT:
                assert back[1] == orig[1]     # kind preserved

    def test_instruction_count_returned(self, tmp_path):
        path = tmp_path / "t.trace"
        n = record(iter(SAMPLE_OPS), path)
        assert n == 10 + 1 + 1 + 1 + 5

    def test_max_instructions_bounds_recording(self, tmp_path):
        path = tmp_path / "t.trace"
        ops = ((OP_BLOCK, 0x4000_0000 + i * 64, 10, 48, False)
               for i in range(1000))
        n = record(ops, path, max_instructions=55)
        assert 55 <= n <= 65

    def test_real_workload_trace_replays_identically(self, tmp_path):
        spec = next(s for s in dotnet_category_specs()
                    if s.name == "System.Runtime")
        prog = build_program(spec, seed=4)
        ops = list(itertools.islice(prog.ops(), 5000))
        path = tmp_path / "w.trace"
        record(iter(ops), path)
        replayed = list(replay(path))
        # Version 2 round-trips *everything*, event payloads included
        # (the pickled side-table).
        assert replayed == [tuple(op) for op in ops]

    def test_replayed_trace_drives_core_identically(self, tmp_path):
        from repro.kernel.vm import VirtualMemory
        from repro.uarch.machine import i9_9980xe
        from repro.uarch.pipeline import Core
        spec = next(s for s in dotnet_category_specs()
                    if s.name == "System.Linq")
        prog = build_program(spec, seed=4)
        ops = list(itertools.islice(prog.ops(), 8000))
        path = tmp_path / "w.trace"
        record(iter(ops), path)

        def run(op_iter):
            core = Core(i9_9980xe(), VirtualMemory())
            core.set_hints(spec.hints())
            core.consume(op_iter)
            return (core.counts.instructions, core.counts.loads,
                    core.l1d.stats.demand_misses,
                    core.branch_unit.stats.mispredicts)

        assert run(iter(ops)) == run(replay(path))


class TestEventSideChannel:
    """Version-2 event payloads must survive the round trip bit-for-bit —
    the pipeline consumes JIT metadata ``(base, size)`` payloads, so a
    lossy side-channel would silently break replay equivalence."""

    def test_structured_payloads_roundtrip(self, tmp_path):
        from repro.trace import EV_JIT_CODE_EMITTED, EV_JIT_CODE_MOVED
        ops = [
            (OP_BLOCK, 0x4000_0000, 8, 32, False),
            (OP_EVENT, EV_JIT_CODE_EMITTED, (0x7F00_0000, 1024)),
            (OP_EVENT, EV_GC_TRIGGERED, {"gen": 2, "reason": "budget"}),
            (OP_LOAD, 0x8000_0000),
            (OP_EVENT, EV_JIT_CODE_MOVED, (0x7F00_0000, 0x7F10_0000, 512)),
        ]
        path = tmp_path / "t.trace"
        record(iter(ops), path)
        assert list(replay(path)) == ops

    def test_real_suite_event_stream_identical(self, tmp_path):
        """Consume a real ASP.NET op stream directly and via a recorded
        trace; the tracer event streams (kind, payload, cycle) and the
        counters must match exactly."""
        from repro.kernel.vm import VirtualMemory
        from repro.uarch.machine import i9_9980xe
        from repro.uarch.pipeline import Core
        from repro.workloads.aspnet import aspnet_specs
        spec = next(s for s in aspnet_specs() if s.name == "Json")
        prog = build_program(spec, seed=7)
        ops = list(itertools.islice(prog.ops(), 20000))
        path = tmp_path / "w.trace"
        record(iter(ops), path)

        def run(op_iter):
            core = Core(i9_9980xe(), VirtualMemory())
            core.set_hints(spec.hints())
            events = []
            core.event_hook = lambda k, p, c: events.append((k, p, c))
            core.consume(op_iter)
            return events, (core.counts.instructions, core.counts.loads,
                            core.l1d.stats.demand_misses,
                            core.itlb.l1.stats.walks)

        ev_direct, ctr_direct = run(iter(ops))
        ev_replay, ctr_replay = run(replay(path))
        assert ev_direct, "suite stream produced no runtime events"
        assert ev_direct == ev_replay
        assert ctr_direct == ctr_replay

    def test_replay_buffers_preserves_chunking(self, tmp_path):
        bufs = []
        ops_iter = iter(SAMPLE_OPS * 40)
        while True:
            buf = TraceBuffer()
            done = buf.fill_from(ops_iter, 64)
            if buf.kinds:
                bufs.append(buf)
            if done:
                break
        path = tmp_path / "t.trace"
        n = record_buffers(bufs, path)
        assert n == sum(b.n_instructions for b in bufs)
        back = list(replay_buffers(path))
        # Replay hands back zero-copy memoryview columns; normalize to
        # lists for value comparison (indexing either yields plain ints).
        assert [(list(b.kinds), list(b.a0), list(b.a1), list(b.a2),
                 b.n_instructions) for b in back] \
            == [(list(b.kinds), list(b.a0), list(b.a1), list(b.a2),
                 b.n_instructions) for b in bufs]
        assert [b.events for b in back] == [b.events for b in bufs]
        assert all(type(b.kinds[0]) is int and type(b.a0[0]) is int
                   for b in back)


class TestInfoAndErrors:
    def test_trace_info(self, tmp_path):
        path = tmp_path / "t.trace"
        record(iter(SAMPLE_OPS), path)
        info = trace_info(path)
        assert info["blocks"] == 2
        assert info["loads"] == 1 and info["stores"] == 1
        assert info["events"] == 2
        assert info["instructions"] == 18
        assert info["kernel_instructions"] == 5
        assert info["bytes"] > 16

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"NOTATRACExxxxxxx")
        with pytest.raises(TraceFormatError):
            list(replay(path))

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.trace"
        path.write_bytes(b"RPR")
        with pytest.raises(TraceFormatError):
            list(replay(path))

    def test_unknown_tag_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        record(iter(SAMPLE_OPS[:1]), path)
        with open(path, "ab") as fh:
            fh.write(b"\x7f")
        with pytest.raises(TraceFormatError):
            list(replay(path))

    def test_oversized_block_rejected(self, tmp_path):
        with pytest.raises(TraceWriteError):
            record(iter([(OP_BLOCK, 0, 1 << 17, 48, False)]),
                   tmp_path / "t.trace")

    def test_unknown_op_rejected(self, tmp_path):
        with pytest.raises(TraceWriteError):
            record(iter([(99, 0)]), tmp_path / "t.trace")

    def test_truncated_chunk_body_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        record(iter(SAMPLE_OPS), path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(TraceFormatError, match="truncated chunk"):
            list(replay(path))

    def test_truncated_mmap_replay_raises_not_crashes(self, tmp_path):
        """The zero-copy path bounds-checks every chunk before slicing,
        so a truncated file raises the same error as the in-memory path
        (never a SIGBUS from dereferencing past the mapping)."""
        path = tmp_path / "t.trace"
        record(iter(SAMPLE_OPS), path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(TraceFormatError, match="truncated chunk"):
            list(replay_buffers(path, use_mmap=True))

    def test_truncated_tail_chunk_raises_after_good_chunks(self, tmp_path):
        bufs = []
        for start in (0, 3):
            b = TraceBuffer()
            b.fill_from(iter(SAMPLE_OPS[start:]), 10_000)
            bufs.append(b)
        path = tmp_path / "t.trace"
        record_buffers(iter(bufs), path)
        path.write_bytes(path.read_bytes()[:-10])
        stream = replay_buffers(path, use_mmap=True)
        first = next(stream)              # intact chunk still decodes
        assert len(first) == len(SAMPLE_OPS)
        with pytest.raises(TraceFormatError, match="truncated chunk"):
            list(stream)

    def test_header_only_file_yields_no_chunks_under_mmap(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_bytes(struct.pack("<8sII", b"RPRTRACE", 2, 0))
        assert list(replay_buffers(path, use_mmap=True)) == []

    def test_corrupt_event_table_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        header = struct.pack("<8sII", b"RPRTRACE", 2, 0)
        # empty chunk whose 4-byte event blob is not a valid pickle
        chunk = b"\x10" + struct.pack("<IQI", 0, 0, 4) + b"\xff\xff\xff\xff"
        path.write_bytes(header + chunk)
        with pytest.raises(TraceFormatError, match="corrupt event table"):
            list(replay(path))

    def test_v1_trace_still_readable(self, tmp_path):
        """Pre-SoA traces (fixed-width records, payload-less events)
        decode through the same API."""
        from repro.trace import RUNTIME_EVENT_KINDS
        path = tmp_path / "v1.trace"
        body = (b"\x01" + struct.pack("<QHHB", 0x4000_0000, 10, 48, 0)
                + b"\x03" + struct.pack("<Q", 0x8000_0000)
                + b"\x02" + struct.pack("<QQB", 0x4000_0030,
                                        0x4000_0000, 1)
                + b"\x05" + struct.pack("<B", 0))
        path.write_bytes(struct.pack("<8sII", b"RPRTRACE", 1, 0) + body)
        assert list(replay(path)) == [
            (OP_BLOCK, 0x4000_0000, 10, 48, False),
            (OP_LOAD, 0x8000_0000),
            (OP_BRANCH, 0x4000_0030, 0x4000_0000, True),
            (OP_EVENT, RUNTIME_EVENT_KINDS[0], None),
        ]


@given(st.lists(st.one_of(
    st.tuples(st.just(OP_LOAD), st.integers(0, (1 << 48) - 1)),
    st.tuples(st.just(OP_STORE), st.integers(0, (1 << 48) - 1)),
    st.tuples(st.just(OP_BRANCH), st.integers(0, (1 << 48) - 1),
              st.integers(0, (1 << 48) - 1), st.booleans()),
    st.tuples(st.just(OP_BLOCK), st.integers(0, (1 << 48) - 1),
              st.integers(0, 65535), st.integers(1, 65535),
              st.booleans())),
    max_size=80))
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_identity(tmp_path_factory, ops):
    path = tmp_path_factory.mktemp("traces") / "p.trace"
    record(iter(ops), path)
    assert list(replay(path)) == [tuple(op) for op in ops]
