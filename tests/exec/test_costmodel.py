"""Cost model + LPT scheduling: keys, EWMA persistence, makespan."""

import json

import pytest

from repro.exec.costmodel import (COSTS_FILENAME, CostModel, cost_key,
                                  lpt_order)
from repro.exec.jobs import JobSpec
from repro.exec.store import ResultStore
from repro.harness.runner import Fidelity
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=6_000, measure_instructions=10_000)


def make_job(spec_index=0, machine="i9", seed=0, fidelity=FID,
             run_kwargs=None):
    return JobSpec(spec=dotnet_category_specs()[spec_index],
                   machine=get_machine(machine), fidelity=fidelity,
                   seed=seed, run_kwargs=run_kwargs or {})


class TestCostKey:
    def test_machine_config_does_not_change_key(self):
        # Geometry changes simulated state, not op-stream length.
        assert cost_key(make_job(machine="i9")) \
            == cost_key(make_job(machine="xeon"))

    def test_seed_override_does_not_change_key(self):
        assert cost_key(make_job(run_kwargs={"seed": 1})) \
            == cost_key(make_job(run_kwargs={"seed": 2}))

    def test_fidelity_changes_key(self):
        longer = Fidelity(warmup_instructions=6_000,
                          measure_instructions=200_000)
        assert cost_key(make_job()) != cost_key(make_job(fidelity=longer))

    def test_workload_changes_key_and_prefixes_name(self):
        a, b = make_job(0), make_job(1)
        assert cost_key(a) != cost_key(b)
        assert cost_key(a).startswith(a.name + ":")

    def test_unencodable_kwargs_fall_back(self):
        job = make_job(run_kwargs={"trace_store": object()})
        key = cost_key(job)
        assert key.startswith(job.name + ":")
        # Deterministic: the fallback hashes (spec, fidelity) only.
        assert key == cost_key(make_job(run_kwargs={"trace_store": object()}))


class TestCostModel:
    def test_first_observation_sets_estimate(self, tmp_path):
        model = CostModel(tmp_path / "costs.json")
        job = make_job()
        assert model.estimate(job) is None
        model.observe(job, 2.0)
        assert model.estimate(job) == pytest.approx(2.0)

    def test_ewma_smooths_subsequent_observations(self, tmp_path):
        model = CostModel(tmp_path / "costs.json", alpha=0.3)
        job = make_job()
        model.observe(job, 10.0)
        model.observe(job, 20.0)
        assert model.estimate(job) == pytest.approx(0.3 * 20.0 + 0.7 * 10.0)

    def test_negative_observation_ignored(self, tmp_path):
        model = CostModel(tmp_path / "costs.json")
        job = make_job()
        model.observe(job, -1.0)
        assert model.estimate(job) is None
        assert len(model) == 0

    def test_save_then_reload_roundtrips(self, tmp_path):
        path = tmp_path / "costs.json"
        model = CostModel(path)
        model.observe(make_job(0), 3.5)
        model.observe(make_job(1), 0.25)
        model.save()
        reloaded = CostModel(path)
        assert len(reloaded) == 2
        assert reloaded.estimate(make_job(0)) == pytest.approx(3.5)
        assert reloaded.estimate(make_job(1)) == pytest.approx(0.25)

    def test_save_is_noop_when_clean(self, tmp_path):
        path = tmp_path / "costs.json"
        CostModel(path).save()
        assert not path.exists()

    def test_corrupt_sidecar_tolerated(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text("{ not json")
        model = CostModel(path)
        assert len(model) == 0
        model.observe(make_job(), 1.0)
        model.save()
        assert CostModel(path).estimate(make_job()) == pytest.approx(1.0)

    def test_wrong_schema_ignored(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text(json.dumps({"schema": 99, "costs": {"x": 1.0}}))
        assert len(CostModel(path)) == 0

    def test_non_numeric_entries_dropped(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text(json.dumps(
            {"schema": 1, "costs": {"good": 2.0, "bad": "fast", "neg": -3}}))
        model = CostModel(path)
        assert len(model) == 1

    def test_for_store_sidecar_lives_next_to_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        model = CostModel.for_store(store)
        assert model.path == store.root / COSTS_FILENAME
        model.observe(make_job(), 1.0)
        model.save()
        assert (store.root / COSTS_FILENAME).exists()


def simulate_makespan(order, costs, n_workers):
    """Greedy list scheduling: each job to the earliest-free worker."""
    free = [0.0] * n_workers
    for i in order:
        w = min(range(n_workers), key=lambda j: free[j])
        free[w] += costs[i]
    return max(free)


class TestLptOrder:
    def test_no_estimates_is_fifo(self):
        idx = [3, 1, 4, 1, 5]
        assert lpt_order(idx, [None] * 5) == idx

    def test_descending_by_cost(self):
        assert lpt_order([0, 1, 2], [1.0, 3.0, 2.0]) == [1, 2, 0]

    def test_unknowns_scheduled_first_in_submission_order(self):
        order = lpt_order([0, 1, 2, 3], [1.0, None, 5.0, None])
        assert order == [1, 3, 2, 0]

    def test_ties_keep_submission_order(self):
        assert lpt_order([0, 1, 2], [2.0, 2.0, 2.0]) == [0, 1, 2]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            lpt_order([0, 1], [1.0])

    def test_makespan_no_worse_than_fifo_on_skewed_costs(self):
        # The pathological FIFO case: the one long job submitted last.
        costs = [1.0] * 11 + [10.0]
        fifo = list(range(len(costs)))
        lpt = lpt_order(fifo, costs)
        for workers in (2, 4):
            assert simulate_makespan(lpt, costs, workers) \
                <= simulate_makespan(fifo, costs, workers)
        # With 4 workers LPT overlaps the straggler with the short jobs.
        assert simulate_makespan(lpt, costs, 4) == pytest.approx(10.0)
        assert simulate_makespan(fifo, costs, 4) == pytest.approx(12.0)

    def test_straggler_last_is_the_fifo_pathology(self):
        # However many workers, FIFO serializes a tail straggler after
        # all the short work; LPT starts it at t=0.
        costs = [0.5] * 8 + [20.0]
        fifo = list(range(len(costs)))
        lpt = lpt_order(fifo, costs)
        assert lpt[0] == 8
        for workers in (2, 4, 8):
            assert simulate_makespan(lpt, costs, workers) \
                == pytest.approx(20.0)
            assert simulate_makespan(fifo, costs, workers) \
                > 20.0

    def test_makespan_randomized_wins_in_aggregate(self):
        # LPT is not pointwise <= an arbitrary submission order on every
        # instance (both are greedy list schedules), but it dominates in
        # aggregate and is never catastrophically worse.  Deterministic
        # LCG so the test needs no random module seeding.
        state = 12345
        lpt_total = fifo_total = 0.0
        for trial in range(20):
            costs = []
            for _ in range(16):
                state = (1103515245 * state + 12345) % (1 << 31)
                costs.append(0.1 + (state % 1000) / 100.0)
            fifo = list(range(len(costs)))
            lpt = lpt_order(fifo, costs)
            for workers in (2, 3, 4):
                lpt_span = simulate_makespan(lpt, costs, workers)
                fifo_span = simulate_makespan(fifo, costs, workers)
                lpt_total += lpt_span
                fifo_total += fifo_span
                # Graham's LPT guarantee, against the trivial lower
                # bound max(mean load, longest job) <= OPT.
                lower = max(sum(costs) / workers, max(costs))
                assert lpt_span <= (4 / 3) * lower + 1e-9
        assert lpt_total < fifo_total


def _contended_writer(path, proc, rounds):
    """Child body: observe distinct keys and save after each one."""
    model = CostModel(path)
    for i in range(rounds):
        model.observe(make_job(run_kwargs={"tag": f"p{proc}-{i}"}), 1.0)
        model.save()


class TestContendedWriters:
    """Multiple hosts on a shared store dir write one costs.json; the
    flock'd read-merge-write must lose no observations and never leave
    a torn file."""

    def test_save_merges_instead_of_clobbering(self, tmp_path):
        path = tmp_path / COSTS_FILENAME
        a, b = CostModel(path), CostModel(path)
        a.observe(make_job(run_kwargs={"tag": "a"}), 1.0)
        b.observe(make_job(run_kwargs={"tag": "b"}), 2.0)
        a.save()
        b.save()                    # must keep a's entry, not last-write-win
        merged = CostModel(path)
        assert len(merged) == 2
        # b adopted a's on-disk entry into its in-memory model too
        assert b.estimate(make_job(run_kwargs={"tag": "a"})) == 1.0

    def test_unobserved_keys_adopt_fresher_disk_values(self, tmp_path):
        path = tmp_path / COSTS_FILENAME
        a, b = CostModel(path), CostModel(path)
        job = make_job()
        a.observe(job, 5.0)
        a.save()
        b.observe(make_job(1), 1.0)
        b.save()
        assert b.estimate(job) == 5.0

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        path = tmp_path / COSTS_FILENAME
        n_procs, rounds = 4, 12
        procs = [ctx.Process(target=_contended_writer,
                             args=(path, p, rounds))
                 for p in range(n_procs)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
            assert proc.exitcode == 0
        raw = json.loads(path.read_text())   # valid JSON: no torn write
        costs = raw["costs"]
        expected = {cost_key(make_job(run_kwargs={"tag": f"p{p}-{i}"}))
                    for p in range(n_procs) for i in range(rounds)}
        assert expected <= set(costs)
