"""Tests for the content-addressed on-disk result store."""

import pickle

from repro.exec.store import LAYOUT_VERSION, ResultStore

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"cpi": 1.25, "name": "Json"})
        assert store.get(KEY_A) == {"cpi": 1.25, "name": "Json"}

    def test_miss_returns_default(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY_A) is None
        assert store.get(KEY_A, default=42) == 42
        assert KEY_A not in store

    def test_contains_and_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        assert KEY_A in store and KEY_B in store
        assert sorted(store.keys()) == sorted([KEY_A, KEY_B])

    def test_overwrite(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        store.put(KEY_A, 2)
        assert store.get(KEY_A) == 2


class TestLayout:
    def test_versioned_fanout_path(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, 1)
        assert path == tmp_path / LAYOUT_VERSION / "aa" / f"{KEY_A}.pkl"

    def test_no_temp_files_after_put(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, list(range(1000)))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, 1)
        path.write_bytes(b"\x80this is not a pickle")
        assert store.get(KEY_A, default="miss") == "miss"
        assert not path.exists()


class TestMaintenance:
    def test_gc_keep_set(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        removed = store.gc(keep={KEY_A})
        assert removed == 1
        assert KEY_A in store and KEY_B not in store

    def test_gc_sweeps_orphan_tmp(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        orphan = store.path_for(KEY_B).parent / f".{KEY_B}.999.tmp"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"partial")
        assert store.gc() == 1
        assert not orphan.exists() and KEY_A in store

    def test_gc_max_age(self, tmp_path):
        import os
        import time
        store = ResultStore(tmp_path)
        old = store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        past = time.time() - 3600
        os.utime(old, (past, past))
        assert store.gc(max_age_seconds=60) == 1
        assert KEY_A not in store and KEY_B in store

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.stats().entries == 0
        store.put(KEY_A, "payload")
        stats = store.stats()
        assert stats.entries == 1
        assert stats.total_bytes >= len(pickle.dumps("payload"))
        assert stats.root == tmp_path


class TestIntegrity:
    def test_truncated_entry_is_a_miss_not_an_error(self, tmp_path):
        """Regression: a reader killed mid-entry used to leave bytes
        that poisoned every later ``get`` with the same key."""
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, list(range(1000)))
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        assert store.get(KEY_A, default="miss") == "miss"
        assert KEY_A not in store
        # and the key is immediately writable again
        store.put(KEY_A, "fresh")
        assert store.get(KEY_A) == "fresh"

    def test_bit_flip_caught_by_crc(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"cpi": 1.25})
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x01                    # payload bit rot
        path.write_bytes(bytes(data))
        assert store.get(KEY_A, default="miss") == "miss"

    def test_quarantine_preserves_bytes_for_postmortem(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, 1)
        path.write_bytes(b"\x80damaged beyond recognition")
        assert store.get(KEY_A) is None
        (quarantined,) = store.corrupt_dir.iterdir()
        assert quarantined.read_bytes() == b"\x80damaged beyond recognition"
        assert store.stats().corrupt == 1

    def test_repeated_corruption_never_collides_in_quarantine(self,
                                                              tmp_path):
        store = ResultStore(tmp_path)
        for tag in (b"first", b"second"):
            path = store.put(KEY_A, 1)
            path.write_bytes(tag)
            assert store.get(KEY_A) is None
        assert store.stats().corrupt == 2

    def test_valid_frame_unpicklable_payload_is_a_miss(self, tmp_path):
        import zlib
        from repro.exec.store import _FRAME, _MAGIC
        store = ResultStore(tmp_path)
        payload = b"well-framed but not a pickle"
        path = store.path_for(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_bytes(_FRAME.pack(_MAGIC, zlib.crc32(payload),
                                     len(payload)) + payload)
        assert store.get(KEY_A, default="miss") == "miss"
        assert store.stats().corrupt == 1

    def test_verify_sweeps_without_unpickling(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        bad = store.put(KEY_B, 2)
        bad.write_bytes(bad.read_bytes()[:10])
        assert store.verify() == [KEY_B]
        assert KEY_A in store and KEY_B not in store
        assert store.verify() == []         # idempotent

    def test_gc_purges_quarantine_on_request(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, 1)
        path.write_bytes(b"bad")
        store.get(KEY_A)
        assert store.stats().corrupt == 1
        assert store.gc() == 0              # default keeps the evidence
        assert store.stats().corrupt == 1
        assert store.gc(purge_quarantine=True) == 1
        assert store.stats().corrupt == 0


class TestConcurrentAccess:
    def test_parallel_writers_with_concurrent_gc(self, tmp_path):
        """Writers hold the shared lock, gc the exclusive one: a sweep
        can never observe (or remove) a half-published entry."""
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            import pytest
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        keys = [f"{i:02x}" * 32 for i in range(20)]

        def writer(chunk):
            store = ResultStore(tmp_path)
            for k in chunk:
                store.put(k, {"key": k, "blob": list(range(500))})

        procs = [ctx.Process(target=writer, args=(keys[i::4],))
                 for i in range(4)]
        for p in procs:
            p.start()
        store = ResultStore(tmp_path)
        for _ in range(25):
            store.gc(keep=set(keys))        # sweeps only orphan tmp files
        for p in procs:
            p.join(30)
            assert p.exitcode == 0
        store.gc(keep=set(keys))
        assert store.verify() == []
        assert sorted(store.keys()) == sorted(keys)
        for k in keys:
            assert store.get(k)["key"] == k
