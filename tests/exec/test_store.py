"""Tests for the content-addressed on-disk result store."""

import pickle

from repro.exec.store import LAYOUT_VERSION, ResultStore

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"cpi": 1.25, "name": "Json"})
        assert store.get(KEY_A) == {"cpi": 1.25, "name": "Json"}

    def test_miss_returns_default(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY_A) is None
        assert store.get(KEY_A, default=42) == 42
        assert KEY_A not in store

    def test_contains_and_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        assert KEY_A in store and KEY_B in store
        assert sorted(store.keys()) == sorted([KEY_A, KEY_B])

    def test_overwrite(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        store.put(KEY_A, 2)
        assert store.get(KEY_A) == 2


class TestLayout:
    def test_versioned_fanout_path(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, 1)
        assert path == tmp_path / LAYOUT_VERSION / "aa" / f"{KEY_A}.pkl"

    def test_no_temp_files_after_put(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, list(range(1000)))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, 1)
        path.write_bytes(b"\x80this is not a pickle")
        assert store.get(KEY_A, default="miss") == "miss"
        assert not path.exists()


class TestMaintenance:
    def test_gc_keep_set(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        removed = store.gc(keep={KEY_A})
        assert removed == 1
        assert KEY_A in store and KEY_B not in store

    def test_gc_sweeps_orphan_tmp(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, 1)
        orphan = store.path_for(KEY_B).parent / f".{KEY_B}.999.tmp"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"partial")
        assert store.gc() == 1
        assert not orphan.exists() and KEY_A in store

    def test_gc_max_age(self, tmp_path):
        import os
        import time
        store = ResultStore(tmp_path)
        old = store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        past = time.time() - 3600
        os.utime(old, (past, past))
        assert store.gc(max_age_seconds=60) == 1
        assert KEY_A not in store and KEY_B in store

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.stats().entries == 0
        store.put(KEY_A, "payload")
        stats = store.stats()
        assert stats.entries == 1
        assert stats.total_bytes >= len(pickle.dumps("payload"))
        assert stats.root == tmp_path
