"""Warm-state reuse: owned-copy buffers, identity checks, eviction."""

import itertools

import pytest

import repro.exec.warm as warm
from repro.exec.chaos import ChaosConfig, injected
from repro.exec.jobs import JobSpec
from repro.exec.pool import run_jobs
from repro.exec.warm import WarmCache, file_identity
from repro.harness.runner import Fidelity
from repro.perf.trace_io import record, replay_buffers
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.program import build_program

FID = Fidelity(warmup_instructions=6_000, measure_instructions=10_000)


def record_workload_trace(tmp_path, n_ops=4000):
    spec = next(s for s in dotnet_category_specs()
                if s.name == "System.Runtime")
    prog = build_program(spec, seed=4)
    path = tmp_path / "w.trace"
    record(iter(itertools.islice(prog.ops(), n_ops)), path)
    return path


class TestOwnedCopy:
    def test_copy_detaches_from_trace_file(self, tmp_path):
        path = record_workload_trace(tmp_path)
        bufs = list(replay_buffers(path, use_mmap=True))
        expected = [(list(b.kinds), list(b.a0), list(b.a1), list(b.a2))
                    for b in bufs]
        cache = WarmCache()
        cache.put_buffers("k", bufs, identity=file_identity(path))
        del bufs                          # drop the mmap-backed views
        # Truncating the file in place would SIGBUS any view still
        # backed by the mapping; cached copies must not care.
        path.write_bytes(b"")
        cached = cache._buffers["k"][0]
        for buf, (kinds, a0, a1, a2) in zip(cached, expected):
            assert type(buf.a0[0]) is int
            assert (list(buf.kinds), list(buf.a0),
                    list(buf.a1), list(buf.a2)) == (kinds, a0, a1, a2)

    def test_list_backed_buffers_pass_through(self):
        from repro.trace import OP_LOAD, TraceBuffer
        buf = TraceBuffer()
        buf.fill_from(iter([(OP_LOAD, 0x1000)]), 10)
        assert warm._owned_copy(buf) is buf


class TestBufferCache:
    def test_identity_mismatch_drops_entry(self, tmp_path):
        path = record_workload_trace(tmp_path)
        bufs = list(replay_buffers(path, use_mmap=False))
        cache = WarmCache()
        ident = file_identity(path)
        cache.put_buffers("k", bufs, identity=ident)
        assert cache.buffers("k", ident) is not None
        stale = (ident[0], ident[1] - 1, ident[2])
        assert cache.buffers("k", stale) is None
        assert cache.evictions == 1
        # fully gone, not just missed
        assert cache.buffers("k", ident) is None

    def test_over_cap_trace_not_cached(self, tmp_path):
        path = record_workload_trace(tmp_path)
        bufs = list(replay_buffers(path, use_mmap=False))
        cache = WarmCache(max_buffer_ops=len(bufs[0]) - 1)
        cache.put_buffers("k", bufs, identity=file_identity(path))
        assert cache.buffers("k", file_identity(path)) is None

    def test_lru_eviction_respects_ops_budget(self, tmp_path):
        path = record_workload_trace(tmp_path)
        bufs = list(replay_buffers(path, use_mmap=False))
        n_ops = sum(len(b) for b in bufs)
        cache = WarmCache(max_buffer_ops=n_ops + n_ops // 2)
        ident = file_identity(path)
        cache.put_buffers("a", bufs, identity=ident)
        cache.put_buffers("b", bufs, identity=ident)
        assert cache.buffers("a", ident) is None      # LRU-evicted
        assert cache.buffers("b", ident) is not None
        assert cache._buffer_ops == n_ops

    def test_missing_file_identity_is_none(self, tmp_path):
        assert file_identity(tmp_path / "nope") is None


class TestModelCache:
    def test_snapshot_roundtrip_and_counters(self):
        cache = WarmCache()
        machine = get_machine("i9")
        assert cache.model(machine) is None
        cache.put_model(machine, {"vm": 1}, ["core"])
        pair = cache.model(machine)
        assert pair == ({"vm": 1}, ["core"])
        # rehydration is a fresh object, never the cached one
        assert pair[0] is not cache.model(machine)[0]
        assert cache.model_misses == 1
        assert cache.model_hits >= 2

    def test_unpicklable_model_skipped(self):
        cache = WarmCache()
        cache.put_model(get_machine("i9"), lambda: None, None)
        assert len(cache) == 0
        assert cache.model(get_machine("i9")) is None

    def test_model_lru_bounded(self):
        cache = WarmCache(max_models=2)
        for key in ("i9", "xeon", "arm"):
            cache.put_model(get_machine(key), key, key)
        assert len(cache._models) == 2
        assert cache.model(get_machine("i9")) is None
        assert cache.model(get_machine("arm")) is not None

    def test_evict_all_clears_everything(self, tmp_path):
        path = record_workload_trace(tmp_path)
        cache = WarmCache()
        cache.put_model(get_machine("i9"), 1, 2)
        cache.put_buffers("k", list(replay_buffers(path, use_mmap=False)),
                          identity=file_identity(path))
        assert len(cache) == 2
        cache.evict_all()
        assert len(cache) == 0
        assert cache._buffer_ops == 0


class TestGlobalCache:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_MODELS", "0")
        assert warm.get_cache() is None

    def test_enabled_returns_singleton(self, monkeypatch):
        monkeypatch.delenv("REPRO_WARM_MODELS", raising=False)
        monkeypatch.setattr(warm, "_CACHE", None)
        cache = warm.get_cache()
        assert cache is not None
        assert warm.get_cache() is cache

    def test_module_evict_all_tolerates_no_cache(self, monkeypatch):
        monkeypatch.setattr(warm, "_CACHE", None)
        warm.evict_all()                  # must not raise


class TestEvictionOnFailure:
    def test_chaos_flaky_failure_evicts_global_cache(self, tmp_path,
                                                     monkeypatch):
        """A job that fails in-process may have poisoned shared warm
        state; the serial retry path must drop the whole cache before
        retrying, so the rerun rebuilds models from scratch."""
        monkeypatch.delenv("REPRO_WARM_MODELS", raising=False)
        monkeypatch.setattr(warm, "_CACHE", None)
        cache = warm.get_cache()
        # A sentinel entry that only survives if eviction never ran:
        # real jobs repopulate the cache with their own keys afterwards.
        cache.put_model("sentinel-config", "vm", "core")
        assert cache.model("sentinel-config") is not None

        spec = dotnet_category_specs()[0]
        jobs = [JobSpec(spec=spec, machine=get_machine("i9"),
                        fidelity=FID, seed=0)]
        config = ChaosConfig(flaky_rate=1.0, once=True,
                             state_dir=str(tmp_path / "chaos"))
        with injected(config):
            outcomes = run_jobs(jobs, n_jobs=1, catch=(Exception,),
                                max_retries=1)
        assert not any(hasattr(o, "error") for o in outcomes)
        assert cache.model("sentinel-config") is None
        assert cache.evictions >= 1

    def test_unretried_failure_still_evicts(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WARM_MODELS", raising=False)
        monkeypatch.setattr(warm, "_CACHE", None)
        cache = warm.get_cache()
        cache.put_model("sentinel-config", "vm", "core")

        spec = dotnet_category_specs()[0]
        jobs = [JobSpec(spec=spec, machine=get_machine("i9"),
                        fidelity=FID, seed=0)]
        config = ChaosConfig(flaky_rate=1.0, once=False,
                             state_dir=str(tmp_path / "chaos"))
        with injected(config):
            outcomes = run_jobs(jobs, n_jobs=1, catch=(Exception,),
                                max_retries=0)
        (failure,) = outcomes
        assert isinstance(failure.error, OSError)
        assert cache.model("sentinel-config") is None
