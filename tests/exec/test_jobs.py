"""Tests for job cache keys and the simulator-code fingerprint."""

import pytest

from repro.exec.jobs import (JobSpec, canonical_encode, code_fingerprint,
                             execute_job)
from repro.harness.runner import Fidelity, run_workload
from repro.runtime.gc import GcConfig, SERVER
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=8_000, measure_instructions=12_000)


def make_job(**overrides) -> JobSpec:
    fields = dict(spec=dotnet_category_specs()[0],
                  machine=get_machine("i9"), fidelity=FID, seed=0)
    fields.update(overrides)
    return JobSpec(**fields)


class TestCanonicalEncode:
    def test_primitives_stable(self):
        value = (None, True, False, 3, 2.5, "x", b"y", [1, 2], {"a": 1})
        assert canonical_encode(value) == canonical_encode(value)

    def test_dict_order_irrelevant(self):
        assert canonical_encode({"a": 1, "b": 2}) \
            == canonical_encode({"b": 2, "a": 1})

    def test_distinguishes_types(self):
        assert canonical_encode(1) != canonical_encode(1.0)
        assert canonical_encode("1") != canonical_encode(1)

    def test_dataclasses_by_field(self):
        a = GcConfig(flavor=SERVER)
        b = GcConfig(flavor=SERVER)
        assert canonical_encode(a) == canonical_encode(b)
        assert canonical_encode(a) != canonical_encode(GcConfig())

    def test_rejects_unstable_objects(self):
        with pytest.raises(TypeError):
            canonical_encode(lambda: None)
        with pytest.raises(TypeError):
            canonical_encode(object())


class TestCacheKey:
    def test_stable_across_constructions(self):
        assert make_job().cache_key("fp") == make_job().cache_key("fp")

    def test_varies_with_every_input(self):
        base = make_job().cache_key("fp")
        assert make_job(seed=1).cache_key("fp") != base
        assert make_job(machine=get_machine("arm")).cache_key("fp") != base
        assert make_job(fidelity=Fidelity.test()).cache_key("fp") != base
        assert make_job(spec=dotnet_category_specs()[1]) \
            .cache_key("fp") != base
        assert make_job(run_kwargs={"compaction_enabled": False}) \
            .cache_key("fp") != base

    def test_varies_with_code_fingerprint(self):
        job = make_job()
        assert job.cache_key("fp-a") != job.cache_key("fp-b")

    def test_default_fingerprint_is_live_tree(self):
        job = make_job()
        assert job.cache_key() == job.cache_key(code_fingerprint())


class TestCodeFingerprint:
    def _tree(self, tmp_path, content="x = 1\n"):
        (tmp_path / "pkg").mkdir(exist_ok=True)
        (tmp_path / "pkg" / "mod.py").write_text(content)
        (tmp_path / "top.py").write_text("y = 2\n")
        return tmp_path

    def test_deterministic(self, tmp_path):
        root = self._tree(tmp_path)
        assert code_fingerprint(root, refresh=True) \
            == code_fingerprint(root, refresh=True)

    def test_content_change_invalidates(self, tmp_path):
        root = self._tree(tmp_path)
        before = code_fingerprint(root, refresh=True)
        self._tree(tmp_path, content="x = 2\n")
        assert code_fingerprint(root, refresh=True) != before

    def test_new_file_invalidates(self, tmp_path):
        root = self._tree(tmp_path)
        before = code_fingerprint(root, refresh=True)
        (root / "pkg" / "extra.py").write_text("z = 3\n")
        assert code_fingerprint(root, refresh=True) != before

    def test_memoized_until_refresh(self, tmp_path):
        root = self._tree(tmp_path)
        before = code_fingerprint(root, refresh=True)
        self._tree(tmp_path, content="x = 99\n")
        assert code_fingerprint(root) == before          # memo hit
        assert code_fingerprint(root, refresh=True) != before


class TestExecuteJob:
    def test_matches_run_workload(self):
        job = make_job(run_kwargs={"compaction_enabled": False})
        direct = run_workload(job.spec, job.machine, FID, seed=0,
                              compaction_enabled=False)
        assert execute_job(job).counters == direct.counters

    def test_run_kwargs_seed_wins(self):
        with_field = execute_job(make_job(seed=3))
        with_kwarg = execute_job(make_job(seed=0,
                                          run_kwargs={"seed": 3}))
        assert with_field.counters == with_kwarg.counters
