"""Tests for the content-addressed trace store."""

import itertools

import pytest

from repro.exec.traces import TraceStore, trace_fingerprint
from repro.runtime.gc import GcConfig
from repro.runtime.heap import HeapConfig
from repro.trace import OP_BLOCK, OP_LOAD
from repro.workloads.dotnet import dotnet_category_specs


def _spec():
    return next(s for s in dotnet_category_specs()
                if s.name == "System.Runtime")


def _configs():
    gc = GcConfig()
    return gc, HeapConfig(max_heap_bytes=gc.max_heap_bytes,
                          gen0_budget_bytes=gc.gen0_budget())


class FakeProgram:
    """Deterministic synthetic op source (10-instr block + load pairs)."""

    def ops(self):
        pc = 0x4000_0000
        while True:
            yield (OP_BLOCK, pc, 10, 48, False)
            yield (OP_LOAD, 0xC000_0000 + (pc & 0xFFFF))
            pc += 64

    def premap_ranges(self):
        return [(0x4000_0000, 0x4010_0000), (0xC000_0000, 0xC001_0000)]


class FakeProgramPush(FakeProgram):
    """Same stream through the push-style ``fill_buffer`` protocol."""

    def __init__(self):
        self._ops = self.ops()

    def fill_buffer(self, buf, n_instructions):
        return buf.fill_from(self._ops, n_instructions)


def _key(store, **over):
    gc, heap = _configs()
    kw = dict(seed=0, code_bloat=1.0, gc_config=gc, heap_config=heap,
              fingerprint="fp0")
    kw.update(over)
    return store.key_for(_spec(), **kw)


class TestKeying:
    def test_key_is_deterministic(self, tmp_path):
        store = TraceStore(tmp_path)
        assert _key(store) == _key(store)

    @pytest.mark.parametrize("over", [
        {"seed": 1},
        {"code_bloat": 1.5},
        {"reuse_code_pages": True},
        {"compaction_enabled": False},
        {"fingerprint": "fp1"},
    ])
    def test_trace_relevant_inputs_change_key(self, tmp_path, over):
        store = TraceStore(tmp_path)
        assert _key(store, **over) != _key(store)


class TestEnsure:
    def test_cold_generates_warm_replays(self, tmp_path):
        store = TraceStore(tmp_path)
        key = _key(store)
        calls = []

        def make():
            calls.append(1)
            return FakeProgram()

        meta, generated = store.ensure(key, 10_000, make)
        assert generated and len(calls) == 1
        assert meta["n_instructions"] >= 11_000          # 10% slack
        assert meta["premap_ranges"] == [[0x4000_0000, 0x4010_0000],
                                         [0xC000_0000, 0xC001_0000]]
        # Warm hit: the second machine config never builds the program.
        meta2, generated2 = store.ensure(key, 10_000, make)
        assert not generated2 and len(calls) == 1
        assert meta2 == meta
        assert list(store.keys()) == [key]

    def test_too_short_entry_is_regenerated(self, tmp_path):
        store = TraceStore(tmp_path)
        key = _key(store)
        meta, _ = store.ensure(key, 1_000, FakeProgram)
        short = meta["n_instructions"]
        meta, generated = store.ensure(key, short * 4, FakeProgram)
        assert generated
        assert meta["n_instructions"] >= short * 4

    def test_push_and_pull_programs_record_same_stream(self, tmp_path):
        store = TraceStore(tmp_path)
        ka, kb = _key(store), _key(store, seed=1)
        store.ensure(ka, 5_000, FakeProgram)
        store.ensure(kb, 5_000, FakeProgramPush)

        def ops_of(key, n):
            ops = itertools.chain.from_iterable(
                buf.iter_ops() for buf in store.replay(key))
            return list(itertools.islice(ops, n))

        assert ops_of(ka, 500) == ops_of(kb, 500) \
            == list(itertools.islice(FakeProgram().ops(), 500))

    def test_corrupt_meta_reads_as_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        key = _key(store)
        store.ensure(key, 2_000, FakeProgram)
        store.meta_path(key).write_text("{not json")
        assert store.meta(key) is None
        # corruption deletes the entry so lookup is a clean miss
        assert store.lookup(key, 1) is None
        assert not store.trace_path(key).exists()

    def test_delete(self, tmp_path):
        store = TraceStore(tmp_path)
        key = _key(store)
        store.ensure(key, 2_000, FakeProgram)
        assert store.delete(key)
        assert store.lookup(key, 1) is None
        assert not store.delete(key)


class TestFingerprint:
    def _tree(self, tmp_path, name, uarch="x = 1", workloads="y = 1"):
        root = tmp_path / name
        (root / "workloads").mkdir(parents=True)
        (root / "uarch").mkdir()
        (root / "trace.py").write_text("# trace\n")
        (root / "workloads" / "gen.py").write_text(workloads)
        (root / "uarch" / "pipeline.py").write_text(uarch)
        return root

    def test_uarch_edits_do_not_invalidate(self, tmp_path):
        """The point of the split fingerprint: pipeline-model edits keep
        recorded traces valid."""
        a = self._tree(tmp_path, "a")
        b = self._tree(tmp_path, "b", uarch="x = 2")
        assert trace_fingerprint(a, refresh=True) \
            == trace_fingerprint(b, refresh=True)

    def test_generator_edits_invalidate(self, tmp_path):
        a = self._tree(tmp_path, "a")
        b = self._tree(tmp_path, "b", workloads="y = 2")
        assert trace_fingerprint(a, refresh=True) \
            != trace_fingerprint(b, refresh=True)

    def test_default_root_is_cached_and_stable(self):
        assert trace_fingerprint() == trace_fingerprint()


class TestTraceIntegrity:
    def test_sidecar_records_checksum(self, tmp_path):
        import zlib
        store = TraceStore(tmp_path)
        key = _key(store)
        meta, _ = store.ensure(key, 2_000, FakeProgram)
        data = store.trace_path(key).read_bytes()
        assert meta["bytes"] == len(data)
        assert meta["crc32"] == zlib.crc32(data)

    def test_bit_rot_is_quarantined_and_regenerated(self, tmp_path):
        store = TraceStore(tmp_path)
        key = _key(store)
        meta, _ = store.ensure(key, 2_000, FakeProgram)
        path = store.trace_path(key)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.lookup(key, 1) is None
        assert not path.exists()            # moved out of the namespace
        assert any(store.corrupt_dir.iterdir())
        meta2, generated = store.ensure(key, 2_000, FakeProgram)
        assert generated
        assert store.lookup(key, 2_000) == meta2

    def test_truncation_detected_by_size(self, tmp_path):
        store = TraceStore(tmp_path)
        key = _key(store)
        store.ensure(key, 2_000, FakeProgram)
        path = store.trace_path(key)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        assert store.lookup(key, 1) is None
        assert any(store.corrupt_dir.iterdir())

    def test_legacy_meta_without_checksum_still_replays(self, tmp_path):
        import json
        store = TraceStore(tmp_path)
        key = _key(store)
        meta, _ = store.ensure(key, 2_000, FakeProgram)
        legacy = {k: v for k, v in meta.items()
                  if k not in ("crc32", "bytes")}
        store.meta_path(key).write_text(json.dumps(legacy))
        assert store.lookup(key, 2_000) == legacy


class TestRunnerFallback:
    def test_corrupt_legacy_trace_regenerates_not_raises(self, tmp_path):
        """Satellite: a corrupted trace chunk that slips past the store
        checksum (legacy entry without one) must fall back to
        regeneration inside run_workload, not propagate the decode
        error — and the recovered run is bit-identical."""
        import json
        from repro.harness.runner import Fidelity, run_workload
        from repro.uarch.machine import get_machine

        fid = Fidelity(warmup_instructions=6_000,
                       measure_instructions=10_000)
        spec = _spec()
        machine = get_machine("i9")
        store = TraceStore(tmp_path)
        clean = run_workload(spec, machine, fid, trace_store=store)
        (key,) = store.keys()

        # Age the entry to the pre-checksum format, then damage it.
        meta = json.loads(store.meta_path(key).read_text())
        del meta["crc32"], meta["bytes"]
        store.meta_path(key).write_text(json.dumps(meta))
        data = store.trace_path(key).read_bytes()
        store.trace_path(key).write_bytes(data[:len(data) // 2])

        rerun = run_workload(spec, machine, fid, trace_store=store)
        assert rerun.counters == clean.counters
        assert any(store.corrupt_dir.iterdir())
        # the store now holds a fresh valid entry under the same key
        assert store.lookup(key, 1) is not None
