"""Tests for the campaign layer: taxonomy, failure records, manifest,
failure policies, graceful interruption and resume."""

import json
import os
import signal

import pytest

import repro.exec.pool as pool_mod
from repro.exec.campaign import (PERMANENT, TRANSIENT, CampaignInterrupted,
                                 CampaignManifest, WorkloadFailure,
                                 classify_error, graceful_shutdown)
from repro.exec.jobs import JobSpec, code_fingerprint
from repro.exec.pool import JobFailure, JobTimeout, WorkerCrash
from repro.exec.store import ResultStore
from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.runtime.gc import OutOfManagedMemory
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=6_000, measure_instructions=10_000)


def _specs(n=3):
    return dotnet_category_specs()[:n]


def _failing(bad_name, exc_factory):
    """Executor that fails for one workload, runs the rest for real."""
    def execute(job):
        if job.name == bad_name:
            raise exc_factory()
        return pool_mod.execute_job(job)
    return execute


class TestTaxonomy:
    @pytest.mark.parametrize("exc", [
        WorkerCrash("died"), JobTimeout("slow"), OSError("io"),
        ConnectionError("net"), TimeoutError("t"),
    ])
    def test_transient(self, exc):
        assert classify_error(exc) == TRANSIENT

    @pytest.mark.parametrize("exc", [
        ValueError("bad"), OutOfManagedMemory("oom"), RuntimeError("x"),
        KeyError("k"),
    ])
    def test_permanent(self, exc):
        assert classify_error(exc) == PERMANENT

    def test_accepts_types(self):
        assert classify_error(WorkerCrash) == TRANSIENT
        assert classify_error(ValueError) == PERMANENT


class TestWorkloadFailure:
    def _failure(self, error):
        job = JobSpec(spec=_specs(1)[0], machine=get_machine("i9"),
                      fidelity=FID)
        return JobFailure(job=job, error=error, retried=True, attempts=2)

    def test_from_job_failure_crash(self):
        wf = WorkloadFailure.from_job_failure(
            self._failure(WorkerCrash("worker died")), key="k1")
        assert wf.worker_fate == "crashed"
        assert wf.classification == TRANSIENT
        assert wf.attempts == 2 and wf.key == "k1"
        assert wf.error_type == "WorkerCrash"
        assert isinstance(wf.error, WorkerCrash)

    def test_from_job_failure_timeout_and_model_error(self):
        assert WorkloadFailure.from_job_failure(
            self._failure(JobTimeout("t"))).worker_fate == "killed"
        wf = WorkloadFailure.from_job_failure(
            self._failure(ValueError("model")))
        assert wf.worker_fate == "completed"
        assert wf.classification == PERMANENT

    def test_json_roundtrip(self):
        wf = WorkloadFailure.from_job_failure(
            self._failure(OSError("flaky disk")), key="abcd")
        back = WorkloadFailure.from_json(
            json.loads(json.dumps(wf.to_json())))
        assert back.name == wf.name
        assert back.error_type == "OSError"
        assert back.classification == TRANSIENT
        assert back.attempts == 2 and back.key == "abcd"
        assert back.error is None       # live exception not serialized


class TestManifest:
    def test_roundtrip_and_views(self, tmp_path):
        path = tmp_path / "c.jsonl"
        m = CampaignManifest(path)
        m.begin("fp0", total=3)
        m.record("k1", "A", "done")
        m.record("k2", "B", "failed", failure=WorkloadFailure(
            name="B", error_type="OSError", message="io",
            classification=TRANSIENT, attempts=2, key="k2"))
        loaded = CampaignManifest(path)
        assert loaded.header["fingerprint"] == "fp0"
        assert loaded.done_keys() == {"k1"}
        assert set(loaded.failure_records()) == {"k2"}
        assert loaded.failure_records()["k2"].error_type == "OSError"

    def test_later_records_win(self, tmp_path):
        m = CampaignManifest(tmp_path / "c.jsonl")
        m.begin("fp0")
        m.record("k1", "A", "failed", failure=WorkloadFailure(
            name="A", error_type="WorkerCrash", message="died",
            classification=TRANSIENT, key="k1"))
        m.record("k1", "A", "done")
        assert m.done_keys() == {"k1"}
        assert m.failure_records() == {}
        # the full journal still remembers the injected failure
        assert [f.error_type for f in m.all_failures()] == ["WorkerCrash"]

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "c.jsonl"
        m = CampaignManifest(path)
        m.begin("fp0")
        m.record("k1", "A", "done")
        with path.open("a") as fh:      # SIGKILL mid-append
            fh.write('{"type": "outcome", "key": "k2", "sta')
        loaded = CampaignManifest(path)
        assert loaded.done_keys() == {"k1"}

    def test_fingerprint_mismatch_resets_view(self, tmp_path):
        path = tmp_path / "c.jsonl"
        m = CampaignManifest(path)
        m.begin("fp0")
        m.record("k1", "A", "done")
        resumed = CampaignManifest(path)
        resumed.begin("fp1")            # source tree changed
        assert resumed.done_keys() == set()
        events = [json.loads(line)["type"]
                  for line in path.read_text().splitlines()]
        assert "fingerprint-mismatch" in events

    def test_resume_event_recorded(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignManifest(path).begin("fp0")
        CampaignManifest(path).begin("fp0")
        events = [json.loads(line)["type"]
                  for line in path.read_text().splitlines()]
        assert events.count("resume") == 1


class TestFailurePolicies:
    def test_default_raise_preserved(self, monkeypatch):
        specs = _specs(3)
        monkeypatch.setattr(pool_mod, "_execute",
                            _failing(specs[1].name, lambda: ValueError("m")))
        with pytest.raises(ValueError):
            characterize_suite(specs, get_machine("i9"), FID)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            characterize_suite(_specs(1), get_machine("i9"), FID,
                               on_error="ignore")

    def test_skip_records_structured_failure(self, monkeypatch):
        specs = _specs(3)
        monkeypatch.setattr(pool_mod, "_execute",
                            _failing(specs[1].name, lambda: ValueError("m")))
        suite = characterize_suite(specs, get_machine("i9"), FID,
                                   on_error="skip")
        assert [r.spec.name for r in suite.results] \
            == [specs[0].name, specs[2].name]
        assert not suite.ok
        (failure,) = suite.failures
        assert failure.name == specs[1].name
        assert failure.error_type == "ValueError"
        assert failure.classification == PERMANENT
        assert "ValueError" in failure.traceback

    def test_skip_journals_to_manifest(self, tmp_path, monkeypatch):
        specs = _specs(3)
        manifest = CampaignManifest(tmp_path / "c.jsonl")
        monkeypatch.setattr(pool_mod, "_execute",
                            _failing(specs[0].name, lambda: ValueError("m")))
        characterize_suite(specs, get_machine("i9"), FID,
                           on_error="skip", manifest=manifest)
        outcomes = CampaignManifest(tmp_path / "c.jsonl").outcomes()
        statuses = sorted(r["status"] for r in outcomes.values())
        assert statuses == ["done", "done", "failed"]

    def test_resume_skips_permanent_without_rerun(self, tmp_path,
                                                  monkeypatch):
        specs = _specs(2)
        manifest_path = tmp_path / "c.jsonl"
        monkeypatch.setattr(pool_mod, "_execute",
                            _failing(specs[0].name, lambda: ValueError("m")))
        characterize_suite(specs, get_machine("i9"), FID, on_error="skip",
                           manifest=CampaignManifest(manifest_path))

        executed = []

        def counting(job):
            executed.append(job.name)
            return pool_mod.execute_job(job)

        monkeypatch.setattr(pool_mod, "_execute", counting)
        suite = characterize_suite(specs, get_machine("i9"), FID,
                                   on_error="skip",
                                   manifest=CampaignManifest(manifest_path))
        # the deterministic failure is carried, not re-executed
        assert specs[0].name not in executed
        assert [f.name for f in suite.failures] == [specs[0].name]
        latest = CampaignManifest(manifest_path).outcomes()
        assert sorted(r["status"] for r in latest.values()) \
            == ["done", "skipped"]

    def test_resume_reattempts_transient(self, tmp_path, monkeypatch):
        specs = _specs(2)
        manifest_path = tmp_path / "c.jsonl"
        monkeypatch.setattr(pool_mod, "_execute",
                            _failing(specs[0].name, lambda: OSError("io")))
        first = characterize_suite(specs, get_machine("i9"), FID,
                                   on_error="skip",
                                   manifest=CampaignManifest(manifest_path))
        (failure,) = first.failures
        assert failure.classification == TRANSIENT
        assert failure.attempts == 2    # default budget: one retry

        monkeypatch.setattr(pool_mod, "_execute", pool_mod.execute_job)
        suite = characterize_suite(specs, get_machine("i9"), FID,
                                   on_error="skip",
                                   manifest=CampaignManifest(manifest_path))
        assert suite.ok and len(suite.results) == 2
        assert CampaignManifest(manifest_path).failure_records() == {}


class TestGracefulInterrupt:
    def test_sigint_leaves_resumable_manifest(self, tmp_path):
        """SIGINT mid-campaign: completed work journaled + stored, the
        rest resumable to a result bit-identical to an unbroken run."""
        specs = _specs(4)
        machine = get_machine("i9")
        reference = characterize_suite(specs, machine, FID)
        store = ResultStore(tmp_path / "cache")
        manifest_path = tmp_path / "c.jsonl"

        completions = {"n": 0}

        def progress(i, total, name):
            completions["n"] += 1
            if completions["n"] == 2:
                os.kill(os.getpid(), signal.SIGINT)

        with graceful_shutdown() as stop:
            with pytest.raises(CampaignInterrupted) as excinfo:
                characterize_suite(
                    specs, machine, FID, store=store, progress=progress,
                    on_error="skip",
                    manifest=CampaignManifest(manifest_path),
                    should_stop=stop.is_set)
        assert excinfo.value.remaining == 2
        assert len(CampaignManifest(manifest_path).done_keys()) == 2

        resumed = characterize_suite(
            specs, machine, FID, store=store, on_error="skip",
            manifest=CampaignManifest(manifest_path))
        assert resumed.ok
        assert resumed.names == reference.names
        assert [r.counters for r in resumed.results] \
            == [r.counters for r in reference.results]

    def test_second_signal_hard_interrupts(self):
        with graceful_shutdown() as stop:
            os.kill(os.getpid(), signal.SIGINT)
            # first signal: flag only
            assert stop.is_set()
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                signal.raise_signal(signal.SIGINT)  # ensure delivery

    def test_handlers_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with graceful_shutdown():
            assert signal.getsignal(signal.SIGINT) is not before
        assert signal.getsignal(signal.SIGINT) is before

    def test_interrupt_without_manifest(self):
        with pytest.raises(CampaignInterrupted) as excinfo:
            characterize_suite(_specs(2), get_machine("i9"), FID,
                               should_stop=lambda: True)
        assert excinfo.value.manifest_path is None
        assert excinfo.value.remaining == 2


class TestKeysMatchPool:
    def test_manifest_keys_are_store_keys(self, tmp_path):
        """The manifest journals the same content-addressed keys the
        result store uses, so `done` implies a warm store entry."""
        specs = _specs(2)
        store = ResultStore(tmp_path / "cache")
        manifest = CampaignManifest(tmp_path / "c.jsonl")
        characterize_suite(specs, get_machine("i9"), FID, store=store,
                           on_error="skip", manifest=manifest)
        fp = code_fingerprint()
        expected = {JobSpec(spec=s, machine=get_machine("i9"),
                            fidelity=FID).cache_key(fp) for s in specs}
        assert manifest.done_keys() == expected
        assert all(k in store for k in expected)


class TestDuplicateCompletionGuard:
    """A second appender (coordinator reclaim racing a slow worker)
    must not journal the same work unit twice."""

    def test_same_unit_recorded_once(self, tmp_path):
        m = CampaignManifest(tmp_path / "c.jsonl")
        m.begin("fp0")
        assert m.record("k1", "A", "done", unit="u1") is True
        assert m.record("k1", "A", "done", unit="u1") is False
        outcomes = [r for r in m.records if r.get("type") == "outcome"]
        assert len(outcomes) == 1

    def test_guard_survives_reload(self, tmp_path):
        path = tmp_path / "c.jsonl"
        m = CampaignManifest(path)
        m.begin("fp0")
        m.record("k1", "A", "done", unit="u1")
        # The racing appender is a *different* process with its own
        # manifest object over the same journal.
        other = CampaignManifest(path)
        assert other.record("k1", "A", "done", unit="u1") is False
        reloaded = CampaignManifest(path)
        outcomes = [r for r in reloaded.records
                    if r.get("type") == "outcome"]
        assert len(outcomes) == 1
        assert outcomes[0]["unit"] == "u1"

    def test_distinct_units_same_key_both_journal(self, tmp_path):
        # Two campaigns can legitimately settle the same cache key
        # under different work units (e.g. a reclaim re-enqueue).
        m = CampaignManifest(tmp_path / "c.jsonl")
        m.begin("fp0")
        assert m.record("k1", "A", "failed", unit="u1",
                        failure=WorkloadFailure(
                            name="A", error_type="WorkerCrash",
                            message="host died",
                            classification=TRANSIENT, key="k1"))
        assert m.record("k1", "A", "done", unit="u2")
        assert m.done_keys() == {"k1"}

    def test_unitless_records_unaffected(self, tmp_path):
        m = CampaignManifest(tmp_path / "c.jsonl")
        m.begin("fp0")
        assert m.record("k1", "A", "done") is True
        assert m.record("k1", "A", "done") is True   # legacy path
