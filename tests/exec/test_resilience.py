"""Degraded-mode primitives: retry policy, retry_call, circuit breaker."""

import errno

import pytest

from repro.exec.resilience import (BackendUnavailable, CircuitBreaker,
                                   RetryPolicy, retry_call)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(retries=5, backoff=0.1, max_backoff=0.4,
                             deadline=None)
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_zero_retries_means_one_attempt(self):
        assert list(RetryPolicy(retries=0).delays()) == []


class TestRetryCall:
    def test_rides_out_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EIO, "transient")
            return "ok"

        retried = []
        out = retry_call(flaky,
                         policy=RetryPolicy(retries=3, backoff=0.001),
                         on_retry=lambda n, exc: retried.append(n))
        assert out == "ok"
        assert calls["n"] == 3
        assert retried == [1, 2]

    def test_exhaustion_raises_typed_and_chained(self):
        def down():
            raise OSError(errno.EIO, "still down")

        with pytest.raises(BackendUnavailable) as err:
            retry_call(down, policy=RetryPolicy(retries=2, backoff=0.001))
        assert isinstance(err.value.__cause__, OSError)
        assert isinstance(err.value, OSError)    # transient taxonomy

    def test_backend_unavailable_is_never_retried(self):
        calls = {"n": 0}

        def fast_fail():
            calls["n"] += 1
            raise BackendUnavailable("circuit open")

        with pytest.raises(BackendUnavailable):
            retry_call(fast_fail,
                       policy=RetryPolicy(retries=5, backoff=0.001))
        assert calls["n"] == 1

    def test_deadline_stops_the_loop_before_the_budget(self):
        calls = {"n": 0}

        def down():
            calls["n"] += 1
            raise OSError("down")

        with pytest.raises(BackendUnavailable):
            retry_call(down, policy=RetryPolicy(
                retries=50, backoff=10.0, max_backoff=10.0,
                deadline=0.01))
        assert calls["n"] == 1      # the first sleep would blow it

    def test_non_retryable_errors_propagate_untouched(self):
        def bug():
            raise ValueError("logic error, not weather")

        with pytest.raises(ValueError):
            retry_call(bug)


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _raise_eio():
    raise OSError(errno.EIO, "backend down")


class TestCircuitBreaker:
    def _tripped(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(_raise_eio)
        return breaker, clock

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=5.0,
                                 clock=_Clock())
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_raise_eio)
        assert breaker.state == "closed"

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=3, cooldown=5.0,
                                 clock=_Clock())
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_raise_eio)
        assert breaker.call(lambda: "ok") == "ok"
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_raise_eio)
        assert breaker.state == "closed"

    def test_open_fails_fast_without_calling(self):
        breaker, _ = self._tripped()
        assert breaker.state == "open"
        calls = {"n": 0}

        def fn():
            calls["n"] += 1

        with pytest.raises(BackendUnavailable):
            breaker.call(fn)
        assert calls["n"] == 0

    def test_half_open_probe_success_closes(self):
        breaker, clock = self._tripped()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._tripped()
        clock.advance(5.0)
        with pytest.raises(OSError):
            breaker.call(_raise_eio)
        assert breaker.state == "open"
        clock.advance(4.9)
        assert breaker.state == "open"      # a fresh full cooldown

    def test_exactly_one_probe_is_admitted(self):
        breaker, clock = self._tripped()
        clock.advance(5.0)
        assert breaker.allow()          # this caller is the probe
        assert not breaker.allow()      # concurrent caller fails fast
        breaker.record_success()
        assert breaker.allow()
