"""Tests for the scheduler: determinism, store integration, failures.

The central correctness contract: the simulator is seeded-deterministic,
so a parallel run must be **bit-identical** to a serial run — never just
statistically close.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.exec.pool as pool_mod
from repro.exec.jobs import JobSpec
from repro.exec.pool import JobFailure, JobTimeout, WorkerCrash, run_jobs
from repro.exec.store import ResultStore
from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.runtime.gc import GcConfig, OutOfManagedMemory, WORKSTATION
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=6_000, measure_instructions=10_000)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


def make_jobs(n=3, **overrides):
    fields = dict(machine=get_machine("i9"), fidelity=FID, seed=0)
    fields.update(overrides)
    return [JobSpec(spec=s, **fields)
            for s in dotnet_category_specs()[:n]]


class TestDeterminism:
    def test_parallel_matches_serial_bit_identical(self):
        specs = dotnet_category_specs()[:6]
        machine = get_machine("i9")
        serial = characterize_suite(specs, machine, FID, jobs=1)
        parallel = characterize_suite(specs, machine, FID, jobs=4)
        assert parallel.names == serial.names
        assert np.array_equal(parallel.metric_matrix().values,
                              serial.metric_matrix().values)

    def test_spawn_start_method_is_safe(self):
        jobs = make_jobs(2)
        serial = run_jobs(jobs, n_jobs=1)
        spawned = run_jobs(jobs, n_jobs=2, start_method="spawn")
        assert [r.counters for r in spawned] \
            == [r.counters for r in serial]

    def test_outcomes_in_job_order(self):
        jobs = make_jobs(4)
        outcomes = run_jobs(jobs, n_jobs=2)
        assert [r.spec.name for r in outcomes] \
            == [j.spec.name for j in jobs]


class TestStoreIntegration:
    def test_second_invocation_runs_zero_simulations(self, tmp_path,
                                                     monkeypatch):
        store = ResultStore(tmp_path)
        jobs = make_jobs(3)
        first = run_jobs(jobs, n_jobs=1, store=store)

        def boom(job):
            raise AssertionError("simulated on a warm store")

        monkeypatch.setattr(pool_mod, "_execute", boom)
        second = run_jobs(jobs, n_jobs=1, store=store)
        assert [r.counters for r in second] \
            == [r.counters for r in first]

    def test_parallel_hits_warm_store(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = make_jobs(3)
        first = run_jobs(jobs, n_jobs=2, store=store)
        again = run_jobs(jobs, n_jobs=2, store=store)
        assert [r.counters for r in again] \
            == [r.counters for r in first]
        assert store.stats().entries == 3

    def test_code_fingerprint_invalidates(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        jobs = make_jobs(2)
        monkeypatch.setattr(pool_mod, "code_fingerprint",
                            lambda: "tree-state-a")
        run_jobs(jobs, n_jobs=1, store=store)
        assert store.stats().entries == 2

        executed = []

        def counting(job):
            executed.append(job.name)
            return pool_mod.execute_job(job)

        monkeypatch.setattr(pool_mod, "_execute", counting)
        monkeypatch.setattr(pool_mod, "code_fingerprint",
                            lambda: "tree-state-b")
        run_jobs(jobs, n_jobs=1, store=store)
        assert len(executed) == 2          # every key missed
        assert store.stats().entries == 4  # old entries still addressable


class TestFailureSemantics:
    def _oom_jobs(self):
        spec = next(s for s in dotnet_category_specs()
                    if s.name == "System.Collections")
        gc_config = GcConfig(flavor=WORKSTATION,
                             max_heap_bytes=200 * 2 ** 20)
        return [JobSpec(spec=spec, machine=get_machine("i9"),
                        fidelity=FID, run_kwargs={"gc_config": gc_config})]

    def test_caught_exception_becomes_failure_outcome(self):
        outcomes = run_jobs(self._oom_jobs(), n_jobs=1,
                            catch=(OutOfManagedMemory,))
        assert isinstance(outcomes[0], JobFailure)
        assert isinstance(outcomes[0].error, OutOfManagedMemory)
        assert not outcomes[0].retried

    def test_uncaught_exception_raises_serial(self):
        with pytest.raises(OutOfManagedMemory):
            run_jobs(self._oom_jobs(), n_jobs=1)

    @needs_fork
    def test_uncaught_exception_raises_parallel(self):
        with pytest.raises(OutOfManagedMemory):
            run_jobs(self._oom_jobs() * 2, n_jobs=2, start_method="fork")

    @needs_fork
    def test_caught_exception_parallel(self):
        outcomes = run_jobs(self._oom_jobs() * 2, n_jobs=2,
                            start_method="fork",
                            catch=(OutOfManagedMemory,))
        assert all(isinstance(o, JobFailure) for o in outcomes)


class TestCrashAndTimeout:
    @needs_fork
    def test_worker_crash_retried_once_then_failure(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_execute",
                            lambda job: os._exit(13))
        outcomes = run_jobs(make_jobs(1), n_jobs=2, start_method="fork")
        assert isinstance(outcomes[0], JobFailure)
        assert isinstance(outcomes[0].error, WorkerCrash)
        assert outcomes[0].retried

    @needs_fork
    def test_crash_does_not_poison_other_jobs(self, monkeypatch):
        def selective(job):
            if job.name == dotnet_category_specs()[0].name:
                os._exit(13)
            return pool_mod.execute_job(job)

        monkeypatch.setattr(pool_mod, "_execute", selective)
        jobs = make_jobs(3)
        outcomes = run_jobs(jobs, n_jobs=2, start_method="fork",
                            chunk_size=1)
        assert isinstance(outcomes[0], JobFailure)
        assert not isinstance(outcomes[1], JobFailure)
        assert not isinstance(outcomes[2], JobFailure)

    @needs_fork
    def test_timeout_kills_and_records(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_execute",
                            lambda job: time.sleep(60))
        start = time.monotonic()
        outcomes = run_jobs(make_jobs(1), n_jobs=2, start_method="fork",
                            timeout=0.3)
        assert time.monotonic() - start < 10
        assert isinstance(outcomes[0], JobFailure)
        assert isinstance(outcomes[0].error, JobTimeout)
        assert outcomes[0].retried


class TestEdgeCases:
    def test_empty_job_list(self):
        assert run_jobs([], n_jobs=4) == []

    def test_progress_called_per_job(self):
        seen = []
        run_jobs(make_jobs(3), n_jobs=1,
                 progress=lambda i, n, name: seen.append((i, n, name)))
        assert [(i, n) for i, n, _ in seen] == [(0, 3), (1, 3), (2, 3)]

    def test_single_job_parallel_request(self):
        outcomes = run_jobs(make_jobs(1), n_jobs=8)
        assert len(outcomes) == 1 and not isinstance(outcomes[0],
                                                     JobFailure)
