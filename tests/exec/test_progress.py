"""Tests for throughput/ETA/per-worker progress accounting."""

from repro.exec.progress import ProgressReporter


class FakeClock:
    """Deterministic monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestReporter:
    def test_callback_shape_matches_harness(self):
        seen = []
        rep = ProgressReporter(3, callback=lambda i, n, name:
                               seen.append((i, n, name)))
        rep.job_done("a")
        rep.job_done("b")
        rep.job_done("c")
        assert seen == [(0, 3, "a"), (1, 3, "b"), (2, 3, "c")]

    def test_throughput_and_eta(self):
        clock = FakeClock()
        rep = ProgressReporter(10, clock=clock)
        rep.start()
        clock.now += 2.0
        rep.job_done("a")
        rep.job_done("b")
        assert rep.throughput == 1.0          # 2 jobs in 2s
        assert rep.eta_seconds == 8.0          # 8 left at 1 job/s

    def test_no_eta_before_data(self):
        rep = ProgressReporter(5, clock=FakeClock())
        assert rep.throughput == 0.0
        assert rep.eta_seconds is None

    def test_per_worker_and_cache_accounting(self):
        rep = ProgressReporter(4, clock=FakeClock())
        rep.job_done("a", worker_id=0)
        rep.job_done("b", worker_id=1)
        rep.job_done("c", worker_id=1)
        rep.job_done("d", worker_id=-1, cached=True)
        assert rep.worker_counts() == {0: 1, 1: 2, -1: 1}
        assert rep.cache_hits == 1
        assert rep.completed == 4

    def test_status_line(self):
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        clock.now += 1.0
        rep.job_done("a", worker_id=0)
        rep.job_done("b", worker_id=1, cached=True)
        line = rep.status_line()
        assert "2/4 jobs" in line
        assert "1 cached" in line
        assert "jobs/s" in line
        assert "ETA" in line
        assert "w0:1" in line
