"""Tests for throughput/ETA/per-worker progress accounting."""

from repro.exec.progress import ProgressReporter


class FakeClock:
    """Deterministic monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestReporter:
    def test_callback_shape_matches_harness(self):
        seen = []
        rep = ProgressReporter(3, callback=lambda i, n, name:
                               seen.append((i, n, name)))
        rep.job_done("a")
        rep.job_done("b")
        rep.job_done("c")
        assert seen == [(0, 3, "a"), (1, 3, "b"), (2, 3, "c")]

    def test_throughput_and_eta(self):
        clock = FakeClock()
        rep = ProgressReporter(10, clock=clock)
        rep.start()
        clock.now += 2.0
        rep.job_done("a")
        rep.job_done("b")
        assert rep.throughput == 1.0          # 2 jobs in 2s
        assert rep.eta_seconds == 8.0          # 8 left at 1 job/s

    def test_no_eta_before_data(self):
        rep = ProgressReporter(5, clock=FakeClock())
        assert rep.throughput == 0.0
        assert rep.eta_seconds is None

    def test_per_worker_and_cache_accounting(self):
        rep = ProgressReporter(4, clock=FakeClock())
        rep.job_done("a", worker_id=0)
        rep.job_done("b", worker_id=1)
        rep.job_done("c", worker_id=1)
        rep.job_done("d", worker_id=-1, cached=True)
        assert rep.worker_counts() == {0: 1, 1: 2, -1: 1}
        assert rep.cache_hits == 1
        assert rep.completed == 4

    def test_status_line(self):
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        clock.now += 1.0
        rep.job_done("a", worker_id=0)
        rep.job_done("b", worker_id=1, cached=True)
        line = rep.status_line()
        assert "2/4 jobs" in line
        assert "1 cached" in line
        assert "jobs/s" in line
        assert "ETA" in line
        assert "w0:1" in line


class TestWorkBasedEta:
    def test_eta_weights_remaining_work_not_count(self):
        # 4 jobs, one of which carries 9/12 of the estimated work.
        # Count-based ETA after the three short jobs would predict 1s
        # left; work-based ETA knows the straggler dominates.
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        for est in (1.0, 1.0, 1.0, 9.0):
            rep.add_work(est)
        clock.now += 3.0
        rep.job_done("a", work=1.0)
        rep.job_done("b", work=1.0)
        rep.job_done("c", work=1.0)
        # 3s of work done in 3s elapsed -> rate 1 work-sec/s, 9 left.
        assert rep.eta_seconds == 9.0

    def test_falls_back_to_count_eta_without_work(self):
        clock = FakeClock()
        rep = ProgressReporter(10, clock=clock)
        rep.start()
        clock.now += 2.0
        rep.job_done("a")
        rep.job_done("b")
        assert rep.eta_seconds == 8.0

    def test_unknown_estimates_fall_back_to_count_eta(self):
        # Work registered but none completed yet: no work rate exists,
        # so the count-based estimate keeps the ETA live.
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        rep.add_work(5.0)
        clock.now += 2.0
        rep.job_done("a", work=0.0)
        rep.job_done("b", work=0.0)
        assert rep.eta_seconds == 2.0

    def test_eta_never_negative(self):
        clock = FakeClock()
        rep = ProgressReporter(2, clock=clock)
        rep.start()
        rep.add_work(1.0)
        clock.now += 5.0
        rep.job_done("a", work=1.0)       # work exhausted, 1 job left
        assert rep.eta_seconds == 0.0


class TestEtaDegenerateEdges:
    def test_zero_elapsed_completions_yield_none(self):
        # Every job finished within one clock tick: completed > 0 but
        # elapsed == 0, so no rate exists.  Historically this risked a
        # ZeroDivisionError / inf; now it's an honest "unknown".
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        rep.job_done("a")                 # clock never advances
        rep.job_done("b")
        assert rep.throughput == 0.0
        assert rep.eta_seconds is None

    def test_status_line_renders_placeholder_for_unknown_eta(self):
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        rep.job_done("a")                 # 0s elapsed -> ETA unknowable
        line = rep.status_line()
        assert "ETA --:--" in line
        assert "inf" not in line

    def test_status_line_keeps_numeric_eta_when_known(self):
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        clock.now += 2.0
        rep.job_done("a")
        assert "ETA 6.0s" in rep.status_line()
        assert "--:--" not in rep.status_line()

    def test_overcounted_completions_clamp_to_zero_eta(self):
        # Duplicate completion events (e.g. a retried job reported
        # twice) can push completed past total; the ETA clamps at 0
        # instead of going negative.
        clock = FakeClock()
        rep = ProgressReporter(2, clock=clock)
        rep.start()
        clock.now += 1.0
        for name in ("a", "b", "b-again"):
            rep.job_done(name)
        assert rep.eta_seconds == 0.0

    def test_zero_elapsed_work_rate_falls_through(self):
        # Work credited but elapsed is still 0: the work path can't
        # compute a rate, and the count path can't either -> None.
        clock = FakeClock()
        rep = ProgressReporter(3, clock=clock)
        rep.start()
        rep.add_work(2.0)
        rep.job_done("a", work=2.0)
        assert rep.eta_seconds is None


class TestWorkerTelemetry:
    def test_busy_idle_tracking(self):
        clock = FakeClock()
        rep = ProgressReporter(3, clock=clock)
        rep.worker_busy(0, "slow-job")
        rep.worker_busy(1, "quick-job")
        clock.now += 2.0
        assert set(rep.active_jobs()) == {0, 1}
        name, seconds = rep.active_jobs()[0]
        assert name == "slow-job" and seconds == 2.0
        rep.worker_idle(1)
        assert set(rep.active_jobs()) == {0}

    def test_longest_running_picks_oldest(self):
        clock = FakeClock()
        rep = ProgressReporter(3, clock=clock)
        rep.worker_busy(0, "old")
        clock.now += 3.0
        rep.worker_busy(1, "new")
        clock.now += 1.0
        assert rep.longest_running() == ("old", 4.0)
        rep.worker_idle(0)
        assert rep.longest_running() == ("new", 1.0)
        rep.worker_idle(1)
        assert rep.longest_running() is None

    def test_status_line_shows_busy_and_longest(self):
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        rep.worker_busy(0, "straggler")
        rep.worker_busy(1, "b")
        clock.now += 2.5
        rep.job_done("b", worker_id=1)
        rep.worker_idle(1)
        line = rep.status_line()
        assert "busy 1" in line
        assert "longest straggler 2.5s" in line
        assert "w0:0*" in line            # busy marker, no completions
        assert "w1:1" in line and "w1:1*" not in line

    def test_worker_death_drops_busy_marker_but_keeps_history(self):
        # A crashed worker goes idle (the scheduler calls worker_idle
        # when it reaps the corpse); its column must survive in the
        # status line so the operator can see a worker died with zero
        # (or few) completions, and the busy marker must clear so the
        # dead worker isn't reported as running anything.
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        rep.worker_busy(0, "victim-job")
        rep.worker_busy(1, "healthy-job")
        clock.now += 1.0
        rep.worker_idle(0)                # worker 0 dies mid-job
        line = rep.status_line()
        assert "w0:0" in line and "w0:0*" not in line
        assert "w1:0*" in line
        assert "busy 1" in line
        assert "longest healthy-job" in line

    def test_retry_on_replacement_worker_reassigns_busy_state(self):
        # The job a dead worker held is requeued and picked up by a
        # replacement with a new worker id: the old id shows idle, the
        # new id shows busy on the same job, and the eventual completion
        # is credited to the worker that actually finished it.
        clock = FakeClock()
        rep = ProgressReporter(2, clock=clock)
        rep.start()
        rep.worker_busy(0, "flaky")
        clock.now += 1.0
        rep.worker_idle(0)                # crash
        rep.worker_busy(2, "flaky")       # respawned worker retries it
        clock.now += 2.0
        active = rep.active_jobs()
        assert set(active) == {2}
        assert active[2] == ("flaky", 2.0)
        rep.job_done("flaky", worker_id=2)
        rep.worker_idle(2)
        line = rep.status_line()
        assert "w0:0" in line             # the corpse stays visible
        assert "w2:1" in line             # credit lands on the retrier
        assert "busy" not in line
        assert rep.worker_counts() == {2: 1}

    def test_idle_for_unseen_worker_is_harmless(self):
        # Reaping can race dispatch: an idle event for a worker that
        # never reported busy must not raise and must still register
        # the worker as seen.
        rep = ProgressReporter(1, clock=FakeClock())
        rep.worker_idle(7)
        assert "w7:0" in rep.status_line()
        assert rep.active_jobs() == {}


class TestSimOpsProgress:
    """The native kernel's live retirement counter in the status line."""

    def test_sim_ops_shown_when_kernel_reports_progress(self):
        rep = ProgressReporter(4, clock=FakeClock(),
                               ops_retired=lambda: 2_500_000)
        assert rep.sim_ops_retired() == 2_500_000
        assert "2.5M sim-ops" in rep.status_line()

    def test_sim_ops_hidden_at_zero_and_without_kernel(self):
        # zero progress (or a pure-python run) keeps the historical line
        rep = ProgressReporter(4, clock=FakeClock(),
                               ops_retired=lambda: 0)
        assert "sim-ops" not in rep.status_line()
        rep = ProgressReporter(4, clock=FakeClock())
        rep._ops_retired = None           # simulate kernel-less install
        assert rep.sim_ops_retired() == 0
        assert "sim-ops" not in rep.status_line()

    def test_sim_ops_source_failure_is_harmless(self):
        def boom():
            raise OSError("kernel gone")
        rep = ProgressReporter(4, clock=FakeClock(), ops_retired=boom)
        assert rep.sim_ops_retired() == 0
        assert "sim-ops" not in rep.status_line()

    def test_default_source_is_live_native_counter(self):
        import pytest

        native = pytest.importorskip("repro.uarch.native")
        if not native.available():
            pytest.skip("native kernel unavailable")
        rep = ProgressReporter(1, clock=FakeClock())
        assert rep._ops_retired is native.ops_retired
        assert rep.sim_ops_retired() == native.ops_retired()
