"""Tests for throughput/ETA/per-worker progress accounting."""

from repro.exec.progress import ProgressReporter


class FakeClock:
    """Deterministic monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestReporter:
    def test_callback_shape_matches_harness(self):
        seen = []
        rep = ProgressReporter(3, callback=lambda i, n, name:
                               seen.append((i, n, name)))
        rep.job_done("a")
        rep.job_done("b")
        rep.job_done("c")
        assert seen == [(0, 3, "a"), (1, 3, "b"), (2, 3, "c")]

    def test_throughput_and_eta(self):
        clock = FakeClock()
        rep = ProgressReporter(10, clock=clock)
        rep.start()
        clock.now += 2.0
        rep.job_done("a")
        rep.job_done("b")
        assert rep.throughput == 1.0          # 2 jobs in 2s
        assert rep.eta_seconds == 8.0          # 8 left at 1 job/s

    def test_no_eta_before_data(self):
        rep = ProgressReporter(5, clock=FakeClock())
        assert rep.throughput == 0.0
        assert rep.eta_seconds is None

    def test_per_worker_and_cache_accounting(self):
        rep = ProgressReporter(4, clock=FakeClock())
        rep.job_done("a", worker_id=0)
        rep.job_done("b", worker_id=1)
        rep.job_done("c", worker_id=1)
        rep.job_done("d", worker_id=-1, cached=True)
        assert rep.worker_counts() == {0: 1, 1: 2, -1: 1}
        assert rep.cache_hits == 1
        assert rep.completed == 4

    def test_status_line(self):
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        clock.now += 1.0
        rep.job_done("a", worker_id=0)
        rep.job_done("b", worker_id=1, cached=True)
        line = rep.status_line()
        assert "2/4 jobs" in line
        assert "1 cached" in line
        assert "jobs/s" in line
        assert "ETA" in line
        assert "w0:1" in line


class TestWorkBasedEta:
    def test_eta_weights_remaining_work_not_count(self):
        # 4 jobs, one of which carries 9/12 of the estimated work.
        # Count-based ETA after the three short jobs would predict 1s
        # left; work-based ETA knows the straggler dominates.
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        for est in (1.0, 1.0, 1.0, 9.0):
            rep.add_work(est)
        clock.now += 3.0
        rep.job_done("a", work=1.0)
        rep.job_done("b", work=1.0)
        rep.job_done("c", work=1.0)
        # 3s of work done in 3s elapsed -> rate 1 work-sec/s, 9 left.
        assert rep.eta_seconds == 9.0

    def test_falls_back_to_count_eta_without_work(self):
        clock = FakeClock()
        rep = ProgressReporter(10, clock=clock)
        rep.start()
        clock.now += 2.0
        rep.job_done("a")
        rep.job_done("b")
        assert rep.eta_seconds == 8.0

    def test_unknown_estimates_fall_back_to_count_eta(self):
        # Work registered but none completed yet: no work rate exists,
        # so the count-based estimate keeps the ETA live.
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        rep.add_work(5.0)
        clock.now += 2.0
        rep.job_done("a", work=0.0)
        rep.job_done("b", work=0.0)
        assert rep.eta_seconds == 2.0

    def test_eta_never_negative(self):
        clock = FakeClock()
        rep = ProgressReporter(2, clock=clock)
        rep.start()
        rep.add_work(1.0)
        clock.now += 5.0
        rep.job_done("a", work=1.0)       # work exhausted, 1 job left
        assert rep.eta_seconds == 0.0


class TestWorkerTelemetry:
    def test_busy_idle_tracking(self):
        clock = FakeClock()
        rep = ProgressReporter(3, clock=clock)
        rep.worker_busy(0, "slow-job")
        rep.worker_busy(1, "quick-job")
        clock.now += 2.0
        assert set(rep.active_jobs()) == {0, 1}
        name, seconds = rep.active_jobs()[0]
        assert name == "slow-job" and seconds == 2.0
        rep.worker_idle(1)
        assert set(rep.active_jobs()) == {0}

    def test_longest_running_picks_oldest(self):
        clock = FakeClock()
        rep = ProgressReporter(3, clock=clock)
        rep.worker_busy(0, "old")
        clock.now += 3.0
        rep.worker_busy(1, "new")
        clock.now += 1.0
        assert rep.longest_running() == ("old", 4.0)
        rep.worker_idle(0)
        assert rep.longest_running() == ("new", 1.0)
        rep.worker_idle(1)
        assert rep.longest_running() is None

    def test_status_line_shows_busy_and_longest(self):
        clock = FakeClock()
        rep = ProgressReporter(4, clock=clock)
        rep.start()
        rep.worker_busy(0, "straggler")
        rep.worker_busy(1, "b")
        clock.now += 2.5
        rep.job_done("b", worker_id=1)
        rep.worker_idle(1)
        line = rep.status_line()
        assert "busy 1" in line
        assert "longest straggler 2.5s" in line
        assert "w0:0*" in line            # busy marker, no completions
        assert "w1:1" in line and "w1:1*" not in line
