"""Pool edge cases under injected faults: retry exhaustion, timeout of
the last in-flight job, duplicate completions, graceful stop, backoff."""

import multiprocessing
import os
import time

import pytest

import repro.exec.pool as pool_mod
from repro.exec.chaos import ChaosConfig, ChaosExecutor, injected
from repro.exec.jobs import JobSpec
from repro.exec.pool import (JobFailure, JobTimeout, WorkerCrash,
                             _backoff_seconds, run_jobs)
from repro.harness.runner import Fidelity
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=6_000, measure_instructions=10_000)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


def make_jobs(n=3, **overrides):
    fields = dict(machine=get_machine("i9"), fidelity=FID, seed=0)
    fields.update(overrides)
    return [JobSpec(spec=s, **fields)
            for s in dotnet_category_specs()[:n]]


class TestRetryExhaustion:
    @needs_fork
    def test_persistent_crash_consumes_full_budget(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_execute",
                            lambda job: os._exit(13))
        outcomes = run_jobs(make_jobs(1), n_jobs=2, start_method="fork",
                            max_retries=2)
        (failure,) = outcomes
        assert isinstance(failure, JobFailure)
        assert isinstance(failure.error, WorkerCrash)
        assert failure.attempts == 3        # initial try + 2 retries
        assert failure.retried

    @needs_fork
    def test_zero_budget_fails_first_crash_unretried(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_execute",
                            lambda job: os._exit(13))
        outcomes = run_jobs(make_jobs(1), n_jobs=2, start_method="fork",
                            max_retries=0)
        (failure,) = outcomes
        assert isinstance(failure.error, WorkerCrash)
        assert failure.attempts == 1
        assert not failure.retried

    def test_serial_oserror_exhaustion_counts_attempts(self, monkeypatch):
        calls = []

        def flaky(job):
            calls.append(job.name)
            raise OSError("disk weather")

        monkeypatch.setattr(pool_mod, "_execute", flaky)
        outcomes = run_jobs(make_jobs(1), n_jobs=1, catch=(Exception,),
                            max_retries=2)
        (failure,) = outcomes
        assert isinstance(failure.error, OSError)
        assert failure.attempts == 3 == len(calls)
        assert failure.retried


class TestTimeoutOfLastJob:
    @needs_fork
    def test_hang_on_final_job_does_not_stall_pool(self, monkeypatch):
        """The straggler is the *last* in-flight job — nothing else is
        pending, so only the deadline check can unblock the pool."""
        jobs = make_jobs(3)
        last = jobs[-1].name

        def selective(job):
            if job.name == last:
                time.sleep(60)
            return pool_mod.execute_job(job)

        monkeypatch.setattr(pool_mod, "_execute", selective)
        start = time.monotonic()
        outcomes = run_jobs(jobs, n_jobs=2, start_method="fork",
                            chunk_size=1, timeout=0.5, max_retries=0)
        assert time.monotonic() - start < 20
        assert not isinstance(outcomes[0], JobFailure)
        assert not isinstance(outcomes[1], JobFailure)
        assert isinstance(outcomes[2], JobFailure)
        assert isinstance(outcomes[2].error, JobTimeout)


class TestDuplicateCompletion:
    @needs_fork
    def test_double_reported_result_counted_once(self, monkeypatch):
        """A worker that reports the same job twice (the retry-race
        shape) must not corrupt ordering or double-complete."""

        def doubling_worker(worker_id, task_queue, result_queue):
            while True:
                chunk = task_queue.get()
                if chunk is None:
                    return
                for index, job in chunk:
                    try:
                        ok, payload = True, pool_mod._execute(job)
                    except BaseException as exc:  # noqa: BLE001
                        ok, payload = False, exc
                    result_queue.put((index, worker_id, ok, payload))
                    result_queue.put((index, worker_id, ok, payload))

        reference = run_jobs(make_jobs(3), n_jobs=1)
        monkeypatch.setattr(pool_mod, "_worker_main", doubling_worker)
        seen = []
        outcomes = run_jobs(
            make_jobs(3), n_jobs=2, start_method="fork", chunk_size=1,
            progress=lambda i, n, name: seen.append(name))
        assert [r.counters for r in outcomes] \
            == [r.counters for r in reference]
        assert len(seen) == 3               # one completion per job


class TestTransientRetryRecovers:
    def test_serial_flaky_once_rides_out_on_retry(self, tmp_path):
        jobs = make_jobs(3)
        reference = run_jobs(jobs, n_jobs=1)
        config = ChaosConfig(flaky_rate=1.0, once=True,
                             state_dir=str(tmp_path / "chaos"))
        with injected(config):
            outcomes = run_jobs(jobs, n_jobs=1, catch=(Exception,),
                                max_retries=1)
        assert [r.counters for r in outcomes] \
            == [r.counters for r in reference]
        # every job left its once-marker: each fault fired exactly once
        assert len(list((tmp_path / "chaos").iterdir())) == 3

    @needs_fork
    def test_parallel_flaky_once_rides_out_on_retry(self, tmp_path):
        jobs = make_jobs(3)
        reference = run_jobs(jobs, n_jobs=1)
        config = ChaosConfig(flaky_rate=1.0, once=True,
                             state_dir=str(tmp_path / "chaos"))
        with injected(config):
            outcomes = run_jobs(jobs, n_jobs=2, start_method="fork",
                                chunk_size=1, catch=(Exception,),
                                max_retries=1)
        assert [r.counters for r in outcomes] \
            == [r.counters for r in reference]

    def test_doomed_names_predicts_firings(self, tmp_path):
        config = ChaosConfig(seed=7, flaky_rate=0.5, once=False)
        executor = ChaosExecutor(config)
        names = [s.name for s in dotnet_category_specs()]
        doomed_set = set(executor.doomed_names("flaky", names))
        assert 0 < len(doomed_set) < len(names)
        jobs = make_jobs(len(names))
        with injected(executor):
            outcomes = run_jobs(jobs, n_jobs=1, catch=(Exception,),
                                max_retries=0)
        failed = {o.job.name for o in outcomes
                  if isinstance(o, JobFailure)}
        assert failed == doomed_set


class TestGracefulStop:
    def test_stop_before_start_serial(self):
        outcomes = run_jobs(make_jobs(3), n_jobs=1,
                            should_stop=lambda: True)
        assert outcomes == [None, None, None]

    @needs_fork
    def test_stop_before_start_parallel(self):
        outcomes = run_jobs(make_jobs(3), n_jobs=2, start_method="fork",
                            should_stop=lambda: True)
        assert outcomes == [None, None, None]

    def test_stop_midway_leaves_tail_unfinished(self):
        fired = {"n": 0}

        def stop_after_first() -> bool:
            return fired["n"] >= 1

        outcomes = run_jobs(
            make_jobs(3), n_jobs=1, should_stop=stop_after_first,
            progress=lambda i, n, name: fired.__setitem__("n", i + 1))
        assert outcomes[0] is not None
        assert outcomes[1] is None and outcomes[2] is None


class TestBackoff:
    def test_backoff_schedule_is_exponential(self):
        assert _backoff_seconds(0.0, 1) == 0.0
        assert _backoff_seconds(0.1, 1) == pytest.approx(0.1)
        assert _backoff_seconds(0.1, 2) == pytest.approx(0.2)
        assert _backoff_seconds(0.1, 3) == pytest.approx(0.4)

    def test_serial_retry_waits_out_backoff(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_execute",
                            lambda job: (_ for _ in ()).throw(
                                OSError("weather")))
        start = time.monotonic()
        outcomes = run_jobs(make_jobs(1), n_jobs=1, catch=(Exception,),
                            max_retries=2, retry_backoff=0.05)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.15              # 0.05 + 0.10 between attempts
        assert isinstance(outcomes[0], JobFailure)
