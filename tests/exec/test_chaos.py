"""Chaos harness tests, ending in the acceptance scenario: a campaign
that loses workers, has store entries corrupted, and is SIGINT'd midway
must — after resume — produce a SuiteResult bit-identical to an
uninterrupted serial run, with every injected failure journaled."""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.exec.campaign import (CampaignInterrupted, CampaignManifest,
                                 graceful_shutdown)
from repro.exec.chaos import (ChaosConfig, ChaosExecutor, ChaosStore,
                              doomed, injected, roll)
from repro.exec.jobs import JobSpec, code_fingerprint
from repro.exec.store import ResultStore
from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=6_000, measure_instructions=10_000)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


class TestDeterministicRolls:
    def test_roll_uniform_and_stable(self):
        draws = [roll(0, "crash", f"job-{i}") for i in range(64)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [roll(0, "crash", f"job-{i}") for i in range(64)]
        assert len(set(draws)) == 64        # no collisions on 64 targets

    def test_seed_and_kind_decorrelate(self):
        assert roll(0, "crash", "x") != roll(1, "crash", "x")
        assert roll(0, "crash", "x") != roll(0, "flaky", "x")

    def test_doomed_respects_rate(self):
        cfg = ChaosConfig(seed=3)
        names = [f"job-{i}" for i in range(200)]
        hit = sum(doomed(cfg, "crash", 0.2, n) for n in names)
        assert 20 <= hit <= 60              # ~0.2 of 200, loose bounds


class TestOnceMarkers:
    def test_fault_fires_exactly_once(self, tmp_path):
        cfg = ChaosConfig(seed=0, flaky_rate=1.0, once=True,
                          state_dir=str(tmp_path))
        executor = ChaosExecutor(cfg, inner=lambda job: "ok")

        class Job:
            name = "victim"

        with pytest.raises(OSError):
            executor(Job())
        assert executor(Job()) == "ok"      # marker consumed
        assert executor(Job()) == "ok"

    def test_once_without_state_dir_rejected(self):
        cfg = ChaosConfig(seed=0, flaky_rate=1.0, once=True)
        executor = ChaosExecutor(cfg, inner=lambda job: "ok")

        class Job:
            name = "victim"

        with pytest.raises(ValueError):
            executor(Job())

    def test_persistent_fault_fires_every_time(self):
        cfg = ChaosConfig(seed=0, flaky_rate=1.0, once=False)
        executor = ChaosExecutor(cfg, inner=lambda job: "ok")

        class Job:
            name = "victim"

        for _ in range(3):
            with pytest.raises(OSError):
                executor(Job())


class TestChaosStore:
    def test_corrupted_write_is_detected_as_miss(self, tmp_path):
        cfg = ChaosConfig(seed=0, corrupt_rate=1.0, once=False)
        store = ChaosStore(tmp_path, cfg)
        store.put("a" * 64, {"payload": 1})
        clean = ResultStore(tmp_path)
        assert clean.get("a" * 64, "MISS") == "MISS"
        assert clean.stats().corrupt == 1   # quarantined, not deleted

    def test_truncated_write_is_detected_as_miss(self, tmp_path):
        cfg = ChaosConfig(seed=0, truncate_rate=1.0, once=False)
        store = ChaosStore(tmp_path, cfg)
        store.put("b" * 64, list(range(100)))
        clean = ResultStore(tmp_path)
        assert clean.get("b" * 64, "MISS") == "MISS"
        assert clean.stats().corrupt == 1

    def test_undoomed_writes_survive(self, tmp_path):
        cfg = ChaosConfig(seed=0, corrupt_rate=0.5, once=False)
        store = ChaosStore(tmp_path, cfg)
        keys = [f"{i:02x}" * 32 for i in range(16)]
        for k in keys:
            store.put(k, {"k": k})
        bad = set(store.doomed_keys("corrupt", keys))
        assert 0 < len(bad) < len(keys)
        clean = ResultStore(tmp_path)
        for k in keys:
            value = clean.get(k, "MISS")
            assert (value == "MISS") == (k in bad)


def _pick_chaos_seed(kind, names, keys, doomed_names_of):
    """Find a chaos seed where the configured rates actually doom a
    proper subset of jobs AND at least one store key of a surviving job
    (keys are fingerprint-dependent, so this must be computed, not
    hard-coded)."""
    for seed in range(500):
        cfg = ChaosConfig(seed=seed)
        bad_jobs = doomed_names_of(cfg)
        bad_keys = [k for k, n in zip(keys, names)
                    if doomed(cfg, "corrupt", 0.1, k)
                    and n not in bad_jobs]
        if 1 <= len(bad_jobs) <= len(names) - 2 and bad_keys:
            return seed, set(bad_jobs), set(bad_keys)
    pytest.fail(f"no usable chaos seed for kind={kind}")


class TestCampaignSurvivesChaos:
    """The acceptance scenario (ISSUE 3): ~20% of workers killed, ~10%
    of store writes corrupted, campaign SIGINT'd midway — resumed runs
    recover to a bit-identical SuiteResult and every injected failure
    is present in the manifest's failure records."""

    def _acceptance(self, tmp_path, kind, jobs):
        specs = dotnet_category_specs()[:8]
        machine = get_machine("i9")
        names = [s.name for s in specs]
        reference = characterize_suite(specs, machine, FID)

        fingerprint = code_fingerprint()
        keys = [JobSpec(spec=s, machine=machine,
                        fidelity=FID).cache_key(fingerprint)
                for s in specs]
        seed, doomed_jobs, doomed_keys = _pick_chaos_seed(
            kind, names, keys,
            lambda cfg: {n for n in names if doomed(cfg, kind, 0.2, n)})
        cfg = ChaosConfig(
            seed=seed, once=False,
            crash_rate=0.2 if kind == "crash" else 0.0,
            flaky_rate=0.2 if kind == "flaky" else 0.0,
            corrupt_rate=0.1)

        store_root = tmp_path / "cache"
        manifest_path = tmp_path / "campaign.jsonl"
        completions = {"n": 0}

        def progress(i, total, name):
            completions["n"] += 1
            if completions["n"] == 2:
                os.kill(os.getpid(), signal.SIGINT)

        # Phase A: chaos on, SIGINT after two completions.
        with injected(cfg), graceful_shutdown() as stop:
            with pytest.raises(CampaignInterrupted) as excinfo:
                characterize_suite(
                    specs, machine, FID, jobs=jobs,
                    store=ChaosStore(store_root, cfg),
                    on_error="skip", progress=progress,
                    manifest=CampaignManifest(manifest_path),
                    should_stop=stop.is_set)
        assert excinfo.value.remaining > 0

        # Phase B: resume with chaos still raging — doomed jobs exhaust
        # their retry budget and land in the journal as failures.
        with injected(cfg):
            partial = characterize_suite(
                specs, machine, FID, jobs=jobs,
                store=ChaosStore(store_root, cfg), on_error="skip",
                manifest=CampaignManifest(manifest_path))
        assert {f.name for f in partial.failures} == doomed_jobs
        assert all(f.classification == "transient"
                   for f in partial.failures)

        # Phase C: the weather clears — resume re-attempts the transient
        # failures, detects the corrupted store entries as misses, and
        # recovers the full suite.
        resumed = characterize_suite(
            specs, machine, FID, jobs=jobs,
            store=ResultStore(store_root), on_error="skip",
            manifest=CampaignManifest(manifest_path))

        assert resumed.ok
        assert resumed.names == reference.names
        assert np.array_equal(resumed.metric_matrix().values,
                              reference.metric_matrix().values)
        assert [r.counters for r in resumed.results] \
            == [r.counters for r in reference.results]

        # Every injected job failure is in the manifest's journal, and
        # nothing is still failed after recovery.
        final = CampaignManifest(manifest_path)
        assert doomed_jobs <= {f.name for f in final.all_failures()}
        assert final.failure_records() == {}
        assert final.done_keys() == set(keys)
        # At least one corrupted entry was caught and quarantined.
        assert ResultStore(store_root).stats().corrupt >= 1
        assert doomed_keys     # the seed search guaranteed a candidate

    def test_serial_campaign_recovers(self, tmp_path):
        # Serial variant injects transient OSErrors (an in-process
        # os._exit would take pytest down with it).
        self._acceptance(tmp_path, kind="flaky", jobs=1)

    @needs_fork
    def test_parallel_campaign_recovers_from_worker_kills(self, tmp_path):
        self._acceptance(tmp_path, kind="crash", jobs=4)
