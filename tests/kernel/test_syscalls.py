"""Tests for the syscall / network-stack model."""

import random

from repro.kernel.syscalls import SyscallKind, SyscallModel
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE,
                         REGION_KERNEL_CODE_BASE)


def run_emit(model, kind, payload=0, ubuf=0x7F000000):
    return list(model.emit(kind, random.Random(1), payload_bytes=payload,
                           user_buffer=ubuf))


def count_instructions(ops):
    n = 0
    for op in ops:
        if op[0] == OP_BLOCK:
            n += op[2]
        elif op[0] in (OP_LOAD, OP_STORE, OP_BRANCH):
            n += 1
    return n


class TestHandlers:
    def test_all_kinds_emit_kernel_ops(self):
        m = SyscallModel()
        for kind in SyscallKind.ALL:
            ops = run_emit(m, kind)
            blocks = [op for op in ops if op[0] == OP_BLOCK]
            assert blocks, kind
            assert all(op[4] for op in blocks), f"{kind}: non-kernel block"

    def test_handler_code_is_in_kernel_region(self):
        m = SyscallModel()
        ops = run_emit(m, SyscallKind.RECV)
        for op in ops:
            if op[0] == OP_BLOCK:
                assert op[1] >= REGION_KERNEL_CODE_BASE

    def test_instruction_estimate_in_ballpark(self):
        m = SyscallModel()
        for kind in (SyscallKind.RECV, SyscallKind.FUTEX,
                     SyscallKind.EPOLL_WAIT):
            actual = count_instructions(run_emit(m, kind))
            estimate = m.instructions_estimate(kind)
            assert 0.4 * estimate < actual < 2.5 * estimate

    def test_distinct_kinds_have_distinct_code(self):
        m = SyscallModel()
        recv = m.handler_region(SyscallKind.RECV)
        send = m.handler_region(SyscallKind.SEND)
        assert recv.base != send.base

    def test_regions_cached_across_instances(self):
        a = SyscallModel()
        b = SyscallModel()
        assert a.handler_region(SyscallKind.RECV) \
            is b.handler_region(SyscallKind.RECV)


class TestCopyLoop:
    def test_payload_drives_copy_volume(self):
        m = SyscallModel()
        small = count_instructions(run_emit(m, SyscallKind.RECV, 512))
        large = count_instructions(run_emit(m, SyscallKind.RECV, 64 * 1024))
        assert large > small * 2

    def test_recv_copies_to_user_buffer(self):
        m = SyscallModel()
        ubuf = 0x7F00_0000
        ops = run_emit(m, SyscallKind.RECV, payload=1024, ubuf=ubuf)
        user_stores = [op for op in ops if op[0] == OP_STORE
                       and ubuf <= op[1] < ubuf + 4096]
        assert len(user_stores) == 1024 // 64

    def test_send_copies_from_user_buffer(self):
        m = SyscallModel()
        ubuf = 0x7F00_0000
        ops = run_emit(m, SyscallKind.SEND, payload=1024, ubuf=ubuf)
        user_loads = [op for op in ops if op[0] == OP_LOAD
                      and ubuf <= op[1] < ubuf + 4096]
        assert len(user_loads) == 1024 // 64

    def test_buffer_pool_wraps(self):
        m = SyscallModel(buffer_pool_size=2, buffer_bytes=4096)
        b1 = m._acquire_buffer()
        b2 = m._acquire_buffer()
        b3 = m._acquire_buffer()
        assert b1 != b2
        assert b3 == b1

    def test_non_payload_kind_ignores_payload(self):
        m = SyscallModel()
        with_payload = count_instructions(
            run_emit(m, SyscallKind.FUTEX, 64 * 1024))
        without = count_instructions(run_emit(m, SyscallKind.FUTEX, 0))
        assert abs(with_payload - without) < without * 0.5


class TestKernelDataSpan:
    def test_span_covers_buffers(self):
        m = SyscallModel(buffer_pool_size=4, buffer_bytes=8192)
        start, length = m.kernel_data_span()
        last_buf = m._buf_base + 3 * 8192
        assert start <= last_buf < start + length
