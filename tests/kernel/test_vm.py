"""Tests for virtual memory / demand paging."""

from hypothesis import given, settings, strategies as st

from repro.kernel.vm import VirtualMemory


class TestDemandPaging:
    def test_first_touch_faults(self):
        vm = VirtualMemory()
        cost = vm.touch(0x1000)
        assert cost > 0
        assert vm.stats.faults == 1

    def test_second_touch_free(self):
        vm = VirtualMemory()
        vm.touch(0x1000)
        assert vm.touch(0x1234) == 0         # same page
        assert vm.stats.faults == 1

    def test_distinct_pages_fault_separately(self):
        vm = VirtualMemory()
        vm.touch(0x0)
        vm.touch(0x1000)
        vm.touch(0x2000)
        assert vm.stats.faults == 3

    def test_major_fault_cadence(self):
        vm = VirtualMemory(major_fault_fraction=0.5)
        vm.touch(0x0000)
        vm.touch(0x1000)
        vm.touch(0x2000)
        vm.touch(0x3000)
        assert vm.stats.major_faults == 2
        assert vm.stats.minor_faults == 2

    def test_major_faults_cost_more(self):
        assert VirtualMemory.MAJOR_FAULT_CYCLES \
            > VirtualMemory.MINOR_FAULT_CYCLES


class TestPremapUnmap:
    def test_premap_prevents_faults(self):
        vm = VirtualMemory()
        vm.premap_range(0x10000, 8192)
        assert vm.touch(0x10000) == 0
        assert vm.touch(0x11000) == 0
        assert vm.stats.faults == 0

    def test_premap_covers_partial_pages(self):
        vm = VirtualMemory()
        vm.premap_range(0x10FFF, 2)          # straddles two pages
        assert vm.is_mapped(0x10000)
        assert vm.is_mapped(0x11000)

    def test_unmap_causes_refault(self):
        vm = VirtualMemory()
        vm.touch(0x10000)
        vm.unmap_range(0x10000, 4096)
        assert vm.stats.unmapped_pages == 1
        assert vm.touch(0x10000) > 0

    def test_resident_bytes(self):
        vm = VirtualMemory()
        vm.premap_range(0, 3 * 4096)
        assert vm.resident_bytes == 3 * 4096

    def test_reset_stats_keeps_mappings(self):
        vm = VirtualMemory()
        vm.touch(0x5000)
        vm.reset_stats()
        assert vm.stats.faults == 0
        assert vm.touch(0x5000) == 0


@given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_fault_count_equals_distinct_pages(addrs):
    vm = VirtualMemory(major_fault_fraction=0.0)
    for a in addrs:
        vm.touch(a)
    assert vm.stats.faults == len({a >> 12 for a in addrs})
    assert vm.stats.mapped_pages == vm.stats.faults
