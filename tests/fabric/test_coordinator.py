"""Coordinator: dedup, LPT ranks, settlement, campaign equivalence."""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.exec.campaign import PERMANENT, CampaignManifest
from repro.exec.costmodel import cost_key
from repro.exec.jobs import execute_job
from repro.fabric.coordinator import Coordinator, FabricTimeout
from repro.fabric.worker import WorkerAgent
from repro.harness.suite import characterize_suite
from tests.fabric.conftest import FID, make_jobs


def _coord(tmp_path, **kw):
    kw.setdefault("lease_ttl", 5.0)
    kw.setdefault("poll_interval", 0.01)
    return Coordinator(tmp_path / "fab", **kw)


def _worker_thread(tmp_path, **kw):
    kw.setdefault("heartbeat_interval", 0.1)
    kw.setdefault("poll_interval", 0.01)
    run_kw = {"idle_exit": kw.pop("idle_exit", 2.0)}
    agent = WorkerAgent(tmp_path / "fab", **kw)
    thread = threading.Thread(target=agent.run, kwargs=run_kw,
                              daemon=True)
    thread.start()
    return agent, thread


class TestSubmit:
    def test_store_hits_settle_without_units(self, tmp_path, specs,
                                             machine, metrics):
        coord = _coord(tmp_path)
        jobs = make_jobs(specs, machine)
        for job in jobs:
            coord.store.put(job.cache_key(), execute_job(job))
        sub = coord.submit(jobs)
        assert sub.done
        assert sub.pending == {}
        assert coord.ledger.queue_entries() == []
        assert sub.dedup_hits == len(jobs)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["fabric.store_dedup_hits"] == len(jobs)

    def test_misses_enqueue_in_lpt_order(self, tmp_path, specs, machine):
        coord = _coord(tmp_path)
        jobs = make_jobs(specs, machine)
        # Prime the shared cost model: job 1 is the known straggler.
        observed = {cost_key(jobs[0]): 1.0, cost_key(jobs[1]): 30.0,
                    cost_key(jobs[2]): 5.0}
        for job, seconds in zip(jobs, observed.values()):
            coord.costs.observe(job, seconds)
        coord.costs.save()
        sub = coord.submit(jobs)
        ranked = [uid for uid, _ in coord.ledger.queue_entries()]
        by_rank = {p.unit.rank: p.index for p in sub.pending.values()}
        assert [by_rank[r] for r in sorted(by_rank)] == [1, 2, 0]
        assert len(ranked) == 3

    def test_unknown_cost_jobs_lead(self, tmp_path, specs, machine):
        coord = _coord(tmp_path)
        jobs = make_jobs(specs, machine)
        coord.costs.observe(jobs[0], 100.0)
        coord.costs.save()
        sub = coord.submit(jobs)
        by_rank = {p.unit.rank: p.index for p in sub.pending.values()}
        # unknown-cost jobs (1, 2) outrank even a 100s known job
        assert [by_rank[r] for r in sorted(by_rank)] == [1, 2, 0]


class TestCampaign:
    def test_fleet_matches_serial_bit_identical(self, tmp_path, specs,
                                                machine):
        coord = _coord(tmp_path)
        _worker_thread(tmp_path)
        suite = coord.run_campaign(specs, machine, FID, timeout=120.0)
        ref = characterize_suite(specs, machine, FID)
        assert suite.names == ref.names
        assert np.array_equal(suite.metric_matrix().values,
                              ref.metric_matrix().values)

    def test_second_campaign_is_pure_dedup(self, tmp_path, specs,
                                           machine, metrics):
        coord = _coord(tmp_path)
        agent, thread = _worker_thread(tmp_path)
        first = coord.run_campaign(specs, machine, FID, timeout=120.0)
        thread.join(timeout=30.0)
        ran_before = agent.units_run
        # no workers alive: a dedup'd campaign must still complete
        second = coord.run_campaign(specs, machine, FID, timeout=5.0)
        assert np.array_equal(first.metric_matrix().values,
                              second.metric_matrix().values)
        assert agent.units_run == ran_before
        snap = obs.metrics_snapshot()
        assert snap["counters"]["fabric.store_dedup_hits"] == len(specs)

    def test_failed_workload_degrades(self, tmp_path, specs, machine,
                                      monkeypatch):
        import repro.exec.pool as pool_mod
        bad = specs[1].name
        real = execute_job

        def flaky(job):
            if job.name == bad:
                raise ValueError("synthetic model error")
            return real(job)

        monkeypatch.setattr(pool_mod, "_execute", flaky)
        coord = _coord(tmp_path)
        _worker_thread(tmp_path)
        suite = coord.run_campaign(specs, machine, FID, timeout=120.0)
        assert [r.spec.name for r in suite.results] \
            == [s.name for s in specs if s.name != bad]
        (failure,) = suite.failures
        assert failure.name == bad
        assert failure.classification == PERMANENT
        assert failure.error_type == "ValueError"

    def test_campaign_journals_units(self, tmp_path, specs, machine):
        coord = _coord(tmp_path)
        _worker_thread(tmp_path)
        path = tmp_path / "fab" / "campaign.jsonl"
        coord.run_campaign(specs, machine, FID, timeout=120.0,
                           manifest=path)
        manifest = CampaignManifest(path)
        outcomes = manifest.outcomes()
        assert len(outcomes) == len(specs)
        assert all(rec.get("unit") for rec in outcomes.values())
        assert manifest.done_keys() == set(outcomes)

    def test_timeout_raises_with_pending_units(self, tmp_path, specs,
                                               machine):
        coord = _coord(tmp_path)
        with pytest.raises(FabricTimeout) as excinfo:
            coord.run_campaign(specs[:1], machine, FID, timeout=0.2)
        assert len(excinfo.value.pending) == 1


class TestReclaimRequeue:
    def test_dead_claim_is_reissued_and_served(self, tmp_path, specs,
                                               machine, metrics):
        coord = _coord(tmp_path, lease_ttl=0.2)
        jobs = make_jobs(specs[:1], machine)
        sub = coord.submit(jobs)
        (unit_id,) = sub.pending
        # a worker claims the unit and immediately dies
        assert coord.ledger.claim(unit_id, "wDead")
        _worker_thread(tmp_path, idle_exit=4.0)
        manifest = CampaignManifest(tmp_path / "fab" / "m.jsonl")
        manifest.begin("fp", total=1)
        coord.wait(sub, manifest, timeout=60.0)
        assert sub.outcomes[0][0] == "done"
        snap = obs.metrics_snapshot()
        assert snap["counters"]["fabric.units_reclaimed"] >= 1
        # record_event() journals to disk only — reload to see events
        reloaded = CampaignManifest(tmp_path / "fab" / "m.jsonl")
        reissues = [r for r in reloaded.records
                    if r.get("type") == "reclaimed"]
        assert len(reissues) >= 1
        assert reissues[0]["unit"] == unit_id

    def test_requeue_budget_exhaustion_fails_transient(
            self, tmp_path, specs, machine):
        coord = _coord(tmp_path, lease_ttl=0.05, max_requeues=1)
        sub = coord.submit(make_jobs(specs[:1], machine))

        def claim_forever():
            # adversarial "worker": claims every reissue, never runs it
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not sub.done:
                for uid, _ in coord.ledger.queue_entries():
                    coord.ledger.claim(uid, "wBlackhole")
                time.sleep(0.01)

        thread = threading.Thread(target=claim_forever, daemon=True)
        thread.start()
        coord.wait(sub, timeout=30.0)
        thread.join(timeout=5.0)
        status, failure = sub.outcomes[0]
        assert status == "failed"
        assert failure.error_type == "LeaseExpired"
        assert failure.classification == "transient"
