"""Worker agent: claiming discipline, outcome records, lifecycle."""

import threading
import time

from repro.exec.costmodel import CostModel
from repro.fabric.coordinator import Coordinator
from repro.fabric.worker import WorkerAgent, default_worker_id
from tests.fabric.conftest import make_jobs


def _pair(tmp_path, **worker_kw):
    coord = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                        poll_interval=0.01)
    worker_kw.setdefault("worker_id", "wT")
    worker_kw.setdefault("heartbeat_interval", 0.1)
    worker_kw.setdefault("poll_interval", 0.01)
    agent = WorkerAgent(tmp_path / "fab", **worker_kw)
    return coord, agent


class TestClaiming:
    def test_claims_in_dispatch_order(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs, machine))
        rank0 = min(sub.pending.values(), key=lambda p: p.unit.rank)
        unit = agent.claim_next()
        assert unit.unit_id == rank0.unit.unit_id

    def test_skips_leased_units(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs[:2], machine))
        by_rank = sorted(sub.pending.values(), key=lambda p: p.unit.rank)
        coord.ledger.claim(by_rank[0].unit.unit_id, "wOther")
        unit = agent.claim_next()
        assert unit.unit_id == by_rank[1].unit.unit_id

    def test_skips_and_tidies_done_units(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        coord.ledger.complete(unit_id, {"unit": unit_id,
                                        "status": "done"})
        assert agent.claim_next() is None
        assert coord.ledger.queue_entries() == []   # tidied on scan

    def test_empty_queue_returns_none(self, tmp_path):
        _, agent = _pair(tmp_path)
        assert agent.claim_next() is None


class TestServeOne:
    def test_outcome_record_and_cleanup(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        assert agent.serve_one()
        record = coord.ledger.done_records()[unit_id]
        assert record["status"] == "done"
        assert record["worker"] == "wT"
        assert record["key"] == sub.keys[0]
        assert record["seconds"] > 0.0
        assert not record["cached"]
        assert coord.ledger.active_leases() == {}
        assert coord.ledger.queue_entries() == []
        assert coord.store.get(sub.keys[0]) is not None

    def test_cached_flag_on_warm_store(self, tmp_path, specs, machine):
        from repro.exec.jobs import execute_job
        coord, agent = _pair(tmp_path)
        job = make_jobs(specs[:1], machine)[0]
        coord.store.put(job.cache_key(), execute_job(job))
        # force a unit despite the warm store (submit would dedup it)
        unit = coord._next_unit(job, job.cache_key(), 0, None)
        coord.ledger.enqueue(unit)
        assert agent.serve_one()
        assert coord.ledger.done_records()[unit.unit_id]["cached"]

    def test_heartbeats_flow_during_run(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path, heartbeat_interval=0.02)
        coord.submit(make_jobs(specs[:1], machine))
        seen = []

        def watch():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                leases = coord.ledger.active_leases()
                if leases:
                    seen.append(next(iter(leases.values()))["seq"])
                if coord.ledger.done_records():
                    return
                time.sleep(0.01)

        watcher = threading.Thread(target=watch)
        watcher.start()
        agent.serve_one()
        watcher.join()
        assert seen and max(seen) >= 1   # lease was renewed mid-run

    def test_cost_observation_reported_back(self, tmp_path, specs,
                                            machine):
        coord, agent = _pair(tmp_path)
        coord.submit(make_jobs(specs[:1], machine))
        agent.serve_one()
        agent.costs.save()
        fresh = CostModel.for_store(coord.store)
        assert len(fresh) == 1


class TestRunLoop:
    def test_stop_marker_halts_loop(self, tmp_path):
        coord, agent = _pair(tmp_path)
        coord.ledger.request_stop()
        assert agent.run() == 0

    def test_idle_exit_and_worker_cleanup(self, tmp_path):
        _, agent = _pair(tmp_path)
        served = agent.run(idle_exit=0.1)
        assert served == 0
        assert agent.ledger.workers() == {}   # heartbeat removed

    def test_max_units(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        coord.submit(make_jobs(specs, machine))
        assert agent.run(max_units=1) == 1
        assert len(coord.ledger.done_records()) == 1

    def test_default_worker_id_shape(self):
        assert "-" in default_worker_id()


class TestHeartbeaterResilience:
    def test_heartbeater_survives_transient_write_failure(
            self, tmp_path, metrics):
        from repro import obs
        from repro.fabric.lease import LeaseLedger
        from repro.fabric.worker import _Heartbeater

        ledger = LeaseLedger(tmp_path / "fab")
        ledger.ensure_layout()
        assert ledger.claim("u1", "wT")
        real = ledger.write_worker_heartbeat
        calls = {"n": 0}

        def flaky(worker, inflight, seq):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("transient ledger outage")
            real(worker, inflight, seq)

        ledger.write_worker_heartbeat = flaky
        beat = _Heartbeater(ledger, "wT", "u1", interval=0.01,
                            seq_start=0)
        beat.start()
        deadline = time.monotonic() + 10.0
        try:
            # the thread must outlive the faults and renew the lease
            while time.monotonic() < deadline:
                lease = ledger.active_leases().get("u1", {})
                if calls["n"] >= 3 and lease.get("seq", 0) >= 1:
                    break
                time.sleep(0.01)
        finally:
            seq = beat.stop()
        assert calls["n"] >= 3, "heartbeater thread died on OSError"
        assert ledger.active_leases()["u1"]["seq"] >= 1
        assert not beat.lost.is_set()
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.heartbeat_errors"] >= 2


class TestDegradedMode:
    def test_store_outage_spools_then_reconciles(self, tmp_path, specs,
                                                 machine, metrics):
        import errno

        from repro import obs

        coord, agent = _pair(tmp_path,
                             spool_dir=tmp_path / "spool")
        sub = coord.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        key = sub.keys[0]

        def refuse(k, value):
            raise OSError(errno.EIO, "store mount gone")

        agent.store.put = refuse        # outage begins
        assert agent.serve_one()
        # the unit ran; the result is safe locally, and no done record
        # lies to the coordinator about a result the store lacks
        assert agent.spool.pending() == 2       # result + record
        assert coord.store.get(key) is None
        assert coord.ledger.done_records() == {}
        assert key in agent._degraded.spooled_keys
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.spooled_results"] == 1

        del agent.store.put             # outage ends
        assert agent._reconcile_spool() == 2
        assert agent.spool.pending() == 0
        assert agent._degraded.spooled_keys == set()
        assert coord.store.get(key) is not None
        rec = coord.ledger.done_records()[unit_id]
        assert rec["status"] == "done" and rec["spooled"] is True

        # the coordinator settles the replayed record normally
        deadline = time.monotonic() + 10.0
        while not sub.done and time.monotonic() < deadline:
            coord.poll(sub)
            time.sleep(0.01)
        assert sub.outcomes[0][0] == "done"
        assert coord.ledger.queue_entries() == []

    def test_breaker_opens_and_flush_is_the_probe(self, tmp_path):
        import errno

        from repro.exec.resilience import CircuitBreaker
        from repro.fabric.worker import ResultSpool, _DegradedStore

        class _FlakyStore:
            def __init__(self):
                self.down = True
                self.writes = []

            def get(self, key, default=None):
                return default

            def put(self, key, value):
                if self.down:
                    raise OSError(errno.EIO, "down")
                self.writes.append(key)

        store = _FlakyStore()
        breaker = CircuitBreaker(threshold=3, cooldown=0.05)
        spool = ResultSpool(tmp_path / "spool")
        degraded = _DegradedStore(store, breaker, spool)
        for i in range(4):
            degraded.put(f"{i:064d}", {"v": i})     # never raises
        assert breaker.state != "closed"
        assert spool.pending() == 4
        assert degraded.spooled_keys == {f"{i:064d}" for i in range(4)}

    def test_flush_replays_results_before_records(self, tmp_path, specs,
                                                  machine):
        from repro.fabric.worker import ResultSpool

        coord, agent = _pair(tmp_path)
        spool = ResultSpool(tmp_path / "spool")
        key = "b" * 64
        spool.put_result(key, {"v": 1})
        spool.put_record("u9", {"unit": "u9", "status": "done",
                                "key": key})
        flushed = spool.flush(agent.store, agent.ledger)
        assert flushed == 2
        assert agent.store.get(key) == {"v": 1}
        assert agent.ledger.done_records()["u9"]["key"] == key
        # replaying an already-flushed spool is harmless
        assert spool.flush(agent.store, agent.ledger) == 0
