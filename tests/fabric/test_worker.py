"""Worker agent: claiming discipline, outcome records, lifecycle."""

import threading
import time

from repro.exec.costmodel import CostModel
from repro.fabric.coordinator import Coordinator
from repro.fabric.worker import WorkerAgent, default_worker_id
from tests.fabric.conftest import make_jobs


def _pair(tmp_path, **worker_kw):
    coord = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                        poll_interval=0.01)
    worker_kw.setdefault("worker_id", "wT")
    worker_kw.setdefault("heartbeat_interval", 0.1)
    worker_kw.setdefault("poll_interval", 0.01)
    agent = WorkerAgent(tmp_path / "fab", **worker_kw)
    return coord, agent


class TestClaiming:
    def test_claims_in_dispatch_order(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs, machine))
        rank0 = min(sub.pending.values(), key=lambda p: p.unit.rank)
        unit = agent.claim_next()
        assert unit.unit_id == rank0.unit.unit_id

    def test_skips_leased_units(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs[:2], machine))
        by_rank = sorted(sub.pending.values(), key=lambda p: p.unit.rank)
        coord.ledger.claim(by_rank[0].unit.unit_id, "wOther")
        unit = agent.claim_next()
        assert unit.unit_id == by_rank[1].unit.unit_id

    def test_skips_and_tidies_done_units(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        coord.ledger.complete(unit_id, {"unit": unit_id,
                                        "status": "done"})
        assert agent.claim_next() is None
        assert coord.ledger.queue_entries() == []   # tidied on scan

    def test_empty_queue_returns_none(self, tmp_path):
        _, agent = _pair(tmp_path)
        assert agent.claim_next() is None


class TestServeOne:
    def test_outcome_record_and_cleanup(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        sub = coord.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        assert agent.serve_one()
        record = coord.ledger.done_records()[unit_id]
        assert record["status"] == "done"
        assert record["worker"] == "wT"
        assert record["key"] == sub.keys[0]
        assert record["seconds"] > 0.0
        assert not record["cached"]
        assert coord.ledger.active_leases() == {}
        assert coord.ledger.queue_entries() == []
        assert coord.store.get(sub.keys[0]) is not None

    def test_cached_flag_on_warm_store(self, tmp_path, specs, machine):
        from repro.exec.jobs import execute_job
        coord, agent = _pair(tmp_path)
        job = make_jobs(specs[:1], machine)[0]
        coord.store.put(job.cache_key(), execute_job(job))
        # force a unit despite the warm store (submit would dedup it)
        unit = coord._next_unit(job, job.cache_key(), 0, None)
        coord.ledger.enqueue(unit)
        assert agent.serve_one()
        assert coord.ledger.done_records()[unit.unit_id]["cached"]

    def test_heartbeats_flow_during_run(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path, heartbeat_interval=0.02)
        coord.submit(make_jobs(specs[:1], machine))
        seen = []

        def watch():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                leases = coord.ledger.active_leases()
                if leases:
                    seen.append(next(iter(leases.values()))["seq"])
                if coord.ledger.done_records():
                    return
                time.sleep(0.01)

        watcher = threading.Thread(target=watch)
        watcher.start()
        agent.serve_one()
        watcher.join()
        assert seen and max(seen) >= 1   # lease was renewed mid-run

    def test_cost_observation_reported_back(self, tmp_path, specs,
                                            machine):
        coord, agent = _pair(tmp_path)
        coord.submit(make_jobs(specs[:1], machine))
        agent.serve_one()
        agent.costs.save()
        fresh = CostModel.for_store(coord.store)
        assert len(fresh) == 1


class TestRunLoop:
    def test_stop_marker_halts_loop(self, tmp_path):
        coord, agent = _pair(tmp_path)
        coord.ledger.request_stop()
        assert agent.run() == 0

    def test_idle_exit_and_worker_cleanup(self, tmp_path):
        _, agent = _pair(tmp_path)
        served = agent.run(idle_exit=0.1)
        assert served == 0
        assert agent.ledger.workers() == {}   # heartbeat removed

    def test_max_units(self, tmp_path, specs, machine):
        coord, agent = _pair(tmp_path)
        coord.submit(make_jobs(specs, machine))
        assert agent.run(max_units=1) == 1
        assert len(coord.ledger.done_records()) == 1

    def test_default_worker_id_shape(self):
        assert "-" in default_worker_id()
