"""Cross-host span propagation, end to end through the HTTP boundary.

A client submits with an ``X-Repro-Span`` header; the service parents
its request span under the caller, the unit envelopes carry the
request's context to the worker, and the worker's ``pool.job`` spans
nest under ``fabric.unit``.  The merged Perfetto export must therefore
contain an unbroken parent chain from each executed job all the way to
the client's span id — that chain is what makes one distributed trace
out of a fleet.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.fabric.coordinator import Coordinator
from repro.fabric.service import CharacterizationService, ServerThread
from repro.fabric.worker import WorkerAgent
from repro.obs.exporter import chrome_to_spans, export_chrome_trace

BENCH = ["System.Runtime", "System.Text"]
BODY = {"benchmarks": BENCH, "instructions": 10_000, "warmup": 5_000}
CLIENT_SPAN = ("trace-client", "span-client")


def _post(url, body, headers):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json", **headers})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read()), resp.headers


@pytest.fixture
def traced_fabric(tmp_path):
    obs.configure(tmp_path / "obs", export_env=False)
    coordinator = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                              poll_interval=0.01)
    service = CharacterizationService(coordinator, pump_interval=0.01)
    server = ServerThread(service).start()
    agent = WorkerAgent(tmp_path / "fab", worker_id="wX",
                        heartbeat_interval=0.1, poll_interval=0.01)
    thread = threading.Thread(target=agent.run,
                              kwargs={"idle_exit": 2.0}, daemon=True)
    thread.start()
    try:
        yield tmp_path, server
    finally:
        thread.join(timeout=30.0)
        server.close()
        service.close()
        obs.shutdown(dump=False)


def test_pool_job_parents_under_client_span_in_merged_export(
        traced_fabric):
    tmp_path, server = traced_fabric
    status, reply, headers = _post(
        server.url + "/characterize", BODY,
        {"X-Repro-Span": ":".join(CLIENT_SPAN)})
    assert status == 202
    rid = reply["request"]

    deadline = time.monotonic() + 120.0
    view = {}
    while time.monotonic() < deadline:
        with urllib.request.urlopen(server.url + f"/requests/{rid}",
                                    timeout=30) as resp:
            view = json.loads(resp.read())
        if view["status"] == "done":
            break
        time.sleep(0.05)
    assert view["status"] == "done" and view["failures"] == []

    obs.flush()
    out = tmp_path / "trace.json"
    count = export_chrome_trace(tmp_path / "obs", out)
    assert count > 0
    spans = chrome_to_spans(json.loads(out.read_text()))
    by_id = {s["span_id"]: s for s in spans}

    request_spans = [s for s in spans if s["name"] == "fabric.request"]
    assert len(request_spans) == 1
    # the client's span id crossed the HTTP boundary intact
    assert request_spans[0]["parent_id"] == CLIENT_SPAN[1]

    jobs = [s for s in spans if s["name"] == "pool.job"
            and (s.get("attrs") or {}).get("workload") in BENCH]
    assert {(s["attrs"] or {})["workload"] for s in jobs} == set(BENCH)
    for job in jobs:
        # walk parent links: pool.job -> ... -> fabric.unit ->
        # fabric.request -> the client's own span id
        chain = [job["name"]]
        cursor = job
        for _ in range(10):
            parent_id = cursor.get("parent_id")
            if parent_id not in by_id:
                break
            cursor = by_id[parent_id]
            chain.append(cursor["name"])
        assert "fabric.unit" in chain, chain
        assert chain[-1] == "fabric.request", chain
        assert cursor["parent_id"] == CLIENT_SPAN[1]
        # the unit span names the worker that ran the job
        unit = by_id[job["parent_id"]] \
            if by_id[job["parent_id"]]["name"] == "fabric.unit" \
            else next(s for s in spans if s["name"] == "fabric.unit")
        assert (unit["attrs"] or {}).get("worker") == "wX"


def test_worker_series_ring_published_through_backend(tmp_path):
    """The worker's time-series ring lands under <root>/obs and is
    readable by the fleet views (the other half of the observatory's
    cross-host story)."""
    from repro.obs import timeseries

    coordinator = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                              poll_interval=0.01)
    service = CharacterizationService(coordinator, pump_interval=0.01)
    agent = WorkerAgent(tmp_path / "fab", worker_id="wY",
                        heartbeat_interval=0.05, poll_interval=0.01)
    agent.series_interval = 0.0      # publish on every loop iteration
    thread = threading.Thread(target=agent.run,
                              kwargs={"idle_exit": 0.5}, daemon=True)
    thread.start()
    try:
        service.submit(BODY)
        thread.join(timeout=60.0)
    finally:
        service.close()
    latest = timeseries.latest_by_source(tmp_path / "fab" / "obs")
    assert "wY" in latest
    sample = latest["wY"]
    assert sample["units_run"] == agent.units_run
    assert sample["spool_pending"] == 0
    # the merged fleet dashboard renders it
    from repro.obs.report import render_top
    text = render_top(tmp_path / "fab" / "obs")
    assert "wY" in text
