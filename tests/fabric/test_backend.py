"""StoreBackend: publish/read/lock contracts, fleet-shared stores."""

import numpy as np
import pytest

from repro.exec.backend import (LocalDirBackend, SharedDirBackend,
                                backend_for)
from repro.exec.store import ResultStore
from repro.exec.traces import TraceStore
from repro.harness.suite import characterize_suite
from tests.fabric.conftest import FID, make_jobs


class TestBackendFor:
    def test_bare_path_is_local(self, tmp_path):
        backend = backend_for(tmp_path / "s")
        assert isinstance(backend, LocalDirBackend)
        assert backend.root == tmp_path / "s"

    def test_prefixed_specs(self, tmp_path):
        assert isinstance(backend_for(f"local:{tmp_path}"),
                          LocalDirBackend)
        shared = backend_for(f"shared:{tmp_path}")
        assert isinstance(shared, SharedDirBackend)
        assert shared.root == tmp_path

    def test_prebuilt_backend_passes_through(self, tmp_path):
        backend = SharedDirBackend(tmp_path)
        assert backend_for(backend) is backend

    def test_describe_names_the_flavor(self, tmp_path):
        assert backend_for(f"shared:{tmp_path}").describe() \
            .startswith("shared:")
        assert backend_for(tmp_path).describe().startswith("local:")


@pytest.mark.parametrize("flavor", [LocalDirBackend, SharedDirBackend])
class TestPublishRead:
    def test_publish_is_atomic_rename(self, tmp_path, flavor):
        backend = flavor(tmp_path)
        tmp = tmp_path / ".x.tmp"
        tmp.write_bytes(b"payload")
        dst = backend.path("sub", "x.bin")
        dst.parent.mkdir(parents=True)
        backend.publish(tmp, dst)
        assert not tmp.exists()
        assert backend.read_bytes(dst) == b"payload"

    def test_publish_replaces_existing(self, tmp_path, flavor):
        backend = flavor(tmp_path)
        dst = tmp_path / "x.bin"
        for payload in (b"one", b"two"):
            tmp = tmp_path / ".x.tmp"
            tmp.write_bytes(payload)
            backend.publish(tmp, dst)
        assert backend.read_bytes(dst) == b"two"

    def test_lock_roundtrip(self, tmp_path, flavor):
        backend = flavor(tmp_path)
        with backend.lock(exclusive=True):
            pass
        with backend.lock():
            pass


class TestSharedStores:
    """ResultStore/TraceStore run unchanged over the shared backend."""

    def test_result_store_over_shared_backend(self, tmp_path, specs,
                                              machine):
        store = ResultStore(backend=f"shared:{tmp_path / 'store'}")
        suite = characterize_suite(specs, machine, FID, store=store)
        again = ResultStore(backend=f"shared:{tmp_path / 'store'}")
        cached = characterize_suite(specs, machine, FID, store=again)
        assert np.array_equal(suite.metric_matrix().values,
                              cached.metric_matrix().values)

    def test_two_store_objects_share_entries(self, tmp_path, specs,
                                             machine):
        writer = ResultStore(backend=f"shared:{tmp_path / 'store'}")
        reader = ResultStore(backend=f"shared:{tmp_path / 'store'}")
        job = make_jobs(specs[:1], machine)[0]
        key = job.cache_key()
        from repro.exec.jobs import execute_job
        writer.put(key, execute_job(job))
        assert reader.get(key) is not None

    def test_trace_store_over_shared_backend(self, tmp_path, specs):
        from repro.runtime.gc import GcConfig
        from repro.runtime.heap import HeapConfig
        from repro.workloads.program import build_program

        gc = GcConfig()
        heap = HeapConfig(max_heap_bytes=gc.max_heap_bytes,
                          gen0_budget_bytes=gc.gen0_budget())
        spec = specs[0]
        root = tmp_path / "traces"
        writer = TraceStore(backend=f"shared:{root}")
        key = writer.key_for(spec, seed=0, code_bloat=1.0,
                             gc_config=gc, heap_config=heap,
                             fingerprint="fp0")
        meta, generated = writer.ensure(
            key, 4_000, lambda: build_program(spec, seed=0))
        assert generated and meta["crc32"] is not None

        reader = TraceStore(backend=f"shared:{root}")
        again, regenerated = reader.ensure(
            key, 4_000, lambda: build_program(spec, seed=0))
        assert not regenerated
        assert again["crc32"] == meta["crc32"]

    def test_root_backend_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "a",
                        backend=LocalDirBackend(tmp_path / "b"))

    def test_store_requires_root_or_backend(self):
        with pytest.raises(TypeError):
            ResultStore()
