"""Shared fixtures for the fabric test suite."""

import pytest

from repro import obs
from repro.harness.runner import Fidelity
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=5_000, measure_instructions=10_000)


@pytest.fixture
def machine():
    return get_machine("i9")


@pytest.fixture
def specs():
    return dotnet_category_specs()[:3]


@pytest.fixture
def metrics():
    """In-memory-only observability for counter/gauge assertions."""
    obs.configure(None, export_env=False)
    yield
    obs.shutdown(dump=False)


def make_jobs(specs, machine, **overrides):
    from repro.exec.jobs import JobSpec
    fields = dict(machine=machine, fidelity=FID, seed=0)
    fields.update(overrides)
    return [JobSpec(spec=s, **fields) for s in specs]
