"""Coordinator HA: election, epoch fencing, adoption, failover."""

import json
import time

import pytest

from repro import obs
from repro.fabric.coordinator import Coordinator
from repro.fabric.ha import HACoordinator, observe_outcomes
from repro.fabric.lease import (Election, LeadershipLost, LeaseLedger,
                                default_coordinator_id)
from repro.fabric.worker import WorkerAgent
from tests.fabric.conftest import make_jobs


def _election(tmp_path):
    """A fresh Election with its own tracker (one per 'process')."""
    ledger = LeaseLedger(tmp_path / "fab")
    ledger.ensure_layout()
    return Election(ledger)


class TestElection:
    def test_empty_seat_claims_epoch_one(self, tmp_path, metrics):
        e = _election(tmp_path)
        assert e.try_takeover("c1", ttl=5.0) == 1
        assert e.current() == ("c1", 1)
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.leadership_acquired"] == 1

    def test_epoch_claim_has_exactly_one_winner(self, tmp_path):
        e = _election(tmp_path)
        assert e._claim("c1", 1)
        assert not e._claim("c2", 1)
        assert e.current() == ("c1", 1)

    def test_standby_waits_out_a_live_leader(self, tmp_path):
        e1, e2 = _election(tmp_path), _election(tmp_path)
        assert e1.try_takeover("c1", ttl=5.0) == 1
        assert e2.try_takeover("c2", ttl=5.0, now=100.0) is None
        # heartbeats keep resetting the standby's aging
        e1.heartbeat("c1", 1, seq=1)
        assert e2.try_takeover("c2", ttl=5.0, now=110.0) is None
        e1.heartbeat("c1", 1, seq=2)
        assert e2.try_takeover("c2", ttl=5.0, now=120.0) is None
        # silence past the ttl: takeover at the next epoch
        assert e2.try_takeover("c2", ttl=5.0, now=126.0) == 2
        assert e2.current() == ("c2", 2)

    def test_current_leader_reaffirms_its_own_epoch(self, tmp_path):
        e = _election(tmp_path)
        assert e.try_takeover("c1", ttl=5.0) == 1
        assert e.try_takeover("c1", ttl=5.0) == 1

    def test_resigned_leader_is_immediately_stale(self, tmp_path):
        e1, e2 = _election(tmp_path), _election(tmp_path)
        assert e1.try_takeover("c1", ttl=5.0) == 1
        e1.heartbeat("c1", 1, seq=1)
        e1.resign("c1")
        assert e2.leader_age(now=0.0) == float("inf")
        assert e2.try_takeover("c2", ttl=999.0) == 2

    def test_torn_claim_file_is_skipped(self, tmp_path):
        e = _election(tmp_path)
        assert e._claim("c1", 2)
        torn = e.epoch_path(3)
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_text("{", encoding="utf-8")    # died mid-write
        assert e.current() == ("c1", 2)

    def test_check_fences_a_deposed_epoch(self, tmp_path, metrics):
        e = _election(tmp_path)
        assert e._claim("c1", 1)
        e.check(1)                          # still the leader: fine
        assert e._claim("c2", 2)
        with pytest.raises(LeadershipLost):
            e.check(1)
        e.check(2)
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.fenced_writes_rejected"] == 1

    def test_coordinators_listing_carries_age_and_epoch(self, tmp_path):
        e1, e2 = _election(tmp_path), _election(tmp_path)
        e1.heartbeat("cA", 1, seq=1)
        e1.heartbeat("cB", 0, seq=4)
        board = e2.coordinators(now=50.0)
        assert set(board) == {"cA", "cB"}
        assert board["cA"]["epoch"] == 1
        assert board["cA"]["age_s"] == 0.0
        assert e2.coordinators(now=62.5)["cB"]["age_s"] == 12.5

    def test_default_coordinator_id_is_host_and_pid_scoped(self):
        assert default_coordinator_id().startswith("c-")


class TestFencing:
    def _leader(self, tmp_path, cid="cA"):
        coord = Coordinator(tmp_path / "fab", coordinator_id=cid,
                            lease_ttl=5.0, poll_interval=0.01)
        assert coord.election.try_takeover(cid, ttl=5.0) == 1
        coord.epoch = 1
        return coord

    def test_zombie_poll_is_rejected(self, tmp_path, specs, machine):
        coord = self._leader(tmp_path)
        sub = coord.submit(make_jobs(specs[:2], machine))
        assert coord.election._claim("cB", 2)   # successor appears
        with pytest.raises(LeadershipLost):
            coord.poll(sub)

    def test_zombie_enqueue_leaves_the_queue_unchanged(
            self, tmp_path, specs, machine):
        coord = self._leader(tmp_path)
        coord.submit(make_jobs(specs[:1], machine))
        before = [p.name for _, p in coord.ledger.queue_entries()]
        assert coord.election._claim("cB", 2)
        with pytest.raises(LeadershipLost):
            coord.submit(make_jobs(specs[1:2], machine))
        after = [p.name for _, p in coord.ledger.queue_entries()]
        assert after == before

    def test_unfenced_coordinator_ignores_the_election(
            self, tmp_path, specs, machine):
        # pre-HA single-coordinator mode: epoch None disables fencing
        coord = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                            poll_interval=0.01)
        sub = coord.submit(make_jobs(specs[:1], machine))
        assert coord.election._claim("cX", 5)
        coord.poll(sub)                     # does not raise


class TestAdoption:
    def test_settled_marker_closes_a_submission(self, tmp_path, specs,
                                                machine):
        coord = Coordinator(tmp_path / "fab", poll_interval=0.01)
        sub = coord.submit(make_jobs(specs[:2], machine))
        assert sub.sid in coord.open_submissions()
        assert not coord.is_settled(sub.sid)
        coord.mark_settled(sub.sid)
        assert coord.is_settled(sub.sid)
        assert sub.sid not in coord.open_submissions()

    def test_adopt_reconstructs_and_finishes_a_campaign(
            self, tmp_path, specs, machine):
        coordA = Coordinator(tmp_path / "fab", coordinator_id="cA",
                             lease_ttl=5.0, poll_interval=0.01)
        jobs = make_jobs(specs, machine)
        sub = coordA.submit(jobs)
        agent = WorkerAgent(tmp_path / "fab", worker_id="wT",
                            heartbeat_interval=0.1, poll_interval=0.01)
        assert agent.serve_one()            # one unit finishes
        # coordA dies here; a standby reconstructs from disk alone
        coordB = Coordinator(tmp_path / "fab", coordinator_id="cB",
                             lease_ttl=5.0, poll_interval=0.01)
        adopted = coordB.adopt(sub.sid)
        assert adopted.keys == sub.keys
        done = [i for i, (s, _) in adopted.outcomes.items()
                if s == "done"]
        assert len(done) == 1
        pending_idx = {p.index for p in adopted.pending.values()}
        assert pending_idx == set(range(len(jobs))) - set(done)
        deadline = time.monotonic() + 60.0
        while not adopted.done:
            assert time.monotonic() < deadline
            agent.serve_one()
            coordB.poll(adopted)
        suite = coordB.collect(jobs, adopted.keys, adopted.outcomes,
                               machine)
        assert [r.spec.name for r in suite.results] \
            == [s.name for s in specs]

    def test_adopt_drops_a_done_record_with_no_result(
            self, tmp_path, specs, machine, metrics):
        coordA = Coordinator(tmp_path / "fab", coordinator_id="cA",
                             poll_interval=0.01)
        jobs = make_jobs(specs[:1], machine)
        sub = coordA.submit(jobs)
        (unit_id,) = sub.pending
        # a torn result write that still got its done record out
        coordA.ledger.complete(unit_id, {
            "unit": unit_id, "status": "done", "key": sub.keys[0],
            "name": jobs[0].name})
        coordB = Coordinator(tmp_path / "fab", coordinator_id="cB",
                             poll_interval=0.01)
        adopted = coordB.adopt(sub.sid)
        assert not coordB.ledger.done_path(unit_id).exists()
        assert adopted.outcomes == {}
        assert len(adopted.pending) == 1    # re-runs instead of lying
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.done_without_result"] >= 1

    def test_adopt_reenqueues_units_lost_to_a_dying_leader(
            self, tmp_path, specs, machine):
        coordA = Coordinator(tmp_path / "fab", coordinator_id="cA",
                             poll_interval=0.01)
        jobs = make_jobs(specs, machine)
        sub = coordA.submit(jobs)
        for _, path in coordA.ledger.queue_entries():
            path.unlink()                   # the torn-submit aftermath
        coordB = Coordinator(tmp_path / "fab", coordinator_id="cB",
                             poll_interval=0.01)
        adopted = coordB.adopt(sub.sid)
        assert len(adopted.pending) == len(jobs)
        assert len(coordB.ledger.queue_entries()) == len(jobs)

    def test_adopt_matches_a_leased_unit_without_a_queue_entry(
            self, tmp_path, specs, machine):
        coordA = Coordinator(tmp_path / "fab", coordinator_id="cA",
                             poll_interval=0.01)
        sub = coordA.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        assert coordA.ledger.claim(unit_id, "wBusy")
        coordA.ledger.remove_queued(unit_id)
        coordB = Coordinator(tmp_path / "fab", coordinator_id="cB",
                             poll_interval=0.01)
        adopted = coordB.adopt(sub.sid)
        assert list(adopted.pending) == [unit_id]
        assert adopted.pending[unit_id].index == 0

    def test_adopt_continues_the_unit_id_sequence(self, tmp_path, specs,
                                                  machine):
        coordA = Coordinator(tmp_path / "fab", coordinator_id="cA",
                             poll_interval=0.01)
        sub = coordA.submit(make_jobs(specs, machine))
        coordB = Coordinator(tmp_path / "fab", coordinator_id="cB",
                             poll_interval=0.01)
        coordB.adopt(sub.sid)
        assert coordB._seq >= coordA._seq


class TestHAFailover:
    def test_standby_takes_over_and_finishes(self, tmp_path, specs,
                                             machine, metrics):
        root = tmp_path / "fab"
        leader = HACoordinator(root, coordinator_id="cL",
                               coordinator_ttl=0.4, lease_ttl=2.0,
                               poll_interval=0.01)
        assert leader.step()
        assert leader.is_leader and leader.coord.epoch == 1
        jobs = make_jobs(specs, machine)
        sub = leader.coord.submit(jobs)
        assert leader.step()        # adopts its own open submission
        # the leader "dies" (never steps again); a standby watches
        standby = HACoordinator(root, coordinator_id="cS",
                                coordinator_ttl=0.4, lease_ttl=2.0,
                                poll_interval=0.01)
        agent = WorkerAgent(root, worker_id="wT",
                            heartbeat_interval=0.1, poll_interval=0.01)
        deadline = time.monotonic() + 120.0
        while not standby.coord.is_settled(sub.sid):
            assert time.monotonic() < deadline
            agent.serve_one()
            standby.step()
            time.sleep(0.02)
        assert standby.is_leader and standby.coord.epoch == 2
        # the zombie's next tick demotes it instead of corrupting
        assert leader.step() is False
        assert not leader.is_leader
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.leadership_lost"] >= 1
        outcomes = observe_outcomes(standby.coord, sub.keys)
        suite = standby.coord.collect(jobs, sub.keys, outcomes, machine)
        assert [r.spec.name for r in suite.results] \
            == [s.name for s in specs]
        assert suite.failures == []

    def test_run_campaign_as_the_only_coordinator(self, tmp_path, specs,
                                                  machine):
        import threading

        from tests.fabric.conftest import FID

        root = tmp_path / "fab"
        ha = HACoordinator(root, coordinator_id="cSolo",
                           coordinator_ttl=0.5, lease_ttl=2.0,
                           poll_interval=0.01)
        agent = WorkerAgent(root, worker_id="wT",
                            heartbeat_interval=0.1, poll_interval=0.01)
        worker = threading.Thread(
            target=lambda: agent.run(max_units=len(specs),
                                     idle_exit=30.0),
            daemon=True)
        worker.start()
        suite = ha.run_campaign(specs, machine, FID, timeout=120.0)
        worker.join(timeout=30.0)
        assert ha.is_leader
        assert [r.spec.name for r in suite.results] \
            == [s.name for s in specs]

    def test_idle_run_loop_resigns_on_exit(self, tmp_path):
        root = tmp_path / "fab"
        ha = HACoordinator(root, coordinator_id="cR",
                           coordinator_ttl=0.2, poll_interval=0.01)
        ha.run(idle_exit=0.1)
        assert ha.is_leader             # won the empty seat while up
        # resignation makes the next takeover immediate, no ttl wait
        successor = Election(LeaseLedger(root))
        assert successor.try_takeover("cQ", ttl=999.0) == 2

    def test_healthz_surfaces_leader_and_coordinators(self, tmp_path,
                                                      specs, machine):
        from repro.fabric.service import CharacterizationService

        root = tmp_path / "fab"
        ha = HACoordinator(root, coordinator_id="cH",
                           coordinator_ttl=0.4, poll_interval=0.01)
        assert ha.step()
        service = CharacterizationService(
            Coordinator(root, poll_interval=0.01))
        health = service.health_json()
        assert health["leader"] == {"coordinator": "cH", "epoch": 1}
        assert "cH" in health["coordinators"]
        assert health["coordinators"]["cH"]["epoch"] == 1
        assert health["store_reachable"] is True
        assert json.dumps(health)       # JSON-serializable end to end
