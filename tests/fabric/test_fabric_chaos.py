"""Acceptance: the fabric survives dying hosts — worker *and* leader.

PR-3's chaos harness killed worker *processes* under one pool; the
fabric extends the failure domain to whole hosts and, with HA, to the
coordinator itself.  Real subprocesses (``python -m repro.fabric``)
share one fabric directory; workers and the leader are SIGKILLed
mid-campaign and/or storm through a fault-injecting store backend
(``REPRO_CHAOS_BACKEND``), and every campaign must still deliver a
SuiteResult bit-identical to a plain in-process serial run.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exec.jobs import JobSpec, code_fingerprint
from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.fabric.coordinator import Coordinator, submission_id
from repro.fabric.ha import observe_outcomes

# Heavy enough that units take visible wall-clock time, so the victim
# is reliably mid-unit when the kill lands.
CHAOS_FID = Fidelity(warmup_instructions=20_000,
                     measure_instructions=150_000)

REPO = Path(__file__).resolve().parents[2]


def _spawn_worker(root, worker_id, log, chaos=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if chaos:
        env["REPRO_CHAOS_BACKEND"] = chaos
    return subprocess.Popen(
        [sys.executable, "-m", "repro.fabric", "worker", str(root),
         "--worker-id", worker_id, "--heartbeat", "0.2",
         "--idle-exit", "20"],
        cwd=REPO, env=env, stdout=log, stderr=subprocess.STDOUT)


@pytest.mark.slow
def test_worker_host_killed_mid_campaign_is_bit_identical(
        tmp_path, specs, machine):
    root = tmp_path / "fab"
    coord = Coordinator(root, lease_ttl=1.0, poll_interval=0.02)

    done = {}

    def campaign():
        done["suite"] = coord.run_campaign(specs, machine, CHAOS_FID,
                                           timeout=600.0)

    runner = threading.Thread(target=campaign, daemon=True)
    runner.start()

    # wait for the queue to fill before the fleet arrives
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline \
            and not coord.ledger.queue_entries():
        time.sleep(0.01)
    assert coord.ledger.queue_entries(), "campaign never enqueued"

    victim_id, survivor_id = "wVictim", "wSurvivor"
    with open(tmp_path / "workers.log", "wb") as log:
        victim = _spawn_worker(root, victim_id, log)
        survivor = _spawn_worker(root, survivor_id, log)
        try:
            # SIGKILL the victim the moment it holds a lease
            deadline = time.monotonic() + 60.0
            held = None
            while time.monotonic() < deadline and held is None:
                for unit_id, lease in coord.ledger \
                        .active_leases().items():
                    if lease["worker"] == victim_id:
                        held = unit_id
                        break
                if victim.poll() is not None:
                    break
                time.sleep(0.005)
            assert held is not None, "victim never claimed a lease"
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30.0)

            runner.join(timeout=600.0)
            assert not runner.is_alive(), "campaign did not finish"
        finally:
            for proc in (victim, survivor):
                if proc.poll() is None:
                    proc.terminate()
            survivor.wait(timeout=60.0)

    suite = done["suite"]
    ref = characterize_suite(specs, machine, CHAOS_FID)
    assert suite.names == ref.names
    assert suite.failures == []
    assert np.array_equal(suite.metric_matrix().values,
                          ref.metric_matrix().values)

    # the survivor really did carry the fleet after the kill
    records = coord.ledger.done_records()
    assert records, "no done records journalled"
    workers = {rec["worker"] for rec in records.values()}
    assert survivor_id in workers


# ---------------------------------------------------------------------------
# Coordinator HA + I/O chaos matrix
# ---------------------------------------------------------------------------

#: chaos matrix: who dies, and what weather the workers fly through
HA_SCENARIOS = {
    "coordinator-kill": {"kill_leader": True, "chaos": None},
    "store-outage": {"kill_leader": False,
                     "chaos": "seed=7,eio=0.15,stale=0.1"},
    "combined": {"kill_leader": True,
                 "chaos": "seed=7,eio=0.05,stale=0.05,torn=0.05"},
}

#: the serial reference is fault-free and scenario-independent
_REF = {}


def _serial_reference(specs, machine):
    if "suite" not in _REF:
        _REF["suite"] = characterize_suite(specs, machine, CHAOS_FID)
    return _REF["suite"]


def _spawn_coordinator(root, role, coordinator_id, bench, log):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if role == "run":
        cmd = [sys.executable, "-m", "repro.fabric", "run", str(root),
               *bench, "--machine", "i9",
               "--instructions", str(CHAOS_FID.measure_instructions),
               "--warmup", str(CHAOS_FID.warmup_instructions),
               "--ha", "--coordinator-id", coordinator_id,
               "--coordinator-ttl", "1.0", "--lease-ttl", "1.0",
               "--timeout", "600"]
    else:
        cmd = [sys.executable, "-m", "repro.fabric", "standby",
               str(root), "--coordinator-id", coordinator_id,
               "--coordinator-ttl", "1.0", "--lease-ttl", "1.0",
               "--idle-exit", "20"]
    return subprocess.Popen(cmd, cwd=REPO, env=env, stdout=log,
                            stderr=subprocess.STDOUT)


@pytest.mark.slow
@pytest.mark.parametrize("scenario", sorted(HA_SCENARIOS))
def test_campaign_survives_coordinator_and_store_chaos(
        scenario, tmp_path, specs, machine):
    cfg = HA_SCENARIOS[scenario]
    root = tmp_path / "fab"
    observer = Coordinator(root, lease_ttl=1.0, poll_interval=0.02)
    election = observer.election

    # replicate the CLI's job construction so the observer can name
    # the submission and assemble the answer without ever leading
    fingerprint = code_fingerprint()
    jobs = [JobSpec(spec=s, machine=machine, fidelity=CHAOS_FID,
                    seed=0, run_kwargs={}) for s in specs]
    keys = [job.cache_key(fingerprint) for job in jobs]
    sid = submission_id(keys)
    bench = [s.name for s in specs]

    with open(tmp_path / "fleet.log", "wb") as log:
        leader = _spawn_coordinator(root, "run", "cLead", bench, log)
        procs = [leader]
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline \
                    and election.current() != ("cLead", 1):
                assert leader.poll() is None, "leader exited early"
                time.sleep(0.02)
            assert election.current() == ("cLead", 1), \
                "leader never won epoch 1"

            standby = _spawn_coordinator(root, "standby", "cStandby",
                                         bench, log)
            procs.append(standby)
            workers = [_spawn_worker(root, f"wChaos{i}", log,
                                     chaos=cfg["chaos"])
                       for i in range(2)]
            procs += workers

            if cfg["kill_leader"]:
                # the campaign must be genuinely mid-flight: at least
                # one worker holds a lease when the kill lands
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline \
                        and not observer.ledger.active_leases():
                    time.sleep(0.01)
                assert observer.ledger.active_leases(), \
                    "no worker ever held a lease"
                leader.send_signal(signal.SIGKILL)
                leader.wait(timeout=30.0)

                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    cur = election.current()
                    if cur is not None and cur[1] >= 2:
                        break
                    time.sleep(0.05)
                assert election.current() == ("cStandby", 2), \
                    "standby never took over with a fenced epoch"

            deadline = time.monotonic() + 600.0
            while time.monotonic() < deadline \
                    and not observer.is_settled(sid):
                time.sleep(0.1)
            assert observer.is_settled(sid), "campaign never settled"

            if not cfg["kill_leader"]:
                # the undisturbed leader finishes and exits cleanly
                assert leader.wait(timeout=120.0) == 0
                assert election.current() == ("cLead", 1)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=60.0)
                except subprocess.TimeoutExpired:
                    proc.kill()

    # assemble the answer read-only, exactly as a deposed submitter
    # would, and hold it to the fault-free serial run bit for bit
    outcomes = observe_outcomes(observer, keys)
    assert sorted(outcomes) == list(range(len(jobs)))
    assert all(s == "done" for s, _ in outcomes.values()), \
        [s for s, _ in outcomes.values()]
    suite = observer.collect(jobs, keys, outcomes, machine)
    ref = _serial_reference(specs, machine)
    assert suite.names == ref.names
    assert suite.failures == []
    assert np.array_equal(suite.metric_matrix().values,
                          ref.metric_matrix().values)
