"""Acceptance: kill a worker *host* mid-campaign, results unchanged.

PR-3's chaos harness killed worker *processes* under one pool; the
fabric extends the failure domain to whole hosts.  Here two worker
agents run as real subprocesses (``python -m repro.fabric worker``)
against one fabric directory, one is SIGKILLed while it holds a
lease, and the campaign must still deliver a SuiteResult bit-identical
to a plain in-process serial run.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.fabric.coordinator import Coordinator

# Heavy enough that units take visible wall-clock time, so the victim
# is reliably mid-unit when the kill lands.
CHAOS_FID = Fidelity(warmup_instructions=20_000,
                     measure_instructions=150_000)

REPO = Path(__file__).resolve().parents[2]


def _spawn_worker(root, worker_id, log):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.fabric", "worker", str(root),
         "--worker-id", worker_id, "--heartbeat", "0.2",
         "--idle-exit", "20"],
        cwd=REPO, env=env, stdout=log, stderr=subprocess.STDOUT)


@pytest.mark.slow
def test_worker_host_killed_mid_campaign_is_bit_identical(
        tmp_path, specs, machine):
    root = tmp_path / "fab"
    coord = Coordinator(root, lease_ttl=1.0, poll_interval=0.02)

    done = {}

    def campaign():
        done["suite"] = coord.run_campaign(specs, machine, CHAOS_FID,
                                           timeout=600.0)

    runner = threading.Thread(target=campaign, daemon=True)
    runner.start()

    # wait for the queue to fill before the fleet arrives
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline \
            and not coord.ledger.queue_entries():
        time.sleep(0.01)
    assert coord.ledger.queue_entries(), "campaign never enqueued"

    victim_id, survivor_id = "wVictim", "wSurvivor"
    with open(tmp_path / "workers.log", "wb") as log:
        victim = _spawn_worker(root, victim_id, log)
        survivor = _spawn_worker(root, survivor_id, log)
        try:
            # SIGKILL the victim the moment it holds a lease
            deadline = time.monotonic() + 60.0
            held = None
            while time.monotonic() < deadline and held is None:
                for unit_id, lease in coord.ledger \
                        .active_leases().items():
                    if lease["worker"] == victim_id:
                        held = unit_id
                        break
                if victim.poll() is not None:
                    break
                time.sleep(0.005)
            assert held is not None, "victim never claimed a lease"
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30.0)

            runner.join(timeout=600.0)
            assert not runner.is_alive(), "campaign did not finish"
        finally:
            for proc in (victim, survivor):
                if proc.poll() is None:
                    proc.terminate()
            survivor.wait(timeout=60.0)

    suite = done["suite"]
    ref = characterize_suite(specs, machine, CHAOS_FID)
    assert suite.names == ref.names
    assert suite.failures == []
    assert np.array_equal(suite.metric_matrix().values,
                          ref.metric_matrix().values)

    # the survivor really did carry the fleet after the kill
    records = coord.ledger.done_records()
    assert records, "no done records journalled"
    workers = {rec["worker"] for rec in records.values()}
    assert survivor_id in workers
