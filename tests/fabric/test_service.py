"""HTTP service: dedup semantics, streaming, metrics exposition."""

import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.fabric.coordinator import Coordinator
from repro.fabric.service import (BadRequest, CharacterizationService,
                                  ServerThread, parse_request)
from repro.fabric.units import WorkUnit
from repro.fabric.worker import WorkerAgent
from repro.obs.spans import SpanContext

BENCH = ["System.Runtime", "System.Text"]
BODY = {"benchmarks": BENCH, "instructions": 10_000, "warmup": 5_000}


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(url, body, headers=None):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture
def fabric(tmp_path):
    coordinator = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                              poll_interval=0.01)
    service = CharacterizationService(coordinator, pump_interval=0.01)
    server = ServerThread(service).start()
    yield coordinator, service, server
    server.close()
    service.close()


def _spawn_worker(tmp_path, **kw):
    kw.setdefault("worker_id", "wS")
    kw.setdefault("heartbeat_interval", 0.1)
    kw.setdefault("poll_interval", 0.01)
    agent = WorkerAgent(tmp_path / "fab", **kw)
    thread = threading.Thread(target=agent.run,
                              kwargs={"idle_exit": 2.0}, daemon=True)
    thread.start()
    return agent, thread


class TestParseRequest:
    def test_unknown_benchmark(self):
        with pytest.raises(BadRequest, match="unknown benchmark"):
            parse_request({"benchmarks": ["NoSuchBench"]})

    def test_unknown_suite(self):
        with pytest.raises(BadRequest, match="unknown suite"):
            parse_request({"suite": "fortran"})

    def test_unknown_machine(self):
        with pytest.raises(BadRequest, match="unknown machine"):
            parse_request({"benchmarks": BENCH, "machine": "cray"})

    def test_needs_selection(self):
        with pytest.raises(BadRequest, match="benchmarks.*or.*suite"):
            parse_request({})

    def test_fidelity_from_body(self):
        specs, machine, fidelity, seed = parse_request(
            {"benchmarks": BENCH, "instructions": 1234, "warmup": 99,
             "seed": 7})
        assert [s.name for s in specs] == BENCH
        assert fidelity.measure_instructions == 1234
        assert fidelity.warmup_instructions == 99
        assert seed == 7


class TestEndToEnd:
    def test_miss_then_pure_cache_hit(self, tmp_path, fabric):
        coordinator, service, server = fabric
        agent, thread = _spawn_worker(tmp_path)

        status, first = _post(server.url + "/characterize", BODY)
        assert status == 202
        assert first["enqueued"] == 2
        assert not first["served_from_store"]
        rid = first["request"]

        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            _, view = _get(server.url + f"/requests/{rid}")
            if view["status"] == "done":
                break
            time.sleep(0.05)
        assert view["status"] == "done"
        assert [r["name"] for r in view["results"]] == BENCH
        assert all("counters" in r and r["seconds"] > 0
                   for r in view["results"])
        assert view["failures"] == []

        thread.join(timeout=30.0)
        ran = agent.units_run
        assert ran == 2

        # identical request again: request-level dedup, zero new jobs
        status, again = _post(server.url + "/characterize", BODY)
        assert status == 200
        assert again["deduplicated"] and again["request"] == rid
        assert coordinator.ledger.queue_entries() == []
        assert agent.units_run == ran

    def test_fresh_service_serves_same_request_from_store(
            self, tmp_path, fabric):
        # A *restarted* service (empty request table) must still answer
        # entirely from the store: zero units enqueued.
        coordinator, service, server = fabric
        _spawn_worker(tmp_path)
        status, first = _post(server.url + "/characterize", BODY)
        rid = first["request"]
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            _, view = _get(server.url + f"/requests/{rid}")
            if view["status"] == "done":
                break
            time.sleep(0.05)

        second = CharacterizationService(coordinator,
                                         pump_interval=0.01)
        reply, status = second.submit(BODY)
        assert status == 202
        assert reply["served_from_store"]
        assert reply["enqueued"] == 0 and reply["status"] == "done"
        second.close()

    def test_stream_emits_settlements_then_done(self, tmp_path, fabric):
        _, _, server = fabric
        _spawn_worker(tmp_path)
        _, first = _post(server.url + "/characterize", BODY)
        events = []
        with urllib.request.urlopen(
                server.url + f"/requests/{first['request']}/stream",
                timeout=120) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            for line in resp:
                events.append(json.loads(line))
        kinds = [e["event"] for e in events]
        assert kinds.count("settled") == 2
        assert kinds[-1] == "request-done"
        assert events[-1]["done"] == 2 and events[-1]["failed"] == 0


class TestHttpSurface:
    def test_healthz_reports_fleet(self, tmp_path, fabric):
        _, _, server = fabric
        agent, thread = _spawn_worker(tmp_path)
        deadline = time.monotonic() + 10.0
        workers = {}
        while time.monotonic() < deadline and not workers:
            _, health = _get(server.url + "/healthz")
            workers = health["workers"]
            time.sleep(0.02)
        assert health["ok"] and "wS" in workers

    def test_unknown_request_404(self, fabric):
        _, _, server = fabric
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/requests/rdeadbeef")
        assert excinfo.value.code == 404

    def test_unknown_route_404(self, fabric):
        _, _, server = fabric
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_bad_json_400(self, fabric):
        _, _, server = fabric
        req = urllib.request.Request(
            server.url + "/characterize", data=b"{not json",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_benchmark_400(self, fabric):
        _, _, server = fabric
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/characterize",
                  {"benchmarks": ["NoSuchBench"]})
        assert excinfo.value.code == 400

    def test_method_not_allowed(self, fabric):
        _, _, server = fabric
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/characterize")
        assert excinfo.value.code == 405


# Prometheus exposition: "# HELP"/"# TYPE" headers and samples.
_META_RE = re.compile(r"^# (HELP [a-zA-Z_][a-zA-Z0-9_]* .+"
                      r"|TYPE [a-zA-Z_][a-zA-Z0-9_]* "
                      r"(counter|gauge|histogram))$")
_SAMPLE_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*"
                        r"(\{[^}]*\})? -?[0-9.eE+-]+$")


class TestMetricsEndpoint:
    def _scrape(self, server):
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=30) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            return resp.read().decode()

    def test_scrape_format_is_prometheus(self, tmp_path, fabric):
        _, _, server = fabric
        agent, _ = _spawn_worker(tmp_path)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if agent.ledger.workers():
                break
            time.sleep(0.02)
        text = self._scrape(server)
        lines = [l for l in text.splitlines() if l]
        assert lines, "scrape must not be empty"
        for line in lines:
            if line.startswith("#"):
                assert _META_RE.match(line), line
            else:
                assert _SAMPLE_RE.match(line), line

    def test_fleet_gauges_exposed_per_worker(self, tmp_path, fabric):
        _, _, server = fabric
        agent, _ = _spawn_worker(tmp_path)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if agent.ledger.workers():
                break
            time.sleep(0.02)
        text = self._scrape(server)
        assert "repro_fabric_queue_depth" in text
        assert "repro_fabric_leases_active" in text
        assert "repro_fabric_workers_alive 1" in text
        assert 'repro_fabric_worker_heartbeat_age_s{worker="wS"}' in text
        assert 'repro_fabric_worker_leases{worker="wS"} 0' in text
        # one family header shared by all label variants
        assert text.count("# TYPE repro_fabric_worker_leases gauge") == 1


class TestSpanPropagation:
    def test_parent_span_reaches_unit_envelope(self, tmp_path):
        obs.configure(tmp_path / "obs", export_env=False)
        try:
            coordinator = Coordinator(tmp_path / "fab")
            service = CharacterizationService(coordinator)
            parent = SpanContext("remotetrace", "remotespan")
            reply, _ = service.submit(BODY, parent)
            # every unit envelope carries the request span's context,
            # so worker-side unit spans parent under it cross-host
            entries = coordinator.ledger.queue_entries()
            assert len(entries) == len(BENCH)
            unit = WorkUnit.load(entries[0][1])
            assert unit.span is not None
            obs.flush()
            spans = []
            for path in (tmp_path / "obs").glob("spans-*.jsonl"):
                spans += [json.loads(line) for line in
                          path.read_text().splitlines()]
            request_span = next(s for s in spans
                                if s["name"] == "fabric.request")
            # the caller's span id crossed the HTTP boundary
            assert request_span["parent_id"] == "remotespan"
            assert unit.span[1] == request_span["span_id"]
            service.close()
        finally:
            obs.shutdown(dump=False)

    def test_http_span_header_accepted(self, tmp_path, fabric):
        _, _, server = fabric
        status, reply = _post(server.url + "/characterize", BODY,
                              headers={"X-Repro-Span": "t1:s1"})
        assert status == 202 and reply["enqueued"] == 2


class TestServiceHardening:
    """Per-connection timeouts, bounded backpressure, HA health."""

    def _server(self, tmp_path, **server_kwargs):
        coordinator = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                                  poll_interval=0.01)
        service = CharacterizationService(coordinator,
                                          pump_interval=0.01)
        server = ServerThread(service, **server_kwargs).start()
        return coordinator, service, server

    def test_healthz_reports_leader_and_store(self, tmp_path):
        coordinator, service, server = self._server(tmp_path)
        try:
            assert coordinator.election.try_takeover("cHA",
                                                     ttl=5.0) == 1
            coordinator.election.heartbeat("cHA", 1, seq=1)
            status, health = _get(server.url + "/healthz")
            assert status == 200
            assert health["leader"] == {"coordinator": "cHA",
                                        "epoch": 1}
            assert health["coordinators"]["cHA"]["epoch"] == 1
            assert health["coordinators"]["cHA"]["resigned"] is False
            assert health["store_reachable"] is True
        finally:
            server.close()
            service.close()

    def test_slow_client_gets_408_not_a_stuck_connection(self,
                                                         tmp_path):
        import socket
        from urllib.parse import urlparse

        _, service, server = self._server(tmp_path, read_timeout=0.2)
        try:
            parsed = urlparse(server.url)
            host, port = parsed.hostname, parsed.port
            with socket.create_connection((host, port),
                                          timeout=10.0) as sock:
                # a request that never finishes arriving
                sock.sendall(b"POST /characterize HTTP/1.1\r\n"
                             b"Content-Length: 100\r\n\r\n")
                sock.settimeout(10.0)
                reply = sock.recv(4096)
            assert b"408" in reply.split(b"\r\n", 1)[0]
            snap = obs.metrics_snapshot()
            if snap:
                assert snap["counters"].get(
                    "fabric.service_read_timeouts", 0) >= 0
        finally:
            server.close()
            service.close()

    def test_backpressure_rejects_with_503_and_retry_after(self,
                                                           tmp_path):
        _, service, server = self._server(tmp_path, max_inflight=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server.url + "/characterize", BODY)
            assert err.value.code == 503
            assert err.value.headers["Retry-After"] == "1"
        finally:
            server.close()
            service.close()
