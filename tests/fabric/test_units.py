"""Work-unit envelope: roundtrip, dispatch-order filenames, ids."""

import json

import pytest

from repro.fabric.units import (UNIT_SCHEMA, WorkUnit, make_unit_id,
                                unit_id_of)
from tests.fabric.conftest import make_jobs


def _unit(specs, machine, rank=0, seq=1, **kw):
    job = make_jobs(specs[:1], machine)[0]
    key = "k" * 64
    fields = dict(unit_id=make_unit_id(seq, key), name=job.name,
                  key=key, cost_key="ck", rank=rank, job=job,
                  span=("trace", "span"), estimate=1.5)
    fields.update(kw)
    return WorkUnit(**fields)


class TestEnvelope:
    def test_json_roundtrip(self, specs, machine, tmp_path):
        unit = _unit(specs, machine)
        path = tmp_path / unit.filename
        path.write_text(json.dumps(unit.to_json()))
        back = WorkUnit.load(path)
        assert back == unit
        assert back.job.spec == unit.job.spec
        assert back.job.machine == unit.job.machine
        assert back.job.fidelity == unit.job.fidelity
        assert back.span == ("trace", "span")
        assert back.estimate == 1.5

    def test_unknown_schema_rejected(self, specs, machine):
        data = _unit(specs, machine).to_json()
        data["schema"] = UNIT_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            WorkUnit.from_json(data)

    def test_optional_fields_roundtrip_none(self, specs, machine):
        unit = _unit(specs, machine, span=None, estimate=None)
        back = WorkUnit.from_json(unit.to_json())
        assert back.span is None and back.estimate is None


class TestDispatchOrder:
    def test_filenames_sort_in_rank_order(self, specs, machine):
        # A lexical directory scan must equal the coordinator's LPT
        # ranking — that is the whole point of the rank prefix.
        units = [_unit(specs, machine, rank=r, seq=r + 1)
                 for r in (12, 0, 3, 101)]
        by_name = sorted(u.filename for u in units)
        ranks = [int(name.split("-", 1)[0]) for name in by_name]
        assert ranks == sorted(u.rank for u in units)


class TestIds:
    def test_make_unit_id_embeds_key_prefix(self):
        uid = make_unit_id(7, "abcdef0123456789" * 4)
        assert uid == "u00007-abcdef012345"

    def test_unit_id_of_queue_filename(self, specs, machine):
        unit = _unit(specs, machine, rank=42, seq=9)
        assert unit_id_of(unit.filename) == unit.unit_id

    def test_unit_id_of_lease_and_done_names(self):
        uid = make_unit_id(3, "f" * 64)
        assert unit_id_of(f"{uid}.lease") == uid
        assert unit_id_of(f"{uid}.json") == uid

    def test_distinct_submissions_of_same_key_distinct_ids(self):
        key = "a" * 64
        assert make_unit_id(1, key) != make_unit_id(2, key)
