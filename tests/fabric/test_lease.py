"""Lease protocol: claims, heartbeats, expiry, completion races.

The three lifecycle edge cases the fabric must survive:

* a lease whose worker stops heartbeating because it is *gracefully*
  shutting down (release beats reclaim — no double execution);
* reclaim of a unit whose result already landed in the store (the
  worker died between publishing the result and its done record);
* heartbeat loss followed by a late completion (the zombie finishes
  after reclaim — first done record wins, the manifest settles once).
"""

import json

from repro import obs
from repro.exec.campaign import CampaignManifest
from repro.exec.jobs import execute_job
from repro.fabric.coordinator import Coordinator
from repro.fabric.lease import LeaseLedger, _ChangeTracker
from tests.fabric.conftest import make_jobs


def _ledger(tmp_path):
    ledger = LeaseLedger(tmp_path / "fab")
    ledger.ensure_layout()
    return ledger


class TestChangeTracker:
    def test_unchanged_content_ages(self):
        tracker = _ChangeTracker()
        assert tracker.observe("a", ("w", 0), now=100.0) == 0.0
        assert tracker.observe("a", ("w", 0), now=103.5) == 3.5

    def test_changed_content_resets_age(self):
        tracker = _ChangeTracker()
        tracker.observe("a", ("w", 0), now=100.0)
        assert tracker.observe("a", ("w", 1), now=109.0) == 0.0
        assert tracker.observe("a", ("w", 1), now=110.0) == 1.0


class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        ledger = _ledger(tmp_path)
        assert ledger.claim("u1", "wA")
        assert not ledger.claim("u1", "wB")
        assert ledger.active_leases()["u1"]["worker"] == "wA"

    def test_heartbeat_bumps_seq(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        assert ledger.heartbeat("u1", "wA")
        assert ledger.heartbeat("u1", "wA")
        assert ledger.active_leases()["u1"]["seq"] == 2

    def test_heartbeat_of_foreign_lease_fails(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        assert not ledger.heartbeat("u1", "wB")

    def test_release_only_by_owner(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        ledger.release("u1", "wB")
        assert "u1" in ledger.active_leases()
        ledger.release("u1", "wA")
        assert ledger.active_leases() == {}


class TestExpiry:
    def test_heartbeating_lease_never_expires(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        assert ledger.reclaim_expired(5.0, now=100.0) == []
        ledger.heartbeat("u1", "wA")
        assert ledger.reclaim_expired(5.0, now=109.0) == []
        ledger.heartbeat("u1", "wA")
        assert ledger.reclaim_expired(5.0, now=113.0) == []

    def test_silent_lease_expires_on_observer_clock(self, tmp_path):
        # Expiry depends only on the coordinator's own monotonic clock
        # observing unchanged content — wall timestamps in the lease
        # (possibly from a skewed remote host) are irrelevant.
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        lease = ledger.lease_path("u1")
        rec = json.loads(lease.read_text())
        rec["ts"] = rec["ts"] + 10_000      # wildly skewed remote clock
        lease.write_text(json.dumps(rec))
        assert ledger.reclaim_expired(5.0, now=100.0) == []
        assert ledger.reclaim_expired(5.0, now=106.0) == ["u1"]
        assert ledger.active_leases() == {}

    def test_reclaimed_unit_is_reclaimable_again(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        ledger.reclaim_expired(5.0, now=0.0)
        ledger.reclaim_expired(5.0, now=6.0)
        assert ledger.claim("u1", "wB")

    def test_graceful_shutdown_release_beats_reclaim(self, tmp_path):
        # Worker stops heartbeating while winding down but releases the
        # lease before the TTL passes: reclaim must find nothing.
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        ledger.reclaim_expired(5.0, now=0.0)
        ledger.release("u1", "wA")          # graceful exit, inside TTL
        assert ledger.reclaim_expired(5.0, now=6.0) == []


class TestCompletion:
    def test_first_done_record_wins(self, tmp_path):
        ledger = _ledger(tmp_path)
        assert ledger.complete("u1", {"unit": "u1", "worker": "wA",
                                      "status": "done"})
        assert not ledger.complete("u1", {"unit": "u1", "worker": "wB",
                                          "status": "done"})
        assert ledger.done_records()["u1"]["worker"] == "wA"

    def test_late_completion_after_reclaim(self, tmp_path):
        # Zombie worker: lease reclaimed, heartbeat reports the loss,
        # but the completion still lands (and wins, being first).
        ledger = _ledger(tmp_path)
        ledger.claim("u1", "wA")
        ledger.reclaim_expired(5.0, now=0.0)
        assert ledger.reclaim_expired(5.0, now=6.0) == ["u1"]
        assert not ledger.heartbeat("u1", "wA")      # loss is visible
        assert ledger.complete("u1", {"unit": "u1", "worker": "wA",
                                      "status": "done"})
        # the re-execution's completion is dropped
        assert not ledger.complete("u1", {"unit": "u1", "worker": "wB",
                                          "status": "done"})


class TestWorkerHeartbeats:
    def test_workers_view_with_ttl(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.write_worker_heartbeat("wA", ["u1"], seq=1)
        ledger.write_worker_heartbeat("wB", [], seq=1)
        assert set(ledger.workers(now=100.0)) == {"wA", "wB"}
        # wA keeps beating, wB goes silent
        ledger.write_worker_heartbeat("wA", [], seq=2)
        assert set(ledger.workers(ttl=5.0, now=106.0)) == {"wA"}

    def test_remove_worker(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.write_worker_heartbeat("wA", [], seq=1)
        ledger.remove_worker("wA")
        assert ledger.workers() == {}


class TestStopFlag:
    def test_stop_roundtrip(self, tmp_path):
        ledger = _ledger(tmp_path)
        assert not ledger.stop_requested()
        ledger.request_stop()
        assert ledger.stop_requested()
        ledger.clear_stop()
        assert not ledger.stop_requested()


class TestReclaimWithStoreResult:
    def test_reclaim_settles_from_store_without_requeue(
            self, tmp_path, specs, machine, metrics):
        # The worker published the result, then died before its done
        # record: reclaim must keep the work, not redo it.
        coord = Coordinator(tmp_path / "fab", lease_ttl=0.05)
        job = make_jobs(specs[:1], machine)[0]
        sub = coord.submit([job])
        (unit_id,) = sub.pending
        assert coord.ledger.claim(unit_id, "wDead")
        coord.store.put(sub.keys[0], execute_job(job))

        manifest = CampaignManifest(tmp_path / "fab" / "m.jsonl")
        manifest.begin("fp", total=1)
        import time
        deadline = time.monotonic() + 5.0
        while not sub.done and time.monotonic() < deadline:
            coord.poll(sub, manifest)
            time.sleep(0.02)
        assert sub.done
        assert sub.outcomes[0][0] == "done"
        assert coord.ledger.queue_entries() == []     # never re-enqueued
        snap = obs.metrics_snapshot()
        assert snap["counters"]["fabric.reclaims_settled_from_store"] == 1
        assert "fabric.units_reclaimed" in snap["counters"]


class TestLeaseUnderBackendFaults:
    """Satellite: the lease lifecycle with faults at the I/O seam."""

    def _chaos_ledger(self, tmp_path, **rates):
        from repro.exec.backend import LocalDirBackend
        from repro.exec.chaos import BackendChaosConfig, ChaosBackend
        backend = ChaosBackend(LocalDirBackend(tmp_path / "fab"),
                               BackendChaosConfig(**rates))
        ledger = LeaseLedger(backend)
        ledger.ensure_layout()
        return ledger

    def test_reclaim_after_done_record_write_gets_eio(self, tmp_path):
        import pytest

        ledger = self._chaos_ledger(tmp_path, eio_rate=1.0)
        assert ledger.claim("u1", "wA")
        with pytest.raises(OSError):
            ledger.complete("u1", {"unit": "u1", "status": "done"})
        assert ledger.done_records() == {}    # nothing half-published
        # the now-silent lease ages out and the unit re-runs
        assert ledger.reclaim_expired(ttl=0.5, now=0.0) == []
        assert ledger.reclaim_expired(ttl=0.5, now=1.0) == ["u1"]
        # once the weather clears, the retried completion lands
        healthy = _ledger(tmp_path)
        assert healthy.claim("u1", "wA")
        assert healthy.complete("u1", {"unit": "u1", "status": "done"})
        assert "u1" in healthy.done_records()

    def test_first_writer_wins_even_when_the_write_tears(
            self, tmp_path, metrics):
        ledger = self._chaos_ledger(tmp_path, torn_rate=1.0)
        assert ledger.complete(
            "u1", {"unit": "u1", "status": "done", "key": "k" * 64})
        # the record is on disk but truncated: readers skip it...
        assert ledger.done_path("u1").exists()
        assert ledger.done_records() == {}
        # ...and it still holds the first-writer-wins slot
        healthy = _ledger(tmp_path)
        assert healthy.complete("u1", {"unit": "u1",
                                       "status": "done"}) is False
        counters = obs.metrics_snapshot()["counters"]
        assert counters["chaos.backend_torn"] >= 1
        assert counters["fabric.duplicate_completions"] >= 1

    def test_heartbeat_rides_out_injected_write_faults(self, tmp_path):
        # rate 0.5 rolls fresh per attempt: some renewals fail, but a
        # later tick always gets through and the lease stays owned
        ledger = self._chaos_ledger(tmp_path, seed=5, eio_rate=0.5)
        assert ledger.claim("u1", "wA")
        renewed = 0
        for _ in range(16):
            try:
                if ledger.heartbeat("u1", "wA"):
                    renewed += 1
            except OSError:
                pass
        assert renewed > 0
        healthy = _ledger(tmp_path)
        assert healthy.active_leases()["u1"]["worker"] == "wA"


class TestDoneRecordPathologies:
    """Coordinator recovery from lying or torn done records."""

    def test_done_record_without_result_requeues(self, tmp_path, specs,
                                                 machine, metrics):
        coord = Coordinator(tmp_path / "fab", lease_ttl=5.0,
                            poll_interval=0.01)
        sub = coord.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        # a done record whose result write tore: the store has nothing
        coord.ledger.complete(unit_id, {
            "unit": unit_id, "status": "done", "key": sub.keys[0],
            "name": "x"})
        coord.poll(sub)
        assert sub.outcomes == {}               # did not settle a lie
        assert not coord.ledger.done_path(unit_id).exists()
        assert unit_id not in sub.pending       # reissued fresh
        assert len(sub.pending) == 1
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.done_without_result"] == 1

    def test_torn_done_record_orphan_is_dropped_and_requeued(
            self, tmp_path, specs, machine, metrics):
        import time

        coord = Coordinator(tmp_path / "fab", lease_ttl=0.1,
                            poll_interval=0.01)
        sub = coord.submit(make_jobs(specs[:1], machine))
        (unit_id,) = sub.pending
        # the worker consumed the queue entry, tore its done record,
        # and died holding nothing: not queued, not leased, not done
        coord.ledger.remove_queued(unit_id)
        done_path = coord.ledger.done_path(unit_id)
        done_path.write_text('{"unit": ', encoding="utf-8")
        coord.poll(sub)                         # starts the orphan age
        time.sleep(0.15)
        coord.poll(sub)
        assert not done_path.exists()           # unblocked the slot
        assert len(coord.ledger.queue_entries()) == 1
        assert len(sub.pending) == 1
        counters = obs.metrics_snapshot()["counters"]
        assert counters["fabric.orphans_requeued"] == 1
