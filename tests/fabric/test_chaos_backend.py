"""ChaosBackend: deterministic fault injection at the I/O seam."""

import errno

import pytest

from repro.exec.backend import (LocalDirBackend, SharedDirBackend,
                                backend_for)
from repro.exec.chaos import BackendChaosConfig, ChaosBackend
from repro.exec.resilience import BackendUnavailable, RetryPolicy, retry_call
from repro.exec.store import ResultStore

KEY = "a" * 64


def _chaos(tmp_path, **rates):
    return ChaosBackend(LocalDirBackend(tmp_path / "store"),
                        BackendChaosConfig(**rates))


class TestConfigParse:
    def test_env_spelling(self):
        cfg = BackendChaosConfig.parse(
            "seed=7,eio=0.05,stale=0.1,latency=0.2,latency_seconds=0.5")
        assert cfg.seed == 7
        assert cfg.eio_rate == 0.05
        assert cfg.stale_rate == 0.1
        assert cfg.latency_rate == 0.2
        assert cfg.latency_seconds == 0.5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            BackendChaosConfig.parse("bogus=1")

    def test_empty_spec_is_all_defaults(self):
        assert BackendChaosConfig.parse("") == BackendChaosConfig()


class TestDeterminism:
    def _outcomes(self, root, seed):
        backend = ChaosBackend(LocalDirBackend(root),
                               BackendChaosConfig(seed=seed, eio_rate=0.5))
        probe = backend.root / "probe"
        probe.parent.mkdir(parents=True, exist_ok=True)
        probe.write_bytes(b"x")
        out = []
        for _ in range(32):
            try:
                backend.read_bytes(probe)
                out.append(True)
            except OSError:
                out.append(False)
        return out

    def test_same_seed_same_fault_sequence(self, tmp_path):
        a = self._outcomes(tmp_path / "a", seed=3)
        b = self._outcomes(tmp_path / "b", seed=3)
        assert a == b
        assert True in a and False in a     # rate 0.5 really mixes

    def test_different_seed_different_weather(self, tmp_path):
        assert self._outcomes(tmp_path / "a", seed=3) \
            != self._outcomes(tmp_path / "b", seed=4)

    def test_retries_roll_fresh_so_bounded_retry_converges(self,
                                                           tmp_path):
        backend = _chaos(tmp_path, seed=1, eio_rate=0.5)
        probe = backend.root / "probe"
        probe.parent.mkdir(parents=True, exist_ok=True)
        probe.write_bytes(b"payload")
        out = retry_call(lambda: backend.read_bytes(probe),
                         policy=RetryPolicy(retries=16, backoff=0.0,
                                            deadline=None))
        assert out == b"payload"


class TestFaults:
    def test_eio_read_degrades_store_get_to_miss(self, tmp_path):
        inner = LocalDirBackend(tmp_path / "store")
        ResultStore(backend=inner).put(KEY, {"v": 1})
        chaotic = ResultStore(backend=ChaosBackend(
            inner, BackendChaosConfig(eio_rate=1.0)))
        assert chaotic.get(KEY) is None
        assert ResultStore(backend=inner).get(KEY) == {"v": 1}

    def test_enospc_publish_raises_and_leaves_no_dst(self, tmp_path):
        backend = _chaos(tmp_path, enospc_rate=1.0)
        backend.root.mkdir(parents=True, exist_ok=True)
        tmp = backend.root / ".t.tmp"
        tmp.write_bytes(b"data")
        with pytest.raises(OSError) as err:
            backend.publish(tmp, backend.root / "dst")
        assert err.value.errno == errno.ENOSPC
        assert not (backend.root / "dst").exists()

    def test_torn_publish_reports_success_with_truncated_bytes(
            self, tmp_path):
        backend = _chaos(tmp_path, torn_rate=1.0)
        backend.root.mkdir(parents=True, exist_ok=True)
        tmp = backend.root / ".t.tmp"
        tmp.write_bytes(b"0123456789")
        backend.publish(tmp, backend.root / "dst")      # "succeeds"
        assert (backend.root / "dst").read_bytes() == b"012345"

    def test_torn_result_write_is_caught_by_store_framing(
            self, tmp_path, metrics):
        torn = ResultStore(backend=_chaos(tmp_path, torn_rate=1.0))
        torn.put(KEY, {"v": 1})     # reported success, torn on disk
        clean = ResultStore(backend=LocalDirBackend(tmp_path / "store"))
        assert clean.get(KEY) is None   # quarantined, not crashed
        assert clean.get(KEY) is None   # and stays a plain miss


class TestStaleReadDiscipline:
    """Satellite: the shared backend bounds its ESTALE retry loop."""

    def _stale_patch(self, monkeypatch, target, fail_times):
        from pathlib import Path
        real = Path.read_bytes
        calls = {"n": 0}

        def maybe_stale(self):
            if self == target:
                calls["n"] += 1
                if calls["n"] <= fail_times:
                    raise OSError(errno.ESTALE, "stale NFS handle")
            return real(self)

        monkeypatch.setattr(Path, "read_bytes", maybe_stale)
        return calls

    def test_persistent_staleness_raises_typed_after_budget(
            self, tmp_path, monkeypatch):
        backend = SharedDirBackend(tmp_path / "store", stale_retries=3,
                                   stale_backoff=0.001,
                                   stale_deadline=10.0)
        target = backend.root / "entry"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(b"x")
        calls = self._stale_patch(monkeypatch, target, fail_times=99)
        with pytest.raises(BackendUnavailable):
            backend.read_bytes(target)
        assert calls["n"] == 4      # first try + stale_retries

    def test_staleness_that_heals_succeeds(self, tmp_path, monkeypatch):
        backend = SharedDirBackend(tmp_path / "store", stale_retries=5,
                                   stale_backoff=0.001,
                                   stale_deadline=10.0)
        target = backend.root / "entry"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(b"fresh")
        self._stale_patch(monkeypatch, target, fail_times=2)
        assert backend.read_bytes(target) == b"fresh"

    def test_hard_deadline_cuts_the_retry_budget(self, tmp_path,
                                                 monkeypatch):
        backend = SharedDirBackend(tmp_path / "store", stale_retries=50,
                                   stale_backoff=0.05,
                                   stale_deadline=0.0)
        target = backend.root / "entry"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(b"x")
        calls = self._stale_patch(monkeypatch, target, fail_times=99)
        with pytest.raises(BackendUnavailable):
            backend.read_bytes(target)
        assert calls["n"] == 1


class TestEnvWrapping:
    def test_env_wraps_factory_built_backends(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_BACKEND", "seed=3,eio=0.25")
        backend = backend_for(f"local:{tmp_path / 'fab'}")
        assert isinstance(backend, ChaosBackend)
        assert backend.scheme == "chaos+local"
        assert backend.config.seed == 3
        shared = backend_for(f"shared:{tmp_path / 'fab'}")
        assert shared.scheme == "chaos+shared"

    def test_prebuilt_backends_pass_through_unwrapped(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_BACKEND", "eio=1.0")
        prebuilt = LocalDirBackend(tmp_path / "fab")
        assert backend_for(prebuilt) is prebuilt

    def test_no_env_no_wrapping(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_BACKEND", raising=False)
        assert isinstance(backend_for(str(tmp_path / "fab")),
                          LocalDirBackend)
