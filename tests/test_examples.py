"""Smoke tests: every example script runs end to end (small arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "SeekUnroll")
        assert "Top-Down" in out
        assert "llc_mpki" in out

    def test_subset_selection(self):
        out = run_example("subset_selection.py", "--k", "4",
                          "--instructions", "20000")
        assert "representative subset" in out
        assert "subset accuracy" in out

    def test_gc_study(self):
        out = run_example("gc_study.py", "--category", "System.Linq",
                          "--instructions", "60000")
        assert "GC/Triggered" in out
        assert "speedup" in out

    def test_jit_coldstart(self):
        out = run_example("jit_coldstart.py", "--instructions", "120000")
        assert "pearson r" in out
        assert "reused pages" in out

    def test_aspnet_scaling(self):
        out = run_example("aspnet_scaling.py", "--instructions", "20000")
        assert "per-core LLC MPKI" in out

    def test_trace_record_replay(self):
        out = run_example("trace_record_replay.py",
                          "--instructions", "25000")
        assert "recorded" in out
        assert "same trace, different machines" in out

    def test_arm_comparison(self):
        out = run_example("arm_comparison.py", "--categories", "3",
                          "--instructions", "30000")
        assert "arm/x86" in out
