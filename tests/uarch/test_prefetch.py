"""Unit tests for the prefetcher models (incl. the page-boundary rule)."""

from repro.uarch.cache import Cache
from repro.uarch.prefetch import NextLinePrefetcher, StreamPrefetcher


def make_target():
    return Cache("t", 64 * 1024, 64, 8)


class TestStreamPrefetcher:
    def test_no_prefetch_before_stream_detected(self):
        c = make_target()
        pf = StreamPrefetcher(c)
        pf.observe(0x1000)
        assert pf.stats.issued == 0

    def test_prefetch_after_two_sequential_lines(self):
        c = make_target()
        pf = StreamPrefetcher(c, degree=2)
        pf.observe(0x1000)
        pf.observe(0x1040)
        assert pf.stats.issued == 2
        assert c.contains(0x1080)
        assert c.contains(0x10C0)

    def test_never_crosses_page_boundary(self):
        """The paper's central JIT observation: prefetchers stop at 4 KiB."""
        c = make_target()
        pf = StreamPrefetcher(c, degree=4)
        pf.observe(0x1F80)                    # last-but-one line of the page
        pf.observe(0x1FC0)                    # last line
        assert not c.contains(0x2000), "prefetch crossed a page boundary"
        assert pf.stats.page_bounded >= 1

    def test_prefetch_clamped_within_page(self):
        c = make_target()
        pf = StreamPrefetcher(c, degree=4)
        pf.observe(0x1EC0)
        pf.observe(0x1F00)
        assert c.contains(0x1F40)
        assert c.contains(0x1F80)
        assert c.contains(0x1FC0)
        assert not c.contains(0x2000)

    def test_prefetched_lines_tagged(self):
        c = make_target()
        pf = StreamPrefetcher(c, degree=1)
        pf.observe(0x1000)
        pf.observe(0x1040)
        assert c.stats.prefetch_fills == 1

    def test_stream_table_bounded(self):
        c = make_target()
        pf = StreamPrefetcher(c, max_streams=4)
        for page in range(10):
            pf.observe(page * 4096)
        assert len(pf._streams) <= 4

    def test_backing_fetch_called(self):
        c = make_target()
        fetched = []
        pf = StreamPrefetcher(c, degree=1, fetch=fetched.append)
        pf.observe(0x1000)
        pf.observe(0x1040)
        assert fetched == [0x1080]

    def test_no_duplicate_prefetch_of_resident_line(self):
        c = make_target()
        c.fill(0x1080)
        pf = StreamPrefetcher(c, degree=1)
        pf.observe(0x1000)
        pf.observe(0x1040)
        assert pf.stats.issued == 0


class TestNextLinePrefetcher:
    def test_prefetches_next_line(self):
        c = make_target()
        pf = NextLinePrefetcher(c)
        pf.observe(0x1000)
        assert c.contains(0x1040)

    def test_page_bounded(self):
        c = make_target()
        pf = NextLinePrefetcher(c)
        pf.observe(0x1FC0)
        assert not c.contains(0x2000)
        assert pf.stats.page_bounded == 1

    def test_same_line_burst_is_cheap(self):
        c = make_target()
        pf = NextLinePrefetcher(c)
        pf.observe(0x1000)
        issued = pf.stats.issued
        for _ in range(10):
            pf.observe(0x1008)               # same line
        assert pf.stats.issued == issued

    def test_backing_fetch(self):
        c = make_target()
        fetched = []
        pf = NextLinePrefetcher(c, fetch=fetched.append)
        pf.observe(0x1000)
        assert fetched == [0x1040]

    def test_reset_stats(self):
        c = make_target()
        pf = NextLinePrefetcher(c)
        pf.observe(0x1000)
        pf.reset_stats()
        assert pf.stats.issued == 0
