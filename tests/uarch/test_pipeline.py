"""Tests for the core pipeline model and its Top-Down accounting."""

import pytest

from repro.kernel.vm import VirtualMemory
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE)
from repro.uarch.machine import i9_9980xe
from repro.uarch.pipeline import Core, WorkloadHints
from repro.uarch.topdown import profile_core


def make_core():
    return Core(i9_9980xe(), VirtualMemory())


def simple_block(pc=0x40000000, n=10, nbytes=48, kernel=False):
    return (OP_BLOCK, pc, n, nbytes, kernel)


class TestInstructionAccounting:
    def test_block_counts_instructions(self):
        core = make_core()
        core.consume([simple_block(n=10)])
        assert core.counts.instructions == 10

    def test_memops_and_branches_count_as_instructions(self):
        core = make_core()
        core.consume([
            simple_block(n=5),
            (OP_LOAD, 0x1000),
            (OP_STORE, 0x2000),
            (OP_BRANCH, 0x40000030, 0x40000050, True),
        ])
        c = core.counts
        assert c.instructions == 8
        assert c.loads == 1 and c.stores == 1 and c.branches == 1

    def test_kernel_attribution(self):
        core = make_core()
        core.consume([
            simple_block(n=10, kernel=True),
            (OP_LOAD, 0x1000),               # inherits kernel mode
            simple_block(pc=0x40001000, n=5, kernel=False),
            (OP_LOAD, 0x1000),               # now user mode
        ])
        assert core.counts.kernel_instructions == 11
        assert core.counts.instructions == 17

    def test_max_instructions_stops_at_block_boundary(self):
        core = make_core()
        ops = [simple_block(pc=0x40000000 + i * 64) for i in range(100)]
        done = core.consume(iter(ops), max_instructions=35)
        assert 35 <= done <= 45

    def test_unknown_op_rejected(self):
        core = make_core()
        with pytest.raises(ValueError):
            core.consume([(99, 0)])


class TestMemoryPath:
    def test_load_miss_reaches_dram_and_counts(self):
        core = make_core()
        core.consume([(OP_LOAD, 0x5000)])
        assert core.l1d.stats.demand_misses == 1
        assert core.dram.stats.reads >= 1

    def test_repeat_load_hits_l1(self):
        core = make_core()
        core.consume([(OP_LOAD, 0x5000), (OP_LOAD, 0x5000)])
        assert core.l1d.stats.demand_misses == 1

    def test_store_marks_dirty_path(self):
        core = make_core()
        core.consume([(OP_STORE, 0x5000)])
        assert core.counts.stores == 1

    def test_dtlb_walk_and_page_fault_on_first_touch(self):
        core = make_core()
        core.consume([(OP_LOAD, 0x7000_0000)])
        assert core.counts.dtlb_load_walks == 1
        assert core.vm.stats.faults == 1

    def test_premapped_page_no_fault(self):
        vm = VirtualMemory()
        vm.premap_range(0x7000_0000, 4096)
        core = Core(i9_9980xe(), vm)
        core.consume([(OP_LOAD, 0x7000_0000)])
        assert core.vm.stats.faults == 0

    def test_dtlb_store_walks_counted_separately(self):
        core = make_core()
        core.consume([(OP_STORE, 0x9000_0000)])
        assert core.counts.dtlb_store_walks == 1
        assert core.counts.dtlb_load_walks == 0


class TestFetchPath:
    def test_icache_misses_on_cold_code(self):
        core = make_core()
        core.consume([simple_block(pc=0x4000_0000, nbytes=256)])
        assert core.l1i.stats.demand_misses >= 1

    def test_warm_code_hits(self):
        core = make_core()
        block = simple_block(pc=0x4000_0000, nbytes=64)
        core.consume([block, block, block])
        assert core.l1i.stats.demand_misses <= 1

    def test_itlb_walk_on_new_code_page(self):
        core = make_core()
        core.consume([simple_block(pc=0x4000_0000),
                      simple_block(pc=0x4010_0000)])
        assert core.counts.itlb_walks >= 2


class TestBranchPath:
    def test_mispredict_charges_bad_speculation(self):
        core = make_core()
        # Alternating branch at one PC: unpredictable.
        ops = []
        for i in range(50):
            ops.append((OP_BRANCH, 0x40000000, 0x40000100, i % 2 == 0))
        core.consume(ops)
        assert core.stalls["bad_speculation"] > 0

    def test_btb_miss_charges_resteer(self):
        core = make_core()
        core.consume([(OP_BRANCH, 0x40000000, 0x40000100, True)])
        assert core.stalls["fe_resteer"] > 0


class TestCyclesAndTopDown:
    def test_cycles_positive_and_cpi_sane(self):
        core = make_core()
        core.set_hints(WorkloadHints())
        ops = [simple_block(pc=0x40000000 + (i % 8) * 64) for i in range(200)]
        core.consume(ops)
        assert core.cycles > 0
        assert 0.2 < core.cpi < 50

    def test_topdown_level1_sums_to_one(self):
        core = make_core()
        ops = []
        for i in range(100):
            ops.append(simple_block(pc=0x40000000 + (i % 16) * 64))
            ops.append((OP_LOAD, 0x5000 + (i * 64) % 4096))
            ops.append((OP_BRANCH, 0x40000030 + (i % 16) * 64,
                        0x40000000, i % 3 == 0))
        core.consume(ops)
        td = profile_core(core)
        total = (td.retiring + td.bad_speculation + td.frontend_bound
                 + td.backend_bound)
        assert abs(total - 1.0) < 1e-6

    def test_frontend_backend_split_consistent(self):
        core = make_core()
        core.consume([simple_block()])
        td = profile_core(core)
        assert abs(td.frontend_bound
                   - (td.frontend_latency + td.frontend_bandwidth)) < 1e-9
        assert abs(td.backend_bound
                   - (td.backend_memory + td.backend_core)) < 1e-9

    def test_breakdowns_sum_to_one(self):
        core = make_core()
        ops = [simple_block(pc=0x40000000 + i * 64) for i in range(50)]
        ops += [(OP_LOAD, i * 64) for i in range(200)]
        core.consume(ops)
        td = profile_core(core)
        assert abs(sum(td.frontend_breakdown().values()) - 1.0) < 1e-6
        assert abs(sum(td.backend_breakdown().values()) - 1.0) < 1e-6

    def test_seconds_uses_frequency(self):
        core = make_core()
        core.consume([simple_block()])
        assert core.seconds() == pytest.approx(
            core.cycles / core.machine.max_freq_hz)
        assert core.seconds(use_max_freq=False) == pytest.approx(
            core.cycles / core.machine.nominal_freq_hz)


class TestHooks:
    def test_event_hook_receives_events(self):
        core = make_core()
        seen = []
        core.event_hook = lambda kind, payload, cyc: seen.append(kind)
        core.consume([(OP_EVENT, "gc/triggered", 1), simple_block()])
        assert seen == ["gc/triggered"]

    def test_cycle_hook_fires_periodically(self):
        core = make_core()
        ticks = []
        core.set_cycle_hook(lambda c: ticks.append(c.cycles), 50.0)
        ops = [simple_block(pc=0x40000000 + (i % 4) * 64)
               for i in range(500)]
        core.consume(ops)
        assert len(ticks) >= 2
        assert ticks == sorted(ticks)


class TestResetSemantics:
    def test_reset_clears_counts_keeps_cache_state(self):
        core = make_core()
        block = simple_block(pc=0x4000_0000, nbytes=64)
        core.consume([block, (OP_LOAD, 0x5000)])
        core.reset_stats()
        assert core.counts.instructions == 0
        assert core.cycles == 0
        # Warm state preserved: the same accesses now hit.
        core.consume([block, (OP_LOAD, 0x5000)])
        assert core.l1d.stats.demand_misses == 0

    def test_reset_clears_vm_fault_stats_keeps_mappings(self):
        core = make_core()
        core.consume([(OP_LOAD, 0x7000_0000)])
        core.reset_stats()
        assert core.vm.stats.faults == 0
        core.consume([(OP_LOAD, 0x7000_0040)])
        assert core.vm.stats.faults == 0     # page already mapped
