"""Unit tests for the DRAM model."""

from hypothesis import given, settings, strategies as st

from repro.uarch.memory import DramModel


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        d = DramModel()
        lat = d.access(0x1000)
        assert d.stats.row_misses == 1
        assert lat == d.base_latency + d.row_miss_extra

    def test_same_row_hits(self):
        d = DramModel(row_size=8192)
        d.access(0x0)
        lat = d.access(0x40)
        assert d.stats.row_hits == 1
        assert lat == d.base_latency

    def test_row_conflict_in_same_bank(self):
        d = DramModel(n_banks=2, row_size=8192)
        d.access(0)                           # bank 0, row 0
        d.access(2 * 8192 * 2)                # bank 0, different row
        assert d.stats.row_misses == 2

    def test_different_banks_independent(self):
        d = DramModel(n_banks=2, row_size=8192)
        d.access(0)                           # bank 0
        d.access(8192)                        # bank 1
        d.access(0)                           # bank 0 row still open
        assert d.stats.row_hits == 1


class TestBandwidthAccounting:
    def test_read_write_bytes(self):
        d = DramModel(line_size=64)
        d.access(0x0)
        d.access(0x1000, is_write=True)
        assert d.stats.bytes_read == 64
        assert d.stats.bytes_written == 64
        assert d.stats.reads == 1
        assert d.stats.writes == 1

    def test_page_miss_rate(self):
        d = DramModel(row_size=8192)
        d.access(0)
        d.access(64)
        d.access(128)
        d.access(192)
        assert abs(d.stats.page_miss_rate - 0.25) < 1e-9

    def test_reset(self):
        d = DramModel()
        d.access(0)
        d.reset_stats()
        assert d.stats.reads == 0
        assert d.stats.page_miss_rate == 0.0


@given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1,
                max_size=300))
@settings(max_examples=40, deadline=None)
def test_property_accounting_consistent(addrs):
    d = DramModel()
    for a in addrs:
        d.access(a)
    s = d.stats
    assert s.row_hits + s.row_misses == len(addrs)
    assert s.bytes_read == 64 * len(addrs)
    assert 0.0 <= s.page_miss_rate <= 1.0


@given(st.integers(min_value=0, max_value=1 << 30))
@settings(max_examples=50, deadline=None)
def test_property_repeat_access_is_row_hit(addr):
    d = DramModel()
    d.access(addr)
    assert d.access(addr) == d.base_latency
