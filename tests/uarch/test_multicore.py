"""Tests for the shared-LLC multicore model (Figs 11-12 substrate)."""

import itertools

from repro.trace import OP_BLOCK, OP_LOAD
from repro.uarch.machine import i9_9980xe
from repro.uarch.multicore import MulticoreRunner, SharedLlc


def stream_factory(core_id):
    """Simple per-core workload: blocks + loads over a private region."""
    def ops():
        base = 0x4000_0000 + core_id * 0x100_0000
        data = 0x8000_0000 + core_id * 0x100_0000
        for i in itertools.count():
            yield (OP_BLOCK, base + (i % 64) * 64, 10, 48, False)
            yield (OP_LOAD, data + (i * 64) % (1 << 21))
    from repro.uarch.pipeline import WorkloadHints
    return ops(), WorkloadHints()


class TestSharedLlc:
    def test_contention_increases_with_traffic(self):
        llc = SharedLlc(i9_9980xe())
        for i in range(20_000):
            llc.access(i * 64, core_id=0)
        llc.update_contention(epoch_cycles=5_000, active_cores=16)
        high = llc.extra_latency
        llc2 = SharedLlc(i9_9980xe())
        for i in range(100):
            llc2.access(i * 64, core_id=0)
        llc2.update_contention(epoch_cycles=5_000, active_cores=1)
        low = llc2.extra_latency
        assert high > low

    def test_queue_delay_capped(self):
        llc = SharedLlc(i9_9980xe())
        for i in range(10 ** 6 // 64):
            llc.access(i * 64, core_id=0)
        llc.update_contention(epoch_cycles=1.0, active_cores=16)
        assert llc.extra_latency < llc.base_latency \
            * SharedLlc.MAX_QUEUE_FACTOR + 100

    def test_noc_delay_grows_with_cores(self):
        llc1 = SharedLlc(i9_9980xe())
        llc1.update_contention(epoch_cycles=1000, active_cores=1)
        llc16 = SharedLlc(i9_9980xe())
        llc16.update_contention(epoch_cycles=1000, active_cores=16)
        assert llc16.extra_latency > llc1.extra_latency

    def test_zero_epoch_is_safe(self):
        llc = SharedLlc(i9_9980xe())
        llc.update_contention(epoch_cycles=0, active_cores=4)


class TestMulticoreRunner:
    def test_all_cores_execute(self):
        runner = MulticoreRunner(i9_9980xe(), 4, stream_factory,
                                 epoch_instructions=500)
        result = runner.run(3_000)
        for core in result.cores:
            assert core.counts.instructions >= 3_000

    def test_llc_shared_between_cores(self):
        runner = MulticoreRunner(i9_9980xe(), 2, stream_factory,
                                 epoch_instructions=500)
        result = runner.run(2_000)
        assert result.llc.cache.stats.accesses > 0

    def test_more_cores_more_llc_latency(self):
        lat = {}
        for n in (1, 8):
            runner = MulticoreRunner(i9_9980xe(), n, stream_factory,
                                     epoch_instructions=500)
            runner.run(4_000)
            lat[n] = runner.llc.extra_latency
        assert lat[8] > lat[1]

    def test_per_core_llc_mpki(self):
        runner = MulticoreRunner(i9_9980xe(), 2, stream_factory,
                                 epoch_instructions=500)
        result = runner.run(2_000)
        assert result.per_core_llc_mpki() >= 0.0
        assert result.total_instructions >= 4_000
