"""Tests for the Table II machine configurations."""

import pytest

from repro.uarch.machine import (arm_server, get_machine, i9_9980xe, scaled,
                                 xeon_e5_2620v4)


class TestTable2Fidelity:
    """The presets must match the paper's Table II."""

    def test_xeon(self):
        m = xeon_e5_2620v4()
        assert m.isa == "x86-64"
        assert (m.physical_cores, m.logical_cores) == (16, 32)
        assert m.nominal_freq_hz == 2.1e9 and m.max_freq_hz == 3.0e9
        assert m.l1d.size_bytes == 32 * 1024
        assert m.l1i.size_bytes == 32 * 1024
        assert m.l2.size_bytes == 256 * 1024
        assert m.llc.size_bytes == 40 * 1024 * 1024      # 20 MiB x 2

    def test_i9(self):
        m = i9_9980xe()
        assert m.isa == "x86-64"
        assert (m.physical_cores, m.logical_cores) == (18, 18)
        assert m.nominal_freq_hz == 3.0e9 and m.max_freq_hz == 4.5e9
        assert m.l2.size_bytes == 1024 * 1024
        # Paper: 24.8 MiB; modeled as 24 MiB for power-of-two sets.
        assert abs(m.llc.size_bytes - 24.8 * 1024 * 1024) \
            < 1024 * 1024

    def test_arm(self):
        m = arm_server()
        assert m.isa == "aarch64"
        assert (m.physical_cores, m.logical_cores) == (32, 32)
        assert m.nominal_freq_hz == 1.6e9 and m.max_freq_hz == 2.2e9
        assert m.llc.size_bytes == 32 * 1024 * 1024
        # §III-B: 4-wide decode, 180-entry ROB, 2K-entry secondary TLB.
        assert m.decode_width == 4
        assert m.rob_entries == 180
        assert m.stlb.entries == 2048

    def test_arm_software_stack_immaturity(self):
        m = arm_server()
        assert m.code_bloat > 1.0
        assert m.dynamic_instr_bloat > 1.0


class TestLookupAndScaling:
    def test_get_machine(self):
        assert get_machine("i9").name.startswith("Intel Core")
        assert get_machine("xeon").name.startswith("Intel Xeon")
        assert get_machine("arm").isa == "aarch64"

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError):
            get_machine("m1")

    def test_scaled_override(self):
        m = scaled(i9_9980xe(), pipeline_width=6)
        assert m.pipeline_width == 6
        assert m.l2 == i9_9980xe().l2

    def test_sim_cache_scaling(self):
        m = i9_9980xe()
        assert m.sim_cache(m.l2).size_bytes \
            == m.l2.size_bytes // m.capacity_scale
        assert m.sim_cache(m.l1d, small=True).size_bytes \
            == m.l1d.size_bytes // m.l1_scale

    def test_sim_cache_never_below_one_set(self):
        m = scaled(i9_9980xe(), capacity_scale=10 ** 9)
        cfg = m.sim_cache(m.l2)
        assert cfg.size_bytes >= cfg.line_size * cfg.ways

    def test_sim_tlb_scaling(self):
        m = i9_9980xe()
        assert m.sim_tlb(m.itlb).entries == m.itlb.entries // m.l1_scale

    def test_predictor_table_not_scaled(self):
        m = i9_9980xe()
        assert m.sim_bp_table_bits == m.bp_table_bits

    def test_describe(self):
        text = i9_9980xe().describe()
        assert "18C" in text and "GHz" in text

    def test_scaled_geometries_are_constructible(self):
        """Every preset must instantiate a Core without geometry errors."""
        from repro.kernel.vm import VirtualMemory
        from repro.uarch.pipeline import Core
        for key in ("xeon", "i9", "arm"):
            Core(get_machine(key), VirtualMemory())
