"""Tests for cache replacement policies."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import Cache, ReplacementPolicy


def one_set_cache(ways=4, policy=ReplacementPolicy.LRU):
    return Cache("t", 64 * ways, 64, ways, policy=policy)


class TestPolicySelection:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Cache("t", 4096, 64, 4, policy="plru")

    def test_default_is_lru(self):
        assert Cache("t", 4096, 64, 4).policy == ReplacementPolicy.LRU


class TestFifo:
    def test_hit_does_not_promote(self):
        c = one_set_cache(ways=2, policy=ReplacementPolicy.FIFO)
        c.fill(0x0)
        c.fill(0x40)
        c.access(0x0)                 # hit, but stays oldest
        c.fill(0x80)                  # evicts 0x0 (insertion order)
        assert not c.contains(0x0)
        assert c.contains(0x40)

    def test_lru_differs_on_same_pattern(self):
        lru = one_set_cache(ways=2, policy=ReplacementPolicy.LRU)
        lru.fill(0x0)
        lru.fill(0x40)
        lru.access(0x0)
        lru.fill(0x80)                # LRU evicts 0x40 instead
        assert lru.contains(0x0)
        assert not lru.contains(0x40)


class TestRandom:
    def test_deterministic_sequence(self):
        def run():
            c = one_set_cache(ways=4, policy=ReplacementPolicy.RANDOM)
            for i in range(50):
                if not c.access(i % 8 * 64):
                    c.fill(i % 8 * 64)
            return c.stats.misses

        assert run() == run()

    def test_capacity_respected(self):
        c = one_set_cache(ways=4, policy=ReplacementPolicy.RANDOM)
        for i in range(100):
            c.fill(i * 64 * c.n_sets)
        assert c.occupancy <= 4


class TestPolicyQuality:
    def test_lru_beats_random_on_reuse_heavy_pattern(self):
        """Zipf-style reuse: recency-aware replacement must win."""
        rng = random.Random(3)
        addrs = [int(64 * (64 * rng.random() ** 3)) for _ in range(8000)]

        def misses(policy):
            c = Cache("t", 64 * 16, 64, 16, policy=policy)
            n = 0
            for a in addrs:
                if not c.access(a):
                    c.fill(a)
                    n += 1
            return n

        assert misses(ReplacementPolicy.LRU) \
            <= misses(ReplacementPolicy.RANDOM)


@given(st.sampled_from(ReplacementPolicy.ALL),
       st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_property_all_policies_maintain_invariants(policy, addrs):
    c = Cache("p", 2048, 64, 4, policy=policy)
    for a in addrs:
        if not c.access(a):
            c.fill(a)
        assert c.access(a)            # just-touched line is resident
    assert c.occupancy <= 32
    s = c.stats
    assert s.hits + s.misses == s.accesses
