"""Unit tests for branch prediction structures."""

import random

from hypothesis import given, settings, strategies as st

from repro.uarch.branch import (BranchUnit, Btb, GsharePredictor,
                                LoopPredictor)


class TestGshare:
    def test_learns_always_taken(self):
        p = GsharePredictor(history_bits=0)
        pc = 0x400
        for _ in range(4):
            p.update(pc, True)
        assert p.predict(pc) is True

    def test_learns_never_taken(self):
        p = GsharePredictor(history_bits=0)
        pc = 0x400
        for _ in range(4):
            p.update(pc, False)
        assert p.predict(pc) is False

    def test_hysteresis_survives_single_flip(self):
        p = GsharePredictor(history_bits=0)
        pc = 0x400
        for _ in range(4):
            p.update(pc, True)
        p.update(pc, False)                  # one not-taken
        assert p.predict(pc) is True         # 2-bit counter still >= 2

    def test_biased_branch_accuracy(self):
        p = GsharePredictor(history_bits=0)
        rng = random.Random(1)
        pc = 0x1230
        correct = 0
        n = 2000
        for _ in range(n):
            taken = rng.random() < 0.95
            if p.predict(pc) == taken:
                correct += 1
            p.update(pc, taken)
        assert correct / n > 0.88

    def test_history_mode_updates_history(self):
        p = GsharePredictor(history_bits=4)
        p.update(0x100, True)
        p.update(0x100, True)
        assert p._history == 0b11


class TestBtb:
    def test_insert_lookup(self):
        b = Btb(entries=64, ways=4)
        b.insert(0x400, 0x800)
        assert b.lookup(0x400) == 0x800

    def test_miss_on_unknown(self):
        b = Btb(entries=64, ways=4)
        assert b.lookup(0x400) is None

    def test_update_existing_target(self):
        b = Btb(entries=64, ways=4)
        b.insert(0x400, 0x800)
        b.insert(0x400, 0xC00)
        assert b.lookup(0x400) == 0xC00

    def test_lru_eviction_within_set(self):
        b = Btb(entries=8, ways=2)           # 4 sets
        set_stride = 4 * 4                   # pcs mapping to the same set
        pcs = [i * set_stride for i in range(3)]
        b.insert(pcs[0], 1)
        b.insert(pcs[1], 2)
        b.lookup(pcs[0])                      # MRU
        b.insert(pcs[2], 3)                   # evicts pcs[1]
        assert b.lookup(pcs[0]) == 1
        assert b.lookup(pcs[1]) is None


class TestLoopPredictor:
    def test_learns_fixed_trip_count(self):
        lp = LoopPredictor()
        pc = 0x500
        mispredicts = 0
        # 10 executions of a loop with 5 trips: T T T T N
        for it in range(10):
            for trip in range(5):
                taken = trip < 4
                pred = lp.predict(pc)
                if it >= 4 and pred is not None and pred != taken:
                    mispredicts += 1
                if taken:
                    lp.allocate(pc)
                lp.update(pc, taken)
        assert mispredicts == 0

    def test_not_confident_on_variable_trips(self):
        lp = LoopPredictor()
        pc = 0x500
        rng = random.Random(3)
        for _ in range(20):
            trips = rng.choice([3, 5, 7])
            for t in range(trips):
                taken = t < trips - 1
                if taken:
                    lp.allocate(pc)
                lp.update(pc, taken)
        assert lp.predict(pc) is None

    def test_untracked_pc_predicts_none(self):
        lp = LoopPredictor()
        assert lp.predict(0x999) is None

    def test_capacity_bounded(self):
        lp = LoopPredictor(max_entries=4)
        for i in range(10):
            lp.allocate(0x100 + i * 4)
        assert len(lp._table) <= 4


class TestBranchUnit:
    def test_counts_branches_and_taken(self):
        bu = BranchUnit()
        bu.resolve(0x100, True, 0x200)
        bu.resolve(0x104, False, 0x108)
        assert bu.stats.branches == 2
        assert bu.stats.taken == 1

    def test_btb_miss_on_first_taken(self):
        bu = BranchUnit()
        _, btb_miss = bu.resolve(0x100, True, 0x200)
        assert btb_miss
        _, btb_miss = bu.resolve(0x100, True, 0x200)
        assert not btb_miss

    def test_target_change_counts_resteer(self):
        bu = BranchUnit()
        bu.resolve(0x100, True, 0x200)
        _, btb_miss = bu.resolve(0x100, True, 0x300)
        assert btb_miss

    def test_not_taken_never_btb_miss(self):
        bu = BranchUnit()
        _, btb_miss = bu.resolve(0x100, False, 0x104)
        assert not btb_miss

    def test_biased_stream_low_mispredicts(self):
        bu = BranchUnit()
        rng = random.Random(7)
        pcs = [0x1000 + i * 16 for i in range(20)]
        n = 0
        for _ in range(200):
            for pc in pcs:
                bu.resolve(pc, rng.random() < 0.97, pc + 64)
                n += 1
        assert bu.stats.mispredicts / n < 0.10

    def test_loop_exit_predicted_after_training(self):
        bu = BranchUnit()
        pc, body = 0x2000, 0x1F00            # backward target
        for _ in range(30):
            for trip in range(6):
                bu.resolve(pc, trip < 5, body)
        # Steady state: essentially no mispredicts in the last iterations.
        before = bu.stats.mispredicts
        for _ in range(10):
            for trip in range(6):
                bu.resolve(pc, trip < 5, body)
        assert bu.stats.mispredicts - before <= 1

    def test_reset_stats(self):
        bu = BranchUnit()
        bu.resolve(0x100, True, 0x200)
        bu.reset_stats()
        assert bu.stats.branches == 0


@given(st.lists(st.tuples(st.integers(0, 1023), st.booleans()),
                min_size=1, max_size=500))
@settings(max_examples=30, deadline=None)
def test_property_mispredicts_bounded_by_branches(events):
    bu = BranchUnit()
    for pc_idx, taken in events:
        bu.resolve(0x1000 + pc_idx * 4, taken, 0x1000 + (pc_idx * 7 % 997) * 4)
    s = bu.stats
    assert 0 <= s.mispredicts <= s.branches
    assert 0 <= s.btb_misses <= s.taken
    assert s.branches == len(events)
