"""Unit tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import Cache, CacheHierarchy, L1, L2, L3, DRAM


def make_cache(size=4096, line=64, ways=4, name="T"):
    return Cache(name, size, line, ways)


class TestConstruction:
    def test_basic_geometry(self):
        c = make_cache(size=8192, line=64, ways=4)
        assert c.n_sets == 32
        assert c.line_size == 64
        assert c.ways == 4

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 64, 4)

    def test_rejects_non_power_of_two_sets(self):
        # 3 sets: 3 * 64 * 4 = 768 bytes
        with pytest.raises(ValueError):
            Cache("bad", 768, 64, 4)

    def test_single_set_fully_associative(self):
        c = Cache("fa", 64 * 8, 64, 8)
        assert c.n_sets == 1


class TestAccessSemantics:
    def test_miss_then_fill_then_hit(self):
        c = make_cache()
        assert not c.access(0x1000)
        c.fill(0x1000)
        assert c.access(0x1000)
        assert c.stats.demand_accesses == 2
        assert c.stats.demand_misses == 1

    def test_same_line_different_offsets_hit(self):
        c = make_cache()
        c.fill(0x1000)
        assert c.access(0x1001)
        assert c.access(0x103F)

    def test_adjacent_lines_are_distinct(self):
        c = make_cache()
        c.fill(0x1000)
        assert not c.access(0x1040)

    def test_lru_eviction_order(self):
        c = Cache("t", 64 * 2, 64, 2)       # 1 set, 2 ways
        c.fill(0x0)
        c.fill(0x40)
        c.access(0x0)                        # make 0x0 MRU
        c.fill(0x80)                         # evicts 0x40 (LRU)
        assert c.contains(0x0)
        assert not c.contains(0x40)
        assert c.contains(0x80)

    def test_occupancy_bounded_by_capacity(self):
        c = make_cache(size=1024, ways=4)    # 16 lines
        for i in range(100):
            c.fill(i * 64)
        assert c.occupancy <= 16

    def test_contains_does_not_update_stats(self):
        c = make_cache()
        c.contains(0x1000)
        assert c.stats.accesses == 0


class TestPrefetchTagging:
    def test_useful_prefetch_counted_on_first_hit(self):
        c = make_cache()
        c.fill(0x1000, prefetch=True)
        assert c.stats.prefetch_fills == 1
        c.access(0x1000)
        assert c.stats.useful_prefetches == 1
        c.access(0x1000)                     # only first hit counts
        assert c.stats.useful_prefetches == 1

    def test_useless_prefetch_counted_on_unused_eviction(self):
        c = Cache("t", 64 * 2, 64, 2)
        c.fill(0x0, prefetch=True)
        c.fill(0x40)
        c.fill(0x80)                         # evicts unused prefetch 0x0
        assert c.stats.useless_prefetches == 1

    def test_used_prefetch_not_useless_on_eviction(self):
        c = Cache("t", 64 * 2, 64, 2)
        c.fill(0x0, prefetch=True)
        c.access(0x0)
        c.fill(0x40)
        c.fill(0x80)
        assert c.stats.useless_prefetches == 0

    def test_demand_fill_over_prefetched_line_marks_used(self):
        c = Cache("t", 64 * 2, 64, 2)
        c.fill(0x0, prefetch=True)
        c.fill(0x0)                          # demand fill of same line
        c.fill(0x40)
        c.fill(0x80)
        assert c.stats.useless_prefetches == 0


class TestWritebacks:
    def test_dirty_eviction_counts_writeback(self):
        c = Cache("t", 64 * 2, 64, 2)
        c.fill(0x0, dirty=True)
        c.fill(0x40)
        c.fill(0x80)
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = Cache("t", 64 * 2, 64, 2)
        c.fill(0x0)
        c.fill(0x40)
        c.fill(0x80)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = Cache("t", 64 * 2, 64, 2)
        c.fill(0x0)
        c.access(0x0, is_write=True)
        c.fill(0x40)
        c.fill(0x80)
        assert c.stats.writebacks == 1


class TestInvalidate:
    def test_invalidate_range(self):
        c = make_cache()
        c.fill(0x1000)
        c.fill(0x1040)
        c.fill(0x2000)
        n = c.invalidate_range(0x1000, 128)
        assert n == 2
        assert not c.contains(0x1000)
        assert not c.contains(0x1040)
        assert c.contains(0x2000)

    def test_reset_stats_keeps_contents(self):
        c = make_cache()
        c.fill(0x1000)
        c.access(0x1000)
        c.reset_stats()
        assert c.stats.accesses == 0
        assert c.contains(0x1000)


class TestHierarchy:
    def make(self):
        l1 = Cache("l1", 64 * 4, 64, 4)
        l2 = Cache("l2", 64 * 16, 64, 4)
        llc = Cache("llc", 64 * 64, 64, 4)
        return CacheHierarchy(l1, l2, llc), l1, l2, llc

    def test_first_access_goes_to_dram(self):
        h, *_ = self.make()
        assert h.access(0x1000) == DRAM

    def test_second_access_hits_l1(self):
        h, *_ = self.make()
        h.access(0x1000)
        assert h.access(0x1000) == L1

    def test_l1_eviction_falls_to_l2(self):
        h, l1, l2, llc = self.make()
        h.access(0x0)
        # Fill the single-set-conflicting lines to evict 0x0 from L1.
        for i in range(1, 5):
            h.access(i * 64 * l1.n_sets)
        level = h.access(0x0)
        assert level in (L2, L3)

    def test_no_llc_hierarchy(self):
        l1 = Cache("l1", 64 * 4, 64, 4)
        l2 = Cache("l2", 64 * 16, 64, 4)
        h = CacheHierarchy(l1, l2, None)
        assert h.access(0x1000) == L3        # memory level when 2-level


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                max_size=400))
@settings(max_examples=50, deadline=None)
def test_property_occupancy_never_exceeds_capacity(addrs):
    c = Cache("p", 2048, 64, 4)              # 32 lines
    for a in addrs:
        if not c.access(a):
            c.fill(a)
    assert c.occupancy <= 32


@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_access_after_fill_always_hits(addrs):
    c = Cache("p", 4096, 64, 8)
    for a in addrs:
        c.fill(a)
        assert c.access(a), f"just-filled line {a:#x} must hit (MRU)"


@given(st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1,
                max_size=300))
@settings(max_examples=50, deadline=None)
def test_property_stats_are_consistent(addrs):
    c = Cache("p", 1024, 64, 2)
    for a in addrs:
        if not c.access(a):
            c.fill(a)
    st_ = c.stats
    assert st_.hits + st_.misses == st_.accesses
    assert 0.0 <= st_.miss_rate <= 1.0
    assert st_.demand_accesses == len(addrs)


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=5,
                max_size=100))
@settings(max_examples=30, deadline=None)
def test_property_contains_agrees_with_hit(line_ids):
    c = Cache("p", 2048, 64, 4)
    for lid in line_ids:
        addr = lid * 64
        expected = c.contains(addr)
        assert c.access(addr) == expected
        if not expected:
            c.fill(addr)
