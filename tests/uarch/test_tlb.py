"""Unit tests for the TLB models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.tlb import (Tlb, TlbHierarchy, TLB_L1, TLB_STLB, TLB_WALK)

PAGE = 4096


class TestTlb:
    def test_miss_then_fill_then_hit(self):
        t = Tlb("t", 8)
        assert not t.access(0x1000)
        t.fill(0x1000)
        assert t.access(0x1234)              # same page

    def test_different_pages_are_distinct(self):
        t = Tlb("t", 8)
        t.fill(0)
        assert not t.access(PAGE)

    def test_fully_associative_when_ways_omitted(self):
        t = Tlb("t", 8)
        assert t.ways == 8
        assert t.n_sets == 1

    def test_set_associative_geometry(self):
        t = Tlb("t", 16, ways=4)
        assert t.n_sets == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Tlb("t", 12, ways=5)

    def test_lru_eviction(self):
        t = Tlb("t", 2)
        t.fill(0 * PAGE)
        t.fill(1 * PAGE)
        t.access(0)                           # page 0 -> MRU
        t.fill(2 * PAGE)                      # evicts page 1
        assert t.access(0)
        assert not t.access(1 * PAGE)

    def test_fill_idempotent(self):
        t = Tlb("t", 2)
        t.fill(0)
        t.fill(0)
        t.fill(PAGE)
        assert t.access(0)

    def test_stats(self):
        t = Tlb("t", 4)
        t.access(0)
        t.fill(0)
        t.access(0)
        assert t.stats.accesses == 2
        assert t.stats.misses == 1

    def test_reset_stats(self):
        t = Tlb("t", 4)
        t.access(0)
        t.reset_stats()
        assert t.stats.accesses == 0


class TestHierarchy:
    def test_walk_then_stlb_then_l1(self):
        h = TlbHierarchy(Tlb("l1", 2), Tlb("stlb", 8))
        assert h.access(0x1000) == TLB_WALK
        assert h.access(0x1000) == TLB_L1
        # Push the entry out of the small L1 but keep it in the STLB.
        h.access(0x10000)
        h.access(0x20000)
        assert h.access(0x1000) == TLB_STLB

    def test_walks_counted_on_l1(self):
        h = TlbHierarchy(Tlb("l1", 2), Tlb("stlb", 8))
        h.access(0)
        h.access(PAGE)
        assert h.l1.stats.walks == 2

    def test_no_stlb(self):
        h = TlbHierarchy(Tlb("l1", 2), None)
        assert h.access(0) == TLB_WALK
        assert h.access(0) == TLB_L1


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=300))
@settings(max_examples=50, deadline=None)
def test_property_tlb_capacity_and_mru(pages):
    t = Tlb("p", 16, ways=4)
    for p in pages:
        addr = p * PAGE
        if not t.access(addr):
            t.fill(addr)
            assert t.access(addr)            # just-filled page must hit
    total_entries = sum(len(b) for b in t._sets)
    assert total_entries <= 16
