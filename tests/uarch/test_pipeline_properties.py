"""Property-based tests: pipeline invariants under arbitrary op streams."""

from hypothesis import given, settings, strategies as st

from repro.kernel.vm import VirtualMemory
from repro.trace import OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE
from repro.uarch.machine import arm_server, i9_9980xe, xeon_e5_2620v4
from repro.uarch.pipeline import Core, WorkloadHints
from repro.uarch.topdown import profile_core

ADDR = st.integers(min_value=0, max_value=(1 << 44) - 1)

OPS = st.one_of(
    st.tuples(st.just(OP_LOAD), ADDR),
    st.tuples(st.just(OP_STORE), ADDR),
    st.tuples(st.just(OP_BLOCK), ADDR, st.integers(1, 200),
              st.integers(4, 1024), st.booleans()),
    st.tuples(st.just(OP_BRANCH), ADDR, ADDR, st.booleans()),
    st.tuples(st.just(OP_EVENT), st.just("gc/triggered"), st.none()),
)


def run_stream(ops, machine=None, hints=None):
    core = Core(machine or i9_9980xe(), VirtualMemory())
    core.set_hints(hints or WorkloadHints())
    core.consume(list(ops))
    return core


@given(st.lists(OPS, min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_topdown_sums_to_one(ops):
    core = run_stream(ops)
    if core.counts.instructions == 0:
        return
    td = profile_core(core)
    total = (td.retiring + td.bad_speculation + td.frontend_bound
             + td.backend_bound)
    assert abs(total - 1.0) < 1e-6
    for value in (td.retiring, td.bad_speculation, td.frontend_bound,
                  td.backend_bound):
        assert value >= -1e-12


@given(st.lists(OPS, min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_counts_consistent(ops):
    core = run_stream(ops)
    c = core.counts
    expected = sum(op[2] if op[0] == OP_BLOCK else 1
                   for op in ops if op[0] != OP_EVENT)
    assert c.instructions == expected
    assert c.kernel_instructions <= c.instructions
    assert c.loads == sum(1 for op in ops if op[0] == OP_LOAD)
    assert c.stores == sum(1 for op in ops if op[0] == OP_STORE)
    assert c.branches == sum(1 for op in ops if op[0] == OP_BRANCH)
    assert core.cycles >= c.uops / core.machine.pipeline_width - 1e-9


@given(st.lists(OPS, min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_property_deterministic_across_runs(ops):
    a = run_stream(ops)
    b = run_stream(ops)
    assert a.counts == b.counts
    assert a.cycles == b.cycles
    assert a.stalls == b.stalls


@given(st.lists(OPS, min_size=1, max_size=150))
@settings(max_examples=30, deadline=None)
def test_property_all_machines_accept_any_stream(ops):
    for machine in (i9_9980xe(), xeon_e5_2620v4(), arm_server()):
        core = run_stream(ops, machine=machine)
        assert core.cycles >= 0


@given(st.lists(OPS, min_size=10, max_size=200))
@settings(max_examples=30, deadline=None)
def test_property_reset_stats_idempotent_books(ops):
    core = run_stream(ops)
    core.reset_stats()
    assert core.counts.instructions == 0
    assert core.cycles == 0.0
    assert all(v == 0.0 for v in core.stalls.values())
    # The same stream still runs after a reset (state stays coherent).
    core.consume(list(ops))
    assert core.counts.instructions > 0


@given(st.lists(OPS, min_size=1, max_size=200),
       st.floats(min_value=1.0, max_value=4.0),
       st.floats(min_value=1.0, max_value=8.0))
@settings(max_examples=30, deadline=None)
def test_property_hints_scale_sanely(ops, ilp, mlp):
    base = run_stream(ops, hints=WorkloadHints(ilp=2.0, mlp=2.0))
    varied = run_stream(ops, hints=WorkloadHints(ilp=ilp, mlp=mlp))
    # Higher ILP/MLP never increases cycles for the identical stream.
    if ilp >= 2.0 and mlp >= 2.0:
        assert varied.cycles <= base.cycles + 1e-6
