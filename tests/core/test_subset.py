"""Tests for representative-subset selection and SPECspeed validation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.subset import (composite_score, optimum_subset, pca_scores,
                               select_representatives, speed_scores,
                               subset_accuracy, validate_subset)


def blob_names_scores(seed=0, k=4, per=6):
    rng = np.random.default_rng(seed)
    pts, names = [], []
    for c in range(k):
        center = rng.normal(scale=10, size=4)
        for i in range(per):
            pts.append(center + rng.normal(scale=0.3, size=4))
            names.append(f"c{c}_w{i}")
    return names, np.vstack(pts)


class TestSpeedScores:
    def test_basic_ratio(self):
        s = speed_scores({"a": 2.0, "b": 4.0}, {"a": 1.0, "b": 1.0})
        assert s == {"a": 2.0, "b": 4.0}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speed_scores({"a": 0.0}, {"a": 1.0})

    def test_composite_is_geomean(self):
        scores = {"a": 2.0, "b": 8.0}
        assert composite_score(scores) == pytest.approx(4.0)

    def test_composite_subset(self):
        scores = {"a": 2.0, "b": 8.0, "c": 100.0}
        assert composite_score(scores, ["a", "b"]) == pytest.approx(4.0)

    def test_composite_empty_rejected(self):
        with pytest.raises(ValueError):
            composite_score({"a": 1.0}, [])

    def test_full_subset_accuracy_is_100(self):
        scores = {"a": 1.5, "b": 2.5, "c": 0.7}
        assert subset_accuracy(scores, list(scores)) == pytest.approx(100.0)

    def test_accuracy_symmetric_under_over(self):
        scores = {"a": 1.0, "b": 4.0}
        acc_low = subset_accuracy(scores, ["a"])    # composite 2.0 vs 1.0
        acc_high = subset_accuracy(scores, ["b"])
        assert acc_low == pytest.approx(acc_high)

    def test_validate_subset_record(self):
        scores = {"a": 1.0, "b": 4.0}
        v = validate_subset("Subset A", scores, ["a"])
        assert v.label == "Subset A"
        assert v.composite_full == pytest.approx(2.0)
        assert v.accuracy_percent == pytest.approx(50.0)


class TestRepresentativeSelection:
    def test_one_per_cluster(self):
        names, scores = blob_names_scores(k=4)
        reps = select_representatives(names, scores, k=4, seed=1)
        assert len(reps) == 4
        clusters = {n.split("_")[0] for n in reps}
        assert len(clusters) == 4           # one from each blob

    def test_prefer_list_wins_ties(self):
        names, scores = blob_names_scores(k=3)
        prefer = ("c0_w3", "c1_w2", "c2_w5")
        reps = select_representatives(names, scores, k=3, prefer=prefer)
        assert set(reps) == set(prefer)

    def test_seeded_determinism(self):
        names, scores = blob_names_scores(k=4)
        a = select_representatives(names, scores, 4, seed=9)
        b = select_representatives(names, scores, 4, seed=9)
        assert a == b

    def test_length_mismatch_rejected(self):
        names, scores = blob_names_scores()
        with pytest.raises(ValueError):
            select_representatives(names[:-1], scores, 4)

    def test_pca_scores_shape(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 24))
        assert pca_scores(X, 4).shape == (30, 4)


class TestOptimumSubset:
    def test_optimum_at_least_as_good_as_random_pick(self):
        names, scores_matrix = blob_names_scores(k=3, per=4)
        rng = np.random.default_rng(2)
        speed = {n: float(np.exp(rng.normal(0.4, 0.2))) for n in names}
        reps = select_representatives(names, scores_matrix, 3, seed=0)
        opt = optimum_subset(names, scores_matrix, speed, 3)
        assert subset_accuracy(speed, opt) \
            >= subset_accuracy(speed, reps) - 1e-9

    def test_random_search_path(self):
        names, scores_matrix = blob_names_scores(k=3, per=7)
        rng = np.random.default_rng(3)
        speed = {n: float(np.exp(rng.normal(0.4, 0.2))) for n in names}
        opt = optimum_subset(names, scores_matrix, speed, 3,
                             max_exhaustive=10, search_samples=500, seed=1)
        assert len(opt) == 3


@given(st.dictionaries(st.text(alphabet="abcdefgh", min_size=1, max_size=4),
                       st.floats(min_value=0.1, max_value=10),
                       min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_property_composite_bounded_by_extremes(scores):
    comp = composite_score(scores)
    assert min(scores.values()) - 1e-9 <= comp <= max(scores.values()) + 1e-9


@given(st.lists(st.floats(min_value=0.2, max_value=5.0), min_size=2,
                max_size=10))
@settings(max_examples=40, deadline=None)
def test_property_accuracy_in_0_100(values):
    scores = {f"w{i}": v for i, v in enumerate(values)}
    acc = subset_accuracy(scores, ["w0"])
    assert 0 < acc <= 100.0
