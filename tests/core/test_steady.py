"""Tests for the §III-A steady-state / variance methodology."""

import pytest

from repro.core.steady import (VarianceReport, WindowMeasurement,
                               coefficient_of_variation, find_min_warmup,
                               measure_after_warmup, repeated_runs)
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs


def spec_of(name):
    return next(s for s in dotnet_category_specs() if s.name == name)


def window(i, cpi):
    return WindowMeasurement(index=i, instructions=1000, cycles=cpi * 1000,
                             cpi=cpi, l1i_mpki=1.0, llc_mpki=0.1,
                             jit_started=0)


class TestCoefficientOfVariation:
    def test_constant_is_zero(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        # mean 10, sample std 1 -> CV 0.1
        cv = coefficient_of_variation([9.0, 10.0, 11.0])
        assert cv == pytest.approx(0.1)

    def test_short_series_zero(self):
        assert coefficient_of_variation([5.0]) == 0.0

    def test_zero_mean_safe(self):
        assert coefficient_of_variation([-1.0, 1.0]) == 0.0


class TestVarianceReport:
    def test_discard_first(self):
        r = VarianceReport(windows=(window(0, 9.0), window(1, 1.0),
                                    window(2, 1.0)),
                           discarded_first=True)
        assert len(r.measured) == 2
        assert r.cpi_cv == 0.0
        assert r.mean_cpi == pytest.approx(1.0)

    def test_steady_threshold(self):
        steady = VarianceReport(
            windows=(window(0, 1.0), window(1, 1.01), window(2, 0.99)),
            discarded_first=False)
        assert steady.is_steady(0.05)
        noisy = VarianceReport(
            windows=(window(0, 1.0), window(1, 2.0), window(2, 0.5)),
            discarded_first=False)
        assert not noisy.is_steady(0.05)


class TestRepeatedRuns:
    """The microbenchmark protocol: 15 runs, first discarded (§III-A)."""

    def test_first_window_is_the_cold_one(self):
        report = repeated_runs(spec_of("System.Runtime"),
                               get_machine("i9"), runs=6,
                               window_instructions=25_000)
        cold = report.windows[0]
        warm_cpis = [w.cpi for w in report.measured]
        # Cold start: worse CPI and more JIT than the steady windows.
        assert cold.cpi > min(warm_cpis)
        assert cold.jit_started >= max(w.jit_started
                                       for w in report.measured[2:])

    def test_steady_state_reached(self):
        # SeekUnroll: tiny method set, no tiering — fully warm quickly.
        report = repeated_runs(spec_of("SeekUnroll"),
                               get_machine("i9"), runs=8,
                               window_instructions=25_000)
        # Dropping early windows, the remainder is steady per the paper's
        # 5% criterion.
        tail = VarianceReport(windows=report.windows[3:],
                              discarded_first=False)
        assert tail.is_steady(0.05)


class TestWarmupSearch:
    """The ASP.NET protocol: progressively reduce warmup (§III-A)."""

    def test_finds_acceptable_warmup(self):
        result = find_min_warmup(spec_of("System.MathBenchmarks"),
                                 get_machine("i9"),
                                 max_warmup=100_000, min_warmup=12_500,
                                 windows=3, window_instructions=20_000)
        assert result.min_warmup_instructions <= 100_000
        assert result.reports
        warmups = [w for w, _ in result.reports]
        assert warmups == sorted(warmups, reverse=True)

    def test_accepted_reports_are_steady(self):
        result = find_min_warmup(spec_of("System.MathBenchmarks"),
                                 get_machine("i9"),
                                 max_warmup=50_000, min_warmup=12_500,
                                 windows=3, window_instructions=20_000)
        for warmup, report in result.accepted():
            assert report.is_steady()

    def test_measure_after_warmup_no_discard(self):
        report = measure_after_warmup(spec_of("System.Runtime"),
                                      get_machine("i9"),
                                      warmup_instructions=40_000,
                                      windows=3,
                                      window_instructions=15_000)
        assert not report.discarded_first
        assert len(report.measured) == 3
