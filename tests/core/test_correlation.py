"""Tests for the Pearson correlation analysis (§VII-A)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import (correlate_many, correlate_series,
                                    event_effect, pearson)
from repro.perf.sampler import SampleSeries


def make_series(**columns):
    n = max(len(v) for v in columns.values())
    s = SampleSeries(1e-3)
    for name, values in columns.items():
        s.columns[name] = list(values)
    # Pad the standard columns so __len__ works.
    s.columns["instructions"] = [1000.0] * n
    return s


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert abs(pearson(x, y)) < 0.05

    def test_constant_series_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_short_series_returns_zero(self):
        assert pearson([1], [2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=200)
        y = x * 0.5 + rng.normal(size=200)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestCorrelateSeries:
    def test_zero_lag_correlation(self):
        ev = [0, 1, 0, 1, 0, 1, 0, 1] * 8
        ct = [v * 2.0 + 1 for v in ev]
        s = make_series(jit_started=ev, llc_mpki=ct)
        r = correlate_series(s, "jit_started", "llc_mpki", max_lag=3)
        assert r.r == pytest.approx(1.0)
        assert r.best_lag == 0

    def test_detects_lagged_response(self):
        """The paper observed counter changes 10us-5ms AFTER the event."""
        rng = np.random.default_rng(2)
        ev = (rng.random(120) < 0.3).astype(float)
        ct = np.roll(ev, 2) * 5 + rng.normal(0, 0.1, 120)
        s = make_series(jit_started=ev, branch_mpki=ct)
        r = correlate_series(s, "jit_started", "branch_mpki", max_lag=4)
        assert r.best_lag == 2
        assert r.r > 0.8

    def test_negative_correlation_reported(self):
        ev = [0, 1] * 30
        ct = [5 - 3 * v for v in ev]
        s = make_series(gc_triggered=ev, llc_mpki=ct)
        r = correlate_series(s, "gc_triggered", "llc_mpki", max_lag=0)
        assert r.r == pytest.approx(-1.0)

    def test_correlate_many(self):
        ev = [0, 1] * 30
        s = make_series(jit_started=ev,
                        llc_mpki=[v * 2.0 for v in ev],
                        page_faults=[1.0 - v for v in ev])
        rs = correlate_many(s, "jit_started", ("llc_mpki", "page_faults"),
                            max_lag=0)
        assert rs[0].r > 0.99 and rs[1].r < -0.99


class TestEventEffect:
    def test_positive_effect(self):
        ev = [0, 0, 1, 1]
        ct = [10.0, 10.0, 12.0, 12.0]
        s = make_series(gc_triggered=ev, ipc=ct)
        assert event_effect(s, "gc_triggered", "ipc") \
            == pytest.approx(0.2)

    def test_negative_effect(self):
        ev = [0, 0, 1, 1]
        ct = [10.0, 10.0, 9.0, 9.0]
        s = make_series(gc_triggered=ev, llc_mpki=ct)
        assert event_effect(s, "gc_triggered", "llc_mpki") \
            == pytest.approx(-0.1)

    def test_degenerate_all_active(self):
        s = make_series(gc_triggered=[1, 1], llc_mpki=[1.0, 2.0])
        assert event_effect(s, "gc_triggered", "llc_mpki") == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                max_size=100),
       st.floats(min_value=0.1, max_value=100),
       st.floats(min_value=-100, max_value=100))
@settings(max_examples=50, deadline=None)
def test_property_pearson_affine_invariant(xs, scale, shift):
    from hypothesis import assume
    spread = max(xs) - min(xs)
    assume(spread > 1e-6 * max(1.0, max(abs(x) for x in xs)))
    ys = [scale * x + shift for x in xs]
    assert pearson(xs, ys) == pytest.approx(1.0, abs=1e-6)


@given(st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                min_size=2, max_size=80))
@settings(max_examples=50, deadline=None)
def test_property_pearson_bounded(pairs):
    xs, ys = zip(*pairs)
    assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9
