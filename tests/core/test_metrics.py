"""Tests for the Table I metric layer."""

import numpy as np
import pytest

from repro.core.metrics import (CONTROL_FLOW_IDS, MEMORY_IDS, METRICS,
                                METRIC_NAMES, N_METRICS, RUNTIME_EVENT_IDS,
                                MetricMatrix, metric_vector)
from repro.perf.counters import CounterSnapshot


def snapshot(**kw):
    defaults = dict(instructions=100_000, kernel_instructions=20_000,
                    branches=16_000, loads=29_000, stores=15_000,
                    cycles=150_000.0, seconds=0.001, cpu_utilization=0.5,
                    branch_misses=500, l1d_misses=1500, l1i_misses=400,
                    l2_misses=600, llc_misses=50, itlb_misses=30,
                    dtlb_load_misses=80, dtlb_store_misses=20,
                    dram_bytes_read=2_000_000, dram_bytes_written=500_000,
                    dram_row_hits=700, dram_row_misses=300, page_faults=10,
                    gc_triggered=2, allocation_ticks=40, jit_started=5,
                    exceptions=3, contentions=1)
    defaults.update(kw)
    return CounterSnapshot(**defaults)


class TestTable1Definitions:
    def test_24_metrics_with_paper_ids(self):
        assert N_METRICS == 24
        assert [m.id for m in METRICS] == list(range(24))

    def test_categories_match_paper(self):
        by_id = {m.id: m for m in METRICS}
        assert by_id[5].category == "CPI"
        assert by_id[7].category == "Branch"
        for i in (8, 9, 10, 11):
            assert by_id[i].category == "Cache"
        for i in (12, 13, 14):
            assert by_id[i].category == "TLB"
        for i in (19, 20):
            assert by_id[i].category == "Garbage Collection"

    def test_metric_subsets(self):
        assert CONTROL_FLOW_IDS == (2, 7)
        assert MEMORY_IDS == (8, 9, 10, 11, 12, 13, 14)
        assert RUNTIME_EVENT_IDS == (19, 20, 21, 22, 23)


class TestMetricVector:
    def test_length_and_finiteness(self):
        v = metric_vector(snapshot())
        assert v.shape == (24,)
        assert np.all(np.isfinite(v))

    def test_instruction_mix_values(self):
        v = metric_vector(snapshot())
        assert v[0] == pytest.approx(20.0)      # kernel %
        assert v[1] == pytest.approx(80.0)      # user %
        assert v[0] + v[1] == pytest.approx(100.0)
        assert v[2] == pytest.approx(16.0)      # branch %
        assert v[3] == pytest.approx(29.0)
        assert v[4] == pytest.approx(15.0)

    def test_cpi_and_utilization(self):
        v = metric_vector(snapshot())
        assert v[5] == pytest.approx(1.5)
        assert v[6] == pytest.approx(50.0)

    def test_mpki_normalization(self):
        v = metric_vector(snapshot())
        assert v[7] == pytest.approx(5.0)       # 500 / 100k * 1000
        assert v[11] == pytest.approx(0.5)

    def test_memory_metrics(self):
        v = metric_vector(snapshot())
        assert v[15] == pytest.approx(2000.0)   # MB/s
        assert v[16] == pytest.approx(500.0)
        assert v[17] == pytest.approx(30.0)     # page miss %
        assert v[18] == pytest.approx(0.1)      # faults PKI

    def test_runtime_event_pki(self):
        v = metric_vector(snapshot())
        assert v[19] == pytest.approx(0.02)
        assert v[21] == pytest.approx(0.05)

    def test_empty_snapshot_safe(self):
        v = metric_vector(CounterSnapshot())
        assert np.all(np.isfinite(v))


class TestMetricMatrix:
    def make(self):
        snaps = [snapshot(), snapshot(llc_misses=500),
                 snapshot(branches=30_000)]
        return MetricMatrix.from_snapshots(
            ["a", "b", "c"], snaps, suites=["s1", "s1", "s2"])

    def test_shape(self):
        m = self.make()
        assert len(m) == 3
        assert m.values.shape == (3, 24)

    def test_select_metrics(self):
        m = self.make()
        sub = m.select_metrics(MEMORY_IDS)
        assert sub.shape == (3, 7)
        assert np.allclose(sub[:, 3], m.values[:, 11])

    def test_row_lookup(self):
        m = self.make()
        assert np.allclose(m.row("b"), m.values[1])
        with pytest.raises(ValueError):
            m.row("nope")

    def test_filter_rows(self):
        m = self.make()
        f = m.filter_rows(lambda n: n != "b")
        assert f.names == ["a", "c"]
        assert f.suites == ["s1", "s2"]

    def test_concat(self):
        m = self.make()
        both = m.concat(m)
        assert len(both) == 6

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            MetricMatrix(["a"], np.zeros((2, 24)))
        with pytest.raises(ValueError):
            MetricMatrix(["a"], np.zeros((1, 23)))

    def test_metric_names_export(self):
        assert len(METRIC_NAMES) == 24
        assert METRIC_NAMES[11] == "llc_mpki"
