"""Tests for from-scratch hierarchical clustering, incl. scipy cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import scipy.cluster.hierarchy as sch

from repro.core.clustering import (ClusterTree, Linkage, fcluster,
                                   linkage_matrix)


def blobs(seed=0, centers=((0, 0), (10, 10), (-8, 6)), per=8, spread=0.5):
    rng = np.random.default_rng(seed)
    pts = []
    for cx, cy in centers:
        pts.append(rng.normal((cx, cy), spread, size=(per, 2)))
    return np.vstack(pts)


def labels_equivalent(a, b):
    """Same partition up to label renaming."""
    mapping = {}
    for x, y in zip(a, b):
        if x in mapping:
            if mapping[x] != y:
                return False
        else:
            mapping[x] = y
    return len(set(mapping.values())) == len(mapping)


class TestLinkage:
    def test_shape(self):
        X = blobs()
        Z = linkage_matrix(X)
        assert Z.shape == (len(X) - 1, 4)

    def test_distances_monotone_for_average(self):
        Z = linkage_matrix(blobs(), Linkage.AVERAGE)
        d = Z[:, 2]
        assert np.all(np.diff(d) >= -1e-9)

    def test_sizes_accumulate(self):
        X = blobs()
        Z = linkage_matrix(X)
        assert Z[-1, 3] == len(X)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            linkage_matrix(np.zeros((1, 2)))

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            linkage_matrix(blobs(), "centroid")

    @pytest.mark.parametrize("method", [Linkage.AVERAGE, Linkage.COMPLETE,
                                        Linkage.SINGLE, Linkage.WARD])
    def test_scipy_crosscheck_partitions(self, method):
        """Cutting at the natural cluster count must match scipy."""
        X = blobs(seed=3)
        ours = fcluster(linkage_matrix(X, method), 3)
        theirs = sch.fcluster(sch.linkage(X, method=method), 3,
                              criterion="maxclust")
        assert labels_equivalent(ours, theirs)

    @pytest.mark.parametrize("method", [Linkage.AVERAGE, Linkage.WARD])
    def test_scipy_crosscheck_merge_distances(self, method):
        X = blobs(seed=5)
        ours = linkage_matrix(X, method)[:, 2]
        theirs = sch.linkage(X, method=method)[:, 2]
        assert np.allclose(ours, theirs, rtol=1e-8)


class TestFcluster:
    def test_k_equals_n_all_singletons(self):
        X = blobs(per=3)
        Z = linkage_matrix(X)
        labels = fcluster(Z, len(X))
        assert len(set(labels)) == len(X)

    def test_k_one_single_cluster(self):
        X = blobs(per=3)
        labels = fcluster(linkage_matrix(X), 1)
        assert len(set(labels)) == 1

    def test_natural_clusters_recovered(self):
        X = blobs(seed=1)
        labels = fcluster(linkage_matrix(X), 3)
        # Each group of 8 consecutive points came from one blob.
        for g in range(3):
            assert len(set(labels[g * 8:(g + 1) * 8])) == 1

    def test_rejects_bad_k(self):
        Z = linkage_matrix(blobs(per=2))
        with pytest.raises(ValueError):
            fcluster(Z, 0)
        with pytest.raises(ValueError):
            fcluster(Z, 100)


class TestClusterTree:
    def test_cut_returns_name_groups(self):
        X = blobs(per=2)
        names = [f"w{i}" for i in range(len(X))]
        tree = ClusterTree(linkage_matrix(X), names)
        groups = tree.cut(3)
        assert len(groups) == 3
        assert sorted(n for g in groups for n in g) == sorted(names)

    def test_leaf_order_is_permutation(self):
        X = blobs(per=2)
        names = [f"w{i}" for i in range(len(X))]
        tree = ClusterTree(linkage_matrix(X), names)
        assert sorted(tree.leaf_order()) == sorted(names)

    def test_render_contains_all_names(self):
        X = blobs(per=2)
        names = [f"bench{i}" for i in range(len(X))]
        text = ClusterTree(linkage_matrix(X), names).render(max_width=200)
        for n in names:
            assert n in text

    def test_cophenetic_distance_cluster_structure(self):
        X = blobs(seed=2)
        tree = ClusterTree(linkage_matrix(X))
        # Within-blob pairs join lower than cross-blob pairs.
        within = tree.cophenetic_distance(0, 1)
        across = tree.cophenetic_distance(0, 8)
        assert within < across

    def test_names_length_validated(self):
        Z = linkage_matrix(blobs(per=2))
        with pytest.raises(ValueError):
            ClusterTree(Z, ["too", "few"])


@given(st.integers(min_value=2, max_value=40), st.integers(0, 10 ** 6))
@settings(max_examples=25, deadline=None)
def test_property_linkage_well_formed(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    Z = linkage_matrix(X)
    assert Z.shape == (n - 1, 4)
    ids_used = set()
    for t in range(n - 1):
        a, b = int(Z[t, 0]), int(Z[t, 1])
        assert a != b
        assert a < n + t and b < n + t
        assert a not in ids_used and b not in ids_used
        ids_used.update((a, b))
    for k in range(1, n + 1):
        labels = fcluster(Z, k)
        assert len(set(labels)) == k
