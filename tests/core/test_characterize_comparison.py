"""Tests for Table III construction and the Fig 5-7 comparisons."""

import numpy as np
import pytest

from repro.core.characterize import characterization_pca
from repro.core.comparison import compare_suites, relabelled
from repro.core.metrics import (CONTROL_FLOW_IDS, MEMORY_IDS, MetricMatrix,
                                N_METRICS)


def synth_matrix(seed=0, tight_suite_std=0.3, wide_suite_std=3.0):
    """Two suites: one tightly clustered, one widely spread."""
    rng = np.random.default_rng(seed)
    rows, names, suites = [], [], []
    center = rng.normal(5, 2, N_METRICS)
    for i in range(20):
        rows.append(np.abs(center + rng.normal(0, tight_suite_std,
                                               N_METRICS)))
        names.append(f"tight{i}")
        suites.append("tight")
    for i in range(20):
        rows.append(np.abs(center + rng.normal(0, wide_suite_std,
                                               N_METRICS)))
        names.append(f"wide{i}")
        suites.append("wide")
    return MetricMatrix(names, np.vstack(rows), suites)


class TestCharacterizationPca:
    def test_table3_structure(self):
        result = characterization_pca(synth_matrix(), n_components=4)
        assert len(result.prcos) == 4
        for i, prco in enumerate(result.prcos):
            assert prco.index == i + 1
            assert len(prco.top_metrics) == 3
            assert 0 <= prco.variance_share <= 1
        shares = [p.variance_share for p in result.prcos]
        assert shares == sorted(shares, reverse=True)

    def test_cumulative_variance(self):
        result = characterization_pca(synth_matrix())
        assert result.cumulative_variance_4 == pytest.approx(
            sum(p.variance_share for p in result.prcos))

    def test_top_metrics_are_table1_names(self):
        from repro.core.metrics import METRIC_NAMES
        result = characterization_pca(synth_matrix())
        for prco in result.prcos:
            for row in prco.top_metrics:
                assert row.metric in METRIC_NAMES

    def test_scores_shape(self):
        m = synth_matrix()
        result = characterization_pca(m)
        assert result.scores(4).shape == (len(m), 4)


class TestCompareSuites:
    def test_groups_partition_rows(self):
        m = synth_matrix()
        cmp = compare_suites(m, CONTROL_FLOW_IDS)
        assert {g.label for g in cmp.groups} == {"tight", "wide"}
        assert sum(len(g.points) for g in cmp.groups) == len(m)

    def test_std_ratio_detects_spread(self):
        """The paper's Fig 5/6 claim style: one suite is X times more
        spread than another in PC space."""
        m = synth_matrix()
        cmp = compare_suites(m, MEMORY_IDS)
        ratio = cmp.std_ratio("wide", "tight")
        assert ratio > 2.0

    def test_std_ratio_per_pc(self):
        cmp = compare_suites(synth_matrix(), MEMORY_IDS)
        r1, r2 = cmp.std_ratio_per_pc("wide", "tight")
        assert r1 > 1.0 and r2 > 0.5

    def test_control_flow_two_metrics_two_pcs(self):
        cmp = compare_suites(synth_matrix(), CONTROL_FLOW_IDS)
        assert cmp.pca.components.shape[1] == 2

    def test_unknown_group(self):
        cmp = compare_suites(synth_matrix(), MEMORY_IDS)
        with pytest.raises(KeyError):
            cmp.group("nope")

    def test_relabelled(self):
        m = synth_matrix()
        r = relabelled(m, "x86-64")
        assert set(r.suites) == {"x86-64"}
        assert r.names == m.names
