"""Tests for the from-scratch PCA (§IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.pca import (PcaResult, cumulative_variance, pca,
                            standardize, top_loadings)


def random_matrix(n=60, d=8, seed=0):
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 3))
    mixing = rng.normal(size=(3, d))
    return latent @ mixing + 0.1 * rng.normal(size=(n, d))


class TestStandardize:
    def test_zero_mean_unit_std(self):
        Z, mean, std = standardize(random_matrix())
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-12)

    def test_constant_column_safe(self):
        X = np.ones((10, 3))
        X[:, 1] = np.arange(10)
        Z, mean, std = standardize(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0)


class TestPca:
    def test_variance_ratios_descending(self):
        r = pca(random_matrix())
        ratios = r.explained_variance_ratio
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_three_latent_factors_dominate(self):
        r = pca(random_matrix())
        assert cumulative_variance(r, 3) > 0.9

    def test_components_orthonormal(self):
        r = pca(random_matrix(), n_components=4)
        gram = r.components @ r.components.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_scores_match_transform(self):
        X = random_matrix()
        r = pca(X, n_components=4)
        assert np.allclose(r.transform(X), r.scores[:, :4], atol=1e-9)

    def test_sign_convention_deterministic(self):
        X = random_matrix()
        a = pca(X, 4)
        b = pca(X.copy(), 4)
        assert np.allclose(a.components, b.components)
        for row in a.components:
            assert row[np.argmax(np.abs(row))] > 0

    def test_covariance_eigenvalue_equivalence(self):
        """Cross-check against a direct correlation-matrix eig."""
        X = random_matrix()
        Z, *_ = standardize(X)
        corr = np.corrcoef(Z, rowvar=False)
        ref = np.sort(np.linalg.eigvalsh(corr))[::-1]
        r = pca(X)
        total = ref.sum()
        assert np.allclose(r.explained_variance_ratio[:4],
                           ref[:4] / total, atol=1e-8)

    def test_n_components_capped_at_dims(self):
        r = pca(random_matrix(d=5), n_components=50)
        assert r.n_components == 5

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            pca(np.zeros(5))
        with pytest.raises(ValueError):
            pca(np.zeros((1, 5)))

    def test_standardization_gives_negative_loadings(self):
        """Paper: 'There are negative loading factors since we perform
        data standardization before the PCA.'"""
        X = random_matrix()
        r = pca(X, 4)
        assert (r.components < 0).any()


class TestTopLoadings:
    def test_descending_magnitude(self):
        r = pca(random_matrix(), 4)
        loads = top_loadings(r, 0, k=5)
        mags = [abs(v) for _, v in loads]
        assert mags == sorted(mags, reverse=True)

    def test_names_used(self):
        r = pca(random_matrix(d=4), 2)
        names = ("a", "b", "c", "d")
        loads = top_loadings(r, 0, k=2, names=names)
        assert all(n in names for n, _ in loads)


@given(arrays(np.float64, (12, 6),
              elements=st.floats(min_value=-100, max_value=100,
                                 allow_nan=False)))
@settings(max_examples=40, deadline=None)
def test_property_pca_invariants(X):
    r = pca(X)
    assert r.explained_variance_ratio.sum() <= 1.0 + 1e-9
    assert np.all(r.explained_variance >= -1e-9)
    # Transforming the column means lands at the origin.
    assert np.allclose(r.transform(r.mean[None, :]), 0, atol=1e-8)


@given(st.integers(min_value=2, max_value=30))
@settings(max_examples=20, deadline=None)
def test_property_reconstruction_with_all_components(n):
    rng = np.random.default_rng(n)
    X = rng.normal(size=(20, 5))
    r = pca(X, n_components=5)
    Z, mean, std = standardize(X)
    reconstructed = r.scores[:, :5] @ r.components
    assert np.allclose(reconstructed, Z, atol=1e-8)
