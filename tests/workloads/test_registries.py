"""Tests for the three benchmark-suite registries (§II fidelity)."""

import random
from dataclasses import FrozenInstanceError

import pytest

from repro.paperdata import (TABLE4_ASPNET_SUBSET, TABLE4_DOTNET_SUBSET,
                             TABLE4_SPEC_SUBSET)
from repro.workloads.aspnet import ASPNET_BENCHMARKS, aspnet_specs
from repro.workloads.dotnet import (DOTNET_CATEGORIES,
                                    category_workload_count,
                                    dotnet_category_specs, dotnet_workloads,
                                    total_workload_count)
from repro.workloads.spec import SuiteName, WorkloadSpec
from repro.workloads.speccpu import SPEC_PROGRAMS, speccpu_specs


class TestDotnetRegistry:
    def test_44_categories(self):
        """§II-A: 44 categories."""
        assert len(DOTNET_CATEGORIES) == 44
        assert len(dotnet_category_specs()) == 44

    def test_2906_total_workloads(self):
        """§II-A: 2906 individual microbenchmarks."""
        assert total_workload_count() == 2906
        assert len(dotnet_workloads()) == 2906

    def test_category_counts_positive(self):
        for cat in DOTNET_CATEGORIES:
            assert category_workload_count(cat) > 0

    def test_table4_categories_exist(self):
        for name in TABLE4_DOTNET_SUBSET:
            assert name in DOTNET_CATEGORIES

    def test_unique_names(self):
        assert len(set(DOTNET_CATEGORIES)) == 44
        names = [w.name for w in dotnet_workloads()]
        assert len(set(names)) == len(names)

    def test_per_category_cap(self):
        ws = dotnet_workloads(per_category=3)
        per_cat = {}
        for w in ws:
            per_cat[w.category] = per_cat.get(w.category, 0) + 1
        assert all(c <= 3 for c in per_cat.values())
        assert len(per_cat) == 44

    def test_workload_generation_deterministic(self):
        a = dotnet_workloads(per_category=2, seed=5)
        b = dotnet_workloads(per_category=2, seed=5)
        assert a == b

    def test_variants_differ_from_template(self):
        ws = dotnet_workloads(per_category=4)
        by_cat = {}
        for w in ws:
            by_cat.setdefault(w.category, []).append(w)
        some = by_cat["System.Runtime"]
        assert len({w.n_methods for w in some}) > 1

    def test_all_managed(self):
        assert all(s.managed for s in dotnet_category_specs())

    def test_diagnostics_and_cscbench_are_outliers(self):
        """Fig 1: these two split off at the top of the dendrogram —
        they must be extreme in the registry (kernel share / code size)."""
        by_name = {s.name: s for s in dotnet_category_specs()}
        diag = by_name["System.Diagnostics"]
        csc = by_name["CscBench"]
        others = [s for s in dotnet_category_specs()
                  if s.name not in ("System.Diagnostics", "CscBench")]
        assert diag.syscalls_per_kinstr \
            > max(s.syscalls_per_kinstr for s in others)
        assert csc.n_methods > max(s.n_methods for s in others)


class TestAspnetRegistry:
    def test_53_benchmarks(self):
        """§II-B: 53 benchmarks."""
        assert len(ASPNET_BENCHMARKS) == 53
        assert len(aspnet_specs()) == 53

    def test_unique_names(self):
        assert len(set(ASPNET_BENCHMARKS)) == 53

    def test_table4_benchmarks_exist(self):
        for name in TABLE4_ASPNET_SUBSET:
            assert name in ASPNET_BENCHMARKS

    def test_all_have_request_loop(self):
        for s in aspnet_specs():
            assert s.suite == SuiteName.ASPNET
            assert s.response_bytes > 0 or s.request_bytes > 0

    def test_2mb_payloads(self):
        by_name = {s.name: s for s in aspnet_specs()}
        assert by_name["MvcJsonNetOutput2M"].response_bytes == 2 * 1024 * 1024
        assert by_name["MvcJsonNetInput2M"].request_bytes == 2 * 1024 * 1024

    def test_db_benchmarks_query(self):
        by_name = {s.name: s for s in aspnet_specs()}
        assert by_name["DbFortunesRaw"].db_queries_per_request >= 1
        assert by_name["MvcDbMultiUpdateRaw"].db_queries_per_request == 20
        assert by_name["Plaintext"].db_queries_per_request == 0

    def test_multithreaded(self):
        assert all(s.threads > 1 for s in aspnet_specs())


class TestSpecRegistry:
    def test_23_distinct_programs(self):
        assert len(SPEC_PROGRAMS) == 23
        assert len(set(SPEC_PROGRAMS)) == 23

    def test_table4_subset(self):
        subset = speccpu_specs(subset_only=True)
        assert [s.name for s in subset] == list(TABLE4_SPEC_SUBSET)

    def test_all_native(self):
        for s in speccpu_specs():
            assert not s.managed
            assert s.allocs_per_kinstr == 0.0
            assert s.syscalls_per_kinstr == 0.0

    def test_memory_monsters_have_big_working_sets(self):
        by_name = {s.name: s for s in speccpu_specs()}
        gb = 1024 ** 3
        assert by_name["mcf"].native_ws_bytes > 1 * gb
        assert by_name["bwaves"].native_ws_bytes > 1 * gb

    def test_fp_programs_low_branch(self):
        by_name = {s.name: s for s in speccpu_specs()}
        for name in ("bwaves", "lbm", "fotonik3d", "cactuBSSN", "wrf"):
            assert by_name[name].branch_frac < 0.10
            assert by_name[name].fp_heavy

    def test_branchy_int_programs(self):
        by_name = {s.name: s for s in speccpu_specs()}
        assert by_name["xalancbmk"].branch_frac > 0.2
        assert by_name["perlbench"].branch_frac > 0.2

    def test_spec_more_loads_fewer_stores_than_managed(self):
        """§V-B: SPEC loads GM ~35% vs ~29%; stores ~11.5% vs ~16%."""
        import numpy as np
        spec_loads = np.mean([s.load_frac for s in speccpu_specs(True)])
        spec_stores = np.mean([s.store_frac for s in speccpu_specs(True)])
        dn_loads = np.mean([s.load_frac for s in dotnet_category_specs()])
        dn_stores = np.mean([s.store_frac for s in dotnet_category_specs()])
        assert spec_loads > dn_loads
        assert spec_stores < dn_stores


class TestWorkloadSpec:
    def test_frozen(self):
        s = dotnet_category_specs()[0]
        with pytest.raises(FrozenInstanceError):
            s.n_methods = 5

    def test_varied_respects_overrides(self):
        s = dotnet_category_specs()[0]
        v = s.varied(random.Random(0), name="X")
        assert v.name == "X"
        assert v.category == s.category

    def test_varied_bounds(self):
        s = dotnet_category_specs()[0]
        rng = random.Random(1)
        for i in range(50):
            v = s.varied(rng, name=f"v{i}")
            assert v.n_methods >= 4
            assert 0.05 <= v.taken_bias <= 0.95
            assert v.mlp >= 1.1

    def test_hints_reflect_pointer_chasing(self):
        chaser = WorkloadSpec(name="x", suite="speccpu",
                              pointer_chase_frac=0.5)
        plain = WorkloadSpec(name="y", suite="speccpu")
        assert chaser.hints().mlp < plain.hints().mlp

    def test_mix_profile_roundtrip(self):
        s = dotnet_category_specs()[0]
        mix = s.mix_profile()
        assert mix.branch_frac == s.branch_frac
        assert mix.load_frac == s.load_frac

    def test_qualified_name(self):
        s = dotnet_category_specs()[0]
        assert s.qualified_name == f"dotnet/{s.name}"
