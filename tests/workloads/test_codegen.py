"""Tests for the synthetic code-region generator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import CodeRegion, MixProfile
from repro.trace import OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE


def walk_ops(region, n=2000, seed=1):
    rng = random.Random(seed)
    counter = iter(range(10 ** 9))
    return list(region.walk(rng, n,
                            load_addr=lambda: 0x1000 + next(counter) % 64,
                            store_addr=lambda: 0x2000))


class TestMixProfile:
    def test_rejects_overfull_mix(self):
        with pytest.raises(ValueError):
            MixProfile(branch_frac=0.3, load_frac=0.5, store_frac=0.3)

    def test_rejects_zero_branches(self):
        with pytest.raises(ValueError):
            MixProfile(branch_frac=0.0)

    def test_block_instructions(self):
        assert MixProfile(branch_frac=0.125).block_instructions == 8.0


class TestConstruction:
    def test_determinism(self):
        a = CodeRegion(0x1000, 64 * 1024, seed=42)
        b = CodeRegion(0x1000, 64 * 1024, seed=42)
        assert a._pc == b._pc
        assert a._p_taken == b._p_taken

    def test_different_seed_different_layout(self):
        a = CodeRegion(0x1000, 64 * 1024, seed=42)
        b = CodeRegion(0x1000, 64 * 1024, seed=43)
        assert a._p_taken != b._p_taken

    def test_rebased_same_structure_new_addresses(self):
        a = CodeRegion(0x1000, 64 * 1024, seed=42)
        b = a.rebased(0x9000_0000)
        assert b.base == 0x9000_0000
        assert b.n_blocks == a.n_blocks
        assert b._p_taken == a._p_taken
        assert all(pb - pa == 0x9000_0000 - 0x1000
                   for pa, pb in zip(a._pc, b._pc))

    def test_blocks_fit_region(self):
        r = CodeRegion(0x1000, 8192, seed=1)
        assert r.end <= 0x1000 + 8192 * 1.2

    def test_biases_in_bounds(self):
        r = CodeRegion(0x1000, 32 * 1024, seed=7)
        assert all(0.02 <= p <= 0.98 for p in r._p_taken)

    def test_huge_region_chunked(self):
        r = CodeRegion(0x1000, 8 * 1024 * 1024, seed=1)
        assert r.n_chunks == 8
        assert r.n_blocks <= 1024 * 1024 // 20

    def test_tiny_region_one_block(self):
        r = CodeRegion(0x1000, 16, seed=1)
        assert r.n_blocks >= 1


class TestWalk:
    def test_instruction_count_approximate(self):
        r = CodeRegion(0x1000, 64 * 1024, seed=5)
        ops = walk_ops(r, n=5000)
        n = sum(op[2] for op in ops if op[0] == OP_BLOCK)
        n += sum(1 for op in ops if op[0] in (OP_BRANCH, OP_LOAD, OP_STORE))
        assert 5000 <= n < 5000 * 1.4

    def test_mix_fractions_close_to_profile(self):
        mix = MixProfile(branch_frac=0.15, load_frac=0.3, store_frac=0.1,
                         loop_frac=0.0)
        r = CodeRegion(0x1000, 128 * 1024, seed=5, mix=mix)
        ops = walk_ops(r, n=30000)
        total = sum(op[2] for op in ops if op[0] == OP_BLOCK)
        loads = sum(1 for op in ops if op[0] == OP_LOAD)
        stores = sum(1 for op in ops if op[0] == OP_STORE)
        branches = sum(1 for op in ops if op[0] == OP_BRANCH)
        total += loads + stores + branches
        assert abs(loads / total - 0.3) < 0.06
        assert abs(stores / total - 0.1) < 0.05
        assert abs(branches / total - 0.15) < 0.05

    def test_pcs_within_region(self):
        r = CodeRegion(0x40_0000, 64 * 1024, seed=2)
        for op in walk_ops(r, n=3000):
            if op[0] in (OP_BLOCK, OP_BRANCH):
                assert 0x40_0000 <= op[1] < 0x40_0000 + 64 * 1024 * 2

    def test_branch_targets_within_region(self):
        r = CodeRegion(0x40_0000, 64 * 1024, seed=2)
        for op in walk_ops(r, n=3000):
            if op[0] == OP_BRANCH:
                assert 0x40_0000 <= op[2] < 0x40_0000 + 64 * 1024 * 2

    def test_kernel_flag_propagates(self):
        r = CodeRegion(0x1000, 8192, seed=1)
        rng = random.Random(0)
        ops = list(r.walk(rng, 500, lambda: 0, lambda: 0, is_kernel=True))
        assert all(op[4] for op in ops if op[0] == OP_BLOCK)

    def test_loop_blocks_repeat_backedge(self):
        mix = MixProfile(loop_frac=1.0, avg_loop_trips=5.0)
        r = CodeRegion(0x1000, 4096, seed=3, mix=mix)
        ops = walk_ops(r, n=1000)
        backedges = [op for op in ops if op[0] == OP_BRANCH
                     and op[2] <= op[1] and op[3]]
        assert backedges

    def test_entry_parameter_honored(self):
        r = CodeRegion(0x1000, 8192, seed=1)
        rng = random.Random(0)
        ops = list(r.walk(rng, 50, lambda: 0, lambda: 0, entry=0))
        first_block = next(op for op in ops if op[0] == OP_BLOCK)
        assert first_block[1] == r._pc[0]

    def test_same_seed_same_stream(self):
        r = CodeRegion(0x1000, 32 * 1024, seed=9)
        assert walk_ops(r, n=2000, seed=4) == walk_ops(r, n=2000, seed=4)

    def test_chunk_excursions_reach_high_addresses(self):
        r = CodeRegion(0x100_0000, 16 * 1024 * 1024, seed=1)
        rng = random.Random(0)
        pcs = [op[1] for op in r.walk(rng, 200_000, lambda: 0, lambda: 0)
               if op[0] == OP_BLOCK]
        assert max(pcs) >= 0x100_0000 + 1024 * 1024


@given(st.integers(min_value=256, max_value=256 * 1024),
       st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=25, deadline=None)
def test_property_walk_yields_valid_ops(size, seed):
    r = CodeRegion(0x1000, size, seed=seed)
    rng = random.Random(seed)
    for op in r.walk(rng, 400, lambda: 0x7000, lambda: 0x8000):
        assert op[0] in (OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE)
        if op[0] == OP_BLOCK:
            assert op[2] >= 0 and op[3] > 0
