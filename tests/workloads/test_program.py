"""Tests for program execution (managed / ASP.NET / native)."""

import itertools

from repro.kernel.vm import VirtualMemory
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         EV_GC_ALLOCATION_TICK, EV_JIT_STARTED,
                         EV_REQUEST_DONE)
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.program import (AspNetProgram, DataModel,
                                     ManagedProgram, NativeProgram,
                                     build_program)
from repro.workloads.speccpu import speccpu_specs

VALID_OPS = (OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE, OP_EVENT)


def spec_by_name(name):
    for s in (dotnet_category_specs() + aspnet_specs() + speccpu_specs()):
        if s.name == name:
            return s
    raise KeyError(name)


def take_ops(program, n_ops):
    return list(itertools.islice(program.ops(), n_ops))


def take_instructions(program, n_instr):
    out = []
    n = 0
    for op in program.ops():
        out.append(op)
        if op[0] == OP_BLOCK:
            n += op[2]
        elif op[0] != OP_EVENT:
            n += 1
        if n >= n_instr:
            break
    return out


class TestBuildProgram:
    def test_dispatch(self):
        assert isinstance(build_program(spec_by_name("mcf")), NativeProgram)
        assert isinstance(build_program(spec_by_name("Json")), AspNetProgram)
        p = build_program(spec_by_name("System.Runtime"))
        assert isinstance(p, ManagedProgram)
        assert not isinstance(p, AspNetProgram)


class TestManagedProgram:
    def test_valid_op_stream(self):
        p = build_program(spec_by_name("System.Runtime"), seed=1)
        for op in take_ops(p, 3000):
            assert op[0] in VALID_OPS

    def test_deterministic_stream(self):
        a = take_ops(build_program(spec_by_name("System.Linq"), seed=3), 2000)
        b = take_ops(build_program(spec_by_name("System.Linq"), seed=3), 2000)
        assert a == b

    def test_different_seeds_differ(self):
        a = take_ops(build_program(spec_by_name("System.Linq"), seed=3), 2000)
        b = take_ops(build_program(spec_by_name("System.Linq"), seed=4), 2000)
        assert a != b

    def test_jit_events_present_early(self):
        p = build_program(spec_by_name("System.Runtime"), seed=1)
        ops = take_instructions(p, 30_000)
        assert any(op[0] == OP_EVENT and op[1] == EV_JIT_STARTED
                   for op in ops)

    def test_allocation_ticks_for_allocating_category(self):
        p = build_program(spec_by_name("System.Collections"), seed=1)
        ops = take_instructions(p, 60_000)
        assert any(op[0] == OP_EVENT and op[1] == EV_GC_ALLOCATION_TICK
                   for op in ops)

    def test_kernel_share_follows_syscall_rate(self):
        def kernel_share(name, n=40_000):
            p = build_program(spec_by_name(name), seed=1)
            kern = user = 0
            for op in take_instructions(p, n):
                if op[0] == OP_BLOCK:
                    if op[4]:
                        kern += op[2]
                    else:
                        user += op[2]
            return kern / max(1, kern + user)

        assert kernel_share("System.Net") > 0.10
        assert kernel_share("System.MathBenchmarks") < 0.02

    def test_premap_prevents_stack_faults(self):
        p = build_program(spec_by_name("System.Runtime"), seed=1)
        vm = VirtualMemory()
        p.premap(vm)
        from repro.trace import REGION_STACK_BASE
        assert vm.is_mapped(REGION_STACK_BASE)


class TestAspnetProgram:
    def test_request_loop_emits_request_done(self):
        p = build_program(spec_by_name("Json"), seed=1)
        ops = take_instructions(p, 50_000)
        assert any(op[0] == OP_EVENT and op[1] == EV_REQUEST_DONE
                   for op in ops)

    def test_substantial_kernel_share(self):
        p = build_program(spec_by_name("Plaintext"), seed=1)
        kern = total = 0
        for op in take_instructions(p, 50_000):
            if op[0] == OP_BLOCK:
                total += op[2]
                if op[4]:
                    kern += op[2]
        assert kern / total > 0.25

    def test_db_benchmark_has_more_syscall_traffic(self):
        def kernel_blocks(name):
            p = build_program(spec_by_name(name), seed=1)
            return sum(op[2] for op in take_instructions(p, 60_000)
                       if op[0] == OP_BLOCK and op[4])

        assert kernel_blocks("DbMultiQueryRaw") > 0

    def test_2mb_output_interleaves_user_and_kernel(self):
        p = build_program(spec_by_name("MvcJsonNetOutput2M"), seed=1)
        modes = []
        for op in take_instructions(p, 150_000):
            if op[0] == OP_BLOCK:
                modes.append(op[4])
        # Mode should flip repeatedly (serialize/send interleaving), not
        # run one giant user phase followed by one giant kernel phase.
        flips = sum(1 for a, b in zip(modes, modes[1:]) if a != b)
        assert flips > 6


class TestNativeProgram:
    def test_no_runtime_events(self):
        p = build_program(spec_by_name("gcc"), seed=1)
        ops = take_instructions(p, 30_000)
        assert not any(op[0] == OP_EVENT for op in ops)

    def test_no_kernel_instructions(self):
        p = build_program(spec_by_name("gcc"), seed=1)
        for op in take_instructions(p, 30_000):
            if op[0] == OP_BLOCK:
                assert not op[4]

    def test_premap_covers_working_set(self):
        p = build_program(spec_by_name("leela"), seed=1)
        vm = VirtualMemory()
        p.premap(vm)
        loads = [op[1] for op in take_instructions(p, 20_000)
                 if op[0] in (OP_LOAD, OP_STORE)]
        unmapped = [a for a in loads if not vm.is_mapped(a)]
        assert not unmapped


class TestDataModel:
    def make(self, **over):
        import random
        base = spec_by_name("System.Runtime")
        from dataclasses import replace
        spec = replace(base, **over)
        live = [0x9000_0000 + i * 64 for i in range(100)]
        return DataModel(spec, random.Random(0), live_addrs=live,
                         native_base=0xA000_0000, stream_base=0xB000_0000)

    def test_load_addr_positive(self):
        dm = self.make()
        for _ in range(500):
            assert dm.load_addr() > 0

    def test_stream_addresses_sequential(self):
        dm = self.make(stream_frac=1.0)
        addrs = [dm.load_addr() for _ in range(32)]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert deltas == {8}

    def test_temporal_reuse_repeats_addresses(self):
        dm = self.make(stream_frac=0.0, temporal_reuse=0.95, stack_frac=0.0)
        addrs = [dm.load_addr() for _ in range(2000)]
        assert len(set(addrs)) < len(addrs) * 0.5

    def test_zero_reuse_spreads(self):
        dm = self.make(stream_frac=0.0, temporal_reuse=0.0, stack_frac=0.0,
                       fresh_new_frac=1.0)
        addrs = [dm.load_addr() for _ in range(500)]
        assert len(set(addrs)) > 50

    def test_store_addr_valid(self):
        dm = self.make()
        for _ in range(200):
            assert dm.store_addr() > 0
