"""Property-based tests for workload-spec variation and hints."""

import random

from hypothesis import given, settings, strategies as st

from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.spec import WorkloadSpec


TEMPLATES = dotnet_category_specs()


@given(st.integers(min_value=0, max_value=10 ** 6),
       st.integers(min_value=0, max_value=len(TEMPLATES) - 1))
@settings(max_examples=60, deadline=None)
def test_property_varied_specs_always_valid(seed, idx):
    """Every generated variant must produce a constructible mix profile
    and sane hint values (these feed the simulator directly)."""
    template = TEMPLATES[idx]
    v = template.varied(random.Random(seed), name="v")
    mix = v.mix_profile()                      # must not raise
    assert 0 < mix.branch_frac <= 0.5
    hints = v.hints()
    assert hints.ilp >= 1.0
    assert hints.mlp >= 1.0
    assert 0 <= hints.microcode_frac < 0.5
    assert v.n_methods >= 4
    assert v.hot_objects >= 16
    assert v.work_item_instructions >= 400


@given(st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=30, deadline=None)
def test_property_variation_is_deterministic(seed):
    t = TEMPLATES[0]
    a = t.varied(random.Random(seed), name="x")
    b = t.varied(random.Random(seed), name="x")
    assert a == b


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_property_pointer_chasing_reduces_mlp(chase):
    base = WorkloadSpec(name="b", suite="speccpu", mlp=4.0)
    chaser = WorkloadSpec(name="c", suite="speccpu", mlp=4.0,
                          pointer_chase_frac=chase)
    assert chaser.hints().mlp <= base.hints().mlp
    assert chaser.hints().mlp >= 1.0
