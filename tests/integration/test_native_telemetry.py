"""Native-kernel telemetry: retirement counters, live progress, phases.

The kernel now retires every op through two extra int64 increments
(total + per-kind, ``SI_OPS_RETIRED``/``SI_OPK0``).  These tests prove
the telemetry is *exact*, not approximate:

* per-kind retirement totals equal an independent tally of the op list
  AND the Python-side ``Core.counts`` the kernel maintains separately,
* the equivalence matrix holds across suites, batched vs vector, the
  sampler trampoline, and the multicore session,
* ``native.ops_retired()`` reads live kernel-owned slots mid-run and
  never double-counts across writeback (drain is idempotent),
* with obs enabled, the counters and export/run/writeback phase
  timings land in the metrics registry, matching ``native.stats``
  deltas bit-for-bit.
"""

from __future__ import annotations

from collections import Counter

import pytest

from test_batched_equivalence import _build, _spec_of
from test_vector_engine import _ops, needs_native

from repro import obs
from repro.kernel.vm import VirtualMemory
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         TraceBufferStream)
from repro.uarch import native
from repro.uarch.machine import get_machine
from repro.uarch.pipeline import Core

KIND_OF = {OP_BLOCK: "block", OP_BRANCH: "branch", OP_LOAD: "load",
           OP_STORE: "store", OP_EVENT: "event"}


def _delta(before: dict) -> dict:
    return {k: native.stats[k] - before[k] for k in before}


def _ops_delta(delta: dict) -> dict:
    return {name: delta["ops_" + name] for name in native.OP_KIND_NAMES}


@needs_native
def test_per_kind_counters_exact_on_synthetic_stream():
    """Every kernel retirement counter equals the op list's exact tally
    and the independently-maintained Core counts."""
    ops = _ops(3000, seed=31)
    expected = Counter(KIND_OF[op[0]] for op in ops)

    core = Core(get_machine("i9"), VirtualMemory())
    events = []
    core.event_hook = lambda k, p, c: events.append((k, p, c))
    before = dict(native.stats)
    stream = TraceBufferStream(ops=iter(ops), chunk_instructions=4096)
    core.consume_stream(stream, engine="vector")
    delta = _delta(before)

    assert _ops_delta(delta) == dict(expected)
    assert delta["ops_retired"] == len(ops)
    # Cross-check against the kernel's *other* counting mechanism — the
    # Core counts slots it maintains in the same dispatch arms.
    assert delta["ops_branch"] == core.counts.branches
    assert delta["ops_load"] == core.counts.loads
    assert delta["ops_store"] == core.counts.stores
    assert delta["ops_event"] == len(events)


@needs_native
@pytest.mark.parametrize("name", ["System.Runtime", "Json", "mcf"])
def test_suite_counters_match_core_stats(name):
    """All three suite families: native per-kind counters equal the
    Python-side Core stats from both the vector and batched engines."""
    machine = get_machine("i9")
    limit = 20_000

    core_v, prog_v, ev_v = _build(_spec_of(name), machine)
    before = dict(native.stats)
    stream = TraceBufferStream(ops=prog_v.ops(), chunk_instructions=4096)
    nv = core_v.consume_stream(stream, max_instructions=limit,
                               engine="vector")
    delta = _delta(before)

    assert delta["ops_branch"] == core_v.counts.branches
    assert delta["ops_load"] == core_v.counts.loads
    assert delta["ops_store"] == core_v.counts.stores
    assert delta["ops_event"] == len(ev_v)
    assert delta["ops_retired"] == sum(_ops_delta(delta).values())
    assert delta["ops_block"] > 0

    # Batched engine over the same spec/limit is the reference.
    core_b, prog_b, ev_b = _build(_spec_of(name), machine)
    stream_b = TraceBufferStream(ops=prog_b.ops(), chunk_instructions=4096)
    nb = core_b.consume_stream(stream_b, max_instructions=limit,
                               engine="batched")
    assert nv == nb
    assert delta["ops_branch"] == core_b.counts.branches
    assert delta["ops_load"] == core_b.counts.loads
    assert delta["ops_store"] == core_b.counts.stores
    assert delta["ops_event"] == len(ev_b)


@needs_native
def test_sampler_trampoline_keeps_counters_exact():
    """Hook exits re-enter with fresh images; drained totals must still
    sum exactly (no op lost or double-counted across the trampoline)."""
    from repro.harness.runner import Fidelity, run_workload

    machine = get_machine("i9")
    fid = Fidelity.test()
    before = dict(native.stats)
    a = run_workload(_spec_of("System.Runtime"), machine, fid,
                     engine="vector", sampling=True, sample_interval=1e-6)
    delta = _delta(before)
    assert delta["hook_exits"] > 0
    assert delta["ops_retired"] == sum(_ops_delta(delta).values())
    b = run_workload(_spec_of("System.Runtime"), machine, fid,
                     engine="batched", sampling=True, sample_interval=1e-6)
    assert a.counters == b.counters


@needs_native
def test_multicore_session_counters_consistent():
    """Persistent multicore images drain on teardown; totals must be
    internally consistent and the engines bit-identical."""
    from repro.harness.runner import Fidelity, run_multicore

    machine = get_machine("i9")
    fid = Fidelity(warmup_instructions=4_000, measure_instructions=8_000)
    before = dict(native.stats)
    a = run_multicore(_spec_of("Plaintext"), machine, 2, fid,
                      engine="vector")
    delta = _delta(before)
    assert delta["sessions"] >= 2
    assert delta["ops_retired"] == sum(_ops_delta(delta).values())
    assert delta["ops_load"] > 0 and delta["ops_branch"] > 0
    b = run_multicore(_spec_of("Plaintext"), machine, 2, fid,
                      engine="batched")
    assert a[1] == b[1]            # Top-Down profiles
    assert a[2] == b[2]            # core-0 counters


@needs_native
def test_ops_retired_reads_live_slots_and_drains_once():
    """ops_retired() folds live kernel slots in mid-run; writeback
    drains them into stats exactly once (idempotent on re-writeback)."""
    core = Core(get_machine("i9"), VirtualMemory())
    base = native.ops_retired()
    img = native.CoreImage(core)
    # Simulate a kernel mid-run: the slots are live, nothing drained.
    img.si[native.SI_OPS_RETIRED] = 123
    img.si[native.SI_OPK0 + 2] = 100      # loads
    img.si[native.SI_OPK0 + 0] = 23       # blocks
    assert native.ops_retired() == base + 123

    before = dict(native.stats)
    img.writeback()
    delta = _delta(before)
    assert delta["ops_retired"] == 123
    assert delta["ops_load"] == 100
    assert delta["ops_block"] == 23
    assert native.ops_retired() == base + 123   # total unchanged by drain

    img.writeback()                             # second writeback: no-op
    assert native.ops_retired() == base + 123
    assert native.stats["ops_retired"] == before["ops_retired"] + 123


@needs_native
def test_phase_timings_and_counters_land_in_registry(tmp_path):
    """With obs on, the registry carries the native counters (equal to
    the stats deltas) and non-empty phase-timing histograms."""
    ops = _ops(2000, seed=33)
    obs.configure(tmp_path / "obs", spans=False)
    try:
        before = dict(native.stats)
        core = Core(get_machine("i9"), VirtualMemory())
        core.set_cycle_hook(lambda c: None, 500.0)
        stream = TraceBufferStream(ops=iter(ops), chunk_instructions=4096)
        core.consume_stream(stream, engine="vector")
        delta = _delta(before)
        snap = obs.metrics_snapshot()
    finally:
        obs.shutdown(dump=False)

    counters = snap["counters"]
    assert counters["native.kernel_calls"] == delta["kernel_calls"]
    assert counters["native.hook_exits"] == delta["hook_exits"] > 0
    assert counters["native.ops_retired"] == delta["ops_retired"]
    for name in native.OP_KIND_NAMES:
        assert counters.get("native.ops_retired." + name, 0) == \
            delta["ops_" + name]
    hists = snap["histograms"]
    for h in ("native.export_seconds", "native.run_seconds",
              "native.writeback_seconds"):
        assert hists[h]["count"] > 0
    assert hists["native.run_seconds"]["count"] == delta["kernel_calls"]


@needs_native
def test_vm_hash_build_counter(tmp_path):
    """A cold export builds the page hash (counted); the refreshed key
    after a run makes the next export reuse it (not counted)."""
    core, prog, _ = _build(_spec_of("System.Runtime"), get_machine("i9"))
    before = dict(native.stats)
    stream = TraceBufferStream(ops=prog.ops(), chunk_instructions=4096)
    core.consume_stream(stream, max_instructions=5_000, engine="vector")
    assert native.stats["vm_hash_builds"] - before["vm_hash_builds"] == 1
    before = dict(native.stats)
    core.consume_stream(stream, max_instructions=5_000, engine="vector")
    assert native.stats["vm_hash_builds"] == before["vm_hash_builds"]
