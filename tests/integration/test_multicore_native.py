"""Native multicore equivalence matrix: 1/2/4/8 cores × sampler on/off.

The vector engine runs the whole interleaved multicore round loop in the
C kernel — persistent per-core images, one shared-LLC image aliased into
all of them, epoch counters drained to Python's M/M/1 contention model
at every round boundary, and the sampler's cycle hook served through the
HOOK trampoline.  Every cell of the matrix must be bit-identical to the
batched engine: counters, Top-Down profile, stall books, shared-LLC
stats *and* eviction RNG state, per-core cycle trajectories, and the
sampled timeline.

This is the CI ``vector-multicore`` job's workload (quick fidelity).
"""

from __future__ import annotations

import pytest

from repro.harness.runner import Fidelity, run_multicore
from repro.uarch import native
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs

needs_native = pytest.mark.skipif(not native.available(),
                                  reason="native kernel unavailable")

_FID = Fidelity(warmup_instructions=6_000, measure_instructions=12_000)


def _spec(name="Json"):
    return next(s for s in aspnet_specs() if s.name == name)


def _fingerprint(res, td, cnt):
    """Everything observable from a multicore run, diffably keyed."""
    d = {"epochs": res.epochs,
         "total_instructions": res.total_instructions,
         "mean_cycles": res.mean_cycles,
         "llc.extra_latency": res.llc.extra_latency,
         "llc.rand_state": res.llc.cache._rand_state,
         "llc.mpki": res.per_core_llc_mpki(),
         "topdown": td, "counters": cnt}
    st = res.llc.cache.stats
    for f in ("accesses", "misses", "demand_accesses", "demand_misses",
              "evictions", "writebacks"):
        d[f"llc.{f}"] = getattr(st, f)
    for i, c in enumerate(res.cores):
        d[f"core{i}.cycles"] = c.cycles
        d[f"core{i}.instructions"] = c.counts.instructions
        d[f"core{i}.stalls"] = tuple(sorted(c.stalls.items()))
    if res.samples is not None:
        d["samples"] = {k: tuple(v)
                        for k, v in res.samples.columns.items()}
    return d


@needs_native
@pytest.mark.parametrize("sampler", [False, True],
                         ids=["plain", "sampler"])
@pytest.mark.parametrize("n_cores", [1, 2, 4, 8])
def test_multicore_matrix_bit_identical(n_cores, sampler):
    machine = get_machine("i9")
    kw = {}
    if sampler:
        kw = {"sampling": True, "sample_interval": 1e-6}
    a = _fingerprint(*run_multicore(_spec(), machine, n_cores, _FID,
                                    engine="batched", **kw))
    before = dict(native.stats)
    b = _fingerprint(*run_multicore(_spec(), machine, n_cores, _FID,
                                    engine="vector", **kw))
    delta = {k: native.stats[k] - before[k] for k in before}
    diffs = {k: (a[k], b[k]) for k in a if a[k] != b[k]}
    assert not diffs, f"diverged: {dict(list(diffs.items())[:4])}"
    # No silent batched delegation: both round loops ran in the kernel.
    assert delta["sessions"] == 2
    assert delta["kernel_calls"] > 0
    if sampler:
        assert delta["hook_exits"] > 0


@needs_native
def test_multicore_trace_store_replay_identical(tmp_path):
    """Warm trace-store replay (the bench configuration) is the same
    run: per-core keys, colored on replay, bit-identical to live."""
    from repro.exec.traces import TraceStore

    machine = get_machine("i9")
    spec = _spec()
    live = _fingerprint(*run_multicore(spec, machine, 2, _FID,
                                       engine="vector"))
    store = TraceStore(tmp_path / "traces")
    cold = _fingerprint(*run_multicore(spec, machine, 2, _FID,
                                       engine="vector",
                                       trace_store=store))
    warm = _fingerprint(*run_multicore(spec, machine, 2, _FID,
                                       engine="vector",
                                       trace_store=store))
    assert live == cold == warm
