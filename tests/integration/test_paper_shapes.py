"""Integration tests: the paper's qualitative claims at test fidelity.

These run real (small) simulations and assert the *shapes* the paper
reports — orderings and directions, not absolute values.  The benchmark
harness re-checks the same claims at full fidelity.
"""

import pytest

from repro.harness.report import geomean
from repro.harness.runner import Fidelity, run_workload
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

FID = Fidelity(warmup_instructions=60_000, measure_instructions=60_000)
MACHINE = get_machine("i9")

DOTNET_SAMPLE = ("System.Runtime", "System.Linq", "System.MathBenchmarks",
                 "System.Collections")
ASPNET_SAMPLE = ("Plaintext", "Json", "DbFortunesRaw")
SPEC_SAMPLE = ("mcf", "bwaves", "gcc", "xalancbmk")


@pytest.fixture(scope="module")
def results():
    """One shared run of a representative slice of each suite."""
    specs = {s.name: s for s in (dotnet_category_specs() + aspnet_specs()
                                 + speccpu_specs())}
    out = {}
    for name in DOTNET_SAMPLE + ASPNET_SAMPLE + SPEC_SAMPLE:
        out[name] = run_workload(specs[name], MACHINE, FID, seed=2)
    return out


def gm(results, names, metric):
    return geomean([metric(results[n].counters) for n in names])


class TestFig3KernelShare:
    def test_aspnet_much_more_kernel_than_spec(self, results):
        aspnet = gm(results, ASPNET_SAMPLE,
                    lambda c: max(1e-3, 100 * c.kernel_instructions
                                  / c.instructions))
        spec = gm(results, SPEC_SAMPLE,
                  lambda c: max(1e-3, 100 * c.kernel_instructions
                                / c.instructions))
        assert aspnet > 20          # tens of percent
        assert spec < 1             # essentially none

    def test_dotnet_kernel_between(self, results):
        for name in SPEC_SAMPLE:
            c = results[name].counters
            assert c.kernel_instructions == 0


class TestFig4InstructionMix:
    def test_spec_more_loads(self, results):
        spec = gm(results, SPEC_SAMPLE, lambda c: 100 * c.loads
                  / c.instructions)
        managed = gm(results, DOTNET_SAMPLE + ASPNET_SAMPLE,
                     lambda c: 100 * c.loads / c.instructions)
        assert spec > managed

    def test_spec_fewer_stores(self, results):
        spec = gm(results, SPEC_SAMPLE, lambda c: 100 * c.stores
                  / c.instructions)
        managed = gm(results, DOTNET_SAMPLE + ASPNET_SAMPLE,
                     lambda c: 100 * c.stores / c.instructions)
        assert spec < managed

    def test_managed_branch_share_uniform(self, results):
        """'ASP.NET and .NET benchmarks do not show much variety' vs
        SPEC's diverse branch fractions."""
        managed = [100 * results[n].counters.branches
                   / results[n].counters.instructions
                   for n in DOTNET_SAMPLE + ASPNET_SAMPLE]
        spec = [100 * results[n].counters.branches
                / results[n].counters.instructions for n in SPEC_SAMPLE]
        spread = max(spec) - min(spec)
        managed_spread = max(managed) - min(managed)
        assert spread > managed_spread


class TestFig8Counters:
    def test_icache_worse_for_managed_than_fp_spec(self, results):
        aspnet_l1i = gm(results, ASPNET_SAMPLE,
                        lambda c: c.mpki(c.l1i_misses) + 0.01)
        bwaves_l1i = results["bwaves"].counters
        assert aspnet_l1i > bwaves_l1i.mpki(bwaves_l1i.l1i_misses)

    def test_aspnet_l2_exceeds_llc_massively(self, results):
        """ASP.NET: high L2 MPKI (20.4) but tiny LLC MPKI (0.16) — most
        L2 misses are absorbed by the LLC.  (At test fidelity the window
        is compulsory-heavy so the gap is smaller than at bench scale.)"""
        for name in ASPNET_SAMPLE:
            c = results[name].counters
            assert c.mpki(c.l2_misses) > 2 * c.mpki(c.llc_misses)

    def test_spec_llc_mpki_dominates_managed(self, results):
        spec = gm(results, SPEC_SAMPLE, lambda c: c.mpki(c.llc_misses)
                  + 1e-3)
        dotnet = gm(results, DOTNET_SAMPLE, lambda c: c.mpki(c.llc_misses)
                    + 1e-3)
        assert spec > dotnet

    def test_dotnet_micro_lowest_mpkis(self, results):
        """'The .NET microbenchmarks have much lower MPKIs'."""
        micro = gm(results, DOTNET_SAMPLE,
                   lambda c: c.mpki(c.l1d_misses) + 0.01)
        aspnet = gm(results, ASPNET_SAMPLE,
                    lambda c: c.mpki(c.l1d_misses) + 0.01)
        assert micro < aspnet

    def test_aspnet_cpi_higher_than_spec_fp(self, results):
        aspnet_cpi = gm(results, ASPNET_SAMPLE, lambda c: c.cpi)
        assert aspnet_cpi > results["bwaves"].counters.cpi

    def test_aspnet_page_faults_dominate_spec(self, results):
        """§VII-A: ASP.NET has ~300x the page faults of SPEC."""
        aspnet = sum(results[n].counters.page_faults
                     for n in ASPNET_SAMPLE)
        spec = sum(results[n].counters.page_faults for n in SPEC_SAMPLE)
        assert aspnet > 20 * max(1, spec)


class TestFig9TopDown:
    def test_managed_low_bad_speculation(self, results):
        for name in DOTNET_SAMPLE + ASPNET_SAMPLE:
            assert results[name].topdown.bad_speculation < 0.30

    def test_memory_spec_backend_bound(self, results):
        for name in ("mcf", "bwaves"):
            td = results[name].topdown
            assert td.backend_bound > td.frontend_bound

    def test_managed_significant_frontend(self, results):
        """'Some .NET and ASP.NET applications have a significant
        frontend bound component.'"""
        fe = [results[n].topdown.frontend_bound
              for n in DOTNET_SAMPLE + ASPNET_SAMPLE]
        assert max(fe) > 0.3

    def test_spec_memory_programs_dram_bound_not_l3(self, results):
        for name in ("mcf", "bwaves"):
            td = results[name].topdown
            assert td.be_dram_bound > td.be_l3_bound

    def test_aspnet_l3_bound_exceeds_spec_fp(self, results):
        aspnet_l3 = max(results[n].topdown.be_l3_bound
                        for n in ASPNET_SAMPLE)
        assert aspnet_l3 > results["bwaves"].topdown.be_l3_bound


class TestFig10Frontend:
    def test_managed_fe_latency_sources(self, results):
        """I-cache / I-TLB / resteers / MS dominate FE-latency for
        .NET-like workloads."""
        td = results["Json"].topdown
        assert td.frontend_latency > 0
        leaf_sum = (td.fe_icache + td.fe_itlb + td.fe_branch_resteers
                    + td.fe_ms_switches + td.fe_ifault)
        assert leaf_sum == pytest.approx(td.frontend_latency, rel=1e-6)
