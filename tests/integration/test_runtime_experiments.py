"""Integration tests for the §VII managed-runtime experiments."""

import pytest

from repro.harness.runner import Fidelity, run_workload, run_with_sampling
from repro.runtime.gc import GcConfig, SERVER, WORKSTATION
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs

MACHINE = get_machine("i9")
FID = Fidelity(warmup_instructions=60_000, measure_instructions=120_000)
MB = 2 ** 20


def spec_of(name):
    for s in dotnet_category_specs() + aspnet_specs():
        if s.name == name:
            return s
    raise KeyError(name)


class TestFig14GcComparison:
    """workstation vs server GC (§VII-B)."""

    @pytest.fixture(scope="class")
    def runs(self):
        spec = spec_of("System.Collections")
        out = {}
        for flavor in (WORKSTATION, SERVER):
            out[flavor] = run_workload(
                spec, MACHINE, FID, seed=3,
                gc_config=GcConfig(flavor=flavor,
                                   max_heap_bytes=2_000 * MB))
        return out

    def test_server_triggers_more_often(self, runs):
        """Paper: 6.18x more GC triggers under server GC."""
        ws = runs[WORKSTATION].counters.gc_triggered
        srv = runs[SERVER].counters.gc_triggered
        assert srv > ws
        assert srv >= 3 * max(1, ws)

    def test_server_reduces_llc_mpki(self, runs):
        """Paper: 0.59x LLC MPKI under server GC."""
        ws = runs[WORKSTATION].counters
        srv = runs[SERVER].counters
        assert srv.mpki(srv.llc_misses) < ws.mpki(ws.llc_misses)

    def test_heap_size_changes_gc_frequency(self):
        # System.Linq: no cold live set, so it runs at every Fig 14 heap
        # size (System.Collections OOMs at 200 MiB, per the paper).
        spec = spec_of("System.Linq")
        triggers = {}
        for heap_mib in (200, 20_000):
            r = run_workload(spec, MACHINE, FID, seed=3,
                             gc_config=GcConfig(flavor=SERVER,
                                                max_heap_bytes=heap_mib
                                                * MB))
            triggers[heap_mib] = r.counters.gc_triggered
        assert triggers[200] > triggers[20_000]

    def test_collections_ooms_at_200mib(self):
        """§VII-B: System.Collections cannot run at the 200 MiB cap."""
        from repro.runtime.gc import OutOfManagedMemory
        for flavor in (WORKSTATION, SERVER):
            with pytest.raises(OutOfManagedMemory):
                run_workload(spec_of("System.Collections"), MACHINE, FID,
                             gc_config=GcConfig(flavor=flavor,
                                                max_heap_bytes=200 * MB))

    def test_cache_light_workload_not_helped(self):
        """Paper: System.MathBenchmarks regresses under server GC (no
        cache activity to improve, pure overhead)."""
        spec = spec_of("System.MathBenchmarks")
        ws = run_workload(spec, MACHINE, FID, seed=3,
                          gc_config=GcConfig(flavor=WORKSTATION,
                                             max_heap_bytes=2_000 * MB))
        srv = run_workload(spec, MACHINE, FID, seed=3,
                           gc_config=GcConfig(flavor=SERVER,
                                              max_heap_bytes=2_000 * MB))
        # Speedup (ws_time / srv_time) below the suite-typical benefit.
        speedup = ws.seconds / srv.seconds
        assert speedup < 1.05


class TestFig13Sampling:
    def test_sampled_run_has_jit_and_counter_series(self):
        r = run_with_sampling(spec_of("Json"), MACHINE, FID,
                              sample_interval=5e-6, seed=1)
        s = r.samples
        assert sum(s["jit_started"]) >= 1
        assert len(s) >= 10

    def test_gc_events_observable_with_small_heap(self):
        r = run_with_sampling(
            spec_of("DbFortunesRaw"), MACHINE, FID, sample_interval=5e-6,
            gc_config=GcConfig(flavor=WORKSTATION,
                               max_heap_bytes=200 * MB),
            seed=1)
        assert sum(r.samples["gc_triggered"]) >= 1


class TestJitColdStartAblation:
    """§VII-A1: cold starts disappear if code pages are reused."""

    def test_reuse_code_pages_reduces_icache_pressure(self):
        spec = spec_of("CscBench")
        fid = Fidelity(warmup_instructions=40_000,
                       measure_instructions=80_000)
        normal = run_workload(spec, MACHINE, fid, seed=5)
        reuse = run_workload(spec, MACHINE, fid, seed=5,
                             reuse_code_pages=True)
        n = normal.counters
        r = reuse.counters
        assert r.mpki(r.l1i_misses) <= n.mpki(n.l1i_misses)
        assert r.page_faults <= n.page_faults


class TestGcCacheBenefit:
    """The §VII-B cache benefit of aggressive GC, independent of flavor
    overheads: frequent collection keeps the hot set dense and the
    nursery recycled, cutting LLC MPKI (the paper's 0.59x claim)."""

    def test_aggressive_gc_cuts_llc_mpki(self):
        spec = spec_of("System.Collections")
        fid = Fidelity(warmup_instructions=100_000,
                       measure_instructions=300_000)
        runs = {}
        for flavor in (WORKSTATION, SERVER):
            r = run_workload(spec, MACHINE, fid, seed=3,
                             gc_config=GcConfig(flavor=flavor,
                                                max_heap_bytes=2_000 * MB))
            c = r.counters
            runs[flavor] = c.mpki(c.llc_misses)
        assert runs[SERVER] < 0.9 * runs[WORKSTATION]

    def test_compaction_controls_fragmentation(self):
        """Mechanism check at the heap level: with compaction disabled the
        live set's fragmentation grows without bound."""
        spec = spec_of("System.Collections")
        gc = GcConfig(flavor=SERVER, max_heap_bytes=2_000 * MB)
        from repro.workloads.program import build_program
        from repro.runtime.heap import HeapConfig
        import itertools

        def final_frag(compaction):
            prog = build_program(
                spec, seed=3,
                heap_config=HeapConfig(max_heap_bytes=gc.max_heap_bytes,
                                       gen0_budget_bytes=gc.gen0_budget()),
                gc_config=gc, compaction_enabled=compaction)
            for _ in itertools.islice(prog.ops(), 150_000):
                pass
            return prog.clr.live_set.fragmentation

        assert final_frag(False) > final_frag(True)
