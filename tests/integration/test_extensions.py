"""Tests for the §VIII future-work extensions (proposed hardware)."""

import pytest

from repro.harness.runner import Fidelity, run_multicore, run_workload
from repro.runtime.gc import GcConfig, SERVER, WORKSTATION
from repro.uarch.branch import BranchUnit
from repro.uarch.machine import get_machine, scaled
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs

MB = 2 ** 20
FID = Fidelity(warmup_instructions=40_000, measure_instructions=120_000)


def spec_of(name):
    for s in dotnet_category_specs() + aspnet_specs():
        if s.name == name:
            return s
    raise KeyError(name)


class TestBranchStateTransform:
    def test_counters_and_btb_move(self):
        bu = BranchUnit()
        # Train a biased branch and its BTB target at the old location.
        for _ in range(6):
            bu.resolve(0x1000, True, 0x1100)   # target inside the range
        moved = bu.transform_range(0x1000, 0x9000, 0x400)
        assert moved >= 2
        # At the new PC, the first prediction is already correct and the
        # BTB knows the (shifted) target: no mispredict, no re-steer.
        mis, btb_miss = bu.resolve(0x9000, True, 0x9100)
        assert not mis
        assert not btb_miss

    def test_transform_noop_for_zero_delta(self):
        bu = BranchUnit()
        bu.resolve(0x1000, True, 0x2000)
        assert bu.transform_range(0x1000, 0x1000, 0x400) == 0

    def test_loop_predictor_moves(self):
        bu = BranchUnit()
        for _ in range(6):
            for trip in range(5):
                bu.resolve(0x2000, trip < 4, 0x1F00)
        bu.transform_range(0x1F00, 0x5F00, 0x200)
        # The loop PC 0x2000 moved by delta 0x4000.
        assert bu.loop_predictor.predict(0x6000) is not None


class TestJitMetadataHardware:
    def test_extension_reduces_cold_start_costs(self):
        """Prefetch + state transform together cut the I-side penalty of
        JIT/tiering (the paper's headline proposal)."""
        spec = spec_of("CscBench")
        base = run_workload(spec, get_machine("i9"), FID, seed=5)
        ext_machine = scaled(get_machine("i9"), jit_code_prefetch=True,
                             jit_state_transform=True)
        ext = run_workload(spec, ext_machine, FID, seed=5)
        b, e = base.counters, ext.counters
        assert e.mpki(e.l1i_misses) <= b.mpki(b.l1i_misses)
        assert e.cycles <= b.cycles * 1.02

    def test_extension_off_by_default(self):
        m = get_machine("i9")
        assert not m.jit_code_prefetch
        assert not m.jit_state_transform


class TestHardwareGc:
    def test_hw_gc_removes_overhead_keeps_benefit(self):
        """§VII-A2: hardware GC keeps the locality benefit without the
        instruction overhead of frequent collections."""
        spec = spec_of("System.Collections")
        fid = Fidelity(warmup_instructions=80_000,
                       measure_instructions=250_000)
        runs = {}
        for hw in (False, True):
            gc = GcConfig(flavor=SERVER, max_heap_bytes=2_000 * MB,
                          hw_accelerated=hw)
            runs[hw] = run_workload(spec, get_machine("i9"), fid, seed=3,
                                    gc_config=gc)
        sw, hw = runs[False].counters, runs[True].counters
        # The engine takes the GC work off the core, so a fixed
        # instruction budget holds MORE application work (and hence at
        # least as many allocation-driven collections).
        assert hw.gc_triggered >= sw.gc_triggered - 2
        # Throughput metric: cycles per unit of application progress
        # (allocation ticks track work items) — the hardware engine wins
        # even though each remaining instruction is, on average, harder.
        sw_cost = sw.cycles / max(1, sw.allocation_ticks)
        hw_cost = hw.cycles / max(1, hw.allocation_ticks)
        assert hw_cost < sw_cost
        # The locality benefit survives: LLC MPKI comparable or better.
        assert hw.mpki(hw.llc_misses) < sw.mpki(sw.llc_misses) * 1.3


class TestLlcPlacement:
    def test_balanced_placement_cuts_contention(self):
        spec = spec_of("Plaintext")
        fid = Fidelity(warmup_instructions=30_000,
                       measure_instructions=60_000)
        results = {}
        for placement in ("hashed", "balanced"):
            machine = scaled(get_machine("i9"), llc_placement=placement)
            result, td, _ = run_multicore(spec, machine, 8, fid)
            results[placement] = (result.llc.extra_latency,
                                  td.be_l3_bound)
        assert results["balanced"][0] < results["hashed"][0]
        assert results["balanced"][1] <= results["hashed"][1] + 1e-9
