"""Differential tests: the batched engine is bit-identical to legacy.

The batched trace engine (SoA chunks + ``Core.consume_stream``) is only
allowed to be *faster* than the tuple-at-a-time interpreter — never
different.  These tests drive both engines over every suite (micro,
ASP.NET, SPEC) plus the ablation flags, and require exact equality of

* every counter and stall bucket (floats compared bitwise via ``==``),
* the complete microarchitectural state (cache/TLB set contents and
  replacement order, branch predictor tables, prefetcher state),
* the tracer event stream (kind, payload, cycle stamps), and
* the Top-Down profile and sampler output at the run level.

Chunk boundaries are semantics-free: the batched runs here use a chunk
size (4096) much smaller than production (65536) on the same streams.
"""

from __future__ import annotations

import pytest

from repro.kernel.vm import VirtualMemory
from repro.runtime.gc import GcConfig
from repro.runtime.heap import HeapConfig
from repro.trace import TraceBufferStream
from repro.uarch.machine import get_machine
from repro.uarch.pipeline import Core
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.program import build_program
from repro.workloads.speccpu import speccpu_specs

WARMUP = 15_000
MEASURE = 25_000


def _spec_of(name):
    for s in dotnet_category_specs() + aspnet_specs() + speccpu_specs():
        if s.name == name:
            return s
    raise KeyError(name)


def _build(spec, machine, seed=0, **kw):
    gc_config = GcConfig()
    heap_config = HeapConfig(max_heap_bytes=gc_config.max_heap_bytes,
                             gen0_budget_bytes=gc_config.gen0_budget())
    vm = VirtualMemory()
    core = Core(machine, vm)
    core.set_hints(spec.hints())
    events = []
    core.event_hook = lambda k, p, c: events.append((k, p, c))
    program = build_program(spec, seed=seed, heap_config=heap_config,
                            gc_config=gc_config,
                            code_bloat=machine.code_bloat, **kw)
    program.premap(vm)
    return core, program, events


def _state(core) -> dict:
    """Every observable piece of core state, keyed for diffability."""
    d = {}
    c = core.counts
    for f in ("instructions", "kernel_instructions", "branches", "loads",
              "stores", "dtlb_load_walks", "dtlb_store_walks",
              "itlb_walks", "uops"):
        d["counts." + f] = getattr(c, f)
    for k, v in core.stalls.items():
        d["stalls." + k] = v
    d["ideal"] = core._ideal_cycles
    for name in ("l1i", "l1d", "l2", "llc", "dsb"):
        cache = getattr(core, name)
        st = cache.stats
        for f in ("accesses", "misses", "demand_accesses", "demand_misses",
                  "prefetch_fills", "useful_prefetches",
                  "useless_prefetches", "evictions", "writebacks"):
            d[f"{name}.{f}"] = getattr(st, f)
        d[f"{name}.sets"] = repr(cache._sets)
        d[f"{name}.occupancy"] = cache.occupancy
    for name in ("itlb", "dtlb"):
        th = getattr(core, name)
        for lvl, t in (("l1", th.l1), ("stlb", th.stlb)):
            st = t.stats
            for f in ("accesses", "misses", "walks"):
                d[f"{name}.{lvl}.{f}"] = getattr(st, f)
            d[f"{name}.{lvl}.sets"] = repr(t._sets)
    bu = core.branch_unit
    for f in ("branches", "mispredicts", "btb_misses", "taken"):
        d["bp." + f] = getattr(bu.stats, f)
    d["bp.gs_table"] = repr(sorted(bu.predictor._table.items()))
    d["bp.gs_hist"] = bu.predictor._history
    d["bp.lp_table"] = repr(bu.loop_predictor._table)
    d["bp.btb"] = repr(bu.btb._sets)
    for name in ("l1i_prefetcher", "l1d_prefetcher", "l2_prefetcher"):
        pf = getattr(core, name)
        d[f"{name}.issued"] = pf.stats.issued
        d[f"{name}.page_bounded"] = pf.stats.page_bounded
    d["last_code_line"] = core._last_code_line
    d["last_code_page"] = core._last_code_page
    d["last_data_vpn"] = core._last_data_vpn
    d["kernel_mode"] = bool(core._kernel_mode)
    return d


CASES = [
    ("System.Runtime", {}),                          # .NET micro
    ("Json", {}),                                    # ASP.NET
    ("mcf", {}),                                     # SPEC CPU17
    ("System.Linq", {"reuse_code_pages": True}),     # JIT ablation
    ("Plaintext", {"compaction_enabled": False}),    # GC ablation
]


@pytest.mark.parametrize("engine", ["batched", "vector"])
@pytest.mark.parametrize("name,kw", CASES,
                         ids=[c[0] + ("+" + next(iter(c[1]), "") if c[1]
                                      else "") for c in CASES])
def test_core_state_identical(name, kw, engine):
    """Warm + measure through both engines; diff the entire core."""
    machine = get_machine("i9")
    spec = _spec_of(name)

    core_a, prog_a, ev_a = _build(spec, machine, **kw)
    ops = prog_a.ops()
    core_a.consume(ops, max_instructions=WARMUP)
    core_a.reset_stats()
    ev_a.clear()
    na = core_a.consume(ops, max_instructions=MEASURE)

    core_b, prog_b, ev_b = _build(spec, machine, **kw)
    stream = TraceBufferStream(ops=prog_b.ops(), chunk_instructions=4096)
    core_b.consume_stream(stream, max_instructions=WARMUP, engine=engine)
    core_b.reset_stats()
    ev_b.clear()
    nb = core_b.consume_stream(stream, max_instructions=MEASURE,
                               engine=engine)

    assert na == nb
    sa, sb = _state(core_a), _state(core_b)
    diffs = {k: (sa[k], sb[k]) for k in sa if sa[k] != sb[k]}
    assert not diffs, f"state diverged: {diffs}"
    assert ev_a == ev_b


@pytest.mark.parametrize("engine", ["batched", "vector"])
def test_run_workload_engines_agree(engine):
    """run_workload(engine=...) parity including the sampler hook path."""
    from repro.harness.runner import Fidelity, run_workload
    machine = get_machine("i9")
    fid = Fidelity.test()
    for name in ("System.Runtime", "Json"):
        spec = _spec_of(name)
        a = run_workload(spec, machine, fid, engine="legacy",
                         sampling=True, sample_interval=2e-4)
        b = run_workload(spec, machine, fid, engine=engine,
                         sampling=True, sample_interval=2e-4)
        assert a.counters == b.counters
        assert a.topdown == b.topdown
        assert a.samples.columns == b.samples.columns


def test_env_toggle_selects_legacy(monkeypatch):
    """REPRO_LEGACY_CONSUME=1 keeps the old path selectable and equal."""
    from repro.harness.runner import Fidelity, run_workload
    machine = get_machine("i9")
    fid = Fidelity.test()
    spec = _spec_of("System.Runtime")
    default = run_workload(spec, machine, fid)
    monkeypatch.setenv("REPRO_LEGACY_CONSUME", "1")
    legacy = run_workload(spec, machine, fid)
    assert default.counters == legacy.counters
    assert default.topdown == legacy.topdown


def test_env_toggle_selects_vector(monkeypatch):
    """REPRO_ENGINE=vector routes the default path through the native
    kernel (or its fallback) and stays bit-identical; an explicit
    ``engine=`` argument still wins over the environment."""
    from repro.harness.runner import Fidelity, resolve_engine, run_workload
    machine = get_machine("i9")
    fid = Fidelity.test()
    spec = _spec_of("Json")
    default = run_workload(spec, machine, fid)
    monkeypatch.setenv("REPRO_ENGINE", "vector")
    assert resolve_engine(None) == "vector"
    assert resolve_engine("legacy") == "legacy"
    vector = run_workload(spec, machine, fid)
    assert default.counters == vector.counters
    assert default.topdown == vector.topdown
    monkeypatch.setenv("REPRO_ENGINE", "warp")
    with pytest.raises(ValueError, match="unknown engine"):
        run_workload(spec, machine, fid)


def test_trace_store_replay_identical(tmp_path):
    """Cold record, warm replay, and legacy all agree; replay skips
    generation on the second run."""
    from repro.exec.traces import TraceStore
    from repro.harness.runner import Fidelity, run_workload
    machine = get_machine("i9")
    fid = Fidelity.test()
    spec = _spec_of("Json")
    store = TraceStore(tmp_path)
    legacy = run_workload(spec, machine, fid, engine="legacy")
    cold = run_workload(spec, machine, fid, trace_store=store)
    assert len(list(store.keys())) == 1
    warm = run_workload(spec, machine, fid, trace_store=store)
    assert cold.counters == legacy.counters == warm.counters
    assert cold.topdown == legacy.topdown == warm.topdown
    vec = run_workload(spec, machine, fid, trace_store=store,
                       engine="vector")
    assert vec.counters == legacy.counters
    assert vec.topdown == legacy.topdown


@pytest.mark.parametrize("name,kw", CASES,
                         ids=[c[0] + ("+" + next(iter(c[1]), "") if c[1]
                                      else "") for c in CASES])
def test_mmap_replay_state_identical(tmp_path, name, kw):
    """mmap-streamed decode == whole-file in-memory decode, full-state.

    Records each suite's op stream once, then replays it through both
    read paths into fresh cores and diffs every piece of observable
    state — the zero-copy/madvise plumbing must be invisible."""
    from repro.perf.trace_io import record, replay_buffers

    machine = get_machine("i9")
    spec = _spec_of(name)
    core_r, prog_r, _ = _build(spec, machine, **kw)
    path = tmp_path / "t.trace"
    record(prog_r.ops(), path, max_instructions=WARMUP + MEASURE + 4096)

    consumed, states, event_logs = [], [], []
    for use_mmap in (False, True):
        core, _prog, ev = _build(spec, machine, **kw)
        stream = TraceBufferStream(
            buffers=replay_buffers(path, use_mmap=use_mmap))
        core.consume_stream(stream, max_instructions=WARMUP)
        core.reset_stats()
        ev.clear()
        consumed.append(core.consume_stream(stream,
                                            max_instructions=MEASURE))
        states.append(_state(core))
        event_logs.append(list(ev))
    assert consumed[0] == consumed[1]
    diffs = {k: (states[0][k], states[1][k])
             for k in states[0] if states[0][k] != states[1][k]}
    assert not diffs, f"mmap decode diverged: {diffs}"
    assert event_logs[0] == event_logs[1]


def test_suite_mmap_vs_inmemory_identical(tmp_path, monkeypatch):
    """Acceptance: the mmap-streamed replay path produces an identical
    SuiteResult to the v2 in-memory path end to end."""
    from repro.exec.traces import TraceStore
    from repro.harness.runner import Fidelity
    from repro.harness.suite import characterize_suite

    machine = get_machine("i9")
    fid = Fidelity.test()
    specs = [_spec_of("System.Runtime"), _spec_of("Json"), _spec_of("mcf")]
    # Isolate the read-path axis: no warm-state reuse between runs.
    monkeypatch.setenv("REPRO_WARM_MODELS", "0")
    store = TraceStore(tmp_path)
    suites = {}
    for flag in ("0", "1"):
        monkeypatch.setenv("REPRO_TRACE_MMAP", flag)
        suites[flag] = characterize_suite(specs, machine, fid,
                                          trace_store=store)
    a, b = suites["0"], suites["1"]
    assert [r.counters for r in a.results] == [r.counters
                                               for r in b.results]
    assert [r.topdown for r in a.results] == [r.topdown for r in b.results]
    assert [r.seconds for r in a.results] == [r.seconds for r in b.results]


def test_warm_model_reuse_identical(tmp_path, monkeypatch):
    """A run on a rehydrated warm-cache model == a cold-constructed run
    (trace-store replay exercises the cached-buffer path too)."""
    from repro.exec import warm
    from repro.exec.traces import TraceStore
    from repro.harness.runner import Fidelity, run_workload

    machine = get_machine("i9")
    fid = Fidelity.test()
    spec = _spec_of("System.Runtime")
    store = TraceStore(tmp_path)

    monkeypatch.setenv("REPRO_WARM_MODELS", "0")
    cold = run_workload(spec, machine, fid, trace_store=store)

    monkeypatch.setenv("REPRO_WARM_MODELS", "1")
    monkeypatch.setattr(warm, "_CACHE", None)     # fresh cache
    first = run_workload(spec, machine, fid, trace_store=store)
    cache = warm.get_cache()
    assert cache.model_misses >= 1
    second = run_workload(spec, machine, fid, trace_store=store)
    assert cache.model_hits >= 1                  # rehydrated snapshot
    assert cache.buffer_hits >= 1                 # reused decoded trace

    assert cold.counters == first.counters == second.counters
    assert cold.topdown == first.topdown == second.topdown


@pytest.mark.parametrize("engine", ["batched", "vector"])
def test_multicore_engines_agree(engine):
    """Vectorized buffer-level coloring == per-tuple _color_ops.

    ``vector`` is accepted here too: shared-LLC cores make the native
    kernel's dispatch delegate to batched, so the run must still agree.
    """
    from repro.harness.runner import Fidelity, run_multicore
    machine = get_machine("i9")
    fid = Fidelity(warmup_instructions=8_000, measure_instructions=15_000)
    spec = _spec_of("Plaintext")
    res_a, td_a, cnt_a = run_multicore(spec, machine, 2, fid,
                                       engine="legacy")
    res_b, td_b, cnt_b = run_multicore(spec, machine, 2, fid,
                                       engine=engine)
    assert cnt_a == cnt_b
    assert td_a == td_b
    assert res_a.total_instructions == res_b.total_instructions
    assert (res_a.llc.cache.stats.demand_misses
            == res_b.llc.cache.stats.demand_misses)
