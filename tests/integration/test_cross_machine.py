"""Cross-machine sanity: the Fig 2 / Fig 7 comparisons rest on these."""

import pytest

from repro.harness.runner import Fidelity, run_workload
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

FID = Fidelity(warmup_instructions=25_000, measure_instructions=50_000)
SAMPLE = ("System.Runtime", "System.MathBenchmarks", "System.Linq")


def spec_of(name):
    for s in dotnet_category_specs() + speccpu_specs():
        if s.name == name:
            return s
    raise KeyError(name)


@pytest.fixture(scope="module")
def cross_runs():
    out = {}
    for name in SAMPLE:
        for key in ("i9", "xeon", "arm"):
            out[(name, key)] = run_workload(spec_of(name),
                                            get_machine(key), FID, seed=2)
    return out


class TestMachineOrdering:
    def test_i9_beats_xeon_wall_clock(self, cross_runs):
        """The §IV-C scores assume the i9 is the faster machine."""
        for name in SAMPLE:
            assert cross_runs[(name, "i9")].seconds \
                < cross_runs[(name, "xeon")].seconds, name

    def test_arm_slowest_wall_clock(self, cross_runs):
        for name in SAMPLE:
            assert cross_runs[(name, "arm")].seconds \
                > cross_runs[(name, "i9")].seconds, name

    def test_same_workload_same_instruction_mix_everywhere(self,
                                                           cross_runs):
        """ISA differences change cycles/misses, not the program's
        instruction-mix metrics (modulo the Arm bloat factor applied to
        the measured budget)."""
        for name in SAMPLE:
            mixes = []
            for key in ("i9", "xeon"):
                c = cross_runs[(name, key)].counters
                mixes.append(round(c.branches / c.instructions, 3))
            assert len(set(mixes)) == 1, name

    def test_arm_worse_itlb_everywhere(self, cross_runs):
        worse = 0
        for name in SAMPLE:
            arm = cross_runs[(name, "arm")].counters
            i9 = cross_runs[(name, "i9")].counters
            if arm.mpki(arm.itlb_misses) >= i9.mpki(i9.itlb_misses):
                worse += 1
        assert worse >= 2

    def test_runs_deterministic_per_machine(self):
        a = run_workload(spec_of("System.Linq"), get_machine("arm"), FID,
                         seed=9)
        b = run_workload(spec_of("System.Linq"), get_machine("arm"), FID,
                         seed=9)
        assert a.counters == b.counters
