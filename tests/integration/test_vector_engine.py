"""Vector-engine edge cases: chunking, limits, fallbacks, growth.

tests/integration/test_batched_equivalence.py proves the vector engine
bit-identical to legacy on real workload streams; this file attacks the
seams that real streams rarely stress deterministically:

* ops split across chunk boundaries at every offset (chunk size 1),
* an instruction limit landing inside a vectorized span, then resuming,
* chunks whose first/last op is the interesting one, empty buffers,
* the ``REPRO_NATIVE=0`` kill switch and the delegation guard
  (:func:`repro.uarch.native.nativizable`),
* virtual-memory hash growth mid-run (first-touch floods),
* non-default replacement policies (FIFO, RANDOM's deterministic LCG).

Every test drives the same op list through the legacy interpreter and
``consume_stream(engine="vector")`` and diffs the complete core state
via the equivalence harness's ``_state``.
"""

from __future__ import annotations

import random

import pytest

from test_batched_equivalence import _state

from repro.kernel.vm import VirtualMemory
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         TraceBuffer, TraceBufferStream)
from repro.uarch import native
from repro.uarch.cache import ReplacementPolicy
from repro.uarch.machine import get_machine
from repro.uarch.pipeline import Core


def _ops(n: int = 3000, seed: int = 1, data_span: int = 1 << 22):
    """A deterministic synthetic stream mixing every op kind.

    Includes kernel-mode blocks, backward branches (loop-predictor
    allocations), not-taken and taken branches, loads/stores over
    ``data_span`` bytes, and events with tuple payloads.
    """
    rng = random.Random(seed)
    code = 0x0010_0000
    data = 0x2000_0000
    pc = code
    out = []
    for i in range(n):
        r = rng.random()
        if r < 0.35:
            pc = code + rng.randrange(4096) * 64
            out.append((OP_BLOCK, pc, rng.randrange(1, 12),
                        rng.randrange(4, 120), rng.random() < 0.05))
        elif r < 0.55:
            out.append((OP_LOAD, data + rng.randrange(data_span)))
        elif r < 0.70:
            out.append((OP_STORE, data + rng.randrange(data_span)))
        elif r < 0.95:
            target = code + rng.randrange(4096) * 64
            out.append((OP_BRANCH, pc + rng.randrange(64), target,
                        rng.random() < 0.6))
        else:
            out.append((OP_EVENT, "gc_gen0", ("payload", i)))
    return out


def _run_pair(ops, *, chunk: int = 4096, limits=(None,), mutate=None,
              stream_factory=None):
    """Drive ``ops`` through legacy and vector; assert identical state.

    ``limits`` is a sequence of absolute instruction limits applied as
    successive ``consume`` calls (``None`` = run to exhaustion), which
    exercises pausing and resuming mid-stream on both engines.
    """
    machine = get_machine("i9")
    results = []
    for engine in ("legacy", "vector"):
        core = Core(machine, VirtualMemory())
        events = []
        core.event_hook = lambda k, p, c, _e=events: _e.append((k, p, c))
        if mutate is not None:
            mutate(core)
        consumed = []
        if engine == "legacy":
            it = iter(ops)
            for lim in limits:
                consumed.append(core.consume(it, max_instructions=lim))
        else:
            if stream_factory is not None:
                stream = stream_factory()
            else:
                stream = TraceBufferStream(ops=iter(ops),
                                           chunk_instructions=chunk)
            for lim in limits:
                consumed.append(core.consume_stream(
                    stream, max_instructions=lim, engine="vector"))
        results.append((consumed, _state(core), events))
    (ca, sa, ea), (cb, sb, eb) = results
    assert ca == cb
    diffs = {k: (sa[k], sb[k]) for k in sa if sa[k] != sb[k]}
    assert not diffs, f"state diverged: {dict(list(diffs.items())[:4])}"
    assert ea == eb
    return sa


needs_native = pytest.mark.skipif(not native.available(),
                                  reason="native kernel unavailable")


@needs_native
@pytest.mark.parametrize("chunk", [1, 3, 4096])
def test_chunk_boundaries_are_semantics_free(chunk):
    """Every op boundary is a potential chunk split (chunk=1: all of
    them), including chunks whose only op is a block/branch/event."""
    _run_pair(_ops(800), chunk=chunk)


@needs_native
def test_limit_hits_inside_vectorized_span():
    """Limits land mid-chunk; consumption resumes exactly there.

    Block ops make limits fall *inside* an op's instruction count: the
    engines must stop after the same op and resume on the next call.
    """
    ops = _ops(2000, seed=7)
    _run_pair(ops, limits=(1, 17, 1000, 1001, None))


@needs_native
def test_empty_and_single_op_buffers():
    """Replay streams with empty chunks interleaved; first/last ops of
    each chunk carry the state transitions."""
    ops = _ops(300, seed=3)

    def factory():
        bufs = [TraceBuffer()]                 # leading empty chunk
        for op in ops:                         # one op per buffer
            b = TraceBuffer()
            b.extend([op])
            bufs.append(b)
            bufs.append(TraceBuffer())         # empty chunk after each
        return TraceBufferStream(buffers=iter(bufs))

    _run_pair(ops, stream_factory=factory)


@needs_native
def test_all_miss_stream():
    """Monotone never-reused addresses: every access misses every level
    and the vm sees a new page each load (growth + fault path)."""
    ops = []
    for i in range(4000):
        ops.append((OP_LOAD, 0x5000_0000 + i * 4096))
        if i % 7 == 0:
            ops.append((OP_BLOCK, 0x0010_0000 + i * 64, 3, 48, False))
    state = _run_pair(ops, chunk=512)
    assert state["l1d.misses"] == 4000


@needs_native
def test_vm_hash_growth_mid_run():
    """First-touch flood: the native vm hash must grow (several times)
    mid-buffer and stay identical to the Python dict model."""
    core = Core(get_machine("i9"), VirtualMemory())
    img = native.CoreImage(core)
    start_cap = len(img.vm_hash)
    ops = [(OP_LOAD, 0x6000_0000 + i * 4096) for i in range(5000)]
    state = _run_pair(ops, chunk=8192)
    # 5000 distinct pages cannot fit a half-full table of the fresh
    # core's initial capacity — growth must have happened.
    assert start_cap < 2 * 5000
    assert state["counts.loads"] == 5000


@needs_native
@pytest.mark.parametrize("policy", [ReplacementPolicy.FIFO,
                                    ReplacementPolicy.RANDOM])
def test_replacement_policies(policy):
    """FIFO keeps insertion order without MRU moves; RANDOM picks
    victims with the deterministic LCG — both must match the kernel."""
    def mutate(core):
        for cache in (core.l1d, core.l2):
            cache.policy = policy
            cache._lru = policy == ReplacementPolicy.LRU
            cache._evict_head = policy != ReplacementPolicy.RANDOM
    _run_pair(_ops(2500, seed=11, data_span=1 << 24), mutate=mutate)


def test_native_disabled_falls_back(monkeypatch):
    """REPRO_NATIVE=0 disables the kernel; engine="vector" silently
    takes the batched path and stays bit-identical."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    saved = native._lib, native._lib_resolved
    native._lib, native._lib_resolved = None, False
    try:
        assert not native.available()
        _run_pair(_ops(500, seed=5))
    finally:
        native._lib, native._lib_resolved = saved


def test_nativizable_guards():
    """Stock shared-LLC and sampler configs are native now; anything
    outside the kernel's model still delegates to the batched engine."""
    from repro.uarch.multicore import SharedLlc

    machine = get_machine("i9")
    core = Core(machine, VirtualMemory())
    assert native.nativizable(core)

    # Armed cycle hooks run through the HOOK trampoline.
    hooked = Core(machine, VirtualMemory())
    hooked.set_cycle_hook(lambda c: None, 1000.0)
    assert native.nativizable(hooked)

    # The stock shared LLC is modeled in C (slice counting + folded
    # contention latency); the M/M/1 math stays in Python.
    shared = Core(machine, VirtualMemory(),
                  shared_llc=SharedLlc(machine), core_id=0)
    assert native.nativizable(shared)

    # A subclassed/unknown shared LLC still delegates silently.
    weird = Core(machine, VirtualMemory())
    weird.shared_llc = object()
    assert not native.nativizable(weird)

    custom = Core(machine, VirtualMemory())
    custom.l1d_prefetcher.fetch = lambda addr: None   # rebound callback
    assert not native.nativizable(custom)

    paged = Core(machine, VirtualMemory())
    paged.dtlb.l1.page_shift = 13              # non-4K pages
    assert not native.nativizable(paged)

    subclassed = Core(machine, VirtualMemory())

    class WeirdVm(VirtualMemory):
        pass
    subclassed.vm = WeirdVm()
    assert not native.nativizable(subclassed)


@needs_native
def test_shared_llc_and_sampler_take_native_path():
    """Stock multicore + sampler configs must execute in the kernel —
    no silent batched delegation (asserted via the entry counters)."""
    from repro.harness.runner import Fidelity, run_multicore
    from test_batched_equivalence import _spec_of

    fid = Fidelity(warmup_instructions=4_000, measure_instructions=8_000)
    before = dict(native.stats)
    run_multicore(_spec_of("Plaintext"), get_machine("i9"), 2, fid,
                  engine="vector", sampling=True, sample_interval=1e-6)
    delta = {k: native.stats[k] - before[k] for k in before}
    assert delta["sessions"] == 2        # warmup + measure round loops
    assert delta["kernel_calls"] > 0
    assert delta["hook_exits"] > 0       # sampler ran via the trampoline


# ---------------------------------------------------------------------------
# Cycle-hook trampoline edge cases.

def _run_hooked(ops, engine, interval, make_hook, chunk=4096,
                limits=(None,)):
    """Drive ``ops`` with an armed cycle hook; return everything
    observable: per-call consumption, full core state, and the hook's
    own log (what it saw when it fired)."""
    core = Core(get_machine("i9"), VirtualMemory())
    log = []
    core.set_cycle_hook(make_hook(log), interval)
    consumed = []
    if engine == "legacy":
        it = iter(ops)
        for lim in limits:
            consumed.append(core.consume(it, max_instructions=lim))
    else:
        stream = TraceBufferStream(ops=iter(ops), chunk_instructions=chunk)
        for lim in limits:
            consumed.append(core.consume_stream(stream,
                                                max_instructions=lim,
                                                engine=engine))
    return consumed, _state(core), log


def _observing_hook(log):
    def hook(core):
        log.append((core.cycles, core.counts.instructions,
                    core._next_hook_cycles))
    return hook


def _mutating_hook(log):
    """A hook that perturbs live core state: the trampoline must write
    native state back before it runs and re-export after."""
    def hook(core):
        log.append((core.cycles, core.counts.instructions))
        core._ideal_cycles += 3.0            # shifts later hook timing
        core.counts.uops += 2.0
    return hook


def _hook_case(ops, interval, make_hook, chunk=4096, limits=(None,)):
    """Legacy vs vector with a hook armed: consumption counts, final
    state, and the hook's observations must all be identical."""
    a = _run_hooked(ops, "legacy", interval, make_hook, chunk, limits)
    before = dict(native.stats)
    b = _run_hooked(ops, "vector", interval, make_hook, chunk, limits)
    assert a[0] == b[0]
    diffs = {k: (a[1][k], b[1][k]) for k in a[1] if a[1][k] != b[1][k]}
    assert not diffs, f"state diverged: {dict(list(diffs.items())[:4])}"
    assert a[2] == b[2]
    return len(a[2]), native.stats["hook_exits"] - before["hook_exits"]


@needs_native
def test_hook_interval_smaller_than_chunk():
    """Interval of ~tens of cycles inside 4096-instruction chunks: the
    kernel must bounce through the trampoline many times per chunk."""
    fired, exits = _hook_case(_ops(1500, seed=21), 64.0, _observing_hook)
    assert fired > 20
    assert exits == fired


@needs_native
def test_hook_mutates_core_state_mid_run():
    """A hook that mutates cycles and counters mid-run: mutations must
    land in native state on re-entry (and shift later hook firings)."""
    fired, exits = _hook_case(_ops(1500, seed=22), 600.0, _mutating_hook)
    assert fired > 3
    assert exits == fired


@needs_native
def test_hook_fires_exactly_on_chunk_boundary():
    """Single-op chunks make every hook land on a chunk boundary; the
    kernel re-enters at pos == n_ops and must cleanly advance."""
    fired, exits = _hook_case(_ops(600, seed=23), 200.0, _observing_hook,
                              chunk=1)
    assert fired > 5
    assert exits == fired


@needs_native
def test_hook_with_limits_resumes_exactly():
    """Limits interleave with hook firings across consume calls; the
    legacy hook-before-limit ordering must be preserved."""
    _hook_case(_ops(1500, seed=24), 150.0, _observing_hook,
               limits=(1, 17, 900, 901, None))


@pytest.mark.parametrize("case", ["small-interval", "mutating",
                                  "chunk-boundary"])
def test_hook_parity_with_native_disabled(monkeypatch, case):
    """REPRO_NATIVE=0: the same hooked runs silently take the batched
    path and stay bit-identical to legacy."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    saved = native._lib, native._lib_resolved
    native._lib, native._lib_resolved = None, False
    try:
        assert not native.available()
        if case == "small-interval":
            fired, exits = _hook_case(_ops(800, seed=21), 64.0,
                                      _observing_hook)
        elif case == "mutating":
            fired, exits = _hook_case(_ops(800, seed=22), 600.0,
                                      _mutating_hook)
        else:
            fired, exits = _hook_case(_ops(400, seed=23), 200.0,
                                      _observing_hook, chunk=1)
        assert fired > 0
        assert exits == 0                  # kernel never entered
    finally:
        native._lib, native._lib_resolved = saved
