"""Public-API sanity: exports, docstrings, and the quickstart path."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.core", "repro.uarch", "repro.kernel",
            "repro.runtime", "repro.workloads", "repro.perf",
            "repro.harness", "repro.exec", "repro.obs",
            "repro.fabric"]


def all_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__,
                                         prefix=pkg_name + "."):
            out.append(importlib.import_module(info.name))
    return out


class TestModuleHygiene:
    def test_every_module_has_a_docstring(self):
        bare = [m.__name__ for m in all_modules() if not (m.__doc__ or
                                                          "").strip()]
        assert not bare, f"modules without docstrings: {bare}"

    def test_all_exports_resolve(self):
        for module in all_modules():
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), (module.__name__, name)

    def test_public_classes_documented(self):
        undocumented = []
        for module in all_modules():
            for name, obj in vars(module).items():
                if (inspect.isclass(obj) and not name.startswith("_")
                        and obj.__module__ == module.__name__
                        and not (obj.__doc__ or "").strip()):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_version(self):
        assert repro.__version__


class TestQuickCharacterize:
    def test_dotnet_lookup(self):
        from repro import Fidelity, quick_characterize
        r = quick_characterize(
            "SeekUnroll",
            fidelity=Fidelity(warmup_instructions=8_000,
                              measure_instructions=12_000))
        assert r.counters.instructions >= 12_000

    def test_unknown_name(self):
        from repro import quick_characterize
        with pytest.raises(KeyError):
            quick_characterize("NopeBench")

    def test_machine_key(self):
        from repro import Fidelity, quick_characterize
        r = quick_characterize(
            "SeekUnroll", machine="xeon",
            fidelity=Fidelity(warmup_instructions=8_000,
                              measure_instructions=12_000))
        assert "Xeon" in r.machine.name
