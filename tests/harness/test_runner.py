"""Tests for the experiment runner (§III-A measurement protocol)."""

import pytest

from repro.harness.runner import (Fidelity, run_multicore, run_workload,
                                  run_with_sampling)
from repro.harness.suite import characterize_suite
from repro.runtime.gc import GcConfig, SERVER, WORKSTATION
from repro.uarch.machine import get_machine
from repro.workloads.aspnet import aspnet_specs
from repro.workloads.dotnet import dotnet_category_specs
from repro.workloads.speccpu import speccpu_specs

FID = Fidelity(warmup_instructions=15_000, measure_instructions=25_000)


def spec_of(name):
    for s in (dotnet_category_specs() + aspnet_specs() + speccpu_specs()):
        if s.name == name:
            return s
    raise KeyError(name)


class TestRunWorkload:
    def test_measures_requested_instructions(self):
        r = run_workload(spec_of("System.Runtime"), get_machine("i9"), FID)
        assert 25_000 <= r.counters.instructions <= 32_000

    def test_result_fields(self):
        r = run_workload(spec_of("System.Runtime"), get_machine("i9"), FID)
        assert r.name == "System.Runtime"
        assert r.seconds > 0
        assert r.ipc > 0
        td = r.topdown
        total = (td.retiring + td.bad_speculation + td.frontend_bound
                 + td.backend_bound)
        assert abs(total - 1.0) < 1e-6

    def test_deterministic_given_seed(self):
        a = run_workload(spec_of("System.Linq"), get_machine("i9"), FID,
                         seed=4)
        b = run_workload(spec_of("System.Linq"), get_machine("i9"), FID,
                         seed=4)
        assert a.counters == b.counters

    def test_different_machines_differ(self):
        a = run_workload(spec_of("System.Linq"), get_machine("i9"), FID)
        b = run_workload(spec_of("System.Linq"), get_machine("xeon"), FID)
        assert a.seconds != b.seconds

    def test_warmup_discard_removes_startup_jit(self):
        """§III-A: first run discarded -> steady state has no startup JIT.

        SeekUnroll has 5 methods and no tiering: all compilation happens
        at startup, so a warmed window must see zero JIT events while a
        cold window sees them all.
        """
        from dataclasses import replace
        spec = replace(spec_of("SeekUnroll"), prejit_frac=0.0)
        cold = run_workload(
            spec, get_machine("i9"),
            Fidelity(warmup_instructions=0, measure_instructions=25_000))
        warm = run_workload(
            spec, get_machine("i9"),
            Fidelity(warmup_instructions=150_000,
                     measure_instructions=25_000))
        assert cold.counters.jit_started >= 1
        assert warm.counters.jit_started == 0

    def test_native_workload_runs(self):
        r = run_workload(spec_of("leela"), get_machine("i9"), FID)
        assert r.counters.gc_triggered == 0
        assert r.counters.jit_started == 0
        assert r.counters.page_faults < 5

    def test_gc_config_respected(self):
        spec = spec_of("System.Linq")
        ws = run_workload(spec, get_machine("i9"), FID,
                          gc_config=GcConfig(flavor=WORKSTATION,
                                             max_heap_bytes=200 * 2 ** 20))
        srv = run_workload(spec, get_machine("i9"), FID,
                           gc_config=GcConfig(flavor=SERVER,
                                              max_heap_bytes=2000 * 2 ** 20))
        assert ws.counters is not None and srv.counters is not None

    def test_collections_oom_at_200mib_workstation(self):
        """§VII-B: System.Collections cannot run with workstation GC and a
        200 MiB heap cap (OutOfMemory)."""
        from repro.runtime.gc import OutOfManagedMemory
        with pytest.raises(OutOfManagedMemory):
            run_workload(spec_of("System.Collections"), get_machine("i9"),
                         FID,
                         gc_config=GcConfig(flavor=WORKSTATION,
                                            max_heap_bytes=200 * 2 ** 20))

    def test_sampling_produces_series(self):
        r = run_with_sampling(spec_of("Json"), get_machine("i9"), FID,
                              sample_interval=2e-6)
        assert r.samples is not None
        assert len(r.samples) >= 2

    def test_no_sampling_by_default(self):
        r = run_workload(spec_of("Json"), get_machine("i9"), FID)
        assert r.samples is None


class TestRunMulticore:
    def test_runs_and_profiles(self):
        result, td, counters = run_multicore(
            spec_of("Json"), get_machine("i9"), n_cores=2, fidelity=FID)
        assert len(result.cores) == 2
        assert counters.instructions >= FID.measure_instructions
        assert 0 <= td.be_l3_bound <= 1

    def test_llc_contention_present(self):
        result, _, _ = run_multicore(spec_of("Plaintext"),
                                     get_machine("i9"), 4, FID)
        assert result.llc.extra_latency > 0


class TestSuite:
    def test_characterize_suite_collects_all(self):
        specs = dotnet_category_specs()[:3]
        sr = characterize_suite(specs, get_machine("i9"), FID)
        assert sr.names == [s.name for s in specs]
        m = sr.metric_matrix()
        assert m.values.shape == (3, 24)
        assert all(t > 0 for t in sr.times().values())

    def test_progress_callback(self):
        seen = []
        characterize_suite(dotnet_category_specs()[:2], get_machine("i9"),
                           FID, progress=lambda i, n, name:
                           seen.append((i, n, name)))
        assert len(seen) == 2

    def test_result_lookup(self):
        specs = dotnet_category_specs()[:2]
        sr = characterize_suite(specs, get_machine("i9"), FID)
        assert sr.result_of(specs[0].name).spec == specs[0]
        with pytest.raises(KeyError):
            sr.result_of("nope")


class TestFidelity:
    def test_presets_ordered(self):
        assert Fidelity.test().measure_instructions \
            < Fidelity.default().measure_instructions \
            < Fidelity.paper().measure_instructions

    def test_paper_uses_full_corpus(self):
        assert Fidelity.paper().workloads_per_category is None
