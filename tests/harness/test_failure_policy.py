"""CLI resilience surface: --on-error, --max-retries, --manifest,
--resume, exit codes and the per-workload failure summary."""

import json

import pytest

import repro.exec.pool as pool_mod
from repro.exec.campaign import CampaignManifest
from repro.harness.cli import main
from repro.workloads.dotnet import dotnet_category_specs

ARGS = ["--instructions", "10000", "--warmup", "6000"]


def _names(n=3):
    return [s.name for s in dotnet_category_specs()[:n]]


def _fail_one(monkeypatch, bad_name, exc_factory=lambda: ValueError("m")):
    def execute(job):
        if job.name == bad_name:
            raise exc_factory()
        return pool_mod.execute_job(job)

    monkeypatch.setattr(pool_mod, "_execute", execute)


class TestOnErrorFlag:
    def test_default_policy_aborts(self, monkeypatch):
        names = _names(3)
        _fail_one(monkeypatch, names[1])
        with pytest.raises(ValueError):
            main(names + ARGS)

    def test_skip_degrades_to_summary_and_exit_1(self, monkeypatch,
                                                 capsys):
        names = _names(3)
        _fail_one(monkeypatch, names[1])
        rc = main(names + ARGS + ["--on-error", "skip"])
        assert rc == 1
        captured = capsys.readouterr()
        # the survivors still get their table on stdout
        assert names[0] in captured.out and names[2] in captured.out
        # the failure summary goes to stderr with the taxonomy columns
        assert "1 workload(s) failed" in captured.err
        assert names[1] in captured.err
        assert "ValueError" in captured.err
        assert "permanent" in captured.err

    def test_all_green_exits_0(self, capsys):
        rc = main(_names(2) + ARGS + ["--on-error", "skip"])
        assert rc == 0
        assert "failed" not in capsys.readouterr().err

    def test_max_retries_flag_feeds_pool(self, monkeypatch, capsys):
        names = _names(1)
        calls = []

        def flaky(job):
            calls.append(job.name)
            raise OSError("weather")

        monkeypatch.setattr(pool_mod, "_execute", flaky)
        rc = main(names + ARGS + ["--on-error", "skip",
                                  "--max-retries", "2"])
        assert rc == 1
        assert len(calls) == 3              # initial try + 2 retries
        err = capsys.readouterr().err
        assert "transient" in err and "OSError" in err


class TestManifestFlag:
    def test_outcomes_are_journaled(self, tmp_path, capsys):
        path = tmp_path / "campaign.jsonl"
        rc = main(_names(2) + ARGS + ["--manifest", str(path)])
        assert rc == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records[0]["type"] == "campaign"
        statuses = [r["status"] for r in records
                    if r["type"] == "outcome"]
        assert statuses == ["done", "done"]

    def test_failures_journaled_with_resume_hint(self, tmp_path,
                                                 monkeypatch, capsys):
        names = _names(2)
        path = tmp_path / "campaign.jsonl"
        _fail_one(monkeypatch, names[0])
        rc = main(names + ARGS + ["--on-error", "skip",
                                  "--manifest", str(path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert f"--resume {path}" in err
        failures = CampaignManifest(path).failure_records()
        assert [f.name for f in failures.values()] == [names[0]]


class TestResumeFlag:
    def test_resume_completes_prior_campaign(self, tmp_path, monkeypatch,
                                             capsys):
        names = _names(2)
        path = tmp_path / "campaign.jsonl"
        cache = tmp_path / "cache"
        _fail_one(monkeypatch, names[0], lambda: OSError("weather"))
        assert main(names + ARGS + ["--on-error", "skip",
                                    "--manifest", str(path),
                                    "--cache-dir", str(cache)]) == 1
        capsys.readouterr()

        monkeypatch.setattr(pool_mod, "_execute", pool_mod.execute_job)
        rc = main(names + ARGS + ["--resume", str(path),
                                  "--cache-dir", str(cache)])
        assert rc == 0
        captured = capsys.readouterr()
        assert names[0] in captured.out and names[1] in captured.out
        assert CampaignManifest(path).failure_records() == {}

    def test_resume_implies_skip_policy(self, tmp_path, monkeypatch,
                                        capsys):
        """--resume with the default raise policy must not abort on the
        journaled failure it exists to deal with."""
        names = _names(2)
        path = tmp_path / "campaign.jsonl"
        _fail_one(monkeypatch, names[0])    # deterministic: carried
        assert main(names + ARGS + ["--on-error", "skip",
                                    "--manifest", str(path)]) == 1
        capsys.readouterr()
        rc = main(names + ARGS + ["--resume", str(path)])
        assert rc == 1                      # degraded summary, no raise
        assert "1 workload(s) failed" in capsys.readouterr().err

    def test_resume_without_cache_dir_warns(self, tmp_path, capsys):
        path = tmp_path / "campaign.jsonl"
        assert main(_names(1) + ARGS + ["--manifest", str(path)]) == 0
        capsys.readouterr()
        rc = main(_names(1) + ARGS + ["--resume", str(path)])
        assert rc == 0
        assert "--resume without --cache-dir" in capsys.readouterr().err
