"""Tests for the repro-characterize CLI."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "System.Runtime" in out
        assert "Plaintext" in out
        assert "mcf" in out

    def test_run_benchmark(self, capsys):
        rc = main(["System.MathBenchmarks", "--instructions", "20000",
                   "--warmup", "10000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "System.MathBenchmarks" in out
        assert "cpi" in out
        assert "Top-Down L1:" in out

    def test_topdown_flag(self, capsys):
        rc = main(["SeekUnroll", "--instructions", "15000",
                   "--warmup", "8000", "--topdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Frontend breakdown" in out
        assert "Backend breakdown" in out

    def test_machine_selection(self, capsys):
        rc = main(["SeekUnroll", "--instructions", "15000",
                   "--warmup", "8000", "--machine", "arm"])
        assert rc == 0
        assert "Arm server" in capsys.readouterr().out

    def test_unknown_benchmark(self, capsys):
        assert main(["NotABenchmark"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_missing_benchmark_errors(self):
        with pytest.raises(SystemExit):
            main([])
