"""Tests for the text report helpers."""

import numpy as np
import pytest

from repro.harness.report import (bar_chart, format_table, geomean,
                                  scatter_summary, stacked_bar_chart,
                                  std_ratio)


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        t = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        assert "name" in t and "value" in t
        assert "bb" in t and "2.250" in t

    def test_column_alignment(self):
        t = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = t.splitlines()
        assert len({len(l) for l in lines if l.strip()}) <= 2

    def test_custom_float_format(self):
        t = format_table(["v"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in t and "3.14" not in t


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_negative_values_marked(self):
        chart = bar_chart(["n"], [-2.5])
        assert "-2.5" in chart

    def test_title_and_unit(self):
        chart = bar_chart(["a"], [1.0], title="MPKI", unit="%")
        assert chart.startswith("MPKI")
        assert "%" in chart

    def test_empty_safe(self):
        assert bar_chart([], []) == ""


class TestStackedBarChart:
    def test_legend_and_rows(self):
        chart = stacked_bar_chart(
            ["w1", "w2"],
            {"retiring": [0.5, 0.2], "frontend": [0.5, 0.8]})
        assert "legend:" in chart
        assert "retiring" in chart and "frontend" in chart
        assert "w1" in chart and "w2" in chart

    def test_segments_fill_width(self):
        chart = stacked_bar_chart(["w"], {"a": [0.5], "b": [0.5]},
                                  width=20)
        row = chart.splitlines()[-1]
        inner = row.split("|")[1]
        assert inner.count("#") == 10
        assert inner.count("=") == 10


class TestScatterAndStats:
    def test_scatter_summary(self):
        groups = {"s1": np.zeros((5, 2)), "s2": np.ones((3, 2))}
        text = scatter_summary(groups, title="Fig 5")
        assert "Fig 5" in text and "s1" in text and "s2" in text

    def test_std_ratio(self):
        rng = np.random.default_rng(0)
        wide = rng.normal(0, 4, (100, 2))
        tight = rng.normal(0, 1, (100, 2))
        assert 3.0 < std_ratio(wide, tight) < 5.0

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_geomean_clips_nonpositive(self):
        assert geomean([0.0, 1.0]) >= 0.0
