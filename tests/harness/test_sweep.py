"""Tests for the parameter-sweep utility."""

import pytest

from repro.harness.runner import Fidelity
from repro.harness.sweep import Axis, sweep
from repro.runtime.gc import GcConfig, OutOfManagedMemory, SERVER, \
    WORKSTATION
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=10_000, measure_instructions=15_000)


def spec_of(name):
    return next(s for s in dotnet_category_specs() if s.name == name)


class TestAxis:
    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            Axis("x", (1,), target="nope")

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            Axis("x", ())


class TestSweep:
    def test_run_axis_product(self):
        axes = [Axis("seed", (0, 1), target="run")]
        result = sweep(spec_of("SeekUnroll"), get_machine("i9"), axes,
                       FID)
        assert len(result.results) == 2
        assert result.point(seed=0).counters.instructions >= 15_000

    def test_machine_axis_changes_behavior(self):
        axes = [Axis("mispredict_penalty", (5, 40), target="machine")]
        result = sweep(spec_of("System.Runtime"), get_machine("i9"), axes,
                       FID)
        cheap = result.point(mispredict_penalty=5)
        dear = result.point(mispredict_penalty=40)
        assert dear.counters.cycles > cheap.counters.cycles

    def test_spec_axis(self):
        axes = [Axis("temporal_reuse", (0.5, 0.95), target="spec")]
        result = sweep(spec_of("System.Runtime"), get_machine("i9"), axes,
                       FID)
        low = result.point(temporal_reuse=0.5).counters
        high = result.point(temporal_reuse=0.95).counters
        assert low.mpki(low.l1d_misses) > high.mpki(high.l1d_misses)

    def test_two_axes_product(self):
        axes = [Axis("seed", (0, 1), target="run"),
                Axis("mispredict_penalty", (8, 16), target="machine")]
        result = sweep(spec_of("SeekUnroll"), get_machine("i9"), axes, FID)
        assert len(result.results) == 4

    def test_failures_caught(self):
        axes = [Axis("gc_config",
                     (GcConfig(flavor=WORKSTATION,
                               max_heap_bytes=200 * 2 ** 20),
                      GcConfig(flavor=SERVER,
                               max_heap_bytes=20_000 * 2 ** 20)),
                     target="run")]
        result = sweep(spec_of("System.Collections"), get_machine("i9"),
                       axes, FID, catch=(OutOfManagedMemory,))
        assert len(result.failures) == 1      # 200 MiB cell OOMs (§VII-B)
        assert len(result.results) == 1

    def test_table_rendering(self):
        axes = [Axis("seed", (0, 1), target="run")]
        result = sweep(spec_of("SeekUnroll"), get_machine("i9"), axes, FID)
        text = result.table(lambda r: r.counters.cpi, "cpi")
        assert "seed" in text and "cpi" in text

    def test_series(self):
        axes = [Axis("seed", (0, 1), target="run")]
        result = sweep(spec_of("SeekUnroll"), get_machine("i9"), axes, FID)
        series = result.series(lambda r: r.counters.cpi)
        assert set(series) == {(0,), (1,)}
