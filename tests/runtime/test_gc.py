"""Tests for the garbage collector model (§VII-B mechanisms)."""

import pytest

from repro.codegen import CodeRegion
from repro.runtime.gc import (GarbageCollector, GcConfig,
                              OutOfManagedMemory, SERVER, WORKSTATION)
from repro.runtime.heap import HeapConfig, LongLivedSet, ManagedHeap
from repro.trace import (OP_BLOCK, OP_EVENT, OP_LOAD, OP_STORE,
                         EV_GC_COMPLETED, EV_GC_TRIGGERED)

MB = 1024 * 1024


def make_gc(flavor=WORKSTATION, max_heap=2000 * MB):
    code = CodeRegion(0x6000_0000, 64 * 1024, seed=3)
    return GarbageCollector(GcConfig(flavor=flavor, max_heap_bytes=max_heap),
                            code)


def run_collect(gc, heap, live, compact=True):
    return list(gc.collect(heap, live, compact=compact))


class TestBudgets:
    def test_server_budget_smaller_than_workstation(self):
        ws = GcConfig(flavor=WORKSTATION).gen0_budget()
        srv = GcConfig(flavor=SERVER).gen0_budget()
        assert srv < ws
        ratio = ws / srv
        # §VII-B: server GC triggers ~6.18x more often.
        assert 4.0 < ratio < 8.0

    def test_budget_grows_with_heap(self):
        budgets = [GcConfig(max_heap_bytes=s * MB).gen0_budget()
                   for s in (200, 2_000, 20_000)]
        assert budgets[0] < budgets[1] <= budgets[2]

    def test_min_heap_server_larger(self):
        live = 50 * MB
        ws = GcConfig(flavor=WORKSTATION).min_heap_required(live)
        srv = GcConfig(flavor=SERVER).min_heap_required(live)
        assert srv > ws


class TestOomBehavior:
    """§VII-B: some categories cannot run at a 200 MiB cap."""

    def test_large_live_set_fails_small_heap(self):
        gc = make_gc(max_heap=200 * MB)
        with pytest.raises(OutOfManagedMemory):
            gc.check_heap_fits(150 * MB)

    def test_server_fails_where_workstation_fits(self):
        live = 52 * MB
        make_gc(WORKSTATION, 200 * MB).check_heap_fits(live)
        with pytest.raises(OutOfManagedMemory):
            make_gc(SERVER, 200 * MB).check_heap_fits(live)

    def test_large_heap_always_fits(self):
        make_gc(SERVER, 20_000 * MB).check_heap_fits(150 * MB)


class TestCollection:
    def test_emits_trigger_and_complete_events(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig())
        live = LongLivedSet(500, 64, heap.gen2_alloc(500 * 64))
        ops = run_collect(gc, heap, live)
        kinds = [op[1] for op in ops if op[0] == OP_EVENT]
        assert kinds[0] == EV_GC_TRIGGERED
        assert EV_GC_COMPLETED in kinds

    def test_ephemeral_collection_promotes_nursery_survivors(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig())
        live = LongLivedSet(500, 64, heap.gen2_alloc(500 * 64))
        scattered_addrs = [heap.allocate(64) for _ in range(3)]
        live.scatter([1, 100, 400], scattered_addrs)
        run_collect(gc, heap, live)
        # Nothing remains in the nursery; survivors moved to gen2.
        assert live.scattered_indices(heap.gen0_base) == []
        assert all(a < heap.gen0_base for a in live.addrs)

    def test_full_collection_slides_back_to_packed_base(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig())
        live = LongLivedSet(500, 64, heap.gen2_alloc(500 * 64))
        live.scatter([1, 100, 400], [heap.allocate(64) for _ in range(3)])
        gc.stats.triggered = GarbageCollector.FULL_GC_PERIOD - 1
        run_collect(gc, heap, live)          # this one is a full GC
        assert live.fragmentation == 1.0
        assert gc.stats.gen2_collections == 1

    def test_no_compact_mode_keeps_addresses(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig())
        live = LongLivedSet(500, 64, heap.gen2_alloc(500 * 64))
        live.scatter([1], [0x9000_0000])
        before = list(live.addrs)
        run_collect(gc, heap, live, compact=False)
        assert live.addrs == before

    def test_collection_resets_nursery(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig(gen0_budget_bytes=512))
        live = LongLivedSet(10, 64, heap.gen2_alloc(640))
        for _ in range(20):
            heap.allocate(64)
        assert heap.needs_collection
        run_collect(gc, heap, live)
        assert not heap.needs_collection

    def test_full_gc_mark_touches_live_objects(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig())
        live = LongLivedSet(100, 64, heap.gen2_alloc(6400))
        gc.stats.triggered = GarbageCollector.FULL_GC_PERIOD - 1
        ops = run_collect(gc, heap, live)
        loads = {op[1] for op in ops if op[0] == OP_LOAD}
        assert any(0 <= a - heap.gen2_base < 6400 for a in loads)

    def test_ephemeral_mark_traces_only_nursery(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig())
        live = LongLivedSet(100, 64, heap.gen2_alloc(6400))
        nursery_addr = heap.allocate(64)
        live.scatter([5], [nursery_addr])
        ops = run_collect(gc, heap, live)
        loads = {op[1] for op in ops if op[0] == OP_LOAD}
        assert nursery_addr in loads
        gen2_loads = [a for a in loads if 0 <= a - heap.gen2_base < 6400]
        assert len(gen2_loads) <= 1          # gen2 residents not traced

    def test_server_emits_less_inline_work(self):
        heap_ws = ManagedHeap(HeapConfig())
        heap_srv = ManagedHeap(HeapConfig())
        live_ws = LongLivedSet(2000, 64, heap_ws.gen2_alloc(2000 * 64))
        live_srv = LongLivedSet(2000, 64, heap_srv.gen2_alloc(2000 * 64))

        def inline_instr(ops):
            return sum(op[2] for op in ops if op[0] == OP_BLOCK)

        ws_ops = run_collect(make_gc(WORKSTATION), heap_ws, live_ws)
        srv_ops = run_collect(make_gc(SERVER), heap_srv, live_srv)
        assert inline_instr(srv_ops) < inline_instr(ws_ops)

    def test_stats_accumulate(self):
        gc = make_gc()
        heap = ManagedHeap(HeapConfig())
        live = LongLivedSet(100, 64, heap.gen2_alloc(6400))
        run_collect(gc, heap, live)
        run_collect(gc, heap, live)
        assert gc.stats.triggered == 2
        assert gc.stats.gc_instructions > 0
