"""Tests for the Large Object Heap."""

import itertools

from repro.runtime.heap import HeapConfig, ManagedHeap
from repro.trace import OP_STORE


def make_heap():
    return ManagedHeap(HeapConfig())


class TestLohAllocator:
    def test_size_classes_power_of_two(self):
        assert ManagedHeap._loh_size_class(4096) == 4096
        assert ManagedHeap._loh_size_class(4097) == 8192
        assert ManagedHeap._loh_size_class(100) == 4096    # floor class

    def test_alloc_in_loh_region(self):
        h = make_heap()
        addr = h.loh_alloc(8192)
        assert addr >= h.loh_base

    def test_distinct_segments(self):
        h = make_heap()
        a = h.loh_alloc(8192)
        b = h.loh_alloc(8192)
        assert b >= a + 8192

    def test_free_then_realloc_reuses_segment(self):
        h = make_heap()
        a = h.loh_alloc(8192)
        h.loh_free(a, 8192)
        b = h.loh_alloc(8192)
        assert b == a
        assert h.stats.loh_reuses == 1

    def test_free_list_is_per_size_class(self):
        h = make_heap()
        a = h.loh_alloc(8192)
        h.loh_free(a, 8192)
        c = h.loh_alloc(32768)        # different class: no reuse
        assert c != a
        assert h.stats.loh_reuses == 0

    def test_stats(self):
        h = make_heap()
        h.loh_alloc(10_000)
        assert h.stats.loh_allocations == 1
        assert h.stats.loh_bytes == 16384      # rounded to class
        assert h.loh_used == 16384

    def test_loh_separate_from_gen0(self):
        h = make_heap()
        small = h.allocate(64)
        big = h.loh_alloc(8192)
        assert big >= h.loh_base > small


class TestClrLargeAllocation:
    def make_clr(self):
        from repro.runtime.clr import Clr, shared_clr_image
        from repro.runtime.gc import GcConfig
        return Clr(shared_clr_image(), HeapConfig(), GcConfig(),
                   long_lived_count=64, long_lived_slot=32, seed=1)

    def test_alloc_large_zero_fills(self):
        clr = self.make_clr()
        ops = list(clr.alloc_large(8192))
        stores = [op for op in ops if op[0] == OP_STORE]
        assert len(stores) == 8192 // 64
        addr, size = clr._last_loh
        assert size == 8192
        assert all(addr <= op[1] < addr + 8192 for op in stores)

    def test_free_large_enables_reuse(self):
        clr = self.make_clr()
        list(clr.alloc_large(8192))
        first = clr._last_loh
        clr.free_large(*first)
        list(clr.alloc_large(8192))
        assert clr._last_loh[0] == first[0]

    def test_allocate_batch_routes_big_objects_to_loh(self):
        clr = self.make_clr()
        # Mean far above the LOH threshold: essentially every allocation
        # is large.
        list(clr.allocate_batch(10, mean_size=50_000))
        assert clr.heap.stats.loh_allocations >= 5


class TestAspnetLohUsage:
    def test_big_response_benchmark_uses_loh(self):
        from repro.workloads.aspnet import aspnet_specs
        from repro.workloads.program import build_program
        spec = next(s for s in aspnet_specs()
                    if s.name == "MvcJsonNetOutput2M")
        prog = build_program(spec, seed=1)
        for _ in itertools.islice(prog.ops(), 250_000):
            pass
        stats = prog.clr.heap.stats
        assert stats.loh_allocations >= 1
        # The buffer is recycled across requests (free-list reuse).
        if stats.loh_allocations >= 2:
            assert stats.loh_reuses >= 1

    def test_small_response_benchmark_avoids_loh(self):
        from repro.workloads.aspnet import aspnet_specs
        from repro.workloads.program import build_program
        spec = next(s for s in aspnet_specs() if s.name == "Json")
        prog = build_program(spec, seed=1)
        for _ in itertools.islice(prog.ops(), 60_000):
            pass
        assert prog.clr.heap.stats.loh_allocations <= 2
