"""Tests for the JIT model: fresh code pages, tiering, prejit."""

from repro.codegen import CodeRegion, MixProfile
from repro.runtime.jit import JitCompiler, Method
from repro.trace import (OP_EVENT, OP_STORE, EV_JIT_STARTED,
                         REGION_JIT_CODE_BASE)


def make_jit(**kw):
    code = CodeRegion(0x6100_0000, 128 * 1024, seed=9)
    return JitCompiler(code, metadata_base=0x6800_0000, **kw)


def make_method(mid=0, size=480):
    return Method(id=mid, size_bytes=size, seed=1000 + mid,
                  mix=MixProfile())


class TestCompilation:
    def test_compile_emits_event_and_sets_region(self):
        jit = make_jit()
        m = make_method()
        ops = list(jit.compile(m))
        events = [op for op in ops if op[0] == OP_EVENT]
        assert events[0][1] == EV_JIT_STARTED
        assert m.region is not None
        assert m.region.base >= REGION_JIT_CODE_BASE
        assert m.tier == 0

    def test_code_written_out(self):
        jit = make_jit()
        m = make_method()
        ops = list(jit.compile(m))
        code_stores = [op for op in ops if op[0] == OP_STORE
                       and op[1] >= REGION_JIT_CODE_BASE]
        assert len(code_stores) >= m.region.size_bytes // 64

    def test_methods_get_distinct_addresses(self):
        jit = make_jit()
        a, b = make_method(0), make_method(1)
        list(jit.compile(a))
        list(jit.compile(b))
        assert a.region.base != b.region.base
        assert b.region.base >= a.region.base + a.region.size_bytes

    def test_retier_moves_to_fresh_address(self):
        """The paper's cold-start mechanism: code pages never reused."""
        jit = make_jit()
        m = make_method()
        list(jit.compile(m, tier=0))
        old_base = m.region.base
        list(jit.compile(m, tier=1))
        assert m.region.base != old_base
        assert m.tier == 1

    def test_reuse_code_pages_ablation(self):
        jit = make_jit(reuse_code_pages=True)
        m = make_method()
        list(jit.compile(m, tier=0))
        old_base = m.region.base
        list(jit.compile(m, tier=1))
        assert m.region.base == old_base

    def test_tier1_code_larger(self):
        jit = make_jit()
        m0, m1 = make_method(0), make_method(1)
        list(jit.compile(m0, tier=0))
        list(jit.compile(m1, tier=1))
        assert m1.region.size_bytes > m0.region.size_bytes

    def test_code_bloat_scales_emission(self):
        lean = make_jit(code_bloat=1.0)
        fat = make_jit(code_bloat=2.0)
        a, b = make_method(0), make_method(1)
        list(lean.compile(a))
        list(fat.compile(b))
        assert b.region.size_bytes >= int(a.region.size_bytes * 1.8)

    def test_bigger_methods_cost_more(self):
        jit = make_jit()

        def work(size):
            m = make_method(size=size)
            ops = list(jit.compile(m))
            return sum(op[2] for op in ops if op[0] == 0)

        assert work(2000) > work(200)

    def test_stats(self):
        jit = make_jit()
        list(jit.compile(make_method(0)))
        list(jit.compile(make_method(1)))
        assert jit.stats.methods_jitted == 2
        assert jit.stats.code_bytes_emitted > 0
        assert jit.stats.jit_instructions > 0


class TestTiering:
    def test_needs_tiering_threshold(self):
        jit = make_jit()
        m = make_method()
        list(jit.compile(m, tier=0))
        m.call_count = JitCompiler.TIER1_THRESHOLD - 1
        assert not jit.needs_tiering(m)
        m.call_count = JitCompiler.TIER1_THRESHOLD
        assert jit.needs_tiering(m)

    def test_tier1_never_retiers(self):
        jit = make_jit()
        m = make_method()
        list(jit.compile(m, tier=1))
        m.call_count = 10 ** 6
        assert not jit.needs_tiering(m)

    def test_tiering_disabled(self):
        jit = make_jit(tiering=False)
        m = make_method()
        list(jit.compile(m, tier=0))
        m.call_count = 10 ** 6
        assert not jit.needs_tiering(m)


class TestPrejit:
    def test_precompile_reserves_address_lazily(self):
        jit = make_jit()
        m = make_method()
        jit.precompile(m)
        assert m.region is None              # lazy
        assert m.prejit_base is not None
        assert m.is_jitted
        region = m.materialize()
        assert region.base == m.prejit_base
        assert m.tier == 1

    def test_precompiled_not_tiered(self):
        jit = make_jit()
        m = make_method()
        jit.precompile(m)
        m.call_count = 10 ** 6
        assert not jit.needs_tiering(m)

    def test_precompile_no_events_emitted(self):
        jit = make_jit()
        before = jit.stats.methods_jitted
        jit.precompile(make_method())
        assert jit.stats.methods_jitted == before
