"""Tests for the managed heap and the long-lived set."""

from hypothesis import given, settings, strategies as st

from repro.runtime.heap import HeapConfig, LongLivedSet, ManagedHeap


class TestAllocation:
    def test_bump_allocation_monotonic(self):
        h = ManagedHeap(HeapConfig())
        a = h.allocate(48)
        b = h.allocate(48)
        assert b > a

    def test_alignment(self):
        h = ManagedHeap(HeapConfig())
        h.allocate(13)
        assert h.allocate(8) % 8 == 0

    def test_stats(self):
        h = ManagedHeap(HeapConfig())
        h.allocate(100)
        h.allocate(100)
        assert h.stats.allocations == 2
        assert h.stats.allocated_bytes >= 200

    def test_budget_triggers_collection_request(self):
        h = ManagedHeap(HeapConfig(gen0_budget_bytes=1024))
        for _ in range(20):
            h.allocate(64)
        assert h.needs_collection
        assert h.stats.collections_requested == 1

    def test_nursery_reset_reuses_space(self):
        h = ManagedHeap(HeapConfig(gen0_budget_bytes=1024))
        first = h.allocate(64)
        for _ in range(20):
            h.allocate(64)
        h.reset_nursery()
        assert not h.needs_collection
        assert h.allocate(64) == first

    def test_allocation_ticks(self):
        cfg = HeapConfig(allocation_tick_bytes=1000)
        h = ManagedHeap(cfg)
        for _ in range(5):
            h.allocate(512)
        ticks = h.take_allocation_ticks()
        assert ticks == 2
        assert h.take_allocation_ticks() == 0    # consumed

    def test_gen2_alloc_separate_region(self):
        h = ManagedHeap(HeapConfig())
        g2 = h.gen2_alloc(4096)
        g0 = h.allocate(64)
        assert g2 < h.gen0_base <= g0


class TestLongLivedSet:
    def test_initially_packed(self):
        ls = LongLivedSet(100, 64, base=0x1000)
        assert ls.fragmentation == 1.0
        assert ls.addrs[0] == 0x1000
        assert ls.addrs[99] == 0x1000 + 99 * 64

    def test_scatter_increases_fragmentation(self):
        # 32-byte slots: packed = 2 objects/line; scattering to private
        # lines lowers density, which is what the metric tracks.
        ls = LongLivedSet(100, 32, base=0x1000)
        ls.scatter([5, 50], [0x100000, 0x200000])
        assert ls.fragmentation > 1.0

    def test_compact_restores_packing(self):
        ls = LongLivedSet(100, 32, base=0x1000)
        ls.scatter([5, 50], [0x100000, 0x200000])
        moves = ls.compact(0x8000)
        assert ls.fragmentation == 1.0
        assert ls.packed_base == 0x8000
        assert len(moves) == 100             # everything moved to new base

    def test_compact_move_list_only_changed(self):
        ls = LongLivedSet(10, 64, base=0x1000)
        moves = ls.compact(0x1000)           # compact in place
        assert moves == []

    def test_spread_span(self):
        ls = LongLivedSet(2, 64, base=0)
        assert ls.spread_span == 128
        ls.scatter([1], [1024])
        assert ls.spread_span == 1024 + 64


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=8, max_value=256))
@settings(max_examples=30, deadline=None)
def test_property_compaction_is_idempotent_and_packed(count, slot):
    slot = (slot + 7) & ~7
    ls = LongLivedSet(count, slot, base=0x10000)
    ls.scatter(list(range(0, count, 3)),
               [0x900000 + i * 4096 for i in range(0, count, 3)])
    ls.compact(0x20000)
    assert ls.spread_span == ls.packed_span
    moves = ls.compact(0x20000)
    assert moves == []


@given(st.lists(st.integers(min_value=8, max_value=4096), min_size=1,
                max_size=100))
@settings(max_examples=30, deadline=None)
def test_property_allocations_never_overlap(sizes):
    h = ManagedHeap(HeapConfig(gen0_budget_bytes=1 << 30))
    spans = []
    for size in sizes:
        addr = h.allocate(size)
        for start, end in spans:
            assert addr >= end or addr + size <= start
        spans.append((addr, addr + size))
