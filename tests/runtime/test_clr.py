"""Tests for the CLR facade."""

from repro.codegen import MixProfile
from repro.kernel.syscalls import SyscallModel
from repro.runtime.clr import Clr, ClrImage, shared_clr_image
from repro.runtime.gc import GcConfig
from repro.runtime.heap import HeapConfig
from repro.runtime.jit import Method
from repro.trace import (OP_EVENT, EV_CONTENTION, EV_EXCEPTION,
                         EV_GC_ALLOCATION_TICK, EV_GC_TRIGGERED,
                         EV_JIT_STARTED)


def make_clr(**kw):
    defaults = dict(long_lived_count=200, long_lived_slot=32,
                    churn_per_call=0.0, seed=5)
    defaults.update(kw)
    return Clr(shared_clr_image(), HeapConfig(gen0_budget_bytes=64 * 1024),
               GcConfig(), **defaults)


def add_method(clr, mid=0):
    m = Method(id=mid, size_bytes=400, seed=mid, mix=MixProfile())
    clr.register_method(m)
    return m


def events_of(ops, kind):
    return [op for op in ops if op[0] == OP_EVENT and op[1] == kind]


class TestImage:
    def test_subsystem_regions_disjoint(self):
        image = ClrImage()
        spans = sorted((r.base, r.base + r.size_bytes)
                       for r in image.regions.values())
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_expected_subsystems(self):
        image = ClrImage()
        for name in ("alloc", "gc", "jit", "exception", "threading"):
            assert name in image.regions

    def test_shared_image_cached(self):
        assert shared_clr_image() is shared_clr_image()
        assert shared_clr_image(code_bloat=1.9) \
            is not shared_clr_image(code_bloat=1.0)

    def test_code_bloat_grows_text(self):
        assert ClrImage(code_bloat=2.0).text_bytes \
            > ClrImage(code_bloat=1.0).text_bytes


class TestMethodCalls:
    def test_first_call_jits(self):
        clr = make_clr()
        m = add_method(clr)
        ops = list(clr.enter_method(m))
        assert events_of(ops, EV_JIT_STARTED)
        assert m.region is not None

    def test_second_call_no_jit(self):
        clr = make_clr()
        m = add_method(clr)
        list(clr.enter_method(m))
        ops = list(clr.enter_method(m))
        assert not events_of(ops, EV_JIT_STARTED)

    def test_call_count_tracked(self):
        clr = make_clr()
        m = add_method(clr)
        for _ in range(3):
            list(clr.enter_method(m))
        assert m.call_count == 3

    def test_tiering_rejits_at_threshold(self):
        clr = make_clr()
        m = add_method(clr)
        list(clr.enter_method(m))
        first_base = m.region.base
        m.call_count = clr.jit.TIER1_THRESHOLD
        ops = list(clr.enter_method(m))
        assert events_of(ops, EV_JIT_STARTED)
        assert m.region.base != first_base


class TestChurn:
    def test_churn_scatters_live_set(self):
        clr = make_clr(churn_per_call=5.0)
        m = add_method(clr)
        assert clr.live_set.fragmentation == 1.0
        list(clr.enter_method(m))
        assert clr.live_set.fragmentation > 1.0

    def test_fractional_churn_accumulates(self):
        clr = make_clr(churn_per_call=0.5)
        m = add_method(clr)
        list(clr.enter_method(m))
        frag1 = clr.live_set.fragmentation
        list(clr.enter_method(m))
        assert clr.live_set.fragmentation >= frag1


class TestAllocationAndGc:
    def test_allocation_emits_ticks(self):
        clr = make_clr()
        ops = list(clr.allocate_batch(3000, mean_size=64))
        assert events_of(ops, EV_GC_ALLOCATION_TICK)

    def test_gc_triggered_when_budget_exceeded(self):
        clr = make_clr()
        ops = list(clr.allocate_batch(2000, mean_size=64))
        assert events_of(ops, EV_GC_TRIGGERED)
        assert not clr.heap.needs_collection

    def test_gc_promotes_churned_objects_out_of_nursery(self):
        clr = make_clr(churn_per_call=50.0)
        m = add_method(clr)
        list(clr.enter_method(m))
        assert clr.live_set.scattered_indices(clr.heap.gen0_base)
        list(clr.allocate_batch(2000, mean_size=64))
        assert not clr.live_set.scattered_indices(clr.heap.gen0_base)

    def test_compaction_disabled_ablation(self):
        clr = make_clr(churn_per_call=50.0, compaction_enabled=False)
        m = add_method(clr)
        list(clr.enter_method(m))
        frag = clr.live_set.fragmentation
        list(clr.allocate_batch(2000, mean_size=64))
        assert clr.live_set.fragmentation == frag


class TestExceptionalFlow:
    def test_exception_event_and_code(self):
        clr = make_clr()
        ops = list(clr.throw_exception())
        assert events_of(ops, EV_EXCEPTION)
        assert clr.stats.exceptions_thrown == 1

    def test_contention_event(self):
        clr = make_clr()
        ops = list(clr.contend_lock())
        assert events_of(ops, EV_CONTENTION)

    def test_contention_uses_futex_when_syscalls_present(self):
        clr = make_clr(syscalls=SyscallModel())
        ops = list(clr.contend_lock())
        kernel_blocks = [op for op in ops if op[0] == 0 and op[4]]
        assert kernel_blocks
