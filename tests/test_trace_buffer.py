"""Tests for the SoA trace buffers (repro.trace)."""

import pytest

from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         EV_GC_TRIGGERED, EV_JIT_CODE_EMITTED, TraceBuffer,
                         TraceBufferStream)

OPS = [
    (OP_BLOCK, 0x4000_0000, 10, 48, False),
    (OP_LOAD, 0xC000_0040),
    (OP_STORE, 0xC000_0080),
    (OP_BRANCH, 0x4000_0030, 0x4000_0000, True),
    (OP_EVENT, EV_JIT_CODE_EMITTED, (0x8000_0000, 1024)),
    (OP_BLOCK, 0xFFFF_8000_0000, 5, 24, True),
    (OP_EVENT, EV_GC_TRIGGERED, None),
]


def _columns(buf):
    return (buf.kinds, buf.a0, buf.a1, buf.a2, buf.events,
            buf.n_instructions)


class TestTraceBuffer:
    def test_push_emitters_match_fill_from(self):
        """The push API and the tuple adapter must build identical
        buffers — workload generators use the former, trace replay and
        the legacy adapter the latter."""
        pushed = TraceBuffer()
        pushed.block(0x4000_0000, 10, 48, False)
        pushed.load(0xC000_0040)
        pushed.store(0xC000_0080)
        pushed.branch(0x4000_0030, 0x4000_0000, True)
        pushed.event(EV_JIT_CODE_EMITTED, (0x8000_0000, 1024))
        pushed.block(0xFFFF_8000_0000, 5, 24, True)
        pushed.event(EV_GC_TRIGGERED, None)
        filled = TraceBuffer()
        assert filled.fill_from(iter(OPS), None) is True
        assert _columns(pushed) == _columns(filled)

    def test_iter_ops_roundtrip(self):
        buf = TraceBuffer()
        buf.extend(OPS)
        assert list(buf.iter_ops()) == OPS

    def test_fill_from_bounds_never_split_an_op(self):
        # 10-instruction blocks; a 15-instruction bound must stop after
        # the second block (20 instructions), not mid-block.
        ops = iter([(OP_BLOCK, 0x4000_0000 + i * 64, 10, 48, False)
                    for i in range(5)])
        buf = TraceBuffer()
        assert buf.fill_from(ops, 15) is False
        assert buf.n_instructions == 20
        assert len(buf) == 2

    def test_fill_from_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            TraceBuffer().fill_from(iter([(99, 0)]), None)

    def test_seal_precomputes_lines(self):
        buf = TraceBuffer()
        buf.extend(OPS)
        assert buf.seal() is buf
        assert buf.lines == [a >> 6 for a in buf.a0]
        # line_ends: last byte of the op's span (blocks span n_bytes).
        assert buf.line_ends[0] == (0x4000_0000 + 48 - 1) >> 6
        lines = buf.lines
        buf.seal()                       # idempotent
        assert buf.lines is lines

    def test_color_private_offsets_only_mem_in_span(self):
        buf = TraceBuffer()
        buf.extend(OPS)
        buf.seal()
        color = 1 << 40
        buf.color_private([(0xC000_0000, 0xD000_0000)], color)
        assert buf.lines is None          # seal invalidated
        out = list(buf.iter_ops())
        assert out[1] == (OP_LOAD, 0xC000_0040 + color)
        assert out[2] == (OP_STORE, 0xC000_0080 + color)
        # code addresses (blocks/branches) and out-of-span ops untouched
        assert out[0] == OPS[0] and out[3] == OPS[3]

    def test_color_private_zero_color_is_noop(self):
        buf = TraceBuffer()
        buf.extend(OPS)
        a0 = buf.a0
        buf.color_private([(0, 1 << 48)], 0)
        assert buf.a0 is a0


class TestTraceBufferStream:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            TraceBufferStream()
        with pytest.raises(ValueError):
            TraceBufferStream(ops=iter(()), buffers=iter(()))

    def test_chunks_ops_and_replays_all(self):
        many = OPS * 30
        stream = TraceBufferStream(ops=iter(many), chunk_instructions=64)
        assert list(stream.iter_ops()) == many

    def test_resume_mid_chunk(self):
        stream = TraceBufferStream(ops=iter(OPS), chunk_instructions=1024)
        buf = stream.buffer()
        assert buf is not None and stream.pos == 0
        stream.pos = 3                    # consumer stopped mid-chunk
        assert list(stream.iter_ops()) == OPS[3:]

    def test_filler_source(self):
        ops_iter = iter(OPS * 10)

        def filler(buf, n_instructions):
            return buf.fill_from(ops_iter, n_instructions)

        stream = TraceBufferStream(filler=filler, chunk_instructions=32)
        assert list(stream.iter_ops()) == OPS * 10

    def test_buffers_source_applies_transform(self):
        chunks = []
        for lo in range(0, len(OPS), 4):
            buf = TraceBuffer()
            buf.extend(OPS[lo:lo + 4])
            chunks.append(buf)
        color = 1 << 40
        stream = TraceBufferStream(
            buffers=iter(chunks),
            transform=lambda b: b.color_private(
                [(0xC000_0000, 0xD000_0000)], color))
        out = list(stream.iter_ops())
        assert out[1] == (OP_LOAD, 0xC000_0040 + color)
        assert [o for o in out if o[0] == OP_BLOCK] \
            == [o for o in OPS if o[0] == OP_BLOCK]
