"""Time-series rings: rotation, sampler lifecycle, readers, CLI views."""

from __future__ import annotations

import json
import os
import time

from repro import obs
from repro.obs import timeseries
from repro.obs.report import main as report_main, render_tail, render_top


def _sample(source="w1", seq=1, t=None, counters=None, **extra):
    rec = timeseries.compact_sample(
        {"schema": 1, "counters": counters or {}, "gauges": {},
         "histograms": {}}, source=source, seq=seq, extra=extra)
    if t is not None:
        rec["t_wall"] = t
    return rec


def test_ring_rotation_bounds_disk_and_keeps_newest(tmp_path):
    path = tmp_path / "series-1.jsonl"
    ring = timeseries.SeriesRing(path, max_bytes=16 * 1024)
    for seq in range(500):
        ring.append(_sample(seq=seq))
    live = os.path.getsize(path)
    rotated = os.path.getsize(str(path) + ".1")
    assert live <= 8 * 1024 + 512       # one record of slack past gen cap
    assert rotated <= 8 * 1024 + 512
    samples = ring.read()
    assert samples[-1]["seq"] == 499    # newest always intact
    seqs = [s["seq"] for s in samples]
    assert seqs == sorted(seqs)         # .1 then live preserves order


def test_readers_tolerate_torn_and_foreign_lines(tmp_path):
    path = tmp_path / "series-x.jsonl"
    ring = timeseries.SeriesRing(path)
    ring.append(_sample(seq=1))
    with path.open("a") as fh:
        fh.write('{"schema": 77, "seq": 2}\n')     # foreign schema
        fh.write('["not", "a", "dict"]\n')
        fh.write('{"torn": ')                      # crashed writer
    samples = timeseries.load_series(path)
    assert [s["seq"] for s in samples] == [1]
    assert timeseries.load_series(tmp_path / "absent.jsonl") == []


def test_load_directory_and_latest_by_source(tmp_path):
    for src in ("w1", "w2"):
        ring = timeseries.SeriesRing(tmp_path / f"series-{src}.jsonl")
        for seq in (1, 2):
            ring.append(_sample(source=src, seq=seq))
    data = timeseries.load_directory(tmp_path)
    assert set(data) == {"w1", "w2"}
    latest = timeseries.latest_by_source(tmp_path)
    assert latest["w1"]["seq"] == 2
    assert timeseries.load_directory(tmp_path / "absent") == {}


def test_rate_from_counter_deltas(tmp_path):
    samples = [_sample(seq=i, t=100.0 + i,
                       counters={"pool.jobs_executed": 10.0 * i})
               for i in range(5)]
    assert timeseries.rate(samples, "pool.jobs_executed") == 10.0
    assert timeseries.rate(samples, "absent.counter") is None
    assert timeseries.rate(samples[:1], "pool.jobs_executed") is None


def test_sampler_lifecycle_via_configure(tmp_path):
    obs_dir = tmp_path / "obs"
    obs.configure(str(obs_dir), series=True)
    try:
        obs.add("demo.counter", 3.0)
    finally:
        obs.shutdown()
    assert os.environ.get(timeseries.ENV_SERIES) is None
    files = timeseries.series_files(obs_dir)
    assert len(files) == 1
    samples = timeseries.load_series(files[0])
    # stop() takes a final sample, so the counter is always captured
    assert samples
    assert samples[-1]["counters"]["demo.counter"] == 3.0
    assert samples[-1]["source"] == f"pid-{os.getpid()}"
    assert "ops_retired" in samples[-1]


def test_env_turns_sampler_on_without_series_argument(tmp_path, monkeypatch):
    # The CLIs call configure() without a series= argument; the
    # documented REPRO_OBS_SERIES=1 surface must still start the
    # sampler (and must not be wiped by the export_env mirror).
    monkeypatch.setenv(timeseries.ENV_SERIES, "1")
    obs_dir = tmp_path / "obs"
    obs.configure(str(obs_dir))
    try:
        assert os.environ.get(timeseries.ENV_SERIES) == "1"
        obs.add("demo.counter", 1.0)
    finally:
        obs.shutdown()
    assert timeseries.series_files(obs_dir)


def test_explicit_series_false_overrides_env(tmp_path, monkeypatch):
    monkeypatch.setenv(timeseries.ENV_SERIES, "1")
    obs_dir = tmp_path / "obs"
    obs.configure(str(obs_dir), series=False)
    try:
        assert os.environ.get(timeseries.ENV_SERIES) is None
    finally:
        obs.shutdown()
    assert timeseries.series_files(obs_dir) == []


def test_top_renders_fleet_table(tmp_path):
    now = time.time()
    ring = timeseries.SeriesRing(tmp_path / "series-w1.jsonl")
    for i in range(3):
        ring.append(_sample(source="w1", seq=i, t=now - 10 + 5 * i,
                            counters={"pool.jobs_executed": float(i)},
                            units_run=i, spool_pending=0,
                            ops_retired=1000 * i))
    text = render_top(tmp_path, now=now)
    assert "w1" in text
    assert "sim_ops/s" in text
    row = [ln for ln in text.splitlines() if ln.startswith("w1")][0]
    assert "200.0" in row               # 2000 ops over 10 s
    assert report_main(["top", str(tmp_path)]) == 0


def test_tail_merges_sources_by_time(tmp_path):
    for src, t0 in (("a", 100.0), ("b", 100.5)):
        ring = timeseries.SeriesRing(tmp_path / f"series-{src}.jsonl")
        for i in range(2):
            ring.append(_sample(source=src, seq=i, t=t0 + i))
    lines = render_tail(tmp_path, count=3).splitlines()
    recs = [json.loads(ln) for ln in lines]
    assert len(recs) == 3
    assert [r["t_wall"] for r in recs] == sorted(r["t_wall"] for r in recs)
    assert report_main(["tail", str(tmp_path), "-n", "2"]) == 0


def test_top_and_tail_on_empty_dir(tmp_path, capsys):
    assert report_main(["top", str(tmp_path)]) == 0
    assert "no time-series rings" in capsys.readouterr().out
    assert report_main(["tail", str(tmp_path)]) == 0
