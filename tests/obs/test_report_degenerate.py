"""``repro-obs`` on degenerate input: clean exits, never tracebacks.

CI runs these commands on directories whose producers may have crashed
mid-write, so every subcommand is exercised against the pathological
shapes: missing/empty directories, zero-span files, foreign-schema
lines, corrupt ``metrics.json``.
"""

from __future__ import annotations

import json

from repro.obs.exporter import load_spans
from repro.obs.report import main as report_main, render_report


def test_report_on_empty_dir(tmp_path, capsys):
    assert report_main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 spans" in out


def test_missing_dir_is_a_clean_error(tmp_path, capsys):
    rc = report_main(["report", str(tmp_path / "absent")])
    assert rc == 2
    assert "not a directory" in capsys.readouterr().err
    assert report_main(["export", str(tmp_path / "absent")]) == 2
    assert report_main(["top", str(tmp_path / "absent")]) == 2


def test_zero_span_files_and_foreign_lines(tmp_path, capsys):
    (tmp_path / "spans-1.jsonl").write_text("")          # zero spans
    (tmp_path / "spans-2.jsonl").write_text(
        json.dumps({"schema": 999, "other": "tool"}) + "\n"
        + '["a", "list", "line"]\n'
        + '"just a string"\n'
        + '{"schema": 1}\n'          # right schema, missing span fields
        + '{"torn": ')
    assert load_spans(tmp_path) == []
    assert report_main(["report", str(tmp_path)]) == 0
    assert "0 spans" in capsys.readouterr().out


def test_corrupt_metrics_json_degrades_report(tmp_path, capsys):
    (tmp_path / "metrics.json").write_text("{not json at all")
    assert report_main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Observability report" in out
    assert "Counters" not in out     # highlights skipped, not fatal


def test_foreign_schema_metrics_json(tmp_path, capsys):
    (tmp_path / "metrics.json").write_text(json.dumps(
        {"counters": {"x": "not-a-number"}, "histograms": {"h": 3},
         "other": [1, 2]}))
    assert report_main(["report", str(tmp_path)]) == 0
    assert "Observability report" in capsys.readouterr().out
    (tmp_path / "metrics.json").write_text(json.dumps([1, 2, 3]))
    assert report_main(["report", str(tmp_path)]) == 0
    capsys.readouterr()


def test_export_on_empty_dir_writes_valid_trace(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert report_main(["export", str(tmp_path), "-o", str(out)]) == 0
    assert "wrote 0 span event(s)" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["traceEvents"] == []


def test_unreadable_span_file_is_skipped(tmp_path):
    good = {"schema": 1, "span_id": "s1", "name": "x", "pid": 1,
            "start_us": 0, "dur_us": 5, "trace_id": "t"}
    (tmp_path / "spans-1.jsonl").write_text(json.dumps(good) + "\n")
    bad = tmp_path / "spans-2.jsonl"
    bad.write_text("whatever")
    bad.chmod(0o000)
    try:
        spans = load_spans(tmp_path)
    finally:
        bad.chmod(0o644)
    # root can often read anyway; the invariant is "no traceback" and
    # the good file's span always survives
    assert any(s["span_id"] == "s1" for s in spans)


def test_render_report_markdown_headings_on_empty(tmp_path):
    text = render_report(tmp_path, markdown=True)
    assert text.startswith("## Observability report")
