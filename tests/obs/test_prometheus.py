"""Prometheus text-format exposition: a lint-style parser over dumps.

The exposition is consumed by real scrapers, so instead of substring
checks this test *parses* the full dump line by line against the text
format's grammar: ``# HELP``/``# TYPE`` headers exactly once per
family and ahead of its first sample, valid metric/label identifiers,
escaped label values (backslash, double quote, newline), histogram
bucket/sum/count consistency.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import MetricsRegistry, labeled

IDENT = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\\n]|\\\\|\\"|\\n)*)"')
SAMPLE = re.compile(
    rf"^(?P<name>{IDENT})(?:\{{(?P<labels>.*)\}})? (?P<value>\S+)$")
HELP = re.compile(rf"^# HELP (?P<name>{IDENT}) (?P<text>.*)$")
TYPE = re.compile(
    rf"^# TYPE (?P<name>{IDENT}) (?P<kind>counter|gauge|histogram)$")


def parse_exposition(text: str) -> dict:
    """Parse a dump; assert on any grammar violation.

    Returns ``{family: {"kind": ..., "samples": [(name, labels, value)]}}``.
    """
    families: dict[str, dict] = {}
    pending_help: str | None = None
    for line in text.splitlines():
        if not line:
            continue
        m = HELP.match(line)
        if m:
            name = m.group("name")
            assert name not in families, f"duplicate HELP for {name}"
            assert pending_help is None, "HELP without a following TYPE"
            assert "\n" not in m.group("text")
            pending_help = name
            continue
        m = TYPE.match(line)
        if m:
            name = m.group("name")
            assert pending_help == name, \
                f"TYPE for {name} not preceded by its HELP"
            pending_help = None
            families[name] = {"kind": m.group("kind"), "samples": []}
            continue
        assert not line.startswith("#"), f"unparseable comment: {line!r}"
        m = SAMPLE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        name, labels_raw, value = m.group("name", "labels", "value")
        labels = {}
        if labels_raw:
            consumed = 0
            for lm in LABEL.finditer(labels_raw):
                labels[lm.group("key")] = lm.group("val")
                consumed += lm.end() - lm.start()
            seps = labels_raw.count('",') if labels_raw else 0
            assert consumed + seps == len(labels_raw), \
                f"junk inside label set: {labels_raw!r}"
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and base in families \
                    and families[base]["kind"] == "histogram":
                family = base
        assert family in families, \
            f"sample {name} has no preceding TYPE header"
        families[family]["samples"].append((name, labels, float(value)))
    assert pending_help is None
    return families


def test_basic_exposition_parses_and_is_complete():
    reg = MetricsRegistry()
    reg.add("pool.jobs_executed", 3)
    reg.gauge_set("fabric.queue_depth", 7)
    reg.observe("pool.job_seconds", 0.5)
    reg.observe("pool.job_seconds", 6.0)
    reg.observe("pool.job_seconds", -1.0)     # underflow bucket
    fams = parse_exposition(reg.to_prometheus())

    assert fams["repro_pool_jobs_executed"]["kind"] == "counter"
    assert fams["repro_pool_jobs_executed"]["samples"] == \
        [("repro_pool_jobs_executed", {}, 3.0)]
    assert fams["repro_fabric_queue_depth"]["kind"] == "gauge"

    hist = fams["repro_pool_job_seconds"]
    assert hist["kind"] == "histogram"
    by_name = {}
    for name, labels, value in hist["samples"]:
        by_name.setdefault(name, []).append((labels, value))
    # cumulative buckets end at +Inf == count
    buckets = by_name["repro_pool_job_seconds_bucket"]
    assert buckets[-1][0] == {"le": "+Inf"}
    assert buckets[-1][1] == 3.0
    counts = [v for _, v in buckets]
    assert counts == sorted(counts)
    assert by_name["repro_pool_job_seconds_count"] == [({}, 3.0)]
    assert math.isclose(by_name["repro_pool_job_seconds_sum"][0][1], 5.5)


def test_labeled_series_share_one_family_header():
    reg = MetricsRegistry()
    reg.gauge_set(labeled("fabric.worker.leases", worker="w1"), 2)
    reg.gauge_set(labeled("fabric.worker.leases", worker="w2"), 1)
    text = reg.to_prometheus()
    assert text.count("# TYPE repro_fabric_worker_leases gauge") == 1
    assert text.count("# HELP repro_fabric_worker_leases") == 1
    fams = parse_exposition(text)
    samples = fams["repro_fabric_worker_leases"]["samples"]
    assert ({"worker": "w1"}, 2.0) in [(l, v) for _, l, v in samples]
    assert ({"worker": "w2"}, 1.0) in [(l, v) for _, l, v in samples]


def test_label_value_escaping():
    """Backslash, double-quote and newline in label values must survive
    a round trip through the exposition grammar."""
    nasty = 'back\\slash "quoted"\nnewline'
    reg = MetricsRegistry()
    reg.gauge_set(labeled("fleet.host", host=nasty), 1)
    reg.observe(labeled("fleet.seconds", host=nasty), 2.0)
    text = reg.to_prometheus()
    fams = parse_exposition(text)
    (_, labels, value), = fams["repro_fleet_host"]["samples"]
    unescaped = (labels["host"].replace("\\\\", "\0")
                 .replace('\\"', '"').replace("\\n", "\n")
                 .replace("\0", "\\"))
    assert unescaped == nasty
    assert value == 1.0
    # the histogram's le label composes with the user labels
    bucket_labels = [l for n, l, _ in fams["repro_fleet_seconds"]["samples"]
                     if n.endswith("_bucket")]
    assert all("le" in l and "host" in l for l in bucket_labels)


def test_merge_and_snapshot_preserve_labeled_names():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.add(labeled("jobs", worker="w1"), 2)
    b.merge(a.snapshot())
    b.add(labeled("jobs", worker="w1"), 1)
    fams = parse_exposition(b.to_prometheus())
    (_, labels, value), = fams["repro_jobs"]["samples"]
    assert labels == {"worker": "w1"}
    assert value == 3.0
