"""Regression sentinel: baseline store, EWMA detector, CLI verdicts.

The acceptance bar from the observatory design: a synthetic ≥20%
slowdown injected into a committed history must be flagged (nonzero
exit, workload named in the verdict table), while repeated fault-free
runs — which the determinism anchor makes bit-identical — must stay
quiet.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import baseline
from repro.obs.report import main as report_main


def _history(tmp_path, values, *, key="Json:abc", workload="Json",
             engine="vector", fidelity="w100+m200", metric="sim_seconds"):
    """A history file with one series over ``values``."""
    path = tmp_path / "bench_history.jsonl"
    store = baseline.BaselineStore(path)
    recs = []
    for v in values:
        kwargs = {"sim_seconds": 1.0, "cpi": 1.0}
        kwargs[metric] = v
        recs.append(baseline.make_record(
            key=key, workload=workload, engine=engine,
            fidelity=fidelity, **kwargs))
    store.append(recs)
    return path, store


def test_store_append_load_roundtrip(tmp_path):
    path, store = _history(tmp_path, [1.0, 1.0])
    recs = store.load()
    assert len(recs) == 2
    assert recs[0]["workload"] == "Json"
    assert recs[0]["schema"] == baseline.BASELINE_SCHEMA
    # foreign-schema and torn lines are skipped, not fatal
    with path.open("a") as fh:
        fh.write(json.dumps({"schema": 99, "sim_seconds": 5.0}) + "\n")
        fh.write("{\"torn\": tr\n")
        fh.write("[1, 2, 3]\n")
    assert len(store.load()) == 2


def test_flat_series_stays_quiet(tmp_path):
    """Deterministic (bit-identical) history never alarms."""
    _, store = _history(tmp_path, [2.5, 2.5, 2.5, 2.5])
    rows = baseline.detect(store.load())
    assert rows and all(r["verdict"] == "ok" for r in rows)


def test_injected_slowdown_is_flagged(tmp_path):
    """A 20% jump on a deterministic series scores z == 20 >= 6."""
    _, store = _history(tmp_path, [2.5, 2.5, 2.5 * 1.2])
    by_metric = {r["metric"]: r for r in baseline.detect(store.load())}
    row = by_metric["sim_seconds"]
    assert row["verdict"] == "regression"
    assert row["workload"] == "Json"
    assert row["pct"] == pytest.approx(20.0, abs=0.1)
    assert row["z"] == pytest.approx(20.0, abs=0.1)
    # the untouched cpi series stays ok
    assert by_metric["cpi"]["verdict"] == "ok"


def test_small_drift_below_floors_is_ok(tmp_path):
    """2% drift: z == 2 < 6 and pct < 5 — both floors hold it back."""
    _, store = _history(tmp_path, [2.5, 2.5, 2.5 * 1.02])
    row = [r for r in baseline.detect(store.load())
           if r["metric"] == "sim_seconds"][0]
    assert row["verdict"] == "ok"


def test_speedup_reported_as_improvement_not_regression(tmp_path):
    _, store = _history(tmp_path, [2.5, 2.5, 2.5 * 0.7])
    row = [r for r in baseline.detect(store.load())
           if r["metric"] == "sim_seconds"][0]
    assert row["verdict"] == "improvement"


def test_insufficient_history_never_judged(tmp_path):
    _, store = _history(tmp_path, [2.5, 99.0])   # only 1 prior sample
    rows = baseline.detect(store.load())
    assert all(r["verdict"] == "insufficient" for r in rows)


def test_series_fork_on_engine_and_fidelity(tmp_path):
    """Same cost key under two engines = two independent series."""
    path = tmp_path / "h.jsonl"
    store = baseline.BaselineStore(path)
    for engine, secs in (("vector", 1.0), ("batched", 9.0)):
        store.append([baseline.make_record(
            key="k", workload="w", engine=engine, fidelity="f",
            sim_seconds=secs, cpi=1.0) for _ in range(3)])
    rows = baseline.detect(store.load())
    assert {(r["engine"], r["verdict"]) for r in rows} == \
        {("vector", "ok"), ("batched", "ok")}


def test_noisy_series_needs_real_excursion():
    """With genuine variance the EWMA sigma, not the floor, rules."""
    values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.08]
    row = baseline.judge_series(values)
    assert row["verdict"] == "ok"


def test_regress_cli_exit_codes_and_table(tmp_path, capsys):
    path, _ = _history(tmp_path, [2.5, 2.5, 3.0])
    rc = report_main(["regress", str(path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "Json" in out and "regression" in out
    assert "1 regression(s)" in out
    # advisory mode: same table, clean exit
    assert report_main(["regress", str(path), "--report-only"]) == 0


def test_regress_cli_quiet_history_exits_zero(tmp_path, capsys):
    path, _ = _history(tmp_path, [2.5, 2.5, 2.5, 2.5])
    assert report_main(["regress", str(path)]) == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out


def test_regress_cli_missing_or_empty_history(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    assert report_main(["regress", str(missing)]) == 0
    assert "no baseline records" in capsys.readouterr().out
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert report_main(["regress", str(empty)]) == 0


def test_regress_cli_markdown_table(tmp_path, capsys):
    path, _ = _history(tmp_path, [2.5, 2.5, 2.5])
    assert report_main(["regress", str(path), "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "| workload |" in out
