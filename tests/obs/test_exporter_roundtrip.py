"""Exporter round-trip + schema stability against the committed fixture.

``tests/obs/data/`` is a frozen observability directory: span JSONL from
three processes (scheduler + two workers, including a torn trailing line
and a future-schema record), a merged ``metrics.json``, and the expected
Chrome/Perfetto export ``trace.expected.json``.  These tests pin the
on-disk schema: any change to the span record shape or the Chrome event
mapping shows up as a fixture diff and forces a deliberate
``SPAN_SCHEMA`` / fixture bump.
"""

import json
from pathlib import Path

from repro.obs.exporter import (chrome_to_spans, export_chrome_trace,
                                load_spans, spans_to_chrome)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SPAN_SCHEMA

DATA = Path(__file__).parent / "data"


class TestLoadSpans:
    def test_loads_all_processes_in_start_order(self):
        spans = load_spans(DATA)
        assert [s["span_id"] for s in spans] \
            == ["101-1", "101-2", "202-1", "203-1", "202-2"]
        assert {s["pid"] for s in spans} == {101, 202, 203}

    def test_torn_tail_and_foreign_schema_are_skipped(self):
        spans = load_spans(DATA)
        assert all(s["schema"] == SPAN_SCHEMA for s in spans)
        assert "torn.tail" not in {s["name"] for s in spans}
        assert "future.schema" not in {s["name"] for s in spans}

    def test_cross_process_nesting_is_intact(self):
        spans = load_spans(DATA)
        by_id = {s["span_id"]: s for s in spans}
        for s in spans:
            parent_id = s["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]          # every link resolves
            assert parent["start_us"] <= s["start_us"]
            assert (s["start_us"] + s["dur_us"]
                    <= parent["start_us"] + parent["dur_us"])
        # The worker job spans parent to the scheduler's dispatch span.
        jobs = [s for s in spans if s["name"] == "pool.job"]
        assert len(jobs) == 2
        assert {s["parent_id"] for s in jobs} == {"101-2"}
        assert {s["pid"] for s in jobs} != {101}


class TestSchemaStability:
    def test_export_matches_committed_fixture(self, tmp_path):
        out = tmp_path / "trace.json"
        n = export_chrome_trace(DATA, out)
        assert n == 5
        assert out.read_text() == (DATA / "trace.expected.json").read_text()

    def test_expected_fixture_is_perfetto_shaped(self):
        doc = json.loads((DATA / "trace.expected.json").read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X"}
        for ev in events:
            if ev["ph"] != "X":
                continue
            assert ev["cat"] == "repro"
            assert isinstance(ev["ts"], int)
            assert isinstance(ev["dur"], int)
            assert "span_id" in ev["args"]

    def test_metrics_fixture_schema(self):
        data = json.loads((DATA / "metrics.json").read_text())
        assert set(data) == {"schema", "counters", "gauges", "histograms"}
        reg = MetricsRegistry()
        reg.merge(data)
        assert reg.counters["pool.jobs_executed"] == 2.0
        prom = reg.to_prometheus()
        assert "# TYPE repro_pool_jobs_executed counter" in prom
        assert 'repro_pool_job_seconds_bucket{le="8"} 2' in prom
        assert "repro_pool_job_seconds_count 2" in prom


class TestRoundTrip:
    def test_chrome_to_spans_is_exact_inverse(self):
        spans = load_spans(DATA)
        assert chrome_to_spans(spans_to_chrome(spans)) == spans

    def test_round_trip_survives_a_disk_cycle(self, tmp_path):
        out = tmp_path / "trace.json"
        export_chrome_trace(DATA, out)
        back = chrome_to_spans(json.loads(out.read_text()))
        assert back == load_spans(DATA)
