"""End-to-end observability: a real jobs=4 suite run, spans + metrics.

The acceptance contract for the obs subsystem: with observability
enabled, a parallel ``characterize_suite`` run must produce

* span JSONL whose cross-process parent/child links are correct (every
  worker ``pool.job`` span parents under the scheduler's
  ``pool.run_jobs`` span, and the in-worker phase spans nest under
  their job), exportable to a Perfetto-loadable Chrome trace, and
* a merged metrics dump whose job counts and cache-hit totals agree
  with the :class:`~repro.harness.suite.SuiteResult` the run returned.

And with observability *disabled* (the default), results must be
bit-identical to an enabled run — instrumentation observes, never
perturbs.
"""

import json

import pytest

from repro import obs
from repro.exec.store import ResultStore
from repro.harness.runner import Fidelity
from repro.harness.suite import characterize_suite
from repro.obs.exporter import export_chrome_trace, load_spans
from repro.obs.report import render_report
from repro.uarch.machine import get_machine
from repro.workloads.dotnet import dotnet_category_specs

FID = Fidelity(warmup_instructions=6_000, measure_instructions=10_000)


@pytest.fixture(autouse=True)
def _obs_teardown():
    """Never leak enabled obs state (or REPRO_OBS_* env) between tests."""
    yield
    obs.shutdown(dump=False)


def _run_suite(n_specs: int = 4, jobs: int = 4, store=None):
    specs = dotnet_category_specs()[:n_specs]
    return characterize_suite(specs, get_machine("i9"), FID,
                              jobs=jobs, store=store)


class TestSpansEndToEnd:
    def test_parallel_run_produces_nested_perfetto_spans(self, tmp_path):
        obs_dir = tmp_path / "obs"
        obs.configure(obs_dir)
        suite = _run_suite(jobs=4)
        obs.shutdown(dump=True)

        spans = load_spans(obs_dir)
        by_id = {s["span_id"]: s for s in spans}
        assert len({s["trace_id"] for s in spans}) == 1

        # Worker job spans parent under the scheduler's dispatch span —
        # the span context crossed the process boundary.
        run_jobs_spans = [s for s in spans if s["name"] == "pool.run_jobs"]
        assert len(run_jobs_spans) == 1
        sched_pid = run_jobs_spans[0]["pid"]
        job_spans = [s for s in spans if s["name"] == "pool.job"]
        assert len(job_spans) == len(suite.results) == 4
        for s in job_spans:
            assert s["parent_id"] == run_jobs_spans[0]["span_id"]
            assert s["pid"] != sched_pid
        assert {s["attrs"]["workload"] for s in job_spans} \
            == set(suite.names)

        # In-worker phase spans nest under their own process's job span.
        measure_spans = [s for s in spans if s["name"] == "run.measure"]
        assert len(measure_spans) == 4
        for s in measure_spans:
            parent = by_id[s["parent_id"]]
            assert parent["pid"] == s["pid"]
            # run.measure is nested under pool.job via run.* ancestors
            while parent["name"] != "pool.job":
                parent = by_id[parent["parent_id"]]
            assert parent["pid"] == s["pid"]

        # The folded export is Perfetto-shaped and complete.
        out = tmp_path / "trace.json"
        assert export_chrome_trace(obs_dir, out) == len(spans)
        doc = json.loads(out.read_text())
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) \
            == len(spans)

    def test_report_renders_the_recorded_run(self, tmp_path):
        obs_dir = tmp_path / "obs"
        obs.configure(obs_dir)
        suite = _run_suite(n_specs=2, jobs=2)
        obs.shutdown(dump=True)
        text = render_report(obs_dir)
        assert "Per-phase breakdown" in text
        assert "pool.job" in text
        for name in suite.names:
            assert name in text


class TestMetricsMatchSuiteResult:
    def test_cold_run_job_totals(self, tmp_path):
        obs_dir = tmp_path / "obs-cold"
        obs.configure(obs_dir)
        store = ResultStore(tmp_path / "store")
        suite = _run_suite(jobs=4, store=store)
        obs.shutdown(dump=True)

        metrics = json.loads((obs_dir / "metrics.json").read_text())
        counters = metrics["counters"]
        n = len(suite.results)
        assert counters["pool.jobs_executed"] == n
        assert counters["store.put_count"] == n
        assert counters.get("pool.store_hits", 0) == 0
        hist = metrics["histograms"]["pool.job_seconds"]
        assert hist["count"] == n
        # The Prometheus dump carries the same totals.
        prom = (obs_dir / "metrics.prom").read_text()
        assert f"repro_pool_jobs_executed {n}" in prom

    def test_warm_run_cache_hit_totals(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = _run_suite(jobs=4, store=store)     # populate, no obs

        obs_dir = tmp_path / "obs-warm"
        obs.configure(obs_dir)
        warm = _run_suite(jobs=4, store=store)
        obs.shutdown(dump=True)

        assert warm.times() == cold.times()
        counters = json.loads(
            (obs_dir / "metrics.json").read_text())["counters"]
        assert counters["pool.store_hits"] == len(warm.results)
        assert counters.get("pool.jobs_executed", 0) == 0

    def test_disabled_default_is_bit_identical(self, tmp_path):
        plain = _run_suite(n_specs=3, jobs=2)
        obs.configure(tmp_path / "obs")
        observed = _run_suite(n_specs=3, jobs=2)
        obs.shutdown(dump=True)
        assert [r.counters for r in observed.results] \
            == [r.counters for r in plain.results]
        assert observed.times() == plain.times()
