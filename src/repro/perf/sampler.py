"""Time-bucketed co-sampling of hardware counters and runtime events.

Implements the §VII-A methodology: "runtime event traces ... collected in
the form of samples over the period of execution ... along with
corresponding samples for performance counters.  Each sample was
associated with a timestamp with a sampling interval of 1 millisecond."

The sampler registers a cycle hook on the core; every interval it appends
the *delta* of each counter of interest to a series.  The correlation
analysis (:mod:`repro.core.correlation`) then computes Pearson
coefficients between event-rate series and counter series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.counters import CounterSnapshot, collect_counters
from repro.runtime.events import RuntimeEventCounts
from repro.uarch.pipeline import Core

#: Counter series the Fig 13 correlation study uses, derived per-sample.
SERIES_NAMES = (
    "instructions", "cycles", "ipc",
    "branch_mpki", "l1i_mpki", "l1d_mpki", "l2_mpki", "llc_mpki",
    "page_faults", "useless_prefetches", "useless_prefetch_frac",
    "jit_started", "gc_triggered", "allocation_ticks",
    "exceptions", "contentions",
)


@dataclass
class SampleSeries:
    """Column-oriented sample storage: name -> list of per-bucket values."""

    interval_seconds: float
    columns: dict[str, list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in SERIES_NAMES:
            self.columns.setdefault(name, [])

    def __len__(self) -> int:
        return len(self.columns["instructions"])

    def __getitem__(self, name: str) -> list[float]:
        return self.columns[name]

    def timestamps(self) -> list[float]:
        return [i * self.interval_seconds for i in range(len(self))]


class CounterSampler:
    """Samples a core's counters every ``interval_seconds`` of sim time."""

    def __init__(self, core: Core, events: RuntimeEventCounts,
                 interval_seconds: float = 1e-3) -> None:
        self.core = core
        self.events = events
        self.series = SampleSeries(interval_seconds)
        self._last = collect_counters(core, events)
        interval_cycles = interval_seconds * core.machine.max_freq_hz
        core.set_cycle_hook(self._on_tick, interval_cycles)

    def _on_tick(self, core: Core) -> None:
        now = collect_counters(core, self.events)
        d = now.delta(self._last)
        self._last = now
        cols = self.series.columns
        instr = max(1, d.instructions)
        cols["instructions"].append(float(d.instructions))
        cols["cycles"].append(d.cycles)
        cols["ipc"].append(d.instructions / d.cycles if d.cycles else 0.0)
        cols["branch_mpki"].append(d.branch_misses / instr * 1000)
        cols["l1i_mpki"].append(d.l1i_misses / instr * 1000)
        cols["l1d_mpki"].append(d.l1d_misses / instr * 1000)
        cols["l2_mpki"].append(d.l2_misses / instr * 1000)
        cols["llc_mpki"].append(d.llc_misses / instr * 1000)
        cols["page_faults"].append(float(d.page_faults))
        cols["useless_prefetches"].append(float(d.useless_prefetches))
        cols["useless_prefetch_frac"].append(
            d.useless_prefetches / max(1, d.prefetches_issued))
        cols["jit_started"].append(float(d.jit_started))
        cols["gc_triggered"].append(float(d.gc_triggered))
        cols["allocation_ticks"].append(float(d.allocation_ticks))
        cols["exceptions"].append(float(d.exceptions))
        cols["contentions"].append(float(d.contentions))

    def finish(self) -> SampleSeries:
        """Flush a final partial bucket and return the series."""
        self._on_tick(self.core)
        return self.series
