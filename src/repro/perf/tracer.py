"""LTTng-equivalent runtime event tracer.

Records ``(timestamp, kind, payload)`` triples as runtime events flow past
the pipeline's event hook.  Timestamps are simulated seconds (cycles /
max frequency), so traces align with the sampler's counter time series for
the §VII-A correlation study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import RuntimeEventCounts


@dataclass(frozen=True)
class TraceEvent:
    timestamp: float          # seconds since trace start
    kind: str
    payload: object = None


class LttngTracer:
    """Collects runtime events with timestamps + running counts."""

    def __init__(self, freq_hz: float) -> None:
        self.freq_hz = freq_hz
        self.events: list[TraceEvent] = []
        self.counts = RuntimeEventCounts()

    def hook(self, kind: str, payload, cycles: float) -> None:
        """Signature-compatible with ``Core.event_hook``."""
        self.events.append(TraceEvent(cycles / self.freq_hz, kind, payload))
        self.counts.record(kind)

    def events_of(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count_of(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()
        self.counts = RuntimeEventCounts()
