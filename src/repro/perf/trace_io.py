"""Trace record / replay.

A simulator library needs reproducible inputs: this module records a
workload's op stream to a compact binary file and replays it later —
decoupling trace *generation* (workload + runtime model) from trace
*consumption* (microarchitecture studies), exactly how trace-driven
simulators are used in practice.

Format (version 1): little-endian, a 16-byte header
(``b"RPRTRACE"``, u32 version, u32 reserved) followed by records:

====  =======================================================
tag   payload
====  =======================================================
0x01  block:  u64 pc, u16 n_instr, u16 n_bytes, u8 kernel
0x02  branch: u64 pc, u64 target, u8 taken
0x03  load:   u64 addr
0x04  store:  u64 addr
0x05  event:  u8 kind_idx (RUNTIME_EVENT_KINDS index; 0xFF=other)
====  =======================================================

Events carry only their kind (payloads are analysis-side data the
microarchitecture never sees), keeping records fixed-width and fast.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         RUNTIME_EVENT_KINDS)

MAGIC = b"RPRTRACE"
VERSION = 1

_HEADER = struct.Struct("<8sII")
_BLOCK = struct.Struct("<QHHB")
_BRANCH = struct.Struct("<QQB")
_ADDR = struct.Struct("<Q")
_EVENT = struct.Struct("<B")

_KIND_TO_IDX = {k: i for i, k in enumerate(RUNTIME_EVENT_KINDS)}
_OTHER_KIND = 0xFF


class TraceWriteError(ValueError):
    """An op could not be encoded."""


def record(ops, path, max_instructions: int | None = None) -> int:
    """Write ``ops`` to ``path``; returns the instruction count recorded.

    ``max_instructions`` bounds recording the same way the pipeline
    bounds execution (checked at block boundaries).
    """
    n_instr = 0
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, VERSION, 0))
        write = fh.write
        for op in ops:
            kind = op[0]
            if kind == OP_LOAD:
                write(b"\x03")
                write(_ADDR.pack(op[1]))
                n_instr += 1
            elif kind == OP_STORE:
                write(b"\x04")
                write(_ADDR.pack(op[1]))
                n_instr += 1
            elif kind == OP_BLOCK:
                if not (0 <= op[2] < 1 << 16 and 0 <= op[3] < 1 << 16):
                    raise TraceWriteError(f"block out of range: {op}")
                write(b"\x01")
                write(_BLOCK.pack(op[1], op[2], op[3], int(op[4])))
                n_instr += op[2]
                if max_instructions is not None \
                        and n_instr >= max_instructions:
                    break
            elif kind == OP_BRANCH:
                write(b"\x02")
                write(_BRANCH.pack(op[1], op[2], int(op[3])))
                n_instr += 1
            elif kind == OP_EVENT:
                write(b"\x05")
                write(_EVENT.pack(_KIND_TO_IDX.get(op[1], _OTHER_KIND)))
            else:
                raise TraceWriteError(f"unknown op kind {kind!r}")
    return n_instr


class TraceFormatError(ValueError):
    """The file is not a valid trace."""


def replay(path):
    """Yield ops from a recorded trace (generator).

    Event records come back as ``(OP_EVENT, kind, None)`` with the kind
    string restored (or ``"other"`` for non-Table-I events).
    """
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError("truncated header")
        magic, version, _ = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise TraceFormatError(f"unsupported version {version}")
        data = fh.read()
    pos = 0
    end = len(data)
    while pos < end:
        tag = data[pos]
        pos += 1
        if tag == 0x03:
            (addr,) = _ADDR.unpack_from(data, pos)
            pos += _ADDR.size
            yield (OP_LOAD, addr)
        elif tag == 0x04:
            (addr,) = _ADDR.unpack_from(data, pos)
            pos += _ADDR.size
            yield (OP_STORE, addr)
        elif tag == 0x01:
            pc, n_instr, n_bytes, kernel = _BLOCK.unpack_from(data, pos)
            pos += _BLOCK.size
            yield (OP_BLOCK, pc, n_instr, n_bytes, bool(kernel))
        elif tag == 0x02:
            pc, target, taken = _BRANCH.unpack_from(data, pos)
            pos += _BRANCH.size
            yield (OP_BRANCH, pc, target, bool(taken))
        elif tag == 0x05:
            (idx,) = _EVENT.unpack_from(data, pos)
            pos += _EVENT.size
            kind = (RUNTIME_EVENT_KINDS[idx]
                    if idx < len(RUNTIME_EVENT_KINDS) else "other")
            yield (OP_EVENT, kind, None)
        else:
            raise TraceFormatError(f"unknown record tag {tag:#x} at "
                                   f"offset {pos - 1}")


def trace_info(path) -> dict:
    """Summary statistics of a trace file (no full materialization)."""
    counts = {"blocks": 0, "branches": 0, "loads": 0, "stores": 0,
              "events": 0, "instructions": 0, "kernel_instructions": 0}
    for op in replay(path):
        kind = op[0]
        if kind == OP_BLOCK:
            counts["blocks"] += 1
            counts["instructions"] += op[2]
            if op[4]:
                counts["kernel_instructions"] += op[2]
        elif kind == OP_BRANCH:
            counts["branches"] += 1
            counts["instructions"] += 1
        elif kind == OP_LOAD:
            counts["loads"] += 1
            counts["instructions"] += 1
        elif kind == OP_STORE:
            counts["stores"] += 1
            counts["instructions"] += 1
        else:
            counts["events"] += 1
    counts["bytes"] = Path(path).stat().st_size
    return counts
