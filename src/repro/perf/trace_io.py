"""Trace record / replay.

A simulator library needs reproducible inputs: this module records a
workload's op stream to a compact binary file and replays it later —
decoupling trace *generation* (workload + runtime model) from trace
*consumption* (microarchitecture studies), exactly how trace-driven
simulators are used in practice.

Format (version 2): little-endian, a 16-byte header
(``b"RPRTRACE"``, u32 version, u32 reserved) followed by chunk records,
one per :class:`repro.trace.TraceBuffer`:

=====  ==================================================================
field  contents
=====  ==================================================================
tag    u8 ``0x10``
n_ops  u32 op count
n_ins  u64 instruction count of the chunk
ev_len u32 byte length of the pickled event side-table
kinds  ``n_ops`` bytes (opcode column)
a0-a2  3 × ``n_ops`` int64 arrays (raw column dumps)
events ``ev_len`` bytes: pickled ``[(kind, payload), ...]``
=====  ==================================================================

Storing the SoA columns verbatim makes decode nearly free: the reader
exposes each column as a zero-copy ``memoryview`` slice of the file
bytes (``.cast("q")`` for the int64 columns), so no per-op boxing or
list materialization happens at all.  Indexing a memoryview yields a
native Python ``int`` — exactly what the list-backed columns held — so
the consume loops are bit-identical either way.  Event payloads survive
the round trip (pickled side-table), which matters for bit-identity:
JIT metadata events carry ``(base, size)`` payloads the pipeline
consumes.

By default the file is opened via ``mmap`` and chunks are decoded
lazily while the map's already-consumed pages are released with
``MADV_DONTNEED``, so peak RSS stays bounded by roughly one chunk
regardless of trace length (set ``REPRO_TRACE_MMAP=0`` to read the
whole file into memory instead — decode is still zero-copy over that
one buffer).

Version-1 files (fixed-width per-op records, payload-less events) are
still readable; see the tag table in :func:`_replay_v1`.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import sys
import time
from pathlib import Path

import numpy as np

from repro import obs

from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         BLOCK_KERNEL_SHIFT, RUNTIME_EVENT_KINDS,
                         TraceBuffer)

MAGIC = b"RPRTRACE"
VERSION = 2

_HEADER = struct.Struct("<8sII")
_CHUNK = struct.Struct("<IQI")
_CHUNK_TAG = 0x10

# -- version-1 record structs (read-compatibility) -----------------------
_BLOCK = struct.Struct("<QHHB")
_BRANCH = struct.Struct("<QQB")
_ADDR = struct.Struct("<Q")
_EVENT = struct.Struct("<B")

_KIND_TO_IDX = {k: i for i, k in enumerate(RUNTIME_EVENT_KINDS)}
_OTHER_KIND = 0xFF

#: ops per chunk when recording from a plain op iterator
_RECORD_CHUNK_INSTRUCTIONS = 65536


class TraceWriteError(ValueError):
    """An op could not be encoded."""


class TraceFormatError(ValueError):
    """The file is not a valid trace."""


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

def _write_chunk(fh, buf: TraceBuffer) -> None:
    n_ops = len(buf.kinds)
    try:
        kinds = np.asarray(buf.kinds, dtype=np.uint8)
        a0 = np.asarray(buf.a0, dtype=np.int64)
        a1 = np.asarray(buf.a1, dtype=np.int64)
        a2 = np.asarray(buf.a2, dtype=np.int64)
    except (OverflowError, ValueError) as exc:
        raise TraceWriteError(f"op column not encodable: {exc}") from exc
    blocks = kinds == OP_BLOCK
    if blocks.any() and int(a1[blocks].max()) >= 1 << 16:
        raise TraceWriteError("block n_instr out of range")
    ev_blob = pickle.dumps(buf.events, protocol=pickle.HIGHEST_PROTOCOL)
    fh.write(bytes((_CHUNK_TAG,)))
    fh.write(_CHUNK.pack(n_ops, buf.n_instructions, len(ev_blob)))
    fh.write(kinds.tobytes())
    fh.write(a0.tobytes())
    fh.write(a1.tobytes())
    fh.write(a2.tobytes())
    fh.write(ev_blob)


def record_buffers(buffers, path) -> int:
    """Write an iterable of :class:`TraceBuffer` chunks to ``path``.

    Returns the total instruction count written.  The chunk structure is
    preserved, so ``replay_buffers`` hands back the same chunking.
    """
    n_instr = 0
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, VERSION, 0))
        for buf in buffers:
            if not buf.kinds:
                continue
            _write_chunk(fh, buf)
            n_instr += buf.n_instructions
    return n_instr


def record(ops, path, max_instructions: int | None = None) -> int:
    """Write ``ops`` to ``path``; returns the instruction count recorded.

    ``max_instructions`` bounds recording the same way
    :meth:`TraceBuffer.fill_from` bounds buffering: the trace ends after
    the op that crosses the limit, never mid-op.
    """
    def chunks():
        remaining = max_instructions
        ops_iter = iter(ops)
        while True:
            take = _RECORD_CHUNK_INSTRUCTIONS
            if remaining is not None:
                take = min(take, remaining)
            buf = TraceBuffer()
            try:
                done = buf.fill_from(ops_iter, take)
            except ValueError as exc:
                raise TraceWriteError(str(exc)) from exc
            if buf.kinds:
                yield buf
            if done:
                return
            if remaining is not None:
                remaining -= buf.n_instructions
                if remaining <= 0:
                    return

    return record_buffers(chunks(), path)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def _read_header(fh) -> int:
    header = fh.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise TraceFormatError("truncated header")
    magic, version, _ = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    if version not in (1, VERSION):
        raise TraceFormatError(f"unsupported version {version}")
    return version


#: memoryview.cast("q") reinterprets little-endian bytes only on a
#: little-endian host; big-endian falls back to a copying np.frombuffer
#: decode (same values, still no .tolist()).
_NATIVE_LE = sys.byteorder == "little"

_PAGE = mmap.PAGESIZE
_MADV_DONTNEED = getattr(mmap, "MADV_DONTNEED", None)


def _use_mmap_default() -> bool:
    return os.environ.get("REPRO_TRACE_MMAP", "1") not in ("0", "false", "")


def _decode_chunks_v2(data, mm=None):
    """Yield sealed buffers with zero-copy columns over ``data``.

    ``data`` is anything exposing the buffer protocol (bytes or an
    ``mmap.mmap``).  When ``mm`` is the backing mmap, pages of fully
    consumed chunks are dropped with ``MADV_DONTNEED`` each time the
    consumer asks for the next chunk — the map is file-backed and
    read-only, so a late re-access simply refaults from the page cache.
    """
    view = memoryview(data)
    end = len(view)
    pos = _HEADER.size
    dropped = 0                     # map offset below which pages are gone
    while pos < end:
        _t0 = time.perf_counter() if obs.enabled() else None
        tag = view[pos]
        pos += 1
        if tag != _CHUNK_TAG:
            raise TraceFormatError(f"unknown record tag {tag:#x} at "
                                   f"offset {pos - 1}")
        if pos + _CHUNK.size > end:
            raise TraceFormatError("truncated chunk header")
        n_ops, n_instr, ev_len = _CHUNK.unpack_from(view, pos)
        pos += _CHUNK.size
        need = n_ops * 25 + ev_len       # 1 + 3*8 bytes per op
        if pos + need > end:
            raise TraceFormatError("truncated chunk body")
        kinds = view[pos:pos + n_ops]
        pos += n_ops
        cols = []
        for _ in range(3):
            raw = view[pos:pos + n_ops * 8]
            if _NATIVE_LE:
                cols.append(raw.cast("q"))
            else:
                cols.append(memoryview(np.ascontiguousarray(
                    np.frombuffer(raw, dtype="<i8").astype(np.int64))))
            pos += n_ops * 8
        try:
            events = pickle.loads(view[pos:pos + ev_len])
        except Exception as exc:
            raise TraceFormatError(
                f"corrupt event table: {exc}") from exc
        pos += ev_len
        buf = TraceBuffer.from_columns(kinds, *cols, events, n_instr).seal()
        if _t0 is not None:
            obs.observe("sim.trace_decode_seconds",
                        time.perf_counter() - _t0)
        yield buf
        if mm is not None and _MADV_DONTNEED is not None:
            # The consumer resumed us, so the chunk we just yielded is
            # finished: release every whole page strictly before the
            # next chunk (the boundary page stays resident).
            keep = (pos // _PAGE) * _PAGE
            if keep > dropped:
                try:
                    mm.madvise(_MADV_DONTNEED, dropped, keep - dropped)
                except OSError:
                    pass             # advisory only; RSS stays higher
                dropped = keep


def replay_buffers(path, *, use_mmap: bool | None = None):
    """Yield sealed :class:`TraceBuffer` chunks from a recorded trace.

    The fast replay path: feeds
    :meth:`repro.uarch.pipeline.Core.consume_stream` directly via
    ``TraceBufferStream(buffers=replay_buffers(path))`` with no per-op
    decode.  Chunk columns are zero-copy memoryviews over the file
    bytes; by default (``use_mmap`` unset and ``REPRO_TRACE_MMAP`` not
    ``0``) the file is memory-mapped and streamed so peak RSS is
    bounded by one chunk.  Version-1 traces are up-converted chunk by
    chunk.
    """
    if use_mmap is None:
        use_mmap = _use_mmap_default()
    with open(path, "rb") as fh:
        version = _read_header(fh)
        if version == 1:
            data = fh.read()
        elif use_mmap:
            try:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError) as exc:
                raise TraceFormatError(f"cannot map trace: {exc}") from exc
        else:
            fh.seek(0)
            data = fh.read()         # whole file, header included
    # The fd is closed here in every branch; an mmap holds its own
    # reference to the file.  The map itself is never closed explicitly:
    # yielded column views may outlive this generator, and refcounting
    # reclaims the map once the last view is dropped.
    if version == 1:
        ops = _replay_v1(data)
        while True:
            buf = TraceBuffer()
            done = buf.fill_from(ops, _RECORD_CHUNK_INSTRUCTIONS)
            if buf.kinds:
                yield buf.seal()
            if done:
                return
    elif use_mmap:
        yield from _decode_chunks_v2(mm, mm=mm)
    else:
        yield from _decode_chunks_v2(data)


def replay(path):
    """Yield ops from a recorded trace as plain tuples (generator).

    Version-1 event records come back as ``(OP_EVENT, kind, None)`` (v1
    stored no payloads); version-2 events round-trip exactly.
    """
    for buf in replay_buffers(path):
        yield from buf.iter_ops()


def _replay_v1(data):
    """Decode version-1 fixed-width records."""
    pos = 0
    end = len(data)
    try:
        while pos < end:
            tag = data[pos]
            pos += 1
            if tag == 0x03:
                (addr,) = _ADDR.unpack_from(data, pos)
                pos += _ADDR.size
                yield (OP_LOAD, addr)
            elif tag == 0x04:
                (addr,) = _ADDR.unpack_from(data, pos)
                pos += _ADDR.size
                yield (OP_STORE, addr)
            elif tag == 0x01:
                pc, n_instr, n_bytes, kernel = _BLOCK.unpack_from(data, pos)
                pos += _BLOCK.size
                yield (OP_BLOCK, pc, n_instr, n_bytes, bool(kernel))
            elif tag == 0x02:
                pc, target, taken = _BRANCH.unpack_from(data, pos)
                pos += _BRANCH.size
                yield (OP_BRANCH, pc, target, bool(taken))
            elif tag == 0x05:
                (idx,) = _EVENT.unpack_from(data, pos)
                pos += _EVENT.size
                kind = (RUNTIME_EVENT_KINDS[idx]
                        if idx < len(RUNTIME_EVENT_KINDS) else "other")
                yield (OP_EVENT, kind, None)
            else:
                raise TraceFormatError(f"unknown record tag {tag:#x} at "
                                       f"offset {pos - 1}")
    except struct.error as exc:
        raise TraceFormatError(f"truncated record: {exc}") from exc


def trace_info(path) -> dict:
    """Summary statistics of a trace file (no full materialization)."""
    counts = {"blocks": 0, "branches": 0, "loads": 0, "stores": 0,
              "events": 0, "instructions": 0, "kernel_instructions": 0}
    for buf in replay_buffers(path):
        kinds = np.asarray(buf.kinds, dtype=np.uint8)
        counts["blocks"] += int(np.count_nonzero(kinds == OP_BLOCK))
        counts["branches"] += int(np.count_nonzero(kinds == OP_BRANCH))
        counts["loads"] += int(np.count_nonzero(kinds == OP_LOAD))
        counts["stores"] += int(np.count_nonzero(kinds == OP_STORE))
        counts["events"] += int(np.count_nonzero(kinds == OP_EVENT))
        counts["instructions"] += buf.n_instructions
        a1 = np.asarray(buf.a1, dtype=np.int64)
        a2 = np.asarray(buf.a2, dtype=np.int64)
        kernel_blocks = (kinds == OP_BLOCK) & (a2 >> BLOCK_KERNEL_SHIFT > 0)
        if kernel_blocks.any():
            counts["kernel_instructions"] += int(a1[kernel_blocks].sum())
    counts["bytes"] = Path(path).stat().st_size
    return counts
