"""Trace record / replay.

A simulator library needs reproducible inputs: this module records a
workload's op stream to a compact binary file and replays it later —
decoupling trace *generation* (workload + runtime model) from trace
*consumption* (microarchitecture studies), exactly how trace-driven
simulators are used in practice.

Format (version 2): little-endian, a 16-byte header
(``b"RPRTRACE"``, u32 version, u32 reserved) followed by chunk records,
one per :class:`repro.trace.TraceBuffer`:

=====  ==================================================================
field  contents
=====  ==================================================================
tag    u8 ``0x10``
n_ops  u32 op count
n_ins  u64 instruction count of the chunk
ev_len u32 byte length of the pickled event side-table
kinds  ``n_ops`` bytes (opcode column)
a0-a2  3 × ``n_ops`` int64 arrays (raw column dumps)
events ``ev_len`` bytes: pickled ``[(kind, payload), ...]``
=====  ==================================================================

Storing the SoA columns verbatim makes decode nearly free — one
``np.frombuffer`` + ``tolist`` per column — so replaying a cached trace
costs a small fraction of regenerating it.  Event payloads survive the
round trip (pickled side-table), which matters for bit-identity: JIT
metadata events carry ``(base, size)`` payloads the pipeline consumes.

Version-1 files (fixed-width per-op records, payload-less events) are
still readable; see the tag table in :func:`_replay_v1`.
"""

from __future__ import annotations

import pickle
import struct
from pathlib import Path

import numpy as np

from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         BLOCK_KERNEL_SHIFT, RUNTIME_EVENT_KINDS,
                         TraceBuffer)

MAGIC = b"RPRTRACE"
VERSION = 2

_HEADER = struct.Struct("<8sII")
_CHUNK = struct.Struct("<IQI")
_CHUNK_TAG = 0x10

# -- version-1 record structs (read-compatibility) -----------------------
_BLOCK = struct.Struct("<QHHB")
_BRANCH = struct.Struct("<QQB")
_ADDR = struct.Struct("<Q")
_EVENT = struct.Struct("<B")

_KIND_TO_IDX = {k: i for i, k in enumerate(RUNTIME_EVENT_KINDS)}
_OTHER_KIND = 0xFF

#: ops per chunk when recording from a plain op iterator
_RECORD_CHUNK_INSTRUCTIONS = 65536


class TraceWriteError(ValueError):
    """An op could not be encoded."""


class TraceFormatError(ValueError):
    """The file is not a valid trace."""


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

def _write_chunk(fh, buf: TraceBuffer) -> None:
    n_ops = len(buf.kinds)
    try:
        kinds = np.asarray(buf.kinds, dtype=np.uint8)
        a0 = np.asarray(buf.a0, dtype=np.int64)
        a1 = np.asarray(buf.a1, dtype=np.int64)
        a2 = np.asarray(buf.a2, dtype=np.int64)
    except (OverflowError, ValueError) as exc:
        raise TraceWriteError(f"op column not encodable: {exc}") from exc
    blocks = kinds == OP_BLOCK
    if blocks.any() and int(a1[blocks].max()) >= 1 << 16:
        raise TraceWriteError("block n_instr out of range")
    ev_blob = pickle.dumps(buf.events, protocol=pickle.HIGHEST_PROTOCOL)
    fh.write(bytes((_CHUNK_TAG,)))
    fh.write(_CHUNK.pack(n_ops, buf.n_instructions, len(ev_blob)))
    fh.write(kinds.tobytes())
    fh.write(a0.tobytes())
    fh.write(a1.tobytes())
    fh.write(a2.tobytes())
    fh.write(ev_blob)


def record_buffers(buffers, path) -> int:
    """Write an iterable of :class:`TraceBuffer` chunks to ``path``.

    Returns the total instruction count written.  The chunk structure is
    preserved, so ``replay_buffers`` hands back the same chunking.
    """
    n_instr = 0
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, VERSION, 0))
        for buf in buffers:
            if not buf.kinds:
                continue
            _write_chunk(fh, buf)
            n_instr += buf.n_instructions
    return n_instr


def record(ops, path, max_instructions: int | None = None) -> int:
    """Write ``ops`` to ``path``; returns the instruction count recorded.

    ``max_instructions`` bounds recording the same way
    :meth:`TraceBuffer.fill_from` bounds buffering: the trace ends after
    the op that crosses the limit, never mid-op.
    """
    def chunks():
        remaining = max_instructions
        ops_iter = iter(ops)
        while True:
            take = _RECORD_CHUNK_INSTRUCTIONS
            if remaining is not None:
                take = min(take, remaining)
            buf = TraceBuffer()
            try:
                done = buf.fill_from(ops_iter, take)
            except ValueError as exc:
                raise TraceWriteError(str(exc)) from exc
            if buf.kinds:
                yield buf
            if done:
                return
            if remaining is not None:
                remaining -= buf.n_instructions
                if remaining <= 0:
                    return

    return record_buffers(chunks(), path)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def _read_header(fh) -> int:
    header = fh.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise TraceFormatError("truncated header")
    magic, version, _ = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    if version not in (1, VERSION):
        raise TraceFormatError(f"unsupported version {version}")
    return version


def replay_buffers(path):
    """Yield sealed :class:`TraceBuffer` chunks from a recorded trace.

    The fast replay path: feeds
    :meth:`repro.uarch.pipeline.Core.consume_stream` directly via
    ``TraceBufferStream(buffers=replay_buffers(path))`` with no per-op
    decode.  Version-1 traces are up-converted chunk by chunk.
    """
    with open(path, "rb") as fh:
        version = _read_header(fh)
        data = fh.read()
    if version == 1:
        ops = _replay_v1(data)
        while True:
            buf = TraceBuffer()
            done = buf.fill_from(ops, _RECORD_CHUNK_INSTRUCTIONS)
            if buf.kinds:
                yield buf.seal()
            if done:
                return
        return
    pos = 0
    end = len(data)
    while pos < end:
        tag = data[pos]
        pos += 1
        if tag != _CHUNK_TAG:
            raise TraceFormatError(f"unknown record tag {tag:#x} at "
                                   f"offset {pos - 1}")
        if pos + _CHUNK.size > end:
            raise TraceFormatError("truncated chunk header")
        n_ops, n_instr, ev_len = _CHUNK.unpack_from(data, pos)
        pos += _CHUNK.size
        need = n_ops * 25 + ev_len       # 1 + 3*8 bytes per op
        if pos + need > end:
            raise TraceFormatError("truncated chunk body")
        buf = TraceBuffer()
        buf.kinds = np.frombuffer(data, dtype=np.uint8, count=n_ops,
                                  offset=pos).tolist()
        pos += n_ops
        for col in ("a0", "a1", "a2"):
            setattr(buf, col,
                    np.frombuffer(data, dtype="<i8", count=n_ops,
                                  offset=pos).tolist())
            pos += n_ops * 8
        try:
            buf.events = pickle.loads(data[pos:pos + ev_len])
        except Exception as exc:
            raise TraceFormatError(
                f"corrupt event table: {exc}") from exc
        pos += ev_len
        buf.n_instructions = n_instr
        yield buf.seal()


def replay(path):
    """Yield ops from a recorded trace as plain tuples (generator).

    Version-1 event records come back as ``(OP_EVENT, kind, None)`` (v1
    stored no payloads); version-2 events round-trip exactly.
    """
    for buf in replay_buffers(path):
        yield from buf.iter_ops()


def _replay_v1(data):
    """Decode version-1 fixed-width records."""
    pos = 0
    end = len(data)
    try:
        while pos < end:
            tag = data[pos]
            pos += 1
            if tag == 0x03:
                (addr,) = _ADDR.unpack_from(data, pos)
                pos += _ADDR.size
                yield (OP_LOAD, addr)
            elif tag == 0x04:
                (addr,) = _ADDR.unpack_from(data, pos)
                pos += _ADDR.size
                yield (OP_STORE, addr)
            elif tag == 0x01:
                pc, n_instr, n_bytes, kernel = _BLOCK.unpack_from(data, pos)
                pos += _BLOCK.size
                yield (OP_BLOCK, pc, n_instr, n_bytes, bool(kernel))
            elif tag == 0x02:
                pc, target, taken = _BRANCH.unpack_from(data, pos)
                pos += _BRANCH.size
                yield (OP_BRANCH, pc, target, bool(taken))
            elif tag == 0x05:
                (idx,) = _EVENT.unpack_from(data, pos)
                pos += _EVENT.size
                kind = (RUNTIME_EVENT_KINDS[idx]
                        if idx < len(RUNTIME_EVENT_KINDS) else "other")
                yield (OP_EVENT, kind, None)
            else:
                raise TraceFormatError(f"unknown record tag {tag:#x} at "
                                       f"offset {pos - 1}")
    except struct.error as exc:
        raise TraceFormatError(f"truncated record: {exc}") from exc


def trace_info(path) -> dict:
    """Summary statistics of a trace file (no full materialization)."""
    counts = {"blocks": 0, "branches": 0, "loads": 0, "stores": 0,
              "events": 0, "instructions": 0, "kernel_instructions": 0}
    for buf in replay_buffers(path):
        kinds = buf.kinds
        counts["blocks"] += kinds.count(OP_BLOCK)
        counts["branches"] += kinds.count(OP_BRANCH)
        counts["loads"] += kinds.count(OP_LOAD)
        counts["stores"] += kinds.count(OP_STORE)
        counts["events"] += kinds.count(OP_EVENT)
        counts["instructions"] += buf.n_instructions
        a1 = buf.a1
        a2 = buf.a2
        for i, kind in enumerate(kinds):
            if kind == OP_BLOCK and a2[i] >> BLOCK_KERNEL_SHIFT:
                counts["kernel_instructions"] += a1[i]
    counts["bytes"] = Path(path).stat().st_size
    return counts
