"""toplev-equivalent hierarchical Top-Down reporting (§III-B, §VI).

The paper uses Andi Kleen's ``toplev`` (pmu-tools) to turn raw counters
into the Yasin Top-Down hierarchy with named nodes, percentages, and
bottleneck flagging.  This module renders our simulator's
:class:`~repro.uarch.topdown.TopDownProfile` in the same spirit:

* a navigable tree of named nodes with slot percentages,
* per-node "this is significant" markers (toplev's ``<==`` bottleneck),
* the tool's caveat that values below a few percent are noise,
* multi-benchmark side-by-side tables for suite comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.topdown import TopDownProfile

#: below this share of total slots, toplev warns values are unreliable
NOISE_FLOOR = 0.05


@dataclass
class TopLevNode:
    """One node of the rendered hierarchy."""

    name: str
    fraction: float                      # of total pipeline slots
    children: list["TopLevNode"] = field(default_factory=list)

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "TopLevNode | None":
        for _, node in self.walk():
            if node.name == name:
                return node
        return None


def build_tree(profile: TopDownProfile) -> TopLevNode:
    """Assemble the Yasin hierarchy from a Top-Down profile."""
    p = profile
    frontend = TopLevNode("Frontend_Bound", p.frontend_bound, [
        TopLevNode("Frontend_Latency", p.frontend_latency, [
            TopLevNode("ICache_Misses", p.fe_icache),
            TopLevNode("ITLB_Misses", p.fe_itlb),
            TopLevNode("Branch_Resteers", p.fe_branch_resteers),
            TopLevNode("MS_Switches", p.fe_ms_switches),
            TopLevNode("Code_Page_Faults", p.fe_ifault),
        ]),
        TopLevNode("Frontend_Bandwidth", p.frontend_bandwidth, [
            TopLevNode("DSB_Bandwidth", p.fe_dsb),
            TopLevNode("MITE_Bandwidth", p.fe_mite),
        ]),
    ])
    backend = TopLevNode("Backend_Bound", p.backend_bound, [
        TopLevNode("Memory_Bound", p.backend_memory, [
            TopLevNode("L1_Bound", p.be_l1_bound),
            TopLevNode("L2_Bound", p.be_l2_bound),
            TopLevNode("L3_Bound", p.be_l3_bound),
            TopLevNode("DRAM_Bound", p.be_dram_bound),
            TopLevNode("DTLB_Bound", p.be_dtlb_bound),
            TopLevNode("Store_Bound", p.be_store_bound),
            TopLevNode("Data_Page_Faults", p.be_dfault),
        ]),
        TopLevNode("Core_Bound", p.backend_core, [
            TopLevNode("Divider", p.be_divider),
            TopLevNode("Ports_Utilization", p.be_ports),
        ]),
    ])
    return TopLevNode("Pipeline_Slots", 1.0, [
        TopLevNode("Retiring", p.retiring),
        TopLevNode("Bad_Speculation", p.bad_speculation),
        frontend,
        backend,
    ])


def bottlenecks(profile: TopDownProfile,
                threshold: float = 0.15) -> list[str]:
    """Leaf/mid nodes above ``threshold`` of slots (toplev's focus list).

    Sorted by share, descending — the first entry is the dominant
    bottleneck the paper's §VI discussion names per benchmark.
    """
    flagged = []
    for depth, node in build_tree(profile).walk():
        if depth >= 2 and node.fraction >= threshold:
            flagged.append((node.fraction, node.name))
    flagged.sort(reverse=True)
    return [name for _, name in flagged]


def render(profile: TopDownProfile, threshold: float = 0.15,
           show_noise: bool = False) -> str:
    """toplev-style text tree.

    ``<==`` marks nodes above the bottleneck threshold;
    values under the noise floor carry the tool's accuracy caveat
    (the paper repeats it: "percentages of less than 5% can be
    inaccurate due to measurement errors").
    """
    lines = []
    for depth, node in build_tree(profile).walk():
        if depth == 0:
            continue
        if node.fraction < 0.005 and not show_noise:
            continue
        marker = ""
        if depth >= 2 and node.fraction >= threshold:
            marker = "  <== bottleneck"
        elif node.fraction < NOISE_FLOOR:
            marker = "  (below noise floor)"
        indent = "    " * (depth - 1)
        lines.append(f"{indent}{node.name:<24s} {node.fraction:7.1%}"
                     f"{marker}")
    lines.append("")
    lines.append(f"(values under {NOISE_FLOOR:.0%} can be inaccurate; "
                 f"slots = {profile.slots:.0f}, "
                 f"cycles = {profile.cycles:.0f})")
    return "\n".join(lines)


def compare(profiles: dict[str, TopDownProfile],
            nodes: tuple[str, ...] = ("Retiring", "Bad_Speculation",
                                      "Frontend_Bound", "Backend_Bound",
                                      "L3_Bound", "DRAM_Bound"),
            ) -> str:
    """Side-by-side table of selected nodes for several benchmarks."""
    from repro.harness.report import format_table
    rows = []
    for name, profile in profiles.items():
        tree = build_tree(profile)
        row = [name]
        for node_name in nodes:
            node = tree.find(node_name)
            row.append(f"{node.fraction:.1%}" if node else "-")
        rows.append(row)
    return format_table(["benchmark", *nodes], rows)
