"""perf-stat equivalent: one immutable snapshot of every raw counter.

:func:`collect_counters` reads a :class:`repro.uarch.pipeline.Core` (plus
runtime-event counts) into a :class:`CounterSnapshot`; the Table I metric
normalization lives in :mod:`repro.core.metrics`, mirroring the paper's
split between *collecting* counters (perf/LTTng) and *deriving* metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import RuntimeEventCounts
from repro.uarch.pipeline import Core


@dataclass(frozen=True)
class CounterSnapshot:
    """Raw counters of one measured run (the 'perf stat -x' record)."""

    # Architectural.
    instructions: int = 0
    kernel_instructions: int = 0
    branches: int = 0
    loads: int = 0
    stores: int = 0
    cycles: float = 0.0
    seconds: float = 0.0
    cpu_utilization: float = 1.0

    # Branch / BTB.
    branch_misses: int = 0
    btb_misses: int = 0

    # Caches (demand misses).
    l1d_misses: int = 0
    l1i_misses: int = 0
    l2_misses: int = 0
    llc_misses: int = 0
    llc_accesses: int = 0

    # TLBs (page walks).
    itlb_misses: int = 0
    dtlb_load_misses: int = 0
    dtlb_store_misses: int = 0

    # Memory subsystem.
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    page_faults: int = 0

    # Prefetcher.
    prefetches_issued: int = 0
    useless_prefetches: int = 0

    # Runtime events.
    gc_triggered: int = 0
    allocation_ticks: int = 0
    jit_started: int = 0
    exceptions: int = 0
    contentions: int = 0

    # ------------------------------------------------------------------
    @property
    def user_instructions(self) -> int:
        return self.instructions - self.kernel_instructions

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki(self, count: int) -> float:
        """Misses-per-kilo-instruction normalization."""
        return count / self.instructions * 1000 if self.instructions else 0.0

    @property
    def dram_page_miss_rate(self) -> float:
        total = self.dram_row_hits + self.dram_row_misses
        return self.dram_row_misses / total if total else 0.0

    @property
    def read_bandwidth_mb_s(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.dram_bytes_read / self.seconds / 1e6

    @property
    def write_bandwidth_mb_s(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.dram_bytes_written / self.seconds / 1e6

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counter difference ``self - earlier`` (sampling support)."""
        keep = {"cpu_utilization"}
        fields_ = {}
        for name in self.__dataclass_fields__:
            v = getattr(self, name)
            if name in keep:
                fields_[name] = v
            else:
                fields_[name] = v - getattr(earlier, name)
        return CounterSnapshot(**fields_)


def collect_counters(core: Core, events: RuntimeEventCounts | None = None,
                     cpu_utilization: float = 1.0,
                     use_max_freq: bool = True) -> CounterSnapshot:
    """Snapshot all counters of ``core`` (plus runtime-event counts)."""
    ev = events or RuntimeEventCounts()
    c = core.counts
    return CounterSnapshot(
        instructions=c.instructions,
        kernel_instructions=c.kernel_instructions,
        branches=c.branches,
        loads=c.loads,
        stores=c.stores,
        cycles=core.cycles,
        seconds=core.seconds(use_max_freq=use_max_freq),
        cpu_utilization=cpu_utilization,
        branch_misses=core.branch_unit.stats.mispredicts,
        btb_misses=core.branch_unit.stats.btb_misses,
        l1d_misses=core.l1d.stats.demand_misses,
        l1i_misses=core.l1i.stats.demand_misses,
        l2_misses=core.l2.stats.demand_misses,
        llc_misses=core.llc.stats.demand_misses,
        llc_accesses=core.llc.stats.demand_accesses,
        itlb_misses=core.itlb.l1.stats.walks,
        dtlb_load_misses=c.dtlb_load_walks,
        dtlb_store_misses=c.dtlb_store_walks,
        dram_bytes_read=core.dram.stats.bytes_read,
        dram_bytes_written=core.dram.stats.bytes_written,
        dram_row_hits=core.dram.stats.row_hits,
        dram_row_misses=core.dram.stats.row_misses,
        page_faults=core.vm.stats.faults,
        prefetches_issued=(core.l2_prefetcher.stats.issued
                           + core.l1i_prefetcher.stats.issued
                           + core.l1d_prefetcher.stats.issued),
        useless_prefetches=(core.l2.stats.useless_prefetches
                            + core.l1i.stats.useless_prefetches
                            + core.l1d.stats.useless_prefetches),
        gc_triggered=ev.gc_triggered,
        allocation_ticks=ev.allocation_ticks,
        jit_started=ev.jit_started,
        exceptions=ev.exceptions,
        contentions=ev.contentions,
    )
