"""Measurement layer: perf-stat-like counters, LTTng-like tracing, sampling.

Stands in for the paper's toolchain (§III-B): `Linux perf` for hardware
counters, `LTTng` for runtime traces, plus 1 ms-bucketed co-sampling of
both for the correlation study of §VII-A.
"""

from repro.perf.counters import CounterSnapshot, collect_counters
from repro.perf.tracer import LttngTracer, TraceEvent
from repro.perf.sampler import CounterSampler, SampleSeries
from repro.perf.toplev import (build_tree, bottlenecks, render as
                               render_toplev, compare as compare_toplev)
from repro.perf.trace_io import record, replay, trace_info

__all__ = ["CounterSnapshot", "collect_counters",
           "LttngTracer", "TraceEvent",
           "CounterSampler", "SampleSeries",
           "build_tree", "bottlenecks", "render_toplev", "compare_toplev",
           "record", "replay", "trace_info"]
