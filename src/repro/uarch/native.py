"""Native consume backend (``engine="vector"``): build + state marshalling.

The vector engine runs the per-op simulation loop in a small C kernel
(``_kernel.c``) compiled on first use with the system compiler and loaded
via ctypes.  Python owns every byte of simulator state as numpy arrays:
:class:`CoreImage` exports a :class:`~repro.uarch.pipeline.Core` into flat
arrays, the kernel mutates them in place, and ``writeback`` reconstructs
the exact Python object state (including dict insertion order where it is
semantically observable) so results are bit-identical to the legacy
engine.

Two stateful-callback cases run natively via resume protocols rather
than falling back:

* **Cycle hooks** (the sampler) use a trampoline: the kernel tracks
  ``next_hook_cycles`` and exits with a ``HOOK`` status at the block op
  that crossed the threshold; the driver writes state back, runs the
  Python hook against the live ``Core``, and re-enters the kernel.
* **The shared LLC** (multicore) is one set of arrays aliased into
  every core's image (:class:`NativeMulticoreSession`): slice-hashed
  epoch counters and the contention-folded L3 latency live in C, while
  Python's M/M/1 ``update_contention`` runs unchanged between epoch
  quanta.

When the kernel is unavailable (no compiler, ``REPRO_NATIVE=0``) or the
core uses a configuration the kernel does not model (subclassed shared
LLC, JIT metadata reactions, non-stock geometry), callers fall back to
the batched engine, which is itself bit-identical to legacy.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
import time

import numpy as np

from repro import obs
from repro.kernel.vm import VirtualMemory
from repro.uarch.branch import BranchUnit, Btb, GsharePredictor, LoopPredictor
from repro.uarch.cache import Cache
from repro.uarch.memory import DramModel
from repro.uarch.prefetch import NextLinePrefetcher, StreamPrefetcher
from repro.uarch.tlb import Tlb

# ---------------------------------------------------------------------------
# Layout constants: MUST mirror the enums in _kernel.c exactly.

_NCACHE = 5          # l1i, l1d, l2, llc, dsb
_NTLB = 3            # itlb.l1, dtlb.l1, stlb

P_KINDS, P_A0, P_A1, P_A2, P_EVIDX, P_EVCYC = 0, 1, 2, 3, 4, 5
P_SI, P_SD, P_PD, P_PI = 6, 7, 8, 9
P_CACHE0 = 10                      # 5 x (tags, flags, cnt, stats)
P_TLB0 = P_CACHE0 + 4 * _NCACHE    # 3 x (vpns, cnt, stats)
P_GS_VAL = P_TLB0 + 3 * _NTLB
P_GS_PRES = P_GS_VAL + 1
P_LP_SLAB, P_LP_ORDER, P_LP_HKEY, P_LP_HVAL = (P_GS_PRES + 1,
                                               P_GS_PRES + 2,
                                               P_GS_PRES + 3,
                                               P_GS_PRES + 4)
P_BTB_KEY, P_BTB_TGT, P_BTB_CNT = P_LP_HVAL + 1, P_LP_HVAL + 2, P_LP_HVAL + 3
P_SPF_PAGE, P_SPF_LINE = P_BTB_CNT + 1, P_BTB_CNT + 2
P_DRAM_ROWS, P_DRAM_ST = P_SPF_LINE + 1, P_SPF_LINE + 2
P_VM_HASH, P_VM_LOG = P_DRAM_ST + 1, P_DRAM_ST + 2
P_LLC_EPOCH = P_VM_LOG + 1         # [epoch_total, slice_0..slice_{n-1}]
P_N = P_LLC_EPOCH + 1

(SI_INSTR, SI_KINSTR, SI_BRANCHES, SI_LOADS, SI_STORES,
 SI_DTLB_LWALK, SI_DTLB_SWALK, SI_ITLB_WALK,
 SI_LAST_CODE_LINE, SI_LAST_CODE_PAGE, SI_LAST_DATA_VPN, SI_KMODE,
 SI_GS_HIST,
 SI_BU_BR, SI_BU_MIS, SI_BU_BTBM, SI_BU_TK,
 SI_L1IPF_ISS, SI_L1IPF_PB, SI_L1DPF_ISS, SI_L1DPF_PB,
 SI_L2PF_ISS, SI_L2PF_PB,
 SI_L1IPF_LAST, SI_L1DPF_LAST,
 SI_VM_MIN, SI_VM_MAJ, SI_VM_MAPPED, SI_VM_SEQ, SI_VM_CNT, SI_VM_LOGN,
 SI_LP_CNT, SI_LP_TOMB, SI_SPF_CNT,
 SI_RAND0) = range(35)
SI_EV_N = SI_RAND0 + _NCACHE
SI_NEXT_POS = SI_EV_N + 1
SI_OPS_RETIRED = SI_NEXT_POS + 1   # live progress counter (kernel-owned)
SI_OPK0 = SI_OPS_RETIRED + 1       # 5 per-op-kind retirement counters
SI_N = SI_OPK0 + 5

SD_IDEAL, SD_UOPS, SD_ST0 = 0, 1, 2
SD_NEXT_HOOK = SD_ST0 + 17         # +inf when no cycle hook is armed
SD_N = SD_NEXT_HOOK + 1

(PD_UOP_FACTOR, PD_INV_WIDTH, PD_PORTS_COEFF, PD_DIV_FRAC, PD_DIV_PEN,
 PD_MICRO_FRAC, PD_MS_PEN, PD_MITE_COEFF,
 PD_ITLB_WALK, PD_DTLB_WALK,
 PD_ICACHE_L2, PD_ICACHE_L3, PD_ICACHE_DRAM,
 PD_L1_HIT, PD_BE_L2, PD_BE_L3, PD_BE_DRAM,
 PD_STORE_PEN, PD_MIS_PEN, PD_RESTEER_PEN, PD_TAKEN_BUBBLE,
 PD_PF_DRAM, PD_MINOR_FAULT, PD_MAJOR_FAULT, PD_PORTS_ON,
 PD_WIDTH, PD_HOOK_INTERVAL) = range(27)
PD_N = 27

(PI_HIST_BITS, PI_HIST_MASK, PI_GS_MASK,
 PI_BTB_MASK, PI_BTB_WAYS,
 PI_LP_MAX, PI_LP_HMASK, PI_VM_HMASK, PI_MAJOR_PERIOD,
 PI_DRAM_BANKS, PI_DRAM_ROWSZ, PI_SPF_MAX, PI_SPF_DEG,
 PI_LLC_SLICES) = range(14)
PI_CACHE0 = 14                     # 5 x (mask, ways, lru, evict_head)
PI_TLB0 = PI_CACHE0 + 4 * _NCACHE  # 3 x (mask, ways)
PI_N = PI_TLB0 + 2 * _NTLB

_C_LLC = 3                         # LLC's index in the caches tuple

(_STATUS_DONE, _STATUS_LIMIT, _STATUS_VM_FULL,
 _STATUS_HOOK, _STATUS_BAD) = 0, 1, 2, 3, -1

#: Kernel-entry telemetry for the fallback/guard tests: proves a config
#: really took the native path (and how) without instrumenting the hot
#: loop.  Monotonic per process; tests diff around a call.  The
#: ``ops_*`` keys are retirement counters the kernel itself increments
#: (one aligned int64 add per op) and ``writeback`` drains here, so the
#: totals survive image teardown; ``vm_hash_builds`` counts the exports
#: that missed the page-hash cache and rebuilt it from ``vm._mapped``.
stats = {"consume_calls": 0, "kernel_calls": 0, "hook_exits": 0,
         "sessions": 0, "ops_retired": 0, "vm_hash_builds": 0,
         "ops_block": 0, "ops_branch": 0, "ops_load": 0,
         "ops_store": 0, "ops_event": 0}
_stats = stats  # alias for scopes where a cache/tlb unpack shadows ``stats``

#: Kernel dispatch order: index ``k`` maps to ``stats["ops_<name>"]``
#: and the ``SI_OPK0 + k`` retirement slot.  Must match ``_kernel.c``.
OP_KIND_NAMES = ("block", "branch", "load", "store", "event")

# Images currently exported to the kernel.  ``ops_retired()`` folds
# their live slots into the drained totals; ``writeback`` removes them.
_live_lock = threading.Lock()
_live_images: dict[int, "CoreImage"] = {}


def ops_retired() -> int:
    """Total trace ops the kernel has retired in this process.

    Safe (and cheap) to poll from another thread mid-run: the ctypes
    call into the kernel releases the GIL, and the kernel's increments
    are aligned int64 stores, so the live-slot reads are tear-free on
    every supported target.  Finished images have drained into
    ``stats``; live ones are read straight from their kernel-owned
    scalar slots, so the sum is monotonic and never double-counts.
    """
    with _live_lock:
        live = sum(int(img.si[SI_OPS_RETIRED])
                   for img in _live_images.values())
    return stats["ops_retired"] + live

# ---------------------------------------------------------------------------
# Kernel build & load.

_SRC_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "_kernel.c")
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]

_lib = None
_lib_resolved = False
_lib_lock = threading.Lock()


def _compiler_identity(cc: str) -> bytes | None:
    """First line of ``cc --version``, or ``None`` if ``cc`` can't run.

    Cache-key ingredient: a toolchain upgrade (same source, same flags,
    new compiler) must recompile the kernel instead of loading the
    previous compiler's ``.so``.
    """
    try:
        res = subprocess.run([cc, "--version"], capture_output=True,
                             timeout=30)
    except (OSError, subprocess.SubprocessError):
        return None
    first = res.stdout.splitlines()[0] if res.stdout else b"unknown"
    return cc.encode(errors="replace") + b"\0" + first


def _compile_lib():
    with open(_SRC_PATH, "rb") as f:
        src = f.read()
    try:
        uid = os.getuid()
    except AttributeError:  # pragma: no cover - non-posix
        uid = 0
    cache_dir = os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")
    os.makedirs(cache_dir, mode=0o700, exist_ok=True)
    flags = " ".join(_CFLAGS).encode()
    so_path = None
    for cc in [os.environ.get("CC"), "cc", "gcc", "clang"]:
        if not cc:
            continue
        ident = _compiler_identity(cc)
        if ident is None:
            continue
        # Content-addressed by everything that shapes the binary:
        # source, CFLAGS, and the compiler's identity.
        tag = hashlib.sha256(b"\0".join((src, flags, ident))) \
            .hexdigest()[:16]
        candidate = os.path.join(cache_dir, f"kernel-{tag}.so")
        if os.path.exists(candidate):
            so_path = candidate
            break
        tmp = f"{candidate}.tmp.{os.getpid()}"
        try:
            res = subprocess.run([cc, *_CFLAGS, "-o", tmp, _SRC_PATH],
                                 capture_output=True, timeout=120)
        except (OSError, subprocess.SubprocessError):
            continue
        if res.returncode == 0 and os.path.exists(tmp):
            os.replace(tmp, candidate)   # atomic: racing builds converge
            so_path = candidate
            break
        if os.path.exists(tmp):
            os.unlink(tmp)
    if so_path is None:
        return None
    lib = ctypes.CDLL(so_path)
    ll = ctypes.c_longlong
    lib.repro_sim_run.restype = ll
    lib.repro_sim_run.argtypes = [ctypes.POINTER(ctypes.c_void_p),
                                  ll, ll, ll]
    lib.repro_vm_build.restype = None
    lib.repro_vm_build.argtypes = [ctypes.c_void_p, ll, ctypes.c_void_p, ll]
    lib.repro_vm_rehash.restype = None
    lib.repro_vm_rehash.argtypes = [ctypes.c_void_p, ll, ctypes.c_void_p, ll]
    return lib


def get_lib():
    """The loaded kernel library, or ``None`` if unavailable/disabled."""
    global _lib, _lib_resolved
    if _lib_resolved:
        return _lib
    with _lib_lock:
        if _lib_resolved:
            return _lib
        lib = None
        if os.environ.get("REPRO_NATIVE", "1") != "0":
            try:
                lib = _compile_lib()
            except Exception:
                lib = None
        _lib = lib
        _lib_resolved = True
    return _lib


def available() -> bool:
    return get_lib() is not None


# ---------------------------------------------------------------------------
# Applicability guard.

def nativizable(core) -> bool:
    """True when ``core``'s configuration is exactly what the kernel models.

    The kernel covers stock single-core configs plus the stock
    :class:`~repro.uarch.multicore.SharedLlc` (slice counting in C,
    contention math in Python between epoch quanta) and armed cycle
    hooks (via the HOOK trampoline).  Anything else (subclassed shared
    LLC, JIT-metadata reactions, non-4K pages, non-64B lines,
    subclassed/custom structures or fetch callbacks) must take the
    batched engine, which handles the full model.
    """
    from repro.uarch.pipeline import Core
    if type(core) is not Core:
        return False
    m = core.machine
    if core.shared_llc is not None:
        from repro.uarch.multicore import SharedLlc
        if type(core.shared_llc) is not SharedLlc:
            return False
    if m.jit_code_prefetch or m.jit_state_transform:
        return False
    for c in (core.l1i, core.l1d, core.l2, core.llc, core.dsb):
        if type(c) is not Cache or c._line_shift != 6:
            return False
    stlb = core.itlb.stlb
    if stlb is None or stlb is not core.dtlb.stlb:
        return False
    for t in (core.itlb.l1, core.dtlb.l1, stlb):
        if type(t) is not Tlb or t.page_shift != 12:
            return False
    pf_i, pf_d = core.l1i_prefetcher, core.l1d_prefetcher
    if type(pf_i) is not NextLinePrefetcher \
            or type(pf_d) is not NextLinePrefetcher:
        return False
    if pf_i.target is not core.l1i or pf_d.target is not core.l1d:
        return False
    if pf_i.fetch is not None:
        return False
    fd = pf_d.fetch
    if getattr(fd, "__self__", None) is not core or \
            getattr(fd, "__func__", None) is not Core._l1_prefetch_backing:
        return False
    if pf_i.page_size != 4096 or pf_d.page_size != 4096 \
            or pf_i.line_size != 64 or pf_d.line_size != 64:
        return False
    pf2 = core.l2_prefetcher
    if type(pf2) is not StreamPrefetcher or pf2.target is not core.l2:
        return False
    f2 = pf2.fetch
    if getattr(f2, "__self__", None) is not core or \
            getattr(f2, "__func__", None) is not Core._prefetch_backing:
        return False
    if pf2.page_size != 4096 or pf2.line_size != 64:
        return False
    bu = core.branch_unit
    if type(bu) is not BranchUnit or type(bu.predictor) is not \
            GsharePredictor or type(bu.btb) is not Btb \
            or type(bu.loop_predictor) is not LoopPredictor:
        return False
    if type(core.dram) is not DramModel or core.dram.line_size != 64:
        return False
    if type(core.vm) is not VirtualMemory or core.vm._page_shift != 12:
        return False
    return True


# ---------------------------------------------------------------------------
# Helpers.

_U64 = (1 << 64) - 1


def _mix(v: int) -> int:
    h = (v * 0x9E3779B97F4A7C15) & _U64
    return h ^ (h >> 29)


def _next_pow2(n: int) -> int:
    return 1 << max(3, (max(n, 1) - 1).bit_length())


def _export_assoc(sets, n_sets, ways, tags, flags):
    """Scatter per-set entry lists into dense (tags, flags?) arrays."""
    cnts = [len(b) for b in sets]
    cnt = np.asarray(cnts, dtype=np.int32)
    total = int(cnt.sum())
    if total:
        cnt64 = cnt.astype(np.int64)
        starts = np.cumsum(cnt64) - cnt64
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, cnt64)
        pos = np.repeat(np.arange(n_sets, dtype=np.int64) * ways,
                        cnt64) + within
        if flags is not None:
            tags[pos] = [e[0] for b in sets for e in b]
            flags[pos] = [(1 if e[1] else 0) | (2 if e[2] else 0)
                          | (4 if e[3] else 0) for b in sets for e in b]
        else:
            tags[pos] = [v for b in sets for v in b]
    return cnt


def _export_cache(cache):
    n = cache.n_sets * cache.ways
    tags = np.zeros(n, dtype=np.int64)
    flags = np.zeros(n, dtype=np.uint8)
    cnt = _export_assoc(cache._sets, cache.n_sets, cache.ways, tags, flags)
    st = cache.stats
    stats = np.array([st.accesses, st.misses, st.demand_accesses,
                      st.demand_misses, st.prefetch_fills,
                      st.useful_prefetches, st.useless_prefetches,
                      st.evictions, st.writebacks], dtype=np.int64)
    return tags, flags, cnt, stats


def _import_cache(cache, tags, flags, cnt, stats):
    ways = cache.ways
    tl, fl, cl = tags.tolist(), flags.tolist(), cnt.tolist()
    sets = cache._sets
    lines = cache._lines
    lines.clear()
    for si in range(cache.n_sets):
        base = si * ways
        bucket = []
        for k in range(base, base + cl[si]):
            t, f = tl[k], fl[k]
            bucket.append([t, bool(f & 1), bool(f & 2), bool(f & 4)])
            lines.add(t)
        sets[si] = bucket
    st = cache.stats
    sl = stats.tolist()
    (st.accesses, st.misses, st.demand_accesses, st.demand_misses,
     st.prefetch_fills, st.useful_prefetches, st.useless_prefetches,
     st.evictions, st.writebacks) = sl


def _export_tlb(tlb):
    n = tlb.n_sets * tlb.ways
    vpns = np.zeros(n, dtype=np.int64)
    cnt = _export_assoc(tlb._sets, tlb.n_sets, tlb.ways, vpns, None)
    st = tlb.stats
    stats = np.array([st.accesses, st.misses, st.walks], dtype=np.int64)
    return vpns, cnt, stats


def _import_tlb(tlb, vpns, cnt, stats):
    ways = tlb.ways
    vl, cl = vpns.tolist(), cnt.tolist()
    sets = tlb._sets
    resident = tlb._resident
    resident.clear()
    for si in range(tlb.n_sets):
        base = si * ways
        bucket = vl[base:base + cl[si]]
        resident.update(bucket)
        sets[si] = bucket
    st = tlb.stats
    st.accesses, st.misses, st.walks = stats.tolist()


# ---------------------------------------------------------------------------
# Core state image.

class CoreImage:
    """Flat-array image of a Core's mutable state, shared with the kernel.

    ``__init__`` exports, the kernel mutates the arrays in place through
    the pointer table, ``writeback`` reconstructs the Python objects.
    Derived stall constants are evaluated here with the *same expression
    shapes* the legacy per-op code uses, so the doubles the kernel
    accumulates are bit-identical.

    ``shared_llc_image``: when several cores share one
    :class:`~repro.uarch.multicore.SharedLlc`, the first core's image
    owns the LLC arrays (tags/flags/cnt/stats + epoch counters) and
    every later image aliases them, so the kernels see one coherent
    LLC no matter which core runs.  Only the owner writes the LLC back.
    """

    def __init__(self, core, shared_llc_image=None) -> None:
        from repro.uarch.pipeline import ALL_BUCKETS
        _t0 = time.perf_counter_ns() if obs.enabled() else None
        self.core = core
        self.buckets = ALL_BUCKETS
        m = core.machine
        h = core.hints
        self.si = np.zeros(SI_N, dtype=np.int64)
        self.sd = np.zeros(SD_N, dtype=np.float64)
        self.pd = np.zeros(PD_N, dtype=np.float64)
        self.pi = np.zeros(PI_N, dtype=np.int64)
        self.ptab = (ctypes.c_void_p * P_N)()
        self._keep = []            # arrays the pointer table references

        si, sd, pd, pi = self.si, self.sd, self.pd, self.pi

        # -- scalars -----------------------------------------------------
        c = core.counts
        si[SI_INSTR] = c.instructions
        si[SI_KINSTR] = c.kernel_instructions
        si[SI_BRANCHES] = c.branches
        si[SI_LOADS] = c.loads
        si[SI_STORES] = c.stores
        si[SI_DTLB_LWALK] = c.dtlb_load_walks
        si[SI_DTLB_SWALK] = c.dtlb_store_walks
        si[SI_ITLB_WALK] = c.itlb_walks
        si[SI_LAST_CODE_LINE] = core._last_code_line
        si[SI_LAST_CODE_PAGE] = core._last_code_page
        si[SI_LAST_DATA_VPN] = core._last_data_vpn
        si[SI_KMODE] = int(core._kernel_mode)
        sd[SD_IDEAL] = core._ideal_cycles
        sd[SD_UOPS] = c.uops
        for k, b in enumerate(self.buckets):
            sd[SD_ST0 + k] = core.stalls[b]

        # -- derived constants (legacy expression shapes) -----------------
        width = m.pipeline_width
        pd[PD_UOP_FACTOR] = h.uop_factor
        pd[PD_INV_WIDTH] = 1.0 / width
        pd[PD_WIDTH] = float(width)
        ilp = min(h.ilp, width)
        ports_on = ilp < width
        pd[PD_PORTS_ON] = 1.0 if ports_on else 0.0
        pd[PD_PORTS_COEFF] = (1.0 / ilp - 1.0 / width) if ports_on else 0.0
        pd[PD_DIV_FRAC] = h.div_frac
        pd[PD_DIV_PEN] = core.DIV_PENALTY
        pd[PD_MICRO_FRAC] = h.microcode_frac
        pd[PD_MS_PEN] = float(m.ms_switch_penalty)
        pd[PD_MITE_COEFF] = (1.0 / (m.decode_width * core.MITE_EFFICIENCY)
                             - 1.0 / width)
        pd[PD_ITLB_WALK] = m.page_walk_latency * (1 - core.ITLB_OVERLAP)
        pd[PD_DTLB_WALK] = m.page_walk_latency / h.mlp
        icache_vis = 1 - core.ICACHE_OVERLAP
        hidden = (1 - core.DATA_OVERLAP) / h.mlp
        self._icache_vis = icache_vis
        self._hidden = hidden
        pd[PD_ICACHE_L2] = m.l2.latency * icache_vis
        pd[PD_ICACHE_DRAM] = m.dram_latency * icache_vis
        pd[PD_L1_HIT] = m.l1d.latency * core.L1_VISIBLE
        pd[PD_BE_L2] = (m.l2.latency - m.l1d.latency) * hidden
        pd[PD_BE_DRAM] = (m.dram_latency - m.llc.latency) * hidden
        # L3 latencies fold in the shared LLC's current contention term
        # (0.0 for a private LLC) with the exact legacy expression
        # shapes; refresh_contention() recomputes them after each
        # update_contention epoch.
        self.refresh_contention()
        # Cycle-hook trampoline state: the kernel checks the threshold
        # (a single `if`, like _op_block) and exits with _STATUS_HOOK.
        sd[SD_NEXT_HOOK] = core._next_hook_cycles
        pd[PD_HOOK_INTERVAL] = core.cycle_hook_interval
        pd[PD_STORE_PEN] = core.STORE_MISS_PENALTY
        pd[PD_MIS_PEN] = float(m.mispredict_penalty)
        pd[PD_RESTEER_PEN] = float(m.btb_resteer_penalty)
        pd[PD_TAKEN_BUBBLE] = core.TAKEN_BRANCH_BUBBLE
        pd[PD_PF_DRAM] = m.dram_latency * 0.22 / h.mlp
        vm = core.vm
        pd[PD_MINOR_FAULT] = float(vm.MINOR_FAULT_CYCLES)
        pd[PD_MAJOR_FAULT] = float(vm.MAJOR_FAULT_CYCLES)

        # -- caches -------------------------------------------------------
        self.caches = (core.l1i, core.l1d, core.l2, core.llc, core.dsb)
        self._llc_owner = shared_llc_image is None
        self.cache_arrays = []
        for k, cache in enumerate(self.caches):
            if k == _C_LLC and shared_llc_image is not None:
                tags, flags, cnt, stats = shared_llc_image.cache_arrays[k]
            else:
                tags, flags, cnt, stats = _export_cache(cache)
            self.cache_arrays.append((tags, flags, cnt, stats))
            self._set_ptr(P_CACHE0 + 4 * k, tags)
            self._set_ptr(P_CACHE0 + 4 * k + 1, flags)
            self._set_ptr(P_CACHE0 + 4 * k + 2, cnt)
            self._set_ptr(P_CACHE0 + 4 * k + 3, stats)
            pi[PI_CACHE0 + 4 * k] = cache._index_mask
            pi[PI_CACHE0 + 4 * k + 1] = cache.ways
            pi[PI_CACHE0 + 4 * k + 2] = int(cache._lru)
            pi[PI_CACHE0 + 4 * k + 3] = int(cache._evict_head)
            si[SI_RAND0 + k] = cache._rand_state

        # -- TLBs ---------------------------------------------------------
        self.tlbs = (core.itlb.l1, core.dtlb.l1, core.itlb.stlb)
        self.tlb_arrays = []
        for k, tlb in enumerate(self.tlbs):
            vpns, cnt, stats = _export_tlb(tlb)
            self.tlb_arrays.append((vpns, cnt, stats))
            self._set_ptr(P_TLB0 + 3 * k, vpns)
            self._set_ptr(P_TLB0 + 3 * k + 1, cnt)
            self._set_ptr(P_TLB0 + 3 * k + 2, stats)
            pi[PI_TLB0 + 2 * k] = tlb._index_mask
            pi[PI_TLB0 + 2 * k + 1] = tlb.ways

        # -- branch unit ---------------------------------------------------
        bu = core.branch_unit
        bst = bu.stats
        si[SI_BU_BR] = bst.branches
        si[SI_BU_MIS] = bst.mispredicts
        si[SI_BU_BTBM] = bst.btb_misses
        si[SI_BU_TK] = bst.taken
        gs = bu.predictor
        si[SI_GS_HIST] = gs._history
        pi[PI_HIST_BITS] = gs.history_bits
        pi[PI_HIST_MASK] = ((1 << gs.history_bits) - 1
                            if gs.history_bits else 0)
        pi[PI_GS_MASK] = gs._mask
        self.gs_val = np.ones(gs._mask + 1, dtype=np.int8)
        self.gs_pres = np.zeros(gs._mask + 1, dtype=np.uint8)
        if gs._table:
            idx = np.fromiter(gs._table.keys(), dtype=np.int64,
                              count=len(gs._table))
            val = np.fromiter(gs._table.values(), dtype=np.int8,
                              count=len(gs._table))
            self.gs_val[idx] = val
            self.gs_pres[idx] = 1
        self._set_ptr(P_GS_VAL, self.gs_val)
        self._set_ptr(P_GS_PRES, self.gs_pres)

        lp = bu.loop_predictor
        lp_max = max(1, lp.max_entries)
        pi[PI_LP_MAX] = lp.max_entries
        hsize = _next_pow2(4 * lp_max)
        pi[PI_LP_HMASK] = hsize - 1
        self.lp_slab = np.zeros(lp_max * 4, dtype=np.int64)
        self.lp_order = np.zeros(lp_max, dtype=np.int32)
        self.lp_hkey = np.full(hsize, -1, dtype=np.int64)
        self.lp_hval = np.zeros(hsize, dtype=np.int32)
        si[SI_LP_CNT] = len(lp._table)
        si[SI_LP_TOMB] = 0
        for j, (pc, e) in enumerate(lp._table.items()):
            self.lp_slab[4 * j] = pc
            self.lp_slab[4 * j + 1] = e[0]
            self.lp_slab[4 * j + 2] = e[1]
            self.lp_slab[4 * j + 3] = e[2]
            self.lp_order[j] = j
            hh = _mix(pc) & (hsize - 1)
            while self.lp_hkey[hh] != -1:
                hh = (hh + 1) & (hsize - 1)
            self.lp_hkey[hh] = pc
            self.lp_hval[hh] = j
        self._set_ptr(P_LP_SLAB, self.lp_slab)
        self._set_ptr(P_LP_ORDER, self.lp_order)
        self._set_ptr(P_LP_HKEY, self.lp_hkey)
        self._set_ptr(P_LP_HVAL, self.lp_hval)

        btb = bu.btb
        pi[PI_BTB_MASK] = btb._index_mask
        pi[PI_BTB_WAYS] = btb.ways
        nb = btb.n_sets * btb.ways
        self.btb_key = np.zeros(nb, dtype=np.int64)
        self.btb_tgt = np.zeros(nb, dtype=np.int64)
        self.btb_cnt = np.zeros(btb.n_sets, dtype=np.int32)
        for s_i, bucket in enumerate(btb._sets):
            base = s_i * btb.ways
            self.btb_cnt[s_i] = len(bucket)
            for j, e in enumerate(bucket):
                self.btb_key[base + j] = e[0]
                self.btb_tgt[base + j] = e[1]
        self._set_ptr(P_BTB_KEY, self.btb_key)
        self._set_ptr(P_BTB_TGT, self.btb_tgt)
        self._set_ptr(P_BTB_CNT, self.btb_cnt)

        # -- prefetchers ---------------------------------------------------
        pf_i, pf_d, pf2 = (core.l1i_prefetcher, core.l1d_prefetcher,
                           core.l2_prefetcher)
        si[SI_L1IPF_ISS] = pf_i.stats.issued
        si[SI_L1IPF_PB] = pf_i.stats.page_bounded
        si[SI_L1DPF_ISS] = pf_d.stats.issued
        si[SI_L1DPF_PB] = pf_d.stats.page_bounded
        si[SI_L2PF_ISS] = pf2.stats.issued
        si[SI_L2PF_PB] = pf2.stats.page_bounded
        si[SI_L1IPF_LAST] = pf_i._last_line
        si[SI_L1DPF_LAST] = pf_d._last_line
        pi[PI_SPF_MAX] = pf2.max_streams
        pi[PI_SPF_DEG] = pf2.degree
        spf_cap = max(1, pf2.max_streams)
        self.spf_page = np.zeros(spf_cap, dtype=np.int64)
        self.spf_line = np.zeros(spf_cap, dtype=np.int64)
        si[SI_SPF_CNT] = len(pf2._streams)
        for j, (page, line) in enumerate(pf2._streams.items()):
            self.spf_page[j] = page
            self.spf_line[j] = line
        self._set_ptr(P_SPF_PAGE, self.spf_page)
        self._set_ptr(P_SPF_LINE, self.spf_line)

        # -- DRAM ----------------------------------------------------------
        dram = core.dram
        pi[PI_DRAM_BANKS] = dram.n_banks
        pi[PI_DRAM_ROWSZ] = dram.row_size
        self.dram_rows = np.full(dram.n_banks, -1, dtype=np.int64)
        for bank, row in dram._open_rows.items():
            self.dram_rows[bank] = row
        dst = dram.stats
        self.dram_st = np.array([dst.reads, dst.writes, dst.row_hits,
                                 dst.row_misses, dst.bytes_read,
                                 dst.bytes_written], dtype=np.int64)
        self._set_ptr(P_DRAM_ROWS, self.dram_rows)
        self._set_ptr(P_DRAM_ST, self.dram_st)

        # -- shared-LLC epoch counters ------------------------------------
        # The kernel mirrors SharedLlc.access: bump the epoch total and
        # the slice-hashed bucket on every demand LLC lookup.  The array
        # is the live store while an image exists; writeback copies it
        # into the Python fields (overwrite semantics, so repeated
        # drains are idempotent).  Private LLC: a dummy slot with
        # PI_LLC_SLICES = 0 disables counting in C.
        sll = core.shared_llc
        if sll is None:
            self.llc_epoch = np.zeros(1, dtype=np.int64)
        elif shared_llc_image is not None:
            self.llc_epoch = shared_llc_image.llc_epoch
            pi[PI_LLC_SLICES] = sll.n_slices
        else:
            self.llc_epoch = np.zeros(1 + sll.n_slices, dtype=np.int64)
            self.llc_epoch[0] = sll._accesses_this_epoch
            self.llc_epoch[1:] = sll.slice_accesses
            pi[PI_LLC_SLICES] = sll.n_slices
        self._set_ptr(P_LLC_EPOCH, self.llc_epoch)

        # -- virtual memory ------------------------------------------------
        vst = vm.stats
        si[SI_VM_MIN] = vst.minor_faults
        si[SI_VM_MAJ] = vst.major_faults
        si[SI_VM_MAPPED] = vst.mapped_pages
        si[SI_VM_SEQ] = vm._fault_seq
        si[SI_VM_CNT] = len(vm._mapped)
        frac = vm.major_fault_fraction
        pi[PI_MAJOR_PERIOD] = (max(1, round(1 / frac)) if frac > 0 else 0)
        # The exported page-table hash is the expensive part of an
        # export on page-heavy workloads (SPEC premaps ~10^6 pages), so
        # it is cached on the vm instance keyed by (len, epoch): length
        # catches additions, the epoch catches removals (the one
        # mutation length can miss — see VirtualMemory.unmap_range).
        # After a run the hash holds exactly ``_mapped`` (kernel-added
        # pages are inserted and drained), so consume_stream_native
        # refreshes the key and the next export reuses the arrays.
        key = (len(vm._mapped), vm._map_epoch)
        cached = getattr(vm, "_native_page_hash", None)
        if cached is not None and cached[0] == key:
            _, self.vm_hash, self.vm_log = cached
            pi[PI_VM_HMASK] = len(self.vm_hash) - 1
        else:
            _stats["vm_hash_builds"] += 1
            if _t0 is not None:
                obs.add("native.vm_hash_builds", 1.0)
            cap = _next_pow2(4 * (len(vm._mapped) + 64))
            pi[PI_VM_HMASK] = cap - 1
            self.vm_hash = np.full(cap, -1, dtype=np.int64)
            if vm._mapped:
                keys = np.fromiter(vm._mapped, dtype=np.int64,
                                   count=len(vm._mapped))
                get_lib().repro_vm_build(keys.ctypes.data, len(keys),
                                         self.vm_hash.ctypes.data, cap - 1)
            # Scratch: the kernel writes entries before bumping the
            # count, so the log never needs zero-filling.
            self.vm_log = np.empty(cap, dtype=np.int64)
            vm._native_page_hash = (key, self.vm_hash, self.vm_log)
        self._set_ptr(P_VM_HASH, self.vm_hash)
        self._set_ptr(P_VM_LOG, self.vm_log)

        self._set_ptr(P_SI, si)
        self._set_ptr(P_SD, sd)
        self._set_ptr(P_PD, pd)
        self._set_ptr(P_PI, pi)

        with _live_lock:
            _live_images[id(self)] = self
        if _t0 is not None:
            obs.observe("native.export_seconds",
                        (time.perf_counter_ns() - _t0) * 1e-9)

    # ------------------------------------------------------------------
    def _set_ptr(self, slot: int, arr) -> None:
        self.ptab[slot] = arr.ctypes.data
        self._keep.append(arr)

    def _grow_vm(self) -> None:
        old = self.vm_hash
        old_mask = int(self.pi[PI_VM_HMASK])
        cap = (old_mask + 1) * 4
        new = np.full(cap, -1, dtype=np.int64)
        get_lib().repro_vm_rehash(old.ctypes.data, old_mask,
                                  new.ctypes.data, cap - 1)
        self.vm_hash = new
        self.vm_log = np.empty(cap, dtype=np.int64)
        self.pi[PI_VM_HMASK] = cap - 1
        self._set_ptr(P_VM_HASH, new)
        self._set_ptr(P_VM_LOG, self.vm_log)

    def _drain_vm_log(self) -> None:
        n = int(self.si[SI_VM_LOGN])
        if n:
            self.core.vm._mapped.update(self.vm_log[:n].tolist())
            self.si[SI_VM_LOGN] = 0

    def refresh_contention(self) -> None:
        """Re-derive the L3 stall constants from the live contention term.

        ``SharedLlc.update_contention`` runs in Python between epoch
        quanta; the kernel reads ``extra_latency`` only through these
        two doubles, so refreshing them at the epoch boundary gives
        every access in the next quantum the new latency — exactly when
        the legacy per-op ``_llc_extra()`` read would change value.
        The expression shapes match ``_fetch`` and ``_op_mem``.
        """
        core, m = self.core, self.core.machine
        extra = core._llc_extra()
        self.pd[PD_ICACHE_L3] = (m.llc.latency + extra) * self._icache_vis
        self.pd[PD_BE_L3] = (m.llc.latency + extra - m.l2.latency) \
            * self._hidden

    def _drain_llc_epoch(self) -> None:
        """Copy the kernel's epoch counters into the SharedLlc fields."""
        sll = self.core.shared_llc
        if sll is not None:
            ep = self.llc_epoch
            sll._accesses_this_epoch = int(ep[0])
            sll.slice_accesses = ep[1:].tolist()

    def sync_scalars(self) -> None:
        """Publish the cycle-forming scalars without a full writeback.

        Enough for ``core.cycles`` / ``core.counts`` reads between
        multicore quanta (the round loop's epoch arithmetic); caches,
        predictors and VM stay in the arrays until the session closes.
        """
        core = self.core
        sd, si = self.sd, self.si
        core._ideal_cycles = float(sd[SD_IDEAL])
        for k, b in enumerate(self.buckets):
            core.stalls[b] = float(sd[SD_ST0 + k])
        c = core.counts
        c.instructions = int(si[SI_INSTR])
        c.kernel_instructions = int(si[SI_KINSTR])

    # ------------------------------------------------------------------
    def writeback(self) -> None:
        """Reconstruct the Python Core state from the mutated arrays."""
        _t0 = time.perf_counter_ns() if obs.enabled() else None
        core = self.core
        si, sd = self.si, self.sd
        sil = si.tolist()
        c = core.counts
        c.instructions = sil[SI_INSTR]
        c.kernel_instructions = sil[SI_KINSTR]
        c.branches = sil[SI_BRANCHES]
        c.loads = sil[SI_LOADS]
        c.stores = sil[SI_STORES]
        c.dtlb_load_walks = sil[SI_DTLB_LWALK]
        c.dtlb_store_walks = sil[SI_DTLB_SWALK]
        c.itlb_walks = sil[SI_ITLB_WALK]
        c.uops = float(sd[SD_UOPS])
        core._ideal_cycles = float(sd[SD_IDEAL])
        for k, b in enumerate(self.buckets):
            core.stalls[b] = float(sd[SD_ST0 + k])
        core._last_code_line = sil[SI_LAST_CODE_LINE]
        core._last_code_page = sil[SI_LAST_CODE_PAGE]
        core._last_data_vpn = sil[SI_LAST_DATA_VPN]
        core._kernel_mode = bool(sil[SI_KMODE])
        core._next_hook_cycles = float(sd[SD_NEXT_HOOK])

        for k, cache in enumerate(self.caches):
            if k == _C_LLC and not self._llc_owner:
                continue        # the owning image writes the shared LLC
            _import_cache(cache, *self.cache_arrays[k])
            cache._rand_state = sil[SI_RAND0 + k]
        if self._llc_owner:
            self._drain_llc_epoch()
        for k, tlb in enumerate(self.tlbs):
            _import_tlb(tlb, *self.tlb_arrays[k])

        bu = core.branch_unit
        bst = bu.stats
        bst.branches = sil[SI_BU_BR]
        bst.mispredicts = sil[SI_BU_MIS]
        bst.btb_misses = sil[SI_BU_BTBM]
        bst.taken = sil[SI_BU_TK]
        gs = bu.predictor
        gs._history = sil[SI_GS_HIST]
        idx = np.nonzero(self.gs_pres)[0]
        gs._table = dict(zip(idx.tolist(),
                             self.gs_val[idx].tolist()))
        lp = bu.loop_predictor
        slab = self.lp_slab.tolist()
        table = {}
        for j in self.lp_order[:sil[SI_LP_CNT]].tolist():
            table[slab[4 * j]] = [slab[4 * j + 1], slab[4 * j + 2],
                                  slab[4 * j + 3]]
        lp._table = table
        btb = bu.btb
        kl, tl = self.btb_key.tolist(), self.btb_tgt.tolist()
        for s_i, n in enumerate(self.btb_cnt.tolist()):
            base = s_i * btb.ways
            btb._sets[s_i] = [[kl[base + j], tl[base + j]]
                              for j in range(n)]

        pf_i, pf_d, pf2 = (core.l1i_prefetcher, core.l1d_prefetcher,
                           core.l2_prefetcher)
        pf_i.stats.issued = sil[SI_L1IPF_ISS]
        pf_i.stats.page_bounded = sil[SI_L1IPF_PB]
        pf_d.stats.issued = sil[SI_L1DPF_ISS]
        pf_d.stats.page_bounded = sil[SI_L1DPF_PB]
        pf2.stats.issued = sil[SI_L2PF_ISS]
        pf2.stats.page_bounded = sil[SI_L2PF_PB]
        pf_i._last_line = sil[SI_L1IPF_LAST]
        pf_d._last_line = sil[SI_L1DPF_LAST]
        n_spf = sil[SI_SPF_CNT]
        pf2._streams = dict(zip(self.spf_page[:n_spf].tolist(),
                                self.spf_line[:n_spf].tolist()))

        dram = core.dram
        rows = self.dram_rows.tolist()
        dram._open_rows = {b: r for b, r in enumerate(rows) if r != -1}
        dst = dram.stats
        (dst.reads, dst.writes, dst.row_hits, dst.row_misses,
         dst.bytes_read, dst.bytes_written) = self.dram_st.tolist()

        vm = core.vm
        self._drain_vm_log()
        vm.stats.minor_faults = sil[SI_VM_MIN]
        vm.stats.major_faults = sil[SI_VM_MAJ]
        vm.stats.mapped_pages = sil[SI_VM_MAPPED]
        vm._fault_seq = sil[SI_VM_SEQ]

        self._drain_retired(sil)
        if _t0 is not None:
            obs.observe("native.writeback_seconds",
                        (time.perf_counter_ns() - _t0) * 1e-9)

    def _drain_retired(self, sil) -> None:
        """Fold the kernel's retirement counters into the module stats.

        Zeroing the slots keeps a second writeback idempotent (the
        BAD-status path writes back before raising, then the caller's
        ``finally`` writes back again), and dropping the image from the
        live registry keeps ``ops_retired()`` from counting the drained
        span twice.
        """
        retired = sil[SI_OPS_RETIRED]
        if retired:
            stats["ops_retired"] += retired
            for k, name in enumerate(OP_KIND_NAMES):
                stats["ops_" + name] += sil[SI_OPK0 + k]
            if obs.enabled():
                obs.add("native.ops_retired", float(retired))
                for k, name in enumerate(OP_KIND_NAMES):
                    if sil[SI_OPK0 + k]:
                        obs.add("native.ops_retired." + name,
                                float(sil[SI_OPK0 + k]))
            self.si[SI_OPS_RETIRED:SI_N] = 0
        with _live_lock:
            _live_images.pop(id(self), None)

    # ------------------------------------------------------------------
    def run_buffer(self, buf, start: int, limit) -> tuple[int, int]:
        """Run the kernel over one sealed trace buffer from ``start``.

        Returns ``(next_pos, status)`` where status is ``_STATUS_DONE``
        (chunk exhausted), ``_STATUS_LIMIT`` (instruction limit reached)
        or ``_STATUS_HOOK`` (the cycle-hook threshold fired: the caller
        must write state back, run the Python hook against the live
        core, and re-enter from ``next_pos``).  Event-hook callbacks are
        replayed from the kernel's event log with the exact cycle stamps
        the legacy engine would have produced.
        """
        lib = get_lib()
        kinds, a0, a1, a2, n_ev = _columns(buf)
        n_ops = len(kinds)
        ptab = self.ptab
        ptab[P_KINDS] = kinds.ctypes.data
        ptab[P_A0] = a0.ctypes.data
        ptab[P_A1] = a1.ctypes.data
        ptab[P_A2] = a2.ctypes.data
        evidx = np.zeros(max(1, n_ev), dtype=np.int64)
        evcyc = np.zeros(max(1, n_ev), dtype=np.float64)
        ptab[P_EVIDX] = evidx.ctypes.data
        ptab[P_EVCYC] = evcyc.ctypes.data
        hook = self.core.event_hook
        events = buf.events
        limit_c = -1 if limit is None else limit
        pos = start
        while True:
            stats["kernel_calls"] += 1
            _t0 = time.perf_counter_ns() if obs.enabled() else None
            status = int(lib.repro_sim_run(ptab, pos, n_ops, limit_c))
            if _t0 is not None:
                obs.add("native.kernel_calls", 1.0)
                obs.observe("native.run_seconds",
                            (time.perf_counter_ns() - _t0) * 1e-9)
            next_pos = int(self.si[SI_NEXT_POS])
            self._drain_vm_log()
            if hook is not None:
                a0l = a0
                for k in range(int(self.si[SI_EV_N])):
                    ev, payload = events[int(a0l[int(evidx[k])])]
                    hook(ev, payload, float(evcyc[k]))
            if status == _STATUS_VM_FULL:
                self._grow_vm()
                pos = next_pos
                continue
            if status == _STATUS_BAD:
                self.writeback()
                raise ValueError(
                    f"unknown op kind {int(kinds[next_pos])!r}")
            return next_pos, status


# ---------------------------------------------------------------------------
# Column extraction (cached on the buffer).

def _columns(buf):
    """Contiguous int64 column arrays for a sealed trace buffer.

    Cached on ``buf._vcols`` keyed by op count, so replayed buffers pay
    the conversion once; ``color_private`` invalidates the cache.
    """
    n = len(buf.kinds)
    cached = buf._vcols
    if cached is not None and cached[0] == n:
        return cached[1]
    kinds = np.ascontiguousarray(np.asarray(buf.kinds, dtype=np.int64))
    a0 = np.ascontiguousarray(np.asarray(buf.a0, dtype=np.int64))
    a1 = np.ascontiguousarray(np.asarray(buf.a1, dtype=np.int64))
    a2 = np.ascontiguousarray(np.asarray(buf.a2, dtype=np.int64))
    n_ev = int(np.count_nonzero(kinds == 4))
    cols = (kinds, a0, a1, a2, n_ev)
    buf._vcols = (n, cols)
    return cols


# ---------------------------------------------------------------------------
# Driver.

def _finish_image(img) -> None:
    """Write an image back and refresh the VM page-hash reuse key.

    After writeback the hash holds exactly ``vm._mapped`` (kernel
    inserts were drained), so the next export reuses the arrays — which
    is what keeps hook-trampoline rebuilds cheap on page-heavy
    workloads.  See CoreImage's vm export.
    """
    img.writeback()
    vm = img.core.vm
    vm._native_page_hash = ((len(vm._mapped), vm._map_epoch),
                            img.vm_hash, img.vm_log)


def consume_stream_native(core, stream, max_instructions=None) -> int:
    """Vector-engine counterpart of ``Core.consume_stream``.

    Callers must have checked :func:`available` and :func:`nativizable`.
    Returns the number of instructions executed, with all core state
    (counters, stalls, caches, predictors, VM) bit-identical to what the
    legacy engine would have produced over the same ops.

    Armed cycle hooks run through the trampoline: the kernel exits with
    ``_STATUS_HOOK`` at the block op that crossed the threshold, state
    is written back, the Python hook runs against the live ``Core``
    (it may read or mutate anything), and the kernel re-enters with a
    fresh image — preserving the legacy hook-before-limit ordering.
    """
    counts = core.counts
    start_instr = counts.instructions
    limit = (start_instr + max_instructions
             if max_instructions is not None else None)
    stats["consume_calls"] += 1
    img = CoreImage(core)
    try:
        while True:
            buf = stream.buffer()
            if buf is None:
                break
            _t0 = time.perf_counter() if obs.enabled() else None
            next_pos, status = img.run_buffer(buf, stream.pos, limit)
            if _t0 is not None:
                obs.observe("sim.consume_buffer_seconds",
                            time.perf_counter() - _t0)
            stream.pos = next_pos
            if status == _STATUS_HOOK:
                stats["hook_exits"] += 1
                if obs.enabled():
                    obs.add("native.hook_exits", 1.0)
                _finish_image(img)
                img = None
                core.cycle_hook(core)
                if limit is not None and counts.instructions >= limit:
                    break
                img = CoreImage(core)
                continue
            if status == _STATUS_LIMIT:
                break
    finally:
        if img is not None:
            _finish_image(img)
    return counts.instructions - start_instr


# ---------------------------------------------------------------------------
# Multicore session: persistent images across interleaved quanta.

class NativeMulticoreSession:
    """Per-core images kept alive across the multicore round loop.

    A fresh export + writeback per 4k-instruction quantum would dominate
    the run (that cost is amortized over ~50x more instructions on the
    single-core path).  The session exports each core once per
    ``MulticoreRunner.run`` call, aliases the shared LLC's arrays (tags,
    flags, counts, stats, epoch counters) into every image so the
    kernels see one coherent LLC, and at quantum boundaries syncs only
    the cycle-forming scalars the round loop reads.  The LLC's eviction
    RNG state lives in per-image scalar slots, so it is carried from the
    core that last ran to the next one.

    ``SharedLlc.update_contention`` stays in Python, unchanged: call
    :meth:`sync_epoch` just before it (publishes + zeroes the epoch
    counters) and :meth:`refresh_contention` right after (re-derives the
    L3 stall constants in every image).

    A cycle hook mid-quantum tears the whole session down (full
    writeback of every core), runs the hook against the live cores, and
    rebuilds — hooks fire every few million cycles, so the rebuild cost
    is noise while correctness is unconditional.
    """

    def __init__(self, cores) -> None:
        self.cores = list(cores)
        self.llc = self.cores[0].shared_llc
        self.images = None
        stats["sessions"] += 1
        self._build()

    def _build(self) -> None:
        primary = CoreImage(self.cores[0])
        self.images = [primary]
        for core in self.cores[1:]:
            self.images.append(CoreImage(core, shared_llc_image=primary))
        self._llc_rand = self.llc.cache._rand_state

    def _teardown(self) -> None:
        owner = self.images[0]
        owner.si[SI_RAND0 + _C_LLC] = self._llc_rand
        for img in self.images:
            _finish_image(img)
        self.images = None

    def close(self) -> None:
        if self.images is not None:
            self._teardown()

    def sync_epoch(self) -> None:
        """Publish epoch counters to the SharedLlc and restart the epoch.

        Call immediately before ``SharedLlc.update_contention`` — which
        consumes and zeroes the Python fields, while the array restarts
        from zero for the next epoch's kernel increments.
        """
        owner = self.images[0]
        owner._drain_llc_epoch()
        owner.llc_epoch[:] = 0

    def refresh_contention(self) -> None:
        """Re-derive every image's L3 constants after update_contention."""
        for img in self.images:
            img.refresh_contention()

    def consume(self, core_index: int, stream, max_instructions: int) -> int:
        """Quantum-interleaved counterpart of ``consume_stream_native``."""
        core = self.cores[core_index]
        img = self.images[core_index]
        start_instr = int(img.si[SI_INSTR])
        limit = start_instr + max_instructions
        img.si[SI_RAND0 + _C_LLC] = self._llc_rand
        stats["consume_calls"] += 1
        while True:
            buf = stream.buffer()
            if buf is None:
                break
            next_pos, status = img.run_buffer(buf, stream.pos, limit)
            stream.pos = next_pos
            if status == _STATUS_HOOK:
                stats["hook_exits"] += 1
                if obs.enabled():
                    obs.add("native.hook_exits", 1.0)
                self._llc_rand = int(img.si[SI_RAND0 + _C_LLC])
                self._teardown()
                core.cycle_hook(core)
                self._build()
                img = self.images[core_index]
                img.si[SI_RAND0 + _C_LLC] = self._llc_rand
                if core.counts.instructions >= limit:
                    break
                continue
            if status == _STATUS_LIMIT:
                break
        self._llc_rand = int(img.si[SI_RAND0 + _C_LLC])
        img.sync_scalars()
        return int(img.si[SI_INSTR]) - start_instr


def multicore_session(cores, streams):
    """A :class:`NativeMulticoreSession` when every core and stream
    qualifies for it, else ``None`` (callers fall back per quantum)."""
    from repro.trace import TraceBufferStream
    if not available() or not cores:
        return None
    llc = cores[0].shared_llc
    if llc is None:
        return None
    if not all(c.shared_llc is llc for c in cores):
        return None
    if not all(isinstance(s, TraceBufferStream) for s in streams):
        return None
    if not all(nativizable(c) for c in cores):
        return None
    return NativeMulticoreSession(cores)
