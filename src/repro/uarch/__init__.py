"""Microarchitecture substrate: caches, TLBs, predictors, pipeline model.

The structures here stand in for the PMU-instrumented hardware of Table II;
:mod:`repro.uarch.pipeline` consumes workload op streams and produces the
raw counters and Top-Down slot accounting every experiment reads.
"""

from repro.uarch.branch import BranchUnit, Btb, GsharePredictor
from repro.uarch.cache import Cache, CacheHierarchy, L1, L2, L3, DRAM
from repro.uarch.machine import (MachineConfig, CacheConfig, TlbConfig,
                                 arm_server, get_machine, i9_9980xe,
                                 xeon_e5_2620v4)
from repro.uarch.memory import DramModel
from repro.uarch.multicore import MulticoreRunner, SharedLlc
from repro.uarch.pipeline import Core, WorkloadHints
from repro.uarch.prefetch import NextLinePrefetcher, StreamPrefetcher
from repro.uarch.tlb import Tlb, TlbHierarchy, TLB_L1, TLB_STLB, TLB_WALK
from repro.uarch.topdown import TopDownProfile, profile_core

__all__ = [
    "BranchUnit", "Btb", "GsharePredictor",
    "Cache", "CacheHierarchy", "L1", "L2", "L3", "DRAM",
    "MachineConfig", "CacheConfig", "TlbConfig",
    "arm_server", "get_machine", "i9_9980xe", "xeon_e5_2620v4",
    "DramModel",
    "MulticoreRunner", "SharedLlc",
    "Core", "WorkloadHints",
    "NextLinePrefetcher", "StreamPrefetcher",
    "Tlb", "TlbHierarchy", "TLB_L1", "TLB_STLB", "TLB_WALK",
    "TopDownProfile", "profile_core",
]
