"""Multi-core model: shared sliced LLC with port/NoC contention.

Implements the substrate behind Figs 11-12: as ASP.NET scales across
cores, per-core LLC MPKI stays roughly flat but LLC *access latency*
climbs because of contention at LLC slice ports and in the NoC — which the
Top-Down profile then reports as a growing L3-bound component.

The contention model is a per-epoch M/M/1 approximation: cores run
interleaved in fixed instruction quanta; after each round the shared LLC
recomputes the expected queueing delay from the aggregate request rate per
slice over that round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.vm import VirtualMemory
from repro.trace import TraceBufferStream
from repro.uarch.cache import Cache
from repro.uarch.machine import MachineConfig
from repro.uarch.pipeline import Core


class SharedLlc:
    """A shared last-level cache with slice hashing and contention.

    ``extra_latency`` is the current queueing + NoC delay added to every
    LLC access; it is refreshed from observed traffic by
    :meth:`update_contention`.
    """

    MAX_QUEUE_FACTOR = 8.0

    def __init__(self, machine: MachineConfig) -> None:
        m = machine
        llc = m.sim_cache(m.llc)
        self.cache = Cache("LLC", llc.size_bytes, llc.line_size, llc.ways)
        self.n_slices = m.llc_slices
        self.noc_hop_latency = m.noc_hop_latency
        self.service_rate = m.llc_port_service_rate
        self.base_latency = m.llc.latency
        #: §VIII extension: "hashed" queues on the hottest slice (address
        #: hashing concentrates hot lines); "balanced" models metadata-
        #: driven placement that spreads hot data and localizes it near
        #: the owning core (shorter NoC paths).
        self.placement = m.llc_placement
        self.extra_latency = 0.0
        self._accesses_this_epoch = 0
        self.slice_accesses = [0] * self.n_slices
        self.active_cores = 1

    def access(self, addr: int, core_id: int, is_write: bool = False) -> bool:
        self._accesses_this_epoch += 1
        self.slice_accesses[(addr >> 6) % self.n_slices] += 1
        return self.cache.access(addr, is_write)

    def update_contention(self, epoch_cycles: float,
                          active_cores: int) -> None:
        """Recompute ``extra_latency`` from the last epoch's traffic.

        ``epoch_cycles`` is the mean per-core cycle count of the epoch —
        since the cores run concurrently, the aggregate arrival rate per
        slice is total accesses / (slices * epoch_cycles).
        """
        self.active_cores = active_cores
        if epoch_cycles <= 0:
            return
        mean_arrival = self._accesses_this_epoch / (self.n_slices
                                                    * epoch_cycles)
        if self.placement == "balanced":
            # Placement-aware distribution: load spreads evenly and hot
            # data is homed near its consumer (shorter NoC paths).
            arrival = mean_arrival
            noc_factor = 0.6
        else:
            # Address hashing: hot-line concentration makes the loaded
            # slices pace the queueing (imbalance factor, capped).
            per_slice = self._accesses_this_epoch / self.n_slices
            hottest = max(self.slice_accesses, default=0)
            imbalance = min(2.0, hottest / per_slice) if per_slice else 1.0
            arrival = mean_arrival * imbalance
            noc_factor = 1.0
        # An LLC slice port serves one request per `1/service_rate` cycles;
        # each request also occupies the slice's bank for ~9 cycles, so
        # queueing builds quickly once several cores stream requests.
        rho = min(0.95, arrival * 9.0 / self.service_rate)
        queue_delay = 9.0 * rho / (1.0 - rho)
        queue_delay = min(queue_delay, self.base_latency
                          * self.MAX_QUEUE_FACTOR)
        # NoC: average hop count and link sharing grow with the number of
        # active cores on the mesh.
        noc_delay = self.noc_hop_latency * noc_factor \
            * (active_cores ** 0.75)
        self.extra_latency = queue_delay + noc_delay
        self._accesses_this_epoch = 0
        self.slice_accesses = [0] * self.n_slices

    @property
    def effective_latency(self) -> float:
        return self.base_latency + self.extra_latency


@dataclass
class MulticoreResult:
    """Outputs of a multicore run."""

    cores: list[Core]
    llc: SharedLlc
    epochs: int
    #: filled by run_multicore(sampling=True): core 0's sampled timeline
    samples: object | None = None

    @property
    def total_instructions(self) -> int:
        return sum(c.counts.instructions for c in self.cores)

    @property
    def mean_cycles(self) -> float:
        return sum(c.cycles for c in self.cores) / len(self.cores)

    def per_core_llc_mpki(self) -> float:
        """Mean per-core LLC demand MPKI (Fig 12's flat line)."""
        misses = self.llc.cache.stats.demand_misses
        instr = self.total_instructions
        return misses / instr * 1000 if instr else 0.0


class MulticoreRunner:
    """Interleaves N per-core op streams against one shared LLC.

    Each core gets its own :class:`VirtualMemory` (separate process images
    would share kernel text; for simplicity each core's stream includes
    its own kernel activity) and its own stream factory — a callable
    ``(core_id) -> (source, WorkloadHints)`` where ``source`` is either
    an op-tuple iterable (legacy consume) or a
    :class:`~repro.trace.TraceBufferStream` (batched consume); both keep
    a resume position, so quantum-interleaved execution is identical.
    """

    def __init__(self, machine: MachineConfig, n_cores: int,
                 stream_factory, epoch_instructions: int = 4000,
                 engine: str = "batched") -> None:
        self.machine = machine
        self.n_cores = n_cores
        self.llc = SharedLlc(machine)
        self.epoch_instructions = epoch_instructions
        self.engine = engine
        self.cores: list[Core] = []
        self._streams = []
        for core_id in range(n_cores):
            vm = VirtualMemory()
            core = Core(machine, vm, shared_llc=self.llc, core_id=core_id)
            source, hints = stream_factory(core_id)
            core.set_hints(hints)
            self.cores.append(core)
            if isinstance(source, TraceBufferStream):
                self._streams.append(source)
            else:
                self._streams.append(iter(source))

    def _open_session(self):
        """A native multicore session for ``engine="vector"``, or None.

        The session (see :class:`repro.uarch.native.NativeMulticoreSession`)
        keeps per-core kernel images alive across quanta — the shared LLC
        is aliased into every image and the Python contention model runs
        unchanged at epoch boundaries.  Any disqualifying configuration
        (kernel unavailable, legacy streams, non-nativizable core) falls
        back to the batched per-quantum path.
        """
        if self.engine != "vector":
            return None
        from repro.uarch import native
        return native.multicore_session(self.cores, self._streams)

    def run(self, instructions_per_core: int) -> MulticoreResult:
        """Run all cores to ``instructions_per_core``, interleaved."""
        remaining = [instructions_per_core] * self.n_cores
        epochs = 0
        session = self._open_session()
        try:
            while any(r > 0 for r in remaining):
                cycles_before = [c.cycles for c in self.cores]
                progressed = False
                for i, core in enumerate(self.cores):
                    if remaining[i] <= 0:
                        continue
                    quantum = min(self.epoch_instructions, remaining[i])
                    stream = self._streams[i]
                    if session is not None:
                        done = session.consume(i, stream, quantum)
                    elif isinstance(stream, TraceBufferStream):
                        done = core.consume_stream(stream,
                                                   max_instructions=quantum,
                                                   engine=self.engine)
                    else:
                        done = core.consume(stream, max_instructions=quantum)
                    remaining[i] -= done if done else remaining[i]
                    if done:
                        progressed = True
                epoch_cycles = sum(c.cycles - b for c, b in
                                   zip(self.cores, cycles_before)) \
                    / self.n_cores
                if session is not None:
                    session.sync_epoch()
                self.llc.update_contention(epoch_cycles, self.n_cores)
                if session is not None:
                    session.refresh_contention()
                epochs += 1
                if not progressed:      # all streams exhausted early
                    break
        finally:
            if session is not None:
                session.close()
        return MulticoreResult(self.cores, self.llc, epochs)
