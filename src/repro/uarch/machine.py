"""Machine configurations mirroring Table II of the paper.

Three presets are provided:

* :func:`xeon_e5_2620v4` — the Intel Xeon E5-2620 v4 *baseline* machine used
  for SPECspeed-style score validation (Fig 2);
* :func:`i9_9980xe` — the Intel Core i9-9980XE on which most experiments ran;
* :func:`arm_server` — the 32-core AArch64 server (§V-D).

Beyond the cache geometry the paper prints, each preset carries the pipeline
and predictor parameters the Top-Down model needs.  The Arm preset encodes
both microarchitectural differences (4-wide decode, small first-level TLBs,
2K-entry secondary TLB — all stated in §III-B) and a *software maturity
factor*: the paper attributes the 80× I-TLB gap partly to the less optimized
Arm .NET code path, which we model as code-size and dynamic-instruction
bloat applied by the workload layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    ways: int
    line_size: int = 64
    latency: int = 4          # load-to-use cycles


@dataclass(frozen=True)
class TlbConfig:
    entries: int
    ways: int | None = None   # None = fully associative


@dataclass(frozen=True)
class MachineConfig:
    """Everything the simulator needs to instantiate one machine."""

    name: str
    isa: str                           # "x86-64" | "aarch64"
    physical_cores: int
    logical_cores: int
    nominal_freq_hz: float
    max_freq_hz: float

    l1d: CacheConfig = CacheConfig(32 * 1024, 8, latency=4)
    l1i: CacheConfig = CacheConfig(32 * 1024, 8, latency=4)
    l2: CacheConfig = CacheConfig(1024 * 1024, 16, latency=14)
    llc: CacheConfig = CacheConfig(24 * 1024 * 1024, 12, latency=44)

    itlb: TlbConfig = TlbConfig(128, 8)
    dtlb: TlbConfig = TlbConfig(64, 4)
    stlb: TlbConfig = TlbConfig(1536, 12)
    page_size: int = 4096
    page_walk_latency: int = 30

    # Pipeline.
    pipeline_width: int = 4            # issue/rename slots per cycle
    fetch_bytes_per_cycle: int = 16
    decode_width: int = 4              # MITE decoders
    dsb_uops_per_cycle: int = 6        # uop-cache delivery bandwidth
    dsb_entries: int = 1536            # uop cache capacity, in 16B packets
    rob_entries: int = 224
    mispredict_penalty: int = 16
    btb_resteer_penalty: int = 8
    ms_switch_penalty: int = 3
    mlp_cap: float = 6.0               # max overlapped demand misses

    # Branch prediction.  history_bits=0: per-PC bimodal (see branch.py on
    # why noise history is wrong for generated workloads).
    bp_table_bits: int = 14
    bp_history_bits: int = 0
    btb_entries: int = 4096
    btb_ways: int = 4

    # DRAM.
    dram_latency: int = 190
    dram_row_miss_extra: int = 90
    dram_banks: int = 16

    # LLC slicing / interconnect (used by the multicore model).  The
    # vector engine mirrors the slice hash ((addr >> 6) % llc_slices)
    # and per-slice epoch counters in its C kernel, so these fields are
    # part of the native ABI contract: the kernel reads llc_slices
    # directly, while the latency-side knobs (noc_hop_latency, service
    # rate, placement) stay in Python's per-epoch M/M/1 model and reach
    # the kernel only as the folded extra_latency constant.
    llc_slices: int = 8
    noc_hop_latency: int = 2
    llc_port_service_rate: float = 1.0  # requests per slice per cycle

    # Software-stack maturity multipliers applied by the workload layer when
    # generating code for this machine (1.0 = fully tuned stack).
    code_bloat: float = 1.0            # static code size multiplier
    dynamic_instr_bloat: float = 1.0   # extra dynamic instructions

    # --- §VIII extension hardware (off by default: the paper PROPOSES
    # these; the extension benches quantify them) ----------------------
    #: consume JIT code-emission metadata to prefetch fresh code pages
    #: into L2/LLC and pre-install their I-TLB entries
    jit_code_prefetch: bool = False
    #: transform PC-indexed predictor state when JITed code moves
    jit_state_transform: bool = False
    #: LLC slice placement: "hashed" (address-hash, the baseline) or
    #: "balanced" (§VIII "data placement strategies in LLC slices to
    #: reduce contention at the NoC")
    llc_placement: str = "hashed"

    # --- capacity scaling (simulation methodology) --------------------
    # Trace-sampled runs of 10^5-10^6 instructions cannot re-touch
    # megabytes of lines, so capacity effects at full-size L2/LLC would
    # be invisible.  Following standard sampled-simulation practice, all
    # capacity structures are scaled down proportionally (and workload
    # footprints are sized in the same regime), preserving miss *ratios*
    # and orderings between suites.  Table II's absolute sizes above are
    # the modeled hardware; these divisors give the simulated capacity.
    capacity_scale: int = 8            # L2 / LLC / DSB divisor
    l1_scale: int = 4                  # L1 / TLB / BTB / bp-table divisor

    def sim_cache(self, cfg: "CacheConfig", small: bool = False) \
            -> "CacheConfig":
        """The scaled-down configuration actually instantiated."""
        scale = self.l1_scale if small else self.capacity_scale
        return CacheConfig(max(cfg.line_size * cfg.ways,
                               cfg.size_bytes // scale),
                           cfg.ways, cfg.line_size, cfg.latency)

    def sim_tlb(self, cfg: "TlbConfig") -> "TlbConfig":
        entries = max(4, cfg.entries // self.l1_scale)
        ways = cfg.ways if (cfg.ways and cfg.ways <= entries) else None
        return TlbConfig(entries, ways)

    @property
    def sim_btb_entries(self) -> int:
        return max(64, self.btb_entries // self.l1_scale)

    @property
    def sim_bp_table_bits(self) -> int:
        """Predictor tables are NOT capacity-scaled: branch working sets
        (static branch counts) are already run-scale, so shrinking the
        table would add aliasing noise real machines don't have."""
        return self.bp_table_bits

    @property
    def sim_dsb_entries(self) -> int:
        return max(8, self.dsb_entries // self.l1_scale)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (f"{self.name} ({self.isa}, {self.physical_cores}C/"
                f"{self.logical_cores}T, {self.nominal_freq_hz / 1e9:.1f}-"
                f"{self.max_freq_hz / 1e9:.1f} GHz, "
                f"LLC {self.llc.size_bytes >> 20} MiB)")


def xeon_e5_2620v4() -> MachineConfig:
    """Intel Xeon E5-2620 v4 (Broadwell-EP): the Fig 2 baseline machine."""
    return MachineConfig(
        name="Intel Xeon E5-2620 v4",
        isa="x86-64",
        physical_cores=16, logical_cores=32,
        nominal_freq_hz=2.1e9, max_freq_hz=3.0e9,
        l1d=CacheConfig(32 * 1024, 8, latency=4),
        l1i=CacheConfig(32 * 1024, 8, latency=4),
        l2=CacheConfig(256 * 1024, 8, latency=12),
        llc=CacheConfig(40 * 1024 * 1024, 20, latency=50),   # 20MiB x 2
        itlb=TlbConfig(128, 8), dtlb=TlbConfig(64, 4),
        stlb=TlbConfig(1024, 8),
        pipeline_width=4, dsb_entries=1024, rob_entries=192,
        mispredict_penalty=17,
        dram_latency=210,
        llc_slices=8,
    )


def i9_9980xe() -> MachineConfig:
    """Intel Core i9-9980XE (Skylake-X): the paper's main machine."""
    return MachineConfig(
        name="Intel Core i9-9980XE",
        isa="x86-64",
        physical_cores=18, logical_cores=18,
        nominal_freq_hz=3.0e9, max_freq_hz=4.5e9,
        l1d=CacheConfig(32 * 1024, 8, latency=4),
        l1i=CacheConfig(32 * 1024, 8, latency=4),
        l2=CacheConfig(1024 * 1024, 16, latency=14),
        llc=CacheConfig(24 * 1024 * 1024, 12, latency=44),   # 24.8MiB rounded
        itlb=TlbConfig(128, 8), dtlb=TlbConfig(64, 4),
        stlb=TlbConfig(1536, 12),
        pipeline_width=4, dsb_entries=1536, rob_entries=224,
        mispredict_penalty=16,
        dram_latency=190,
        llc_slices=18,
    )


def arm_server() -> MachineConfig:
    """32-core AArch64 server (§III-B, §V-D).

    The §III-B description: 4-wide decode, 6-issue, 2 LSUs, 128-entry loop
    buffer, 180-entry ROB, dedicated I-/D-TLBs with a 2K-entry secondary
    TLB.  First-level TLBs on comparable Arm server cores (e.g. Neoverse
    class) are small (32-48 entries), which together with the immature
    .NET-on-Arm code path (``code_bloat``) yields the order-of-magnitude
    I-TLB MPKI gap of §V-D.
    """
    return MachineConfig(
        name="Arm server (AArch64)",
        isa="aarch64",
        physical_cores=32, logical_cores=32,
        nominal_freq_hz=1.6e9, max_freq_hz=2.2e9,
        l1d=CacheConfig(32 * 1024, 8, latency=4),
        l1i=CacheConfig(32 * 1024, 8, latency=4),
        l2=CacheConfig(256 * 1024, 8, latency=13),
        llc=CacheConfig(32 * 1024 * 1024, 16, latency=60),
        itlb=TlbConfig(32, None), dtlb=TlbConfig(32, None),
        stlb=TlbConfig(2048, 8),
        page_walk_latency=48,
        pipeline_width=4, decode_width=4, dsb_uops_per_cycle=4,
        dsb_entries=128,               # loop buffer, not a uop cache
        rob_entries=180,
        mispredict_penalty=14,
        bp_table_bits=13, btb_entries=2048,
        dram_latency=230,
        llc_slices=8,
        code_bloat=3.0,
        dynamic_instr_bloat=1.25,
    )


_PRESETS = {
    "xeon": xeon_e5_2620v4,
    "i9": i9_9980xe,
    "arm": arm_server,
}


def get_machine(key: str) -> MachineConfig:
    """Look up a preset by short key: ``"xeon"``, ``"i9"`` or ``"arm"``."""
    try:
        return _PRESETS[key]()
    except KeyError:
        raise KeyError(f"unknown machine {key!r}; choose from "
                       f"{sorted(_PRESETS)}") from None


def scaled(machine: MachineConfig, **overrides) -> MachineConfig:
    """Return a copy of ``machine`` with fields replaced (for ablations)."""
    return replace(machine, **overrides)
