"""TLB models: first-level I/D TLBs plus a shared second-level (S)TLB.

The paper's frontend findings (high I-TLB MPKI for .NET/ASP.NET, an order
of magnitude worse on Arm) come straight out of these structures: JITed
code pages occupy fresh virtual pages, so every newly emitted method costs
compulsory I-TLB misses, and small TLBs (the Arm preset) thrash on the
large CLR code footprint.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TlbStats:
    accesses: int = 0
    misses: int = 0          # misses in this TLB (may hit in the STLB)
    walks: int = 0           # misses that required a page walk

    def snapshot(self) -> "TlbStats":
        return TlbStats(self.accesses, self.misses, self.walks)


class Tlb:
    """Set-associative TLB with LRU replacement.

    ``entries`` is the total number of entries; ``ways`` the associativity
    (``ways == entries`` gives a fully-associative TLB, common for first
    level I-TLBs).
    """

    __slots__ = ("name", "entries", "ways", "page_shift", "n_sets",
                 "_index_mask", "_sets", "stats", "_resident")

    def __init__(self, name: str, entries: int, ways: int | None = None,
                 page_size: int = 4096) -> None:
        if ways is None or ways >= entries:
            ways = entries
        if entries % ways != 0:
            raise ValueError(f"{name}: entries {entries} not divisible by "
                             f"ways {ways}")
        n_sets = entries // ways
        if n_sets & (n_sets - 1):
            raise ValueError(f"{name}: set count {n_sets} must be a power "
                             f"of two")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.page_shift = page_size.bit_length() - 1
        self.n_sets = n_sets
        self._index_mask = n_sets - 1
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]
        # All resident VPNs (a VPN maps to exactly one set): O(1) miss
        # detection, which matters for the wide fully-associative first
        # levels where a miss otherwise scans every entry.
        self._resident: set[int] = set()
        self.stats = TlbStats()

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns ``True`` on hit."""
        self.stats.accesses += 1
        vpn = addr >> self.page_shift
        if vpn not in self._resident:
            self.stats.misses += 1
            return False
        bucket = self._sets[vpn & self._index_mask]
        if bucket[-1] != vpn:              # resident but not at MRU
            for i in range(len(bucket) - 2, -1, -1):
                if bucket[i] == vpn:
                    bucket.append(bucket.pop(i))
                    break
        return True

    def fill(self, addr: int) -> None:
        vpn = addr >> self.page_shift
        if vpn in self._resident:
            return
        bucket = self._sets[vpn & self._index_mask]
        if len(bucket) >= self.ways:
            self._resident.discard(bucket.pop(0))
        self._resident.add(vpn)
        bucket.append(vpn)

    # -- vectorized batch probes (engine="vector") ---------------------
    def resident_vpns(self):
        """Sorted ``int64`` array of all resident VPNs (non-mutating)."""
        import numpy as np
        n = len(self._resident)
        out = np.fromiter(self._resident, dtype=np.int64, count=n)
        out.sort()
        return out

    def batch_contains(self, vpns):
        """Boolean hit mask for an ``int64`` array of VPNs.

        Pure membership against the residency snapshot: no stats, no
        LRU movement — the vectorized twin of the ``in self._resident``
        check inside :meth:`access`.
        """
        import numpy as np
        resident = self.resident_vpns()
        if not len(resident):
            return np.zeros(len(vpns), dtype=bool)
        idx = np.minimum(np.searchsorted(resident, vpns),
                         len(resident) - 1)
        return resident[idx] == vpns

    def reset_stats(self) -> None:
        self.stats = TlbStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tlb({self.name}, {self.entries} entries, {self.ways}-way)"


#: Translation service levels returned by :meth:`TlbHierarchy.access`.
TLB_L1 = 1
TLB_STLB = 2
TLB_WALK = 3


class TlbHierarchy:
    """A first-level TLB backed by an optional shared second-level TLB.

    Returns where the translation was found; a ``TLB_WALK`` result means a
    page walk was needed, whose latency the pipeline charges to the
    frontend (I-side) or backend (D-side).
    """

    def __init__(self, l1: Tlb, stlb: Tlb | None = None) -> None:
        self.l1 = l1
        self.stlb = stlb

    def access(self, addr: int) -> int:
        if self.l1.access(addr):
            return TLB_L1
        if self.stlb is not None and self.stlb.access(addr):
            self.l1.fill(addr)
            return TLB_STLB
        self.l1.stats.walks += 1
        if self.stlb is not None:
            self.stlb.fill(addr)
        self.l1.fill(addr)
        return TLB_WALK
