"""Branch prediction: a gshare direction predictor plus a set-associative BTB.

Both structures are indexed by program-counter bits, which is exactly why
the paper finds JIT compilation so punishing: when the CLR emits (or
re-tiers) a method at a fresh virtual address, all the predictor state the
old address had accumulated becomes unreachable and the new PCs start from
cold counters.  We model that faithfully — there is no "JIT penalty knob";
the mispredicts after a JIT event fall out of the PC indexing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchStats:
    branches: int = 0
    mispredicts: int = 0          # direction mispredicts
    btb_misses: int = 0           # taken branches with no BTB target (re-steers)
    taken: int = 0

    def snapshot(self) -> "BranchStats":
        return BranchStats(self.branches, self.mispredicts,
                           self.btb_misses, self.taken)

    @property
    def mpki_numerator(self) -> int:
        return self.mispredicts


class GsharePredictor:
    """Global-history XOR PC indexed table of 2-bit saturating counters.

    ``history_bits=0`` degenerates to a per-PC bimodal predictor — the
    default machine configuration, because the synthetic workloads draw
    branch outcomes i.i.d. per branch (real cross-branch history
    correlation does not exist in generated code, so feeding noise history
    into the index would only destroy PC locality).  The JIT cold-start
    phenomenon the paper studies needs only PC indexing, which bimodal
    preserves.
    """

    __slots__ = ("bits", "_mask", "_table", "_history", "history_bits")

    def __init__(self, table_bits: int = 14, history_bits: int = 0) -> None:
        self.bits = table_bits
        self._mask = (1 << table_bits) - 1
        # dict-backed table: only touched entries materialize, which keeps
        # construction O(1) and lookup fast for the footprints we simulate.
        self._table: dict[int, int] = {}
        self._history = 0
        self.history_bits = history_bits

    def predict(self, pc: int) -> bool:
        idx = ((pc >> 2) ^ self._history) & self._mask
        return self._table.get(idx, 1) >= 2     # weakly-not-taken default

    def update(self, pc: int, taken: bool) -> None:
        idx = ((pc >> 2) ^ self._history) & self._mask
        ctr = self._table.get(idx, 1)
        if taken:
            if ctr < 3:
                self._table[idx] = ctr + 1
        else:
            if ctr > 0:
                self._table[idx] = ctr - 1
        if self.history_bits:
            self._history = ((self._history << 1) | int(taken)) \
                & ((1 << self.history_bits) - 1)


class Btb:
    """Branch Target Buffer: set-associative, PC-indexed, LRU."""

    __slots__ = ("entries", "ways", "n_sets", "_index_mask", "_sets")

    def __init__(self, entries: int = 4096, ways: int = 4) -> None:
        n_sets = entries // ways
        if n_sets & (n_sets - 1):
            raise ValueError("BTB set count must be a power of two")
        self.entries = entries
        self.ways = ways
        self.n_sets = n_sets
        self._index_mask = n_sets - 1
        self._sets: list[list[list[int]]] = [[] for _ in range(n_sets)]

    def lookup(self, pc: int) -> int | None:
        key = pc >> 2
        bucket = self._sets[key & self._index_mask]
        for i, entry in enumerate(bucket):
            if entry[0] == key:
                if i != len(bucket) - 1:
                    bucket.append(bucket.pop(i))
                return entry[1]
        return None

    def insert(self, pc: int, target: int) -> None:
        key = pc >> 2
        bucket = self._sets[key & self._index_mask]
        for entry in bucket:
            if entry[0] == key:
                entry[1] = target
                return
        if len(bucket) >= self.ways:
            bucket.pop(0)
        bucket.append([key, target])


class LoopPredictor:
    """Trip-count predictor for backward (loop) branches.

    Modern frontends (Intel's loop stream detector + TAGE-L) predict loop
    exits once the trip count has been observed; without this, every loop
    would charge one mispredict per execution, drowning the real
    control-flow signal.  State per loop PC: [learned_trips, current_run,
    confidence].
    """

    __slots__ = ("_table", "max_entries")

    def __init__(self, max_entries: int = 256) -> None:
        self._table: dict[int, list[int]] = {}
        self.max_entries = max_entries

    def predict(self, pc: int) -> bool | None:
        """Prediction for a tracked loop PC, or None if not confident."""
        entry = self._table.get(pc)
        if entry is None or entry[2] < 2:
            return None
        return entry[1] + 1 < entry[0]      # taken unless this is the exit

    def allocate(self, pc: int) -> None:
        """Start tracking a PC (first backward-taken observation)."""
        if pc in self._table:
            return
        if len(self._table) >= self.max_entries:
            self._table.pop(next(iter(self._table)))
        self._table[pc] = [0, 1, 0]

    def update(self, pc: int, taken: bool) -> None:
        """Feed an outcome for a *tracked* PC (any direction).

        A PC's dynamic stream can mix loop backedges with its block's
        final (possibly forward) branch; the trip count only learns when
        runs of taken end in a not-taken, and loses confidence otherwise.
        """
        entry = self._table.get(pc)
        if entry is None:
            return
        if taken:
            entry[1] += 1
            if entry[0] and entry[1] > entry[0] + 1:
                entry[2] = 0            # run overshot the learned trips
            return
        trips = entry[1] + 1
        if entry[0] == trips:
            entry[2] = min(entry[2] + 1, 3)
        else:
            entry[0] = trips
            entry[2] = 0
        entry[1] = 0


class BranchUnit:
    """Combined direction predictor + loop predictor + BTB.

    :meth:`resolve` is called once per executed branch and returns
    ``(direction_mispredict, btb_miss)`` so the pipeline can charge bad
    speculation and frontend re-steer stalls respectively.
    """

    def __init__(self, table_bits: int = 14, history_bits: int = 0,
                 btb_entries: int = 4096, btb_ways: int = 4) -> None:
        self.predictor = GsharePredictor(table_bits, history_bits)
        self.loop_predictor = LoopPredictor()
        self.btb = Btb(btb_entries, btb_ways)
        self.stats = BranchStats()

    def resolve(self, pc: int, taken: bool, target: int) -> tuple[bool, bool]:
        st = self.stats
        st.branches += 1
        lp = self.loop_predictor
        predicted = lp.predict(pc)
        if taken and target <= pc:           # backward-taken: loop backedge
            lp.allocate(pc)
        lp.update(pc, taken)
        if predicted is None:
            predicted = self.predictor.predict(pc)
        self.predictor.update(pc, taken)
        mispredict = predicted != taken
        btb_miss = False
        if taken:
            st.taken += 1
            known_target = self.btb.lookup(pc)
            if known_target is None:
                btb_miss = True
                st.btb_misses += 1
            elif known_target != target:
                # Indirect branch whose target changed: counts as a re-steer.
                btb_miss = True
                st.btb_misses += 1
            self.btb.insert(pc, target)
        if mispredict:
            st.mispredicts += 1
        return mispredict, btb_miss

    def reset_stats(self) -> None:
        self.stats = BranchStats()

    # -- vectorized batch resolve (engine="vector") --------------------
    def resolve_batch(self, pcs, targets, takens) -> tuple[int, int, int]:
        """Resolve a whole run of branches; returns (taken, mis, btbm).

        Branch state (gshare table/history, loop predictor, BTB) is
        disjoint from every cache/TLB structure, so the vector engine
        resolves a segment's branches in one pre-pass.  Per-branch
        semantics replicate :meth:`resolve` exactly (same table updates
        in the same order); stats are bulk-updated here and the caller
        charges the three branch stall buckets from the returned counts.
        ``takens`` entries are 0/1 ints straight from the trace column.
        """
        lp_table = self.loop_predictor._table
        lp_max = self.loop_predictor.max_entries
        gs = self.predictor
        gs_table = gs._table
        gs_mask = gs._mask
        gs_hist_bits = gs.history_bits
        gs_hist_mask = (1 << gs_hist_bits) - 1 if gs_hist_bits else 0
        gs_history = gs._history
        btb_sets = self.btb._sets
        btb_mask = self.btb._index_mask
        btb_ways = self.btb.ways
        n_tk = 0
        n_mis = 0
        n_btbm = 0
        for i in range(len(pcs)):
            pc = pcs[i]
            target = targets[i]
            taken = takens[i]
            entry = lp_table.get(pc)
            if entry is None:
                predicted = None
                if taken and target <= pc:
                    if len(lp_table) >= lp_max:
                        lp_table.pop(next(iter(lp_table)))
                    entry = [0, 1, 0]
                    lp_table[pc] = entry
            else:
                if entry[2] < 2:
                    predicted = None
                else:
                    predicted = entry[1] + 1 < entry[0]
            if entry is not None:
                if taken:
                    entry[1] += 1
                    if entry[0] and entry[1] > entry[0] + 1:
                        entry[2] = 0
                else:
                    trips = entry[1] + 1
                    if entry[0] == trips:
                        entry[2] = min(entry[2] + 1, 3)
                    else:
                        entry[0] = trips
                        entry[2] = 0
                    entry[1] = 0
            key = pc >> 2
            idx = (key ^ gs_history) & gs_mask
            ctr = gs_table.get(idx, 1)
            if predicted is None:
                predicted = ctr >= 2
            if taken:
                if ctr < 3:
                    gs_table[idx] = ctr + 1
            elif ctr > 0:
                gs_table[idx] = ctr - 1
            if gs_hist_bits:
                gs_history = ((gs_history << 1) | taken) & gs_hist_mask
            if taken:
                n_tk += 1
                bb = btb_sets[key & btb_mask]
                if bb and bb[-1][0] == key:
                    entry = bb[-1]
                else:
                    entry = None
                    for j in range(len(bb) - 2, -1, -1):
                        if bb[j][0] == key:
                            entry = bb.pop(j)
                            bb.append(entry)
                            break
                if entry is None:
                    n_btbm += 1
                    if len(bb) >= btb_ways:
                        bb.pop(0)
                    bb.append([key, target])
                else:
                    if entry[1] != target:
                        n_btbm += 1
                        entry[1] = target
            if predicted != taken:
                n_mis += 1
        gs._history = gs_history
        st = self.stats
        st.branches += len(pcs)
        st.taken += n_tk
        st.mispredicts += n_mis
        st.btb_misses += n_btbm
        return n_tk, n_mis, n_btbm

    # -- §VIII extension: software-driven state transformation ---------
    def transform_range(self, old_base: int, new_base: int,
                        size: int) -> int:
        """Remap PC-indexed predictor state from a moved code range.

        Implements the paper's proposal: "meta-data can also be used to
        either preserve or transform the microarchitectural state of the
        machine (such as branch predictor tables) related to these pages
        to reduce the effect of cold starts."  Returns the number of
        entries moved.
        """
        delta = new_base - old_base
        if delta == 0 or size <= 0:
            return 0
        moved = 0
        # Direction counters (PC-indexed when history_bits == 0).
        table = self.predictor._table
        mask = self.predictor._mask
        for off in range(0, size, 4):
            old_idx = ((old_base + off) >> 2) & mask
            ctr = table.pop(old_idx, None)
            if ctr is not None:
                table[((new_base + off) >> 2) & mask] = ctr
                moved += 1
        # BTB entries: rewrite tags, and shift targets inside the range.
        old_lo, old_hi = old_base, old_base + size
        relocated: list[tuple[int, int]] = []
        for bucket in self.btb._sets:
            for i in range(len(bucket) - 1, -1, -1):
                pc = bucket[i][0] << 2
                if old_lo <= pc < old_hi:
                    target = bucket[i][1]
                    if old_lo <= target < old_hi:
                        target += delta
                    relocated.append((pc + delta, target))
                    bucket.pop(i)
                    moved += 1
        for pc, target in relocated:
            self.btb.insert(pc, target)
        # Loop-predictor trip counts.
        lp = self.loop_predictor._table
        for pc in [p for p in lp if old_lo <= p < old_hi]:
            lp[pc + delta] = lp.pop(pc)
            moved += 1
        return moved
