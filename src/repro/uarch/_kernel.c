/* Native consume kernel for the vector engine (engine="vector").
 *
 * One C translation of the legacy per-op semantics of
 * repro.uarch.pipeline.Core (_op_block/_op_branch/_op_mem and the
 * structures they drive).  The Python glue (repro.uarch.native) owns
 * every byte of state as numpy arrays; this kernel only mutates them in
 * place, so there is no C-side allocation and no lifetime to manage.
 *
 * Bit-identity contract: every floating-point accumulation reproduces
 * the exact IEEE-754 double expression tree the legacy Python path
 * evaluates, in the same op order.  Derived constants (overlap factors,
 * walk costs, hidden-latency products) are computed once in *Python*
 * with the legacy expressions and passed in as doubles, which is
 * equivalent because the legacy path recomputes the same deterministic
 * value per op.  Compile with -ffp-contract=off (no FMA contraction)
 * and never with -ffast-math.
 */

#include <stdint.h>
#include <string.h>

typedef int64_t i64;
typedef uint64_t u64;
typedef double f64;

/* ---- op kinds (repro.trace) ---- */
#define OP_BLOCK 0
#define OP_BRANCH 1
#define OP_LOAD 2
#define OP_STORE 3
#define OP_EVENT 4

/* ---- pointer-table layout (mirrors repro.uarch.native._PTR) ---- */
enum {
    P_KINDS, P_A0, P_A1, P_A2, P_EVIDX, P_EVCYC,
    P_SI, P_SD, P_PD, P_PI,
    P_CACHE0,                       /* 5 x (tags, flags, cnt, stats) */
    P_TLB0 = P_CACHE0 + 20,        /* 3 x (vpns, cnt, stats) */
    P_GS_VAL = P_TLB0 + 9, P_GS_PRES,
    P_LP_SLAB, P_LP_ORDER, P_LP_HKEY, P_LP_HVAL,
    P_BTB_KEY, P_BTB_TGT, P_BTB_CNT,
    P_SPF_PAGE, P_SPF_LINE,
    P_DRAM_ROWS, P_DRAM_ST,
    P_VM_HASH, P_VM_LOG,
    P_LLC_EPOCH,                    /* [epoch_total, slice_0..slice_{n-1}] */
    P_N
};

/* ---- scalar int slots (mirrors native._SI) ---- */
enum {
    SI_INSTR, SI_KINSTR, SI_BRANCHES, SI_LOADS, SI_STORES,
    SI_DTLB_LWALK, SI_DTLB_SWALK, SI_ITLB_WALK,
    SI_LAST_CODE_LINE, SI_LAST_CODE_PAGE, SI_LAST_DATA_VPN, SI_KMODE,
    SI_GS_HIST,
    SI_BU_BR, SI_BU_MIS, SI_BU_BTBM, SI_BU_TK,
    SI_L1IPF_ISS, SI_L1IPF_PB, SI_L1DPF_ISS, SI_L1DPF_PB,
    SI_L2PF_ISS, SI_L2PF_PB,
    SI_L1IPF_LAST, SI_L1DPF_LAST,
    SI_VM_MIN, SI_VM_MAJ, SI_VM_MAPPED, SI_VM_SEQ, SI_VM_CNT, SI_VM_LOGN,
    SI_LP_CNT, SI_LP_TOMB, SI_SPF_CNT,
    SI_RAND0,                       /* 5 cache LCG states */
    SI_EV_N = SI_RAND0 + 5, SI_NEXT_POS,
    SI_OPS_RETIRED,                 /* live progress: ops retired so far */
    SI_OPK0,                        /* 5 per-op-kind retirement counters */
    SI_N = SI_OPK0 + 5
};

/* ---- scalar double slots ---- */
enum { SD_IDEAL, SD_UOPS, SD_ST0,
       SD_NEXT_HOOK = SD_ST0 + 17,  /* +inf when no cycle hook armed */
       SD_N };

/* ---- stall bucket order (pipeline.ALL_BUCKETS) ---- */
enum {
    ST_FE_ICACHE, ST_FE_ITLB, ST_FE_RESTEER, ST_FE_MS, ST_FE_IFAULT,
    ST_FE_DSB_BW, ST_FE_MITE_BW, ST_BAD_SPEC,
    ST_BE_L1, ST_BE_L2, ST_BE_L3, ST_BE_DRAM, ST_BE_DTLB, ST_BE_STORE,
    ST_BE_DFAULT, ST_BE_DIV, ST_BE_PORTS
};

/* ---- constant doubles (native._PD) ---- */
enum {
    PD_UOP_FACTOR, PD_INV_WIDTH, PD_PORTS_COEFF, PD_DIV_FRAC, PD_DIV_PEN,
    PD_MICRO_FRAC, PD_MS_PEN, PD_MITE_COEFF,
    PD_ITLB_WALK, PD_DTLB_WALK,
    PD_ICACHE_L2, PD_ICACHE_L3, PD_ICACHE_DRAM,
    PD_L1_HIT, PD_BE_L2, PD_BE_L3, PD_BE_DRAM,
    PD_STORE_PEN, PD_MIS_PEN, PD_RESTEER_PEN, PD_TAKEN_BUBBLE,
    PD_PF_DRAM, PD_MINOR_FAULT, PD_MAJOR_FAULT, PD_PORTS_ON,
    PD_WIDTH,                       /* uops / width is a true division */
    PD_HOOK_INTERVAL,
    PD_N
};

/* ---- constant ints (native._PI) ---- */
enum {
    PI_HIST_BITS, PI_HIST_MASK, PI_GS_MASK,
    PI_BTB_MASK, PI_BTB_WAYS,
    PI_LP_MAX, PI_LP_HMASK, PI_VM_HMASK, PI_MAJOR_PERIOD,
    PI_DRAM_BANKS, PI_DRAM_ROWSZ, PI_SPF_MAX, PI_SPF_DEG,
    PI_LLC_SLICES,                  /* 0 = private LLC (no counting) */
    PI_CACHE0,                      /* 5 x (mask, ways, lru, evict_head) */
    PI_TLB0 = PI_CACHE0 + 20,      /* 3 x (mask, ways) */
    PI_N = PI_TLB0 + 6
};

/* cache order: l1i, l1d, l2, llc, dsb */
enum { C_L1I, C_L1D, C_L2, C_LLC, C_DSB };
/* tlb order: itlb_l1, dtlb_l1, stlb */
enum { T_ITLB, T_DTLB, T_STLB };

/* cache stats order: CacheStats fields */
enum { CS_ACC, CS_MISS, CS_DACC, CS_DMISS, CS_PFF, CS_USEFUL, CS_USELESS,
       CS_EVICT, CS_WB };
/* tlb stats: accesses, misses, walks */
/* dram stats: reads, writes, row_hits, row_misses, bytes_r, bytes_w */

typedef struct {
    i64 *tags; uint8_t *flags; int32_t *cnt; i64 *st;
    i64 mask; int32_t ways; int32_t lru; int32_t evict_head;
    i64 *rand_state;
} CacheS;

typedef struct {
    i64 *vpns; int32_t *cnt; i64 *st;
    i64 mask; int32_t ways;
} TlbS;

typedef struct {
    i64 *kinds, *a0, *a1, *a2;
    i64 *evidx; f64 *evcyc;
    i64 *si; f64 *sd; const f64 *pd; i64 *pi;
    CacheS c[5];
    TlbS t[3];
    int8_t *gs_val; uint8_t *gs_pres;
    i64 *lp_slab;                   /* [256][4]: pc, learned, run, conf */
    int32_t *lp_order;
    i64 *lp_hkey; int32_t *lp_hval;
    i64 *btb_key, *btb_tgt; int32_t *btb_cnt;
    i64 *spf_page, *spf_line;
    i64 *dram_rows, *dram_st;
    i64 *vm_hash, *vm_log;
    i64 *llc_epoch;                 /* shared-LLC epoch + slice counters */
    i64 llc_slices;                 /* 0 disables counting */
    f64 *stalls;                    /* &sd[SD_ST0] */
} Sim;

/* ================= caches ================= */

static int cache_access(CacheS *c, i64 addr, int w) {
    c->st[CS_ACC]++; c->st[CS_DACC]++;
    i64 line = addr >> 6;
    i64 base = (line & c->mask) * c->ways;
    int32_t n = c->cnt[line & c->mask];
    int j = -1;
    for (int k = n - 1; k >= 0; k--)
        if (c->tags[base + k] == line) { j = k; break; }
    if (j < 0) { c->st[CS_MISS]++; c->st[CS_DMISS]++; return 0; }
    uint8_t f = c->flags[base + j];
    if (c->lru && j != n - 1) {
        memmove(&c->tags[base + j], &c->tags[base + j + 1],
                (size_t)(n - 1 - j) * sizeof(i64));
        memmove(&c->flags[base + j], &c->flags[base + j + 1],
                (size_t)(n - 1 - j));
        c->tags[base + n - 1] = line;
        j = n - 1;
    }
    if ((f & 1) && !(f & 2)) c->st[CS_USEFUL]++;
    f |= 2;
    if (w) f |= 4;
    c->flags[base + j] = f;
    return 1;
}

static void cache_fill(CacheS *c, i64 addr, int pf, int dirty) {
    i64 line = addr >> 6;
    i64 si = line & c->mask;
    i64 base = si * c->ways;
    int32_t n = c->cnt[si];
    for (int k = 0; k < n; k++)
        if (c->tags[base + k] == line) {
            uint8_t f = c->flags[base + k];
            if (!pf) f |= 2;
            if (dirty) f |= 4;
            if (c->lru && k != n - 1) {
                memmove(&c->tags[base + k], &c->tags[base + k + 1],
                        (size_t)(n - 1 - k) * sizeof(i64));
                memmove(&c->flags[base + k], &c->flags[base + k + 1],
                        (size_t)(n - 1 - k));
                c->tags[base + n - 1] = line;
                c->flags[base + n - 1] = f;
            } else {
                c->flags[base + k] = f;
            }
            return;
        }
    if (pf) c->st[CS_PFF]++;
    if (n >= c->ways) {
        int vi = 0;
        if (!c->evict_head) {
            *c->rand_state = (*c->rand_state * 1103515245 + 12345)
                & 0x7FFFFFFF;
            vi = (int)(*c->rand_state % n);
        }
        uint8_t vf = c->flags[base + vi];
        c->st[CS_EVICT]++;
        if ((vf & 1) && !(vf & 2)) c->st[CS_USELESS]++;
        if (vf & 4) c->st[CS_WB]++;
        memmove(&c->tags[base + vi], &c->tags[base + vi + 1],
                (size_t)(n - 1 - vi) * sizeof(i64));
        memmove(&c->flags[base + vi], &c->flags[base + vi + 1],
                (size_t)(n - 1 - vi));
        n--;
    }
    c->tags[base + n] = line;
    c->flags[base + n] = (uint8_t)((pf ? 1 : 2) | (dirty ? 4 : 0));
    c->cnt[si] = n + 1;
}

static int cache_contains(const CacheS *c, i64 addr) {
    i64 line = addr >> 6;
    i64 base = (line & c->mask) * c->ways;
    int32_t n = c->cnt[line & c->mask];
    for (int k = 0; k < n; k++)
        if (c->tags[base + k] == line) return 1;
    return 0;
}

/* ================= TLBs ================= */

static int tlb_access(TlbS *t, i64 vpn) {
    t->st[0]++;
    i64 base = (vpn & t->mask) * t->ways;
    int32_t n = t->cnt[vpn & t->mask];
    int j = -1;
    for (int k = n - 1; k >= 0; k--)
        if (t->vpns[base + k] == vpn) { j = k; break; }
    if (j < 0) { t->st[1]++; return 0; }
    if (j != n - 1) {
        memmove(&t->vpns[base + j], &t->vpns[base + j + 1],
                (size_t)(n - 1 - j) * sizeof(i64));
        t->vpns[base + n - 1] = vpn;
    }
    return 1;
}

static void tlb_fill(TlbS *t, i64 vpn) {
    i64 si = vpn & t->mask;
    i64 base = si * t->ways;
    int32_t n = t->cnt[si];
    for (int k = 0; k < n; k++)
        if (t->vpns[base + k] == vpn) return;
    if (n >= t->ways) {
        memmove(&t->vpns[base], &t->vpns[base + 1],
                (size_t)(n - 1) * sizeof(i64));
        n--;
    }
    t->vpns[base + n] = vpn;
    t->cnt[si] = n + 1;
}

/* returns 1 = L1, 2 = STLB, 3 = walk (tlb.TLB_*) */
static int thier_access(Sim *s, TlbS *l1, i64 vpn) {
    if (tlb_access(l1, vpn)) return 1;
    if (tlb_access(&s->t[T_STLB], vpn)) { tlb_fill(l1, vpn); return 2; }
    l1->st[2]++;
    tlb_fill(&s->t[T_STLB], vpn);
    tlb_fill(l1, vpn);
    return 3;
}

/* ================= DRAM / VM ================= */

static void dram_access(Sim *s, i64 addr, int w) {
    i64 rg = addr / s->pi[PI_DRAM_ROWSZ];
    i64 bank = rg % s->pi[PI_DRAM_BANKS];
    i64 row = rg / s->pi[PI_DRAM_BANKS];
    if (s->dram_rows[bank] == row) s->dram_st[2]++;
    else { s->dram_st[3]++; s->dram_rows[bank] = row; }
    if (w) { s->dram_st[1]++; s->dram_st[5] += 64; }
    else { s->dram_st[0]++; s->dram_st[4] += 64; }
}

static u64 vm_mix(i64 vpn) {
    u64 h = (u64)vpn * 0x9E3779B97F4A7C15ull;
    return h ^ (h >> 29);
}

/* 0 = mapped already, 1 = minor fault, 2 = major fault */
static int vm_touch(Sim *s, i64 vpn) {
    i64 mask = s->pi[PI_VM_HMASK];
    u64 h = vm_mix(vpn) & (u64)mask;
    while (s->vm_hash[h] != -1) {
        if (s->vm_hash[h] == vpn) return 0;
        h = (h + 1) & (u64)mask;
    }
    s->vm_hash[h] = vpn;
    s->si[SI_VM_CNT]++;
    s->vm_log[s->si[SI_VM_LOGN]++] = vpn;
    s->si[SI_VM_MAPPED]++;
    s->si[SI_VM_SEQ]++;
    if (s->pi[PI_MAJOR_PERIOD] > 0
            && s->si[SI_VM_SEQ] % s->pi[PI_MAJOR_PERIOD] == 0) {
        s->si[SI_VM_MAJ]++;
        return 2;
    }
    s->si[SI_VM_MIN]++;
    return 1;
}

void repro_vm_build(i64 *keys, i64 n, i64 *hash, i64 mask) {
    for (i64 i = 0; i <= mask; i++) hash[i] = -1;
    for (i64 i = 0; i < n; i++) {
        u64 h = vm_mix(keys[i]) & (u64)mask;
        while (hash[h] != -1) {
            if (hash[h] == keys[i]) break;
            h = (h + 1) & (u64)mask;
        }
        hash[h] = keys[i];
    }
}

void repro_vm_rehash(i64 *old_hash, i64 old_mask, i64 *hash, i64 mask) {
    for (i64 i = 0; i <= mask; i++) hash[i] = -1;
    for (i64 i = 0; i <= old_mask; i++) {
        i64 v = old_hash[i];
        if (v == -1) continue;
        u64 h = vm_mix(v) & (u64)mask;
        while (hash[h] != -1) h = (h + 1) & (u64)mask;
        hash[h] = v;
    }
}

/* ================= prefetchers / hierarchy walk ================= */

static void prefetch_backing(Sim *s, i64 addr) {
    if (cache_contains(&s->c[C_LLC], addr)) return;
    cache_fill(&s->c[C_LLC], addr, 1, 0);
    dram_access(s, addr, 0);
    s->stalls[ST_BE_DRAM] += s->pd[PD_PF_DRAM];
}

static void l1_prefetch_backing(Sim *s, i64 addr) {
    if (cache_contains(&s->c[C_L2], addr)) return;
    prefetch_backing(s, addr);
    cache_fill(&s->c[C_L2], addr, 1, 0);
}

static void spf_observe(Sim *s, i64 addr) {
    i64 line = addr >> 6;
    i64 page = addr >> 12;
    int n = (int)s->si[SI_SPF_CNT];
    int idx = -1;
    for (int k = 0; k < n; k++)
        if (s->spf_page[k] == page) { idx = k; break; }
    if (idx >= 0) {
        i64 last = s->spf_line[idx];
        if (line == last + 1 || line == last + 2) {
            i64 page_last_line = (((page + 1) << 12) - 1) >> 6;
            for (int d = 1; d <= (int)s->pi[PI_SPF_DEG]; d++) {
                i64 pl = line + d;
                if (pl > page_last_line) { s->si[SI_L2PF_PB]++; break; }
                i64 pa = pl << 6;
                if (!cache_contains(&s->c[C_L2], pa)) {
                    prefetch_backing(s, pa);
                    cache_fill(&s->c[C_L2], pa, 1, 0);
                    s->si[SI_L2PF_ISS]++;
                }
            }
        }
        s->spf_line[idx] = line;
    } else {
        if (n >= (int)s->pi[PI_SPF_MAX]) {
            memmove(&s->spf_page[0], &s->spf_page[1],
                    (size_t)(n - 1) * sizeof(i64));
            memmove(&s->spf_line[0], &s->spf_line[1],
                    (size_t)(n - 1) * sizeof(i64));
            n--;
        }
        s->spf_page[n] = page;
        s->spf_line[n] = line;
        s->si[SI_SPF_CNT] = n + 1;
    }
}

/* NextLinePrefetcher.observe; which = 1 -> L1d (backing fetch), 0 -> L1i */
static void nlp_observe(Sim *s, i64 addr, int which) {
    CacheS *target = which ? &s->c[C_L1D] : &s->c[C_L1I];
    i64 *last = which ? &s->si[SI_L1DPF_LAST] : &s->si[SI_L1IPF_LAST];
    i64 line = addr >> 6;
    if (line == *last) return;
    *last = line;
    i64 nl = line + 1;
    if (((nl << 6) >> 12) != (addr >> 12)) {
        s->si[which ? SI_L1DPF_PB : SI_L1IPF_PB]++;
        return;
    }
    i64 na = nl << 6;
    if (!cache_contains(target, na)) {
        if (which) l1_prefetch_backing(s, na);
        cache_fill(target, na, 1, 0);
        s->si[which ? SI_L1DPF_ISS : SI_L1IPF_ISS]++;
    }
}

/* L2 -> LLC -> DRAM walk with fills; returns service level (2/3/4). */
static int fill_from_l2(Sim *s, i64 addr, int is_code, int w) {
    if (cache_access(&s->c[C_L2], addr, w)) return 2;
    if (!is_code) spf_observe(s, addr);
    if (s->llc_slices) {
        /* SharedLlc.access: count the epoch total and the slice-hashed
         * bucket before the underlying cache lookup.  Demand only —
         * prefetch_backing bypasses this, exactly like the Python model
         * (prefetches use llc.contains/fill directly). */
        s->llc_epoch[0]++;
        s->llc_epoch[1 + (i64)((u64)(addr >> 6) % (u64)s->llc_slices)]++;
    }
    if (cache_access(&s->c[C_LLC], addr, w)) {
        cache_fill(&s->c[C_L2], addr, 0, 0);
        return 3;
    }
    cache_fill(&s->c[C_LLC], addr, 0, 0);
    cache_fill(&s->c[C_L2], addr, 0, 0);
    dram_access(s, addr, w);
    return 4;
}

/* ================= loop-predictor hash ================= */
/* open addressing, EMPTY = -1, TOMBSTONE = -2 */

static int lp_find(Sim *s, i64 pc) {
    i64 mask = s->pi[PI_LP_HMASK];
    u64 h = vm_mix(pc) & (u64)mask;
    while (s->lp_hkey[h] != -1) {
        if (s->lp_hkey[h] == pc) return (int)s->lp_hval[h];
        h = (h + 1) & (u64)mask;
    }
    return -1;
}

static void lp_hash_insert(Sim *s, i64 pc, int32_t slot) {
    i64 mask = s->pi[PI_LP_HMASK];
    u64 h = vm_mix(pc) & (u64)mask;
    while (s->lp_hkey[h] != -1 && s->lp_hkey[h] != -2)
        h = (h + 1) & (u64)mask;
    if (s->lp_hkey[h] == -2) s->si[SI_LP_TOMB]--;
    s->lp_hkey[h] = pc;
    s->lp_hval[h] = slot;
}

static void lp_hash_delete(Sim *s, i64 pc) {
    i64 mask = s->pi[PI_LP_HMASK];
    u64 h = vm_mix(pc) & (u64)mask;
    while (s->lp_hkey[h] != -1) {
        if (s->lp_hkey[h] == pc) {
            s->lp_hkey[h] = -2;
            s->si[SI_LP_TOMB]++;
            return;
        }
        h = (h + 1) & (u64)mask;
    }
}

static void lp_hash_rebuild(Sim *s) {
    i64 mask = s->pi[PI_LP_HMASK];
    for (i64 i = 0; i <= mask; i++) s->lp_hkey[i] = -1;
    s->si[SI_LP_TOMB] = 0;
    for (int k = 0; k < (int)s->si[SI_LP_CNT]; k++) {
        int32_t slot = s->lp_order[k];
        lp_hash_insert(s, s->lp_slab[(i64)slot * 4], slot);
    }
}

/* ================= branch unit ================= */

static void resolve_branch(Sim *s, i64 pc, i64 target, int taken,
                           int *mispredict, int *btb_miss) {
    s->si[SI_BU_BR]++;
    int slot = lp_find(s, pc);
    int has_pred = 0, predicted = 0;
    i64 *e = slot >= 0 ? &s->lp_slab[(i64)slot * 4] : 0;
    if (e && e[3] >= 2) {
        has_pred = 1;
        predicted = e[2] + 1 < e[1];
    }
    if (taken && target <= pc && !e) {
        /* LoopPredictor.allocate */
        int n = (int)s->si[SI_LP_CNT];
        int32_t free_slot;
        if (n >= (int)s->pi[PI_LP_MAX]) {
            free_slot = s->lp_order[0];
            lp_hash_delete(s, s->lp_slab[(i64)free_slot * 4]);
            memmove(&s->lp_order[0], &s->lp_order[1],
                    (size_t)(n - 1) * sizeof(int32_t));
            n--;
        } else {
            free_slot = (int32_t)n;
        }
        e = &s->lp_slab[(i64)free_slot * 4];
        e[0] = pc; e[1] = 0; e[2] = 1; e[3] = 0;
        s->lp_order[n] = free_slot;
        s->si[SI_LP_CNT] = n + 1;
        lp_hash_insert(s, pc, free_slot);
        if (s->si[SI_LP_TOMB] * 4 > s->pi[PI_LP_HMASK] + 1)
            lp_hash_rebuild(s);
    }
    if (e) {
        /* LoopPredictor.update */
        if (taken) {
            e[2]++;
            if (e[1] && e[2] > e[1] + 1) e[3] = 0;
        } else {
            i64 trips = e[2] + 1;
            if (e[1] == trips) {
                e[3] = e[3] + 1 < 3 ? e[3] + 1 : 3;
            } else {
                e[1] = trips;
                e[3] = 0;
            }
            e[2] = 0;
        }
    }
    /* gshare */
    i64 key = pc >> 2;
    i64 idx = (key ^ s->si[SI_GS_HIST]) & s->pi[PI_GS_MASK];
    int ctr = s->gs_pres[idx] ? s->gs_val[idx] : 1;
    if (!has_pred) predicted = ctr >= 2;
    if (taken) {
        if (ctr < 3) { s->gs_val[idx] = (int8_t)(ctr + 1); s->gs_pres[idx] = 1; }
    } else if (ctr > 0) {
        s->gs_val[idx] = (int8_t)(ctr - 1);
        s->gs_pres[idx] = 1;
    }
    if (s->pi[PI_HIST_BITS])
        s->si[SI_GS_HIST] = ((s->si[SI_GS_HIST] << 1) | (i64)(taken != 0))
            & s->pi[PI_HIST_MASK];
    *mispredict = predicted != taken;
    *btb_miss = 0;
    if (taken) {
        s->si[SI_BU_TK]++;
        i64 base = (key & s->pi[PI_BTB_MASK]) * s->pi[PI_BTB_WAYS];
        int32_t n = s->btb_cnt[key & s->pi[PI_BTB_MASK]];
        int j = -1;
        for (int k = n - 1; k >= 0; k--)
            if (s->btb_key[base + k] == key) { j = k; break; }
        if (j < 0) {
            *btb_miss = 1;
            s->si[SI_BU_BTBM]++;
            if (n >= (int)s->pi[PI_BTB_WAYS]) {
                memmove(&s->btb_key[base], &s->btb_key[base + 1],
                        (size_t)(n - 1) * sizeof(i64));
                memmove(&s->btb_tgt[base], &s->btb_tgt[base + 1],
                        (size_t)(n - 1) * sizeof(i64));
                n--;
            }
            s->btb_key[base + n] = key;
            s->btb_tgt[base + n] = target;
            s->btb_cnt[key & s->pi[PI_BTB_MASK]] = n + 1;
        } else {
            i64 known = s->btb_tgt[base + j];
            if (j != n - 1) {                  /* lookup promotes to MRU */
                memmove(&s->btb_key[base + j], &s->btb_key[base + j + 1],
                        (size_t)(n - 1 - j) * sizeof(i64));
                memmove(&s->btb_tgt[base + j], &s->btb_tgt[base + j + 1],
                        (size_t)(n - 1 - j) * sizeof(i64));
                s->btb_key[base + n - 1] = key;
                s->btb_tgt[base + n - 1] = known;
                j = n - 1;
            }
            if (known != target) {
                *btb_miss = 1;
                s->si[SI_BU_BTBM]++;
            }
            s->btb_tgt[base + j] = target;     /* insert updates in place */
        }
    }
    if (*mispredict) s->si[SI_BU_MIS]++;
}

/* ================= per-op bodies ================= */

static void op_fetch(Sim *s, i64 pc, i64 n_bytes, f64 uops) {
    i64 first_line = pc >> 6;
    i64 last_line = (pc + n_bytes - 1) >> 6;
    i64 dsb_hit_lines = 0;
    i64 n_lines = last_line - first_line + 1;
    for (i64 line = first_line; line <= last_line; line++) {
        if (line == s->si[SI_LAST_CODE_LINE]) { dsb_hit_lines++; continue; }
        s->si[SI_LAST_CODE_LINE] = line;
        i64 addr = line << 6;
        i64 page = addr >> 12;
        if (page != s->si[SI_LAST_CODE_PAGE]) {
            s->si[SI_LAST_CODE_PAGE] = page;
            if (thier_access(s, &s->t[T_ITLB], page) == 3) {
                s->si[SI_ITLB_WALK]++;
                s->stalls[ST_FE_ITLB] += s->pd[PD_ITLB_WALK];
                int fault = vm_touch(s, page);
                if (fault)
                    s->stalls[ST_FE_IFAULT] += fault == 2
                        ? s->pd[PD_MAJOR_FAULT] : s->pd[PD_MINOR_FAULT];
            }
        }
        if (cache_access(&s->c[C_L1I], addr, 0)) {
            nlp_observe(s, addr, 0);
        } else {
            int level = fill_from_l2(s, addr, 1, 0);
            cache_fill(&s->c[C_L1I], addr, 0, 0);
            s->stalls[ST_FE_ICACHE] += level == 2 ? s->pd[PD_ICACHE_L2]
                : level == 3 ? s->pd[PD_ICACHE_L3] : s->pd[PD_ICACHE_DRAM];
            nlp_observe(s, addr, 0);
        }
        if (cache_access(&s->c[C_DSB], addr, 0)) dsb_hit_lines++;
        else cache_fill(&s->c[C_DSB], addr, 0, 0);
    }
    if (n_lines && dsb_hit_lines < n_lines) {
        f64 mite_frac = 1.0 - (f64)dsb_hit_lines / (f64)n_lines;
        f64 deficit = (uops * mite_frac) * s->pd[PD_MITE_COEFF];
        if (deficit > 0) s->stalls[ST_FE_MITE_BW] += deficit;
    }
}

static void op_mem(Sim *s, i64 addr, int w) {
    s->si[SI_INSTR]++;
    if (s->si[SI_KMODE]) s->si[SI_KINSTR]++;
    s->sd[SD_UOPS] += 1.0;
    s->sd[SD_IDEAL] += s->pd[PD_INV_WIDTH];
    if (w) s->si[SI_STORES]++; else s->si[SI_LOADS]++;
    i64 vpn = addr >> 12;
    if (vpn != s->si[SI_LAST_DATA_VPN]) {
        s->si[SI_LAST_DATA_VPN] = vpn;
        if (thier_access(s, &s->t[T_DTLB], vpn) == 3) {
            if (w) s->si[SI_DTLB_SWALK]++; else s->si[SI_DTLB_LWALK]++;
            s->stalls[ST_BE_DTLB] += s->pd[PD_DTLB_WALK];
            int fault = vm_touch(s, vpn);
            if (fault)
                s->stalls[ST_BE_DFAULT] += fault == 2
                    ? s->pd[PD_MAJOR_FAULT] : s->pd[PD_MINOR_FAULT];
        }
    }
    if (cache_access(&s->c[C_L1D], addr, w)) {
        nlp_observe(s, addr, 1);
        if (!w) s->stalls[ST_BE_L1] += s->pd[PD_L1_HIT];
        return;
    }
    int level = fill_from_l2(s, addr, 0, w);
    cache_fill(&s->c[C_L1D], addr, 0, w);
    nlp_observe(s, addr, 1);
    if (w) {
        if (level >= 3) s->stalls[ST_BE_STORE] += s->pd[PD_STORE_PEN];
        return;
    }
    if (level == 2) s->stalls[ST_BE_L2] += s->pd[PD_BE_L2];
    else if (level == 3) s->stalls[ST_BE_L3] += s->pd[PD_BE_L3];
    else s->stalls[ST_BE_DRAM] += s->pd[PD_BE_DRAM];
}

/* ================= main loop ================= */
/* returns: 0 chunk done, 1 limit hit, 2 vm hash near-full (paused),
 *          3 cycle-hook due (trampoline to Python), -1 bad */

i64 repro_sim_run(void **p, i64 start, i64 n_ops, i64 limit) {
    Sim sim, *s = &sim;
    s->kinds = (i64 *)p[P_KINDS];
    s->a0 = (i64 *)p[P_A0];
    s->a1 = (i64 *)p[P_A1];
    s->a2 = (i64 *)p[P_A2];
    s->evidx = (i64 *)p[P_EVIDX];
    s->evcyc = (f64 *)p[P_EVCYC];
    s->si = (i64 *)p[P_SI];
    s->sd = (f64 *)p[P_SD];
    s->pd = (const f64 *)p[P_PD];
    s->pi = (i64 *)p[P_PI];
    for (int k = 0; k < 5; k++) {
        CacheS *c = &s->c[k];
        c->tags = (i64 *)p[P_CACHE0 + k * 4];
        c->flags = (uint8_t *)p[P_CACHE0 + k * 4 + 1];
        c->cnt = (int32_t *)p[P_CACHE0 + k * 4 + 2];
        c->st = (i64 *)p[P_CACHE0 + k * 4 + 3];
        c->mask = s->pi[PI_CACHE0 + k * 4];
        c->ways = (int32_t)s->pi[PI_CACHE0 + k * 4 + 1];
        c->lru = (int32_t)s->pi[PI_CACHE0 + k * 4 + 2];
        c->evict_head = (int32_t)s->pi[PI_CACHE0 + k * 4 + 3];
        c->rand_state = &s->si[SI_RAND0 + k];
    }
    for (int k = 0; k < 3; k++) {
        TlbS *t = &s->t[k];
        t->vpns = (i64 *)p[P_TLB0 + k * 3];
        t->cnt = (int32_t *)p[P_TLB0 + k * 3 + 1];
        t->st = (i64 *)p[P_TLB0 + k * 3 + 2];
        t->mask = s->pi[PI_TLB0 + k * 2];
        t->ways = (int32_t)s->pi[PI_TLB0 + k * 2 + 1];
    }
    s->gs_val = (int8_t *)p[P_GS_VAL];
    s->gs_pres = (uint8_t *)p[P_GS_PRES];
    s->lp_slab = (i64 *)p[P_LP_SLAB];
    s->lp_order = (int32_t *)p[P_LP_ORDER];
    s->lp_hkey = (i64 *)p[P_LP_HKEY];
    s->lp_hval = (int32_t *)p[P_LP_HVAL];
    s->btb_key = (i64 *)p[P_BTB_KEY];
    s->btb_tgt = (i64 *)p[P_BTB_TGT];
    s->btb_cnt = (int32_t *)p[P_BTB_CNT];
    s->spf_page = (i64 *)p[P_SPF_PAGE];
    s->spf_line = (i64 *)p[P_SPF_LINE];
    s->dram_rows = (i64 *)p[P_DRAM_ROWS];
    s->dram_st = (i64 *)p[P_DRAM_ST];
    s->vm_hash = (i64 *)p[P_VM_HASH];
    s->vm_log = (i64 *)p[P_VM_LOG];
    s->llc_epoch = (i64 *)p[P_LLC_EPOCH];
    s->llc_slices = s->pi[PI_LLC_SLICES];
    s->stalls = &s->sd[SD_ST0];
    s->si[SI_EV_N] = 0;
    int hook_on = s->sd[SD_NEXT_HOOK] < __builtin_inf();

    i64 vm_cap = s->pi[PI_VM_HMASK] + 1;
    for (i64 i = start; i < n_ops; i++) {
        i64 kind = s->kinds[i];
        /* keep the vm hash under half load; pause for a Python-side
         * grow before any op that could overflow the safety margin */
        i64 vm_margin = 4;
        if (kind == OP_BLOCK)
            vm_margin += ((s->a2[i] & 0xFFFFFFFFll) >> 6) + 2;
        if ((s->si[SI_VM_CNT] + vm_margin) * 2 > vm_cap) {
            s->si[SI_NEXT_POS] = i;
            return 2;
        }
        if (kind < OP_BLOCK || kind > OP_EVENT) {
            s->si[SI_NEXT_POS] = i;
            return -1;
        }
        /* Retirement telemetry: counted before dispatch so every exit
         * that advances past op i (DONE, LIMIT, HOOK — all at i+1) has
         * it on the books, while pauses that re-enter AT i (VM_FULL)
         * and the bad-kind bail above never double- or under-count.
         * Two aligned int64 increments; a Python thread may read them
         * mid-run (the ctypes call releases the GIL) for live
         * progress — the read is tear-free on every target ABI. */
        s->si[SI_OPS_RETIRED]++;
        s->si[SI_OPK0 + kind]++;
        if (kind == OP_LOAD) {
            op_mem(s, s->a0[i], 0);
        } else if (kind == OP_STORE) {
            op_mem(s, s->a0[i], 1);
        } else if (kind == OP_BLOCK) {
            i64 packed = s->a2[i];
            i64 n_instr = s->a1[i];
            i64 kern = packed >> 32;
            s->si[SI_KMODE] = kern;
            s->si[SI_INSTR] += n_instr;
            if (kern) s->si[SI_KINSTR] += n_instr;
            f64 uops = (f64)n_instr * s->pd[PD_UOP_FACTOR];
            s->sd[SD_UOPS] += uops;
            s->sd[SD_IDEAL] += uops / s->pd[PD_WIDTH];
            op_fetch(s, s->a0[i], packed & 0xFFFFFFFFll, uops);
            if (s->pd[PD_PORTS_ON] != 0.0)
                s->stalls[ST_BE_PORTS] += uops * s->pd[PD_PORTS_COEFF];
            if (s->pd[PD_DIV_FRAC] != 0.0)
                s->stalls[ST_BE_DIV] +=
                    ((f64)n_instr * s->pd[PD_DIV_FRAC]) * s->pd[PD_DIV_PEN];
            if (s->pd[PD_MICRO_FRAC] != 0.0)
                s->stalls[ST_FE_MS] +=
                    ((f64)n_instr * s->pd[PD_MICRO_FRAC]) * s->pd[PD_MS_PEN];
            if (hook_on) {
                /* _op_block's hook threshold: ideal + the ordered sum
                 * of all 17 stall buckets (dict order), checked after
                 * the block's stall accounting and BEFORE the limit —
                 * a single `if`, exactly like the legacy path.  The
                 * Python trampoline writes state back, runs the hook,
                 * then re-enters from NEXT_POS. */
                f64 acc = 0.0;
                for (int k = 0; k < 17; k++) acc += s->stalls[k];
                if (s->sd[SD_IDEAL] + acc >= s->sd[SD_NEXT_HOOK]) {
                    s->sd[SD_NEXT_HOOK] += s->pd[PD_HOOK_INTERVAL];
                    s->si[SI_NEXT_POS] = i + 1;
                    return 3;
                }
            }
            if (limit >= 0 && s->si[SI_INSTR] >= limit) {
                s->si[SI_NEXT_POS] = i + 1;
                return 1;
            }
        } else if (kind == OP_BRANCH) {
            s->si[SI_INSTR]++;
            if (s->si[SI_KMODE]) s->si[SI_KINSTR]++;
            s->si[SI_BRANCHES]++;
            s->sd[SD_UOPS] += 1.0;
            s->sd[SD_IDEAL] += s->pd[PD_INV_WIDTH];
            int mis, btbm;
            resolve_branch(s, s->a0[i], s->a1[i], s->a2[i] != 0,
                           &mis, &btbm);
            if (mis) s->stalls[ST_BAD_SPEC] += s->pd[PD_MIS_PEN];
            if (btbm) s->stalls[ST_FE_RESTEER] += s->pd[PD_RESTEER_PEN];
            if (s->a2[i] != 0)
                s->stalls[ST_FE_DSB_BW] += s->pd[PD_TAKEN_BUBBLE];
        } else if (kind == OP_EVENT) {
            /* JIT-metadata side effects are delegated away by the glue
             * (machines with the SVIII flags never reach this kernel);
             * the only observable here is the hook log with the exact
             * cycle stamp Python's `sum(stalls.values())` would give. */
            f64 acc = 0.0;
            for (int k = 0; k < 17; k++) acc += s->stalls[k];
            i64 n = s->si[SI_EV_N];
            s->evidx[n] = i;
            s->evcyc[n] = s->sd[SD_IDEAL] + acc;
            s->si[SI_EV_N] = n + 1;
        }
    }
    s->si[SI_NEXT_POS] = n_ops;
    return 0;
}

/* expression parity helper: 1.0 - hit/total as Python evaluates it */
f64 repro_abi_version(void) { return 9.0; }
