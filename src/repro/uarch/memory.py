"""DRAM model: open-row banks, bandwidth accounting, page (row) miss rate.

Feeds three Table I metrics: memory read bandwidth (ID 15), memory write
bandwidth (ID 16) and memory page miss rate (ID 17).  "Page" here means a
DRAM row buffer, matching the ``perf`` uncore events the paper collected.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> "DramStats":
        return DramStats(self.reads, self.writes, self.row_hits,
                         self.row_misses, self.bytes_read, self.bytes_written)

    @property
    def page_miss_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_misses / total if total else 0.0


class DramModel:
    """Bank/row-buffer DRAM model.

    Addresses are interleaved across ``n_banks`` at ``row_size`` granularity.
    Each access checks whether the bank's open row matches; a row miss costs
    ``row_miss_extra`` additional cycles on top of ``base_latency``.
    """

    __slots__ = ("n_banks", "row_size", "base_latency", "row_miss_extra",
                 "line_size", "_open_rows", "stats")

    def __init__(self, n_banks: int = 16, row_size: int = 8192,
                 base_latency: int = 180, row_miss_extra: int = 90,
                 line_size: int = 64) -> None:
        self.n_banks = n_banks
        self.row_size = row_size
        self.base_latency = base_latency
        self.row_miss_extra = row_miss_extra
        self.line_size = line_size
        self._open_rows: dict[int, int] = {}
        self.stats = DramStats()

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access one cache line; returns the access latency in cycles."""
        st = self.stats
        row_global = addr // self.row_size
        bank = row_global % self.n_banks
        row = row_global // self.n_banks
        latency = self.base_latency
        if self._open_rows.get(bank) == row:
            st.row_hits += 1
        else:
            st.row_misses += 1
            self._open_rows[bank] = row
            latency += self.row_miss_extra
        if is_write:
            st.writes += 1
            st.bytes_written += self.line_size
        else:
            st.reads += 1
            st.bytes_read += self.line_size
        return latency

    def reset_stats(self) -> None:
        self.stats = DramStats()
