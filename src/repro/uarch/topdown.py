"""Top-Down hierarchy reporting (our `toplev` equivalent).

Builds the Yasin-style tree from a :class:`repro.uarch.pipeline.Core`'s
slot accounting:

* Level 1: Retiring / Bad Speculation / Frontend Bound / Backend Bound
  (Fig 9);
* Level 2+: Frontend latency vs bandwidth with I-cache / I-TLB /
  branch-resteer / MS-switch and DSB / MITE leaves; Backend memory vs core
  with L1/L2/L3/DRAM/store bound and divider / ports leaves (Fig 10).

All values are fractions of total pipeline slots (``width * cycles``) and
sum to 1.0 at each level by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch import pipeline as pl


@dataclass(frozen=True)
class TopDownProfile:
    """A complete Top-Down breakdown; every field is a slot fraction."""

    retiring: float
    bad_speculation: float
    frontend_bound: float
    backend_bound: float

    frontend_latency: float
    frontend_bandwidth: float
    fe_icache: float
    fe_itlb: float
    fe_branch_resteers: float
    fe_ms_switches: float
    fe_ifault: float
    fe_dsb: float
    fe_mite: float

    backend_memory: float
    backend_core: float
    be_l1_bound: float
    be_l2_bound: float
    be_l3_bound: float
    be_dram_bound: float
    be_dtlb_bound: float
    be_store_bound: float
    be_dfault: float
    be_divider: float
    be_ports: float

    slots: float
    cycles: float

    def level1(self) -> dict[str, float]:
        return {
            "retiring": self.retiring,
            "bad_speculation": self.bad_speculation,
            "frontend_bound": self.frontend_bound,
            "backend_bound": self.backend_bound,
        }

    def frontend_breakdown(self) -> dict[str, float]:
        """Distribution of FE-bound slots across leaves (sums to 1)."""
        total = self.frontend_bound or 1.0
        return {
            "icache_misses": self.fe_icache / total,
            "itlb_misses": self.fe_itlb / total,
            "branch_resteers": self.fe_branch_resteers / total,
            "ms_switches": self.fe_ms_switches / total,
            "code_page_faults": self.fe_ifault / total,
            "dsb_bandwidth": self.fe_dsb / total,
            "mite_bandwidth": self.fe_mite / total,
        }

    def backend_breakdown(self) -> dict[str, float]:
        """Distribution of BE-bound slots across leaves (sums to 1)."""
        total = self.backend_bound or 1.0
        return {
            "l1_bound": self.be_l1_bound / total,
            "l2_bound": self.be_l2_bound / total,
            "l3_bound": self.be_l3_bound / total,
            "dram_bound": self.be_dram_bound / total,
            "dtlb_bound": self.be_dtlb_bound / total,
            "store_bound": self.be_store_bound / total,
            "data_page_faults": self.be_dfault / total,
            "divider": self.be_divider / total,
            "ports_utilization": self.be_ports / total,
        }

    @property
    def l3_bound_of_slots(self) -> float:
        """L3-bound stalls as a fraction of all slots (Fig 12's metric)."""
        return self.be_l3_bound


def profile_core(core: "pl.Core") -> TopDownProfile:
    """Compute the Top-Down profile from a core's accounting state."""
    width = core.machine.pipeline_width
    cycles = core.cycles
    slots = max(width * cycles, 1e-9)
    s = core.stalls

    def frac(*buckets: str) -> float:
        return sum(s[b] for b in buckets) * width / slots

    retiring = core.counts.uops / slots
    bad_spec = frac(pl.BAD_SPEC)
    fe_lat = frac(*pl.FRONTEND_LATENCY)
    fe_bw = frac(*pl.FRONTEND_BANDWIDTH)
    be_mem = frac(*pl.BACKEND_MEMORY)
    be_core = frac(*pl.BACKEND_CORE)
    return TopDownProfile(
        retiring=retiring,
        bad_speculation=bad_spec,
        frontend_bound=fe_lat + fe_bw,
        backend_bound=be_mem + be_core,
        frontend_latency=fe_lat,
        frontend_bandwidth=fe_bw,
        fe_icache=frac(pl.FE_ICACHE),
        fe_itlb=frac(pl.FE_ITLB),
        fe_branch_resteers=frac(pl.FE_RESTEER),
        fe_ms_switches=frac(pl.FE_MS),
        fe_ifault=frac(pl.FE_IFAULT),
        fe_dsb=frac(pl.FE_DSB_BW),
        fe_mite=frac(pl.FE_MITE_BW),
        backend_memory=be_mem,
        backend_core=be_core,
        be_l1_bound=frac(pl.BE_L1),
        be_l2_bound=frac(pl.BE_L2),
        be_l3_bound=frac(pl.BE_L3),
        be_dram_bound=frac(pl.BE_DRAM),
        be_dtlb_bound=frac(pl.BE_DTLB),
        be_store_bound=frac(pl.BE_STORE),
        be_dfault=frac(pl.BE_DFAULT),
        be_divider=frac(pl.BE_DIV),
        be_ports=frac(pl.BE_PORTS),
        slots=slots,
        cycles=cycles,
    )
