"""Set-associative cache model with LRU replacement.

The cache is the basic building block of the memory hierarchy used by the
pipeline model (:mod:`repro.uarch.pipeline`).  It is trace-driven: callers
invoke :meth:`Cache.access` per memory reference (or per fetch packet for
instruction caches) and the cache records hit/miss statistics that later
surface as the MPKI metrics of Table I of the paper.

Lines inserted by the prefetcher are tagged so that *useless prefetches*
(prefetched lines evicted before their first demand hit) can be counted —
the paper uses this counter in the JIT correlation study (Fig 13a).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Aggregate statistics for one cache instance."""

    accesses: int = 0
    misses: int = 0
    demand_accesses: int = 0
    demand_misses: int = 0
    prefetch_fills: int = 0
    useful_prefetches: int = 0
    useless_prefetches: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate in [0, 1]; zero when the cache was never used."""
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def snapshot(self) -> "CacheStats":
        """Return a copy; used by the sampling layer to compute deltas."""
        return CacheStats(
            accesses=self.accesses,
            misses=self.misses,
            demand_accesses=self.demand_accesses,
            demand_misses=self.demand_misses,
            prefetch_fills=self.prefetch_fills,
            useful_prefetches=self.useful_prefetches,
            useless_prefetches=self.useless_prefetches,
            evictions=self.evictions,
            writebacks=self.writebacks,
        )


class ReplacementPolicy:
    """Supported replacement policies (see :class:`Cache`)."""

    LRU = "lru"          # true LRU (move-to-MRU on hit)
    FIFO = "fifo"        # insertion order, hits don't promote
    RANDOM = "random"    # uniform random victim (deterministic LCG)
    ALL = (LRU, FIFO, RANDOM)


class Cache:
    """A single level of set-associative cache.

    Parameters
    ----------
    name:
        Human-readable identifier (``"L1d"``, ``"LLC"``, ...).
    size_bytes:
        Total capacity.  Must be ``ways * line_size * n_sets`` with a
        power-of-two number of sets.
    line_size:
        Line size in bytes (64 for every machine in Table II).
    ways:
        Associativity.
    policy:
        Replacement policy (:class:`ReplacementPolicy`); true LRU by
        default, matching the Table II machines closely enough for
        characterization (the ablation bench quantifies the difference).
    """

    __slots__ = ("name", "size_bytes", "line_size", "ways", "n_sets",
                 "_index_mask", "_line_shift", "_sets", "stats",
                 "policy", "_lru", "_evict_head", "_rand_state", "_lines")

    def __init__(self, name: str, size_bytes: int, line_size: int = 64,
                 ways: int = 8,
                 policy: str = ReplacementPolicy.LRU) -> None:
        if size_bytes % (line_size * ways) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"line_size*ways={line_size * ways}")
        n_sets = size_bytes // (line_size * ways)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{name}: number of sets {n_sets} must be a "
                             f"power of two")
        if policy not in ReplacementPolicy.ALL:
            raise ValueError(f"{name}: unknown replacement policy "
                             f"{policy!r}")
        self.name = name
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.ways = ways
        self.n_sets = n_sets
        self._index_mask = n_sets - 1
        self._line_shift = line_size.bit_length() - 1
        # Each set is a list of [tag, is_prefetch, was_used, dirty].
        # Under LRU the list is ordered LRU -> MRU; under FIFO it is
        # insertion-ordered.  Associativities are small (<= 20 in the
        # Table II machines) so linear scans beat fancier structures.
        self._sets: list[list[list]] = [[] for _ in range(n_sets)]
        self.stats = CacheStats()
        self.policy = policy
        self._lru = policy == ReplacementPolicy.LRU
        self._evict_head = policy != ReplacementPolicy.RANDOM
        self._rand_state = 0x9E3779B9      # deterministic LCG for RANDOM
        # All resident line numbers.  A line maps to exactly one set, so
        # membership here mirrors membership in `_sets`; it gives O(1)
        # miss detection / `contains` / `occupancy` while the per-set
        # lists keep carrying the replacement order and line flags.
        self._lines: set[int] = set()

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool = False) -> bool:
        """Demand access.  Returns ``True`` on hit.

        On a miss the line is *not* filled automatically — the hierarchy
        decides where fills happen (see :class:`CacheHierarchy`), which keeps
        inclusive/exclusive policy decisions out of this class.
        """
        st = self.stats
        st.accesses += 1
        st.demand_accesses += 1
        line = addr >> self._line_shift
        if line not in self._lines:
            st.misses += 1
            st.demand_misses += 1
            return False
        bucket = self._sets[line & self._index_mask]
        entry = bucket[-1]
        if entry[0] != line:               # resident but not at MRU
            for i in range(len(bucket) - 2, -1, -1):
                if bucket[i][0] == line:
                    entry = bucket[i]
                    if self._lru:
                        bucket.append(bucket.pop(i))
                    break
        if entry[1] and not entry[2]:
            st.useful_prefetches += 1
        entry[2] = True
        if is_write:
            entry[3] = True
        return True

    def _victim_index(self, bucket) -> int:
        if self.policy == ReplacementPolicy.RANDOM:
            self._rand_state = (self._rand_state * 1103515245
                                + 12345) & 0x7FFFFFFF
            return self._rand_state % len(bucket)
        return 0                            # LRU and FIFO both evict head

    def fill(self, addr: int, prefetch: bool = False,
             dirty: bool = False) -> None:
        """Insert the line containing ``addr``."""
        line = addr >> self._line_shift
        lines = self._lines
        bucket = self._sets[line & self._index_mask]
        if line in lines:                 # already present (e.g. prefetch race)
            for i, entry in enumerate(bucket):
                if entry[0] == line:
                    entry[2] = entry[2] or not prefetch
                    entry[3] = entry[3] or dirty
                    if self._lru and i != len(bucket) - 1:
                        bucket.append(bucket.pop(i))
                    return
        st = self.stats
        if prefetch:
            st.prefetch_fills += 1
        if len(bucket) >= self.ways:
            victim = bucket.pop(0) if self._evict_head \
                else bucket.pop(self._victim_index(bucket))
            lines.discard(victim[0])
            st.evictions += 1
            if victim[1] and not victim[2]:
                st.useless_prefetches += 1
            if victim[3]:
                st.writebacks += 1
        lines.add(line)
        bucket.append([line, prefetch, not prefetch, dirty])

    def contains(self, addr: int) -> bool:
        """Non-destructive lookup (does not update LRU or stats)."""
        return (addr >> self._line_shift) in self._lines

    # -- vectorized batch probes (engine="vector") ---------------------
    def resident_lines(self):
        """Sorted ``int64`` array of all resident line numbers.

        A snapshot for vectorized membership probes: the vector engine
        tests whole op columns against it with ``searchsorted`` instead
        of one ``in`` check per op.  Non-mutating.
        """
        import numpy as np
        n = len(self._lines)
        out = np.fromiter(self._lines, dtype=np.int64, count=n)
        out.sort()
        return out

    def batch_contains(self, lines) -> "object":
        """Boolean hit mask for an ``int64`` array of line numbers.

        Pure membership (no stats, no LRU movement) against the current
        residency snapshot — the vectorized twin of :meth:`contains`.
        """
        import numpy as np
        resident = self.resident_lines()
        if not len(resident):
            return np.zeros(len(lines), dtype=bool)
        idx = np.minimum(np.searchsorted(resident, lines),
                         len(resident) - 1)
        return resident[idx] == lines

    def invalidate_range(self, start: int, length: int) -> int:
        """Invalidate all lines overlapping ``[start, start+length)``.

        Returns the number of lines invalidated.  Used when code pages are
        re-JITed in place (the ablation path) and by tests.
        """
        first = start >> self._line_shift
        last = (start + max(length, 1) - 1) >> self._line_shift
        invalidated = 0
        lines = self._lines
        for line in range(first, last + 1):
            if line not in lines:
                continue
            bucket = self._sets[line & self._index_mask]
            for i, entry in enumerate(bucket):
                if entry[0] == line:
                    bucket.pop(i)
                    lines.discard(line)
                    invalidated += 1
                    break
        return invalidated

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident.

        Maintained incrementally by :meth:`fill` / :meth:`invalidate_range`
        (the ``_lines`` membership set) — the sampler polls this per
        bucket, and summing thousands of sets per poll showed up in
        profiles.
        """
        return len(self._lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Cache({self.name}, {self.size_bytes >> 10}KiB, "
                f"{self.ways}-way, {self.n_sets} sets)")


#: Service levels returned by :meth:`CacheHierarchy.access`.
L1 = 1
L2 = 2
L3 = 3
DRAM = 4


class CacheHierarchy:
    """Three-level cache hierarchy (L1 -> L2 -> LLC -> DRAM).

    ``access`` walks the levels, fills on the way back (allocate-on-miss at
    every level, a reasonable model of the mostly-inclusive Intel hierarchies
    in Table II) and returns the level that serviced the request.
    """

    def __init__(self, l1: Cache, l2: Cache, llc: Cache | None) -> None:
        self.l1 = l1
        self.l2 = l2
        self.llc = llc

    def access(self, addr: int, is_write: bool = False) -> int:
        if self.l1.access(addr, is_write):
            return L1
        if self.l2.access(addr, is_write):
            self.l1.fill(addr, dirty=is_write)
            return L2
        if self.llc is not None:
            if self.llc.access(addr, is_write):
                self.l2.fill(addr)
                self.l1.fill(addr, dirty=is_write)
                return L3
            self.llc.fill(addr)
        self.l2.fill(addr)
        self.l1.fill(addr, dirty=is_write)
        return DRAM if self.llc is not None else L3

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()
        if self.llc is not None:
            self.llc.reset_stats()
