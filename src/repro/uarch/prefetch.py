"""Hardware prefetcher models.

The stream prefetcher tracks sequential line streams and prefetches a few
lines ahead — but, like the hardware the paper measured, it **never crosses
a 4 KiB page boundary**.  That single constraint produces the paper's JIT
finding: freshly JITed code pages always cold-miss because "traditional
prefetchers do not issue requests beyond the page boundary" (§VII-A1),
while *within* a JITed page data is prefetchable (the observed negative
correlation between JIT events and useless prefetches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cache import Cache


@dataclass
class PrefetchStats:
    issued: int = 0
    page_bounded: int = 0        # prefetches suppressed at a page boundary

    def snapshot(self) -> "PrefetchStats":
        return PrefetchStats(self.issued, self.page_bounded)


class StreamPrefetcher:
    """Next-N-lines stream prefetcher bounded by the page size.

    A stream is recognised after two consecutive-line accesses in the same
    direction; once trained, each access prefetches ``degree`` lines ahead
    into ``target`` (tagged as prefetched so the cache can attribute
    useful/useless prefetches).
    """

    __slots__ = ("target", "degree", "line_size", "page_size", "_streams",
                 "max_streams", "stats", "fetch")

    def __init__(self, target: Cache, degree: int = 2,
                 page_size: int = 4096, max_streams: int = 16,
                 fetch=None) -> None:
        self.target = target
        self.degree = degree
        self.line_size = target.line_size
        self.page_size = page_size
        # stream table: page -> last line index within page
        self._streams: dict[int, int] = {}
        self.max_streams = max_streams
        self.stats = PrefetchStats()
        #: optional backing-fetch callback: called with the prefetch
        #: address before filling, so lower levels (LLC/DRAM) see the
        #: traffic and bandwidth is accounted
        self.fetch = fetch

    def observe(self, addr: int) -> None:
        """Feed a demand access; may issue prefetch fills into the cache."""
        line = addr // self.line_size
        page = addr // self.page_size
        last = self._streams.get(page)
        if last is not None and line in (last + 1, last + 2):
            # Trained stream: prefetch ahead, clamped to this page.
            page_last_line = ((page + 1) * self.page_size - 1) \
                // self.line_size
            for d in range(1, self.degree + 1):
                pf_line = line + d
                if pf_line > page_last_line:
                    self.stats.page_bounded += 1
                    break
                pf_addr = pf_line * self.line_size
                if not self.target.contains(pf_addr):
                    if self.fetch is not None:
                        self.fetch(pf_addr)
                    self.target.fill(pf_addr, prefetch=True)
                    self.stats.issued += 1
        if last is None and len(self._streams) >= self.max_streams:
            # Evict an arbitrary (oldest-inserted) stream.
            self._streams.pop(next(iter(self._streams)))
        self._streams[page] = line

    def reset_stats(self) -> None:
        self.stats = PrefetchStats()


class NextLinePrefetcher:
    """Next-line prefetcher (L1i fetch-ahead, L1d DCU prefetcher)."""

    __slots__ = ("target", "line_size", "page_size", "stats", "fetch",
                 "_last_line", "_line_shift", "_page_shift")

    def __init__(self, target: Cache, page_size: int = 4096,
                 fetch=None) -> None:
        self.target = target
        self.line_size = target.line_size
        self.page_size = page_size
        self.stats = PrefetchStats()
        self.fetch = fetch
        self._last_line = -1
        # line_size and page_size are powers of two on every Table II
        # machine; shifts replace the divisions in the per-access path.
        self._line_shift = self.line_size.bit_length() - 1
        self._page_shift = page_size.bit_length() - 1

    def observe(self, addr: int) -> None:
        line = addr >> self._line_shift
        if line == self._last_line:     # burst on one line: nothing new
            return
        self._last_line = line
        next_line = line + 1
        if (next_line << self._line_shift) >> self._page_shift \
                != addr >> self._page_shift:
            self.stats.page_bounded += 1
            return
        next_addr = next_line << self._line_shift
        if not self.target.contains(next_addr):
            if self.fetch is not None:
                self.fetch(next_addr)
            self.target.fill(next_addr, prefetch=True)
            self.stats.issued += 1

    # -- vectorized batch probes (engine="vector") ---------------------
    def batch_page_bounded(self, lines):
        """Mask of lines whose next-line prefetch crosses a page.

        Vectorized form of the page-boundary test in :meth:`observe`:
        a line is page-bounded when its successor starts a new page, in
        which case observe suppresses the prefetch (no fill, no probe).
        """
        lines_per_page = (1 << (self._page_shift - self._line_shift)) - 1
        return (lines & lines_per_page) == lines_per_page

    def reset_stats(self) -> None:
        self.stats = PrefetchStats()
