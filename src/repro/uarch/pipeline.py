"""The core pipeline model: consumes trace ops, produces counters + Top-Down.

This is a *slot-accounting* model rather than a cycle-accurate OoO
simulator: every stall source deposits stall cycles into a leaf bucket of
the Top-Down hierarchy as it happens (Yasin's methodology computes the
same attribution post-hoc from PMU counters; we have the luxury of doing
it inline).  Total cycles are::

    cycles = uops / width  (ideal issue)  +  sum(all stall buckets)

so Top-Down percentages sum to 100% by construction.

The frontend is simulated per 64 B code line (I-TLB on page change, L1i +
DSB per line), the backend per memory op — about one structure access per
simulated instruction, which keeps pure-Python throughput high enough for
10^5-10^6 instruction runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.vm import VirtualMemory
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         EV_JIT_CODE_EMITTED, EV_JIT_CODE_MOVED)
from repro.uarch.branch import BranchUnit
from repro.uarch.cache import Cache, L2, L3, DRAM
from repro.uarch.machine import MachineConfig
from repro.uarch.memory import DramModel
from repro.uarch.prefetch import NextLinePrefetcher, StreamPrefetcher
from repro.uarch.tlb import Tlb, TlbHierarchy, TLB_WALK

# Top-Down leaf bucket names (stall-cycle accumulators).
FE_ICACHE = "fe_icache"
FE_ITLB = "fe_itlb"
FE_RESTEER = "fe_resteer"
FE_MS = "fe_ms_switches"
FE_IFAULT = "fe_ifault"
FE_DSB_BW = "fe_dsb_bandwidth"
FE_MITE_BW = "fe_mite_bandwidth"
BAD_SPEC = "bad_speculation"
BE_L1 = "be_l1_bound"
BE_L2 = "be_l2_bound"
BE_L3 = "be_l3_bound"
BE_DRAM = "be_dram_bound"
BE_DTLB = "be_dtlb_bound"
BE_STORE = "be_store_bound"
BE_DFAULT = "be_dfault"
BE_DIV = "be_divider"
BE_PORTS = "be_ports_utilization"

ALL_BUCKETS = (FE_ICACHE, FE_ITLB, FE_RESTEER, FE_MS, FE_IFAULT,
               FE_DSB_BW, FE_MITE_BW, BAD_SPEC,
               BE_L1, BE_L2, BE_L3, BE_DRAM, BE_DTLB, BE_STORE, BE_DFAULT,
               BE_DIV, BE_PORTS)

FRONTEND_LATENCY = (FE_ICACHE, FE_ITLB, FE_RESTEER, FE_MS, FE_IFAULT)
FRONTEND_BANDWIDTH = (FE_DSB_BW, FE_MITE_BW)
BACKEND_MEMORY = (BE_L1, BE_L2, BE_L3, BE_DRAM, BE_DTLB, BE_STORE, BE_DFAULT)
BACKEND_CORE = (BE_DIV, BE_PORTS)


@dataclass
class WorkloadHints:
    """Per-workload execution-shape hints the trace doesn't carry.

    These describe properties of the *code* being simulated (its intrinsic
    ILP, pointer-chasing-ness, microcode usage), not of the machine.
    """

    ilp: float = 2.6               # intrinsic instruction-level parallelism
    mlp: float = 3.0               # overlapping demand misses
    uop_factor: float = 1.12       # uops per instruction
    microcode_frac: float = 0.004  # instrs needing the MS-ROM
    div_frac: float = 0.002        # divide instructions
    cpu_utilization: float = 1.0   # fraction of one logical CPU used


def _pick_ways(entries: int, preferred: int = 8) -> int:
    """Largest ways <= preferred such that entries/ways is a power of two."""
    for ways in range(min(preferred, entries), 0, -1):
        if entries % ways == 0:
            sets = entries // ways
            if sets & (sets - 1) == 0:
                return ways
    return 1


@dataclass
class CoreCounts:
    """Raw architectural event counts (the 'perf stat' view)."""

    instructions: int = 0
    kernel_instructions: int = 0
    branches: int = 0
    loads: int = 0
    stores: int = 0
    dtlb_load_walks: int = 0
    dtlb_store_walks: int = 0
    itlb_walks: int = 0
    uops: float = 0.0

    def snapshot(self) -> "CoreCounts":
        return CoreCounts(self.instructions, self.kernel_instructions,
                          self.branches, self.loads, self.stores,
                          self.dtlb_load_walks, self.dtlb_store_walks,
                          self.itlb_walks, self.uops)


class Core:
    """One simulated core: frontend + backend structures + slot accounting.

    Parameters
    ----------
    machine:
        Hardware configuration (Table II preset).
    vm:
        The process's virtual-memory map (page-fault source).
    shared_llc:
        Optional shared LLC (multicore runs); ``None`` gives the core a
        private LLC, appropriate for single-process characterization.
    """

    # Fractions of miss latency that OoO execution hides.
    ICACHE_OVERLAP = 0.35
    ITLB_OVERLAP = 0.30
    DATA_OVERLAP = 0.15
    L1_VISIBLE = 0.055             # visible fraction of an L1 hit's latency
    DIV_PENALTY = 9.0
    STORE_MISS_PENALTY = 2.0
    TAKEN_BRANCH_BUBBLE = 0.45     # packet-break cycles per taken branch
    MITE_EFFICIENCY = 0.70

    def __init__(self, machine: MachineConfig, vm: VirtualMemory,
                 shared_llc=None, core_id: int = 0) -> None:
        self.machine = machine
        self.vm = vm
        self.core_id = core_id
        m = machine
        l1i = m.sim_cache(m.l1i, small=True)
        l1d = m.sim_cache(m.l1d, small=True)
        l2 = m.sim_cache(m.l2)
        llc = m.sim_cache(m.llc)
        itlb = m.sim_tlb(m.itlb)
        dtlb = m.sim_tlb(m.dtlb)
        stlb = m.sim_tlb(m.stlb)
        self.l1i = Cache(f"L1i{core_id}", l1i.size_bytes, l1i.line_size,
                         l1i.ways)
        self.l1d = Cache(f"L1d{core_id}", l1d.size_bytes, l1d.line_size,
                         l1d.ways)
        self.l2 = Cache(f"L2-{core_id}", l2.size_bytes, l2.line_size,
                        l2.ways)
        self.shared_llc = shared_llc
        if shared_llc is None:
            self.llc = Cache("LLC", llc.size_bytes, llc.line_size, llc.ways)
        else:
            self.llc = shared_llc.cache
        # The second-level TLB is unified: instruction and data
        # translations compete for it (as on real Intel and Arm cores) —
        # this is what exposes large code footprints to D-side pressure.
        shared_stlb = Tlb(f"STLB{core_id}", stlb.entries, stlb.ways,
                          m.page_size)
        self.itlb = TlbHierarchy(
            Tlb(f"iTLB{core_id}", itlb.entries, itlb.ways, m.page_size),
            shared_stlb)
        self.dtlb = TlbHierarchy(
            Tlb(f"dTLB{core_id}", dtlb.entries, dtlb.ways, m.page_size),
            shared_stlb)
        self.branch_unit = BranchUnit(m.sim_bp_table_bits, m.bp_history_bits,
                                      m.sim_btb_entries, m.btb_ways)
        dsb_bytes = m.sim_dsb_entries * 16
        dsb_ways = _pick_ways(dsb_bytes // 64, 8)
        self.dsb = Cache(f"DSB{core_id}", dsb_bytes, 64, dsb_ways)
        self.l2_prefetcher = StreamPrefetcher(self.l2, degree=2,
                                              page_size=m.page_size,
                                              fetch=self._prefetch_backing)
        self.l1i_prefetcher = NextLinePrefetcher(self.l1i, m.page_size)
        self.l1d_prefetcher = NextLinePrefetcher(
            self.l1d, m.page_size, fetch=self._l1_prefetch_backing)
        self.dram = DramModel(m.dram_banks, base_latency=m.dram_latency,
                              row_miss_extra=m.dram_row_miss_extra)
        self.counts = CoreCounts()
        self.stalls: dict[str, float] = {b: 0.0 for b in ALL_BUCKETS}
        self.hints = WorkloadHints()
        self._last_code_line = -1
        self._last_code_page = -1
        self._last_data_vpn = -1        # 1-entry micro-TLB (AGU filter)
        self._kernel_mode = False
        # Periodic callback support (sampling).
        self.cycle_hook = None           # callable(core) -> None
        self.cycle_hook_interval = 0.0   # in cycles; 0 disables
        self._next_hook_cycles = float("inf")
        self.event_hook = None           # callable(kind, payload, cycles)
        self._ideal_cycles = 0.0

    # ------------------------------------------------------------------
    def set_hints(self, hints: WorkloadHints) -> None:
        self.hints = hints

    def set_cycle_hook(self, hook, interval_cycles: float) -> None:
        self.cycle_hook = hook
        self.cycle_hook_interval = interval_cycles
        self._next_hook_cycles = self.cycles + interval_cycles

    @property
    def stall_cycles(self) -> float:
        return sum(self.stalls.values())

    @property
    def cycles(self) -> float:
        return self._ideal_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        c = self.cycles
        return self.counts.instructions / c if c else 0.0

    @property
    def cpi(self) -> float:
        n = self.counts.instructions
        return self.cycles / n if n else 0.0

    def seconds(self, use_max_freq: bool = True) -> float:
        freq = (self.machine.max_freq_hz if use_max_freq
                else self.machine.nominal_freq_hz)
        return self.cycles / freq

    # ------------------------------------------------------------------
    def _fetch(self, pc: int, n_bytes: int, uops: float) -> None:
        """Fetch the code range; charges FE latency + bandwidth stalls."""
        m = self.machine
        stalls = self.stalls
        first_line = pc >> 6
        last_line = (pc + n_bytes - 1) >> 6
        dsb_hit_lines = 0
        n_lines = last_line - first_line + 1
        for line in range(first_line, last_line + 1):
            if line == self._last_code_line:
                dsb_hit_lines += 1
                continue
            self._last_code_line = line
            addr = line << 6
            page = addr >> 12
            if page != self._last_code_page:
                self._last_code_page = page
                if self.itlb.access(addr) == TLB_WALK:
                    self.counts.itlb_walks += 1
                    stalls[FE_ITLB] += m.page_walk_latency \
                        * (1 - self.ITLB_OVERLAP)
                    fault = self.vm.touch(addr)
                    if fault:
                        stalls[FE_IFAULT] += fault
            if self.l1i.access(addr):
                self.l1i_prefetcher.observe(addr)
            else:
                level = self._fill_from_l2(addr, is_code=True)
                if level == L2:
                    lat = m.l2.latency
                elif level == L3:
                    lat = m.llc.latency + self._llc_extra()
                else:
                    lat = m.dram_latency
                self.l1i.fill(addr)
                stalls[FE_ICACHE] += lat * (1 - self.ICACHE_OVERLAP)
                self.l1i_prefetcher.observe(addr)
            if self.dsb.access(addr):
                dsb_hit_lines += 1
            else:
                self.dsb.fill(addr)
        # Bandwidth: DSB delivers >= pipeline width; MITE decodes slower.
        if n_lines and dsb_hit_lines < n_lines:
            mite_frac = 1.0 - dsb_hit_lines / n_lines
            mite_rate = m.decode_width * self.MITE_EFFICIENCY
            deficit = uops * mite_frac * (1.0 / mite_rate
                                          - 1.0 / m.pipeline_width)
            if deficit > 0:
                stalls[FE_MITE_BW] += deficit

    def _fill_from_l2(self, addr: int, is_code: bool = False,
                      is_write: bool = False) -> int:
        """L2 -> LLC -> DRAM walk with fills; returns service level."""
        if self.l2.access(addr, is_write):
            return L2
        if not is_code:
            self.l2_prefetcher.observe(addr)
        if self.shared_llc is not None:
            hit = self.shared_llc.access(addr, self.core_id, is_write)
        else:
            hit = self.llc.access(addr, is_write)
        if hit:
            self.l2.fill(addr)
            return L3
        self.llc.fill(addr)
        self.l2.fill(addr)
        self.dram.access(addr, is_write)
        return DRAM

    def _llc_extra(self) -> float:
        if self.shared_llc is not None:
            return self.shared_llc.extra_latency
        return 0.0

    def _prefetch_backing(self, addr: int) -> None:
        """Backing fetch for prefetches: LLC lookup, DRAM on miss.

        Does not disturb demand-miss statistics (uses contains/fill), but
        DRAM traffic is real — prefetched streams consume bandwidth, and a
        fraction of the DRAM latency remains visible (finite bandwidth:
        the prefetcher cannot run arbitrarily far ahead), which keeps
        streaming SPEC FP workloads DRAM-bound as the paper observes.
        """
        if self.llc.contains(addr):
            return
        self.llc.fill(addr, prefetch=True)
        self.dram.access(addr)
        self.stalls[BE_DRAM] += (self.machine.dram_latency * 0.22
                                 / self.hints.mlp)

    def _l1_prefetch_backing(self, addr: int) -> None:
        """Backing for the L1d DCU prefetcher: pull through L2 then LLC."""
        if self.l2.contains(addr):
            return
        self._prefetch_backing(addr)
        self.l2.fill(addr, prefetch=True)

    # -- §VIII extension hardware --------------------------------------
    def _on_jit_metadata(self, kind: str, payload) -> None:
        """React to JIT code-page metadata (ISA-hook proposals, §VIII).

        With ``machine.jit_code_prefetch``: an engine walks the freshly
        emitted range, pulling its lines into L2 (through the LLC, so
        DRAM traffic is accounted) and pre-installing I-TLB entries —
        "aggressive prefetching ... for these pages".

        With ``machine.jit_state_transform`` (moves only): PC-indexed
        predictor state is remapped from the old range to the new one,
        so re-tiered methods keep their branch training.
        """
        m = self.machine
        if kind == EV_JIT_CODE_MOVED:
            old_base, new_base, size = payload
            if m.jit_state_transform:
                self.branch_unit.transform_range(old_base, new_base, size)
                # The old range is dead code: drop its I-side lines.
                self.l1i.invalidate_range(old_base, size)
                self.dsb.invalidate_range(old_base, size)
        else:
            new_base, size = payload
        if m.jit_code_prefetch:
            # The JIT's code-write stores have already allocated the lines
            # in L2/LLC (write-allocate); the remaining cold-start cost is
            # in the I-side structures, which a metadata-driven engine can
            # pre-warm: L1i lines, decoded-uop (DSB) lines, I-TLB entries.
            for off in range(0, size, 64):
                addr = new_base + off
                self._prefetch_backing(addr)
                if not self.l2.contains(addr):
                    self.l2.fill(addr, prefetch=True)
                self.l1i.fill(addr, prefetch=True)
                self.dsb.fill(addr, prefetch=True)
            for page in range(new_base >> 12,
                              ((new_base + size - 1) >> 12) + 1):
                addr = page << 12
                if self.itlb.stlb is not None:
                    self.itlb.stlb.fill(addr)
                self.itlb.l1.fill(addr)

    # ------------------------------------------------------------------
    def _op_block(self, pc: int, n_instr: int, n_bytes: int,
                  kernel: bool) -> None:
        h = self.hints
        c = self.counts
        stalls = self.stalls
        self._kernel_mode = kernel
        c.instructions += n_instr
        if kernel:
            c.kernel_instructions += n_instr
        uops = n_instr * h.uop_factor
        c.uops += uops
        m = self.machine
        self._ideal_cycles += uops / m.pipeline_width
        self._fetch(pc, n_bytes, uops)
        # Core-bound: intrinsic ILP below machine width leaves port slots
        # empty; divider serializes.
        ilp = min(h.ilp, m.pipeline_width)
        if ilp < m.pipeline_width:
            stalls[BE_PORTS] += uops * (1.0 / ilp - 1.0 / m.pipeline_width)
        if h.div_frac:
            stalls[BE_DIV] += n_instr * h.div_frac * self.DIV_PENALTY
        if h.microcode_frac:
            stalls[FE_MS] += n_instr * h.microcode_frac \
                * m.ms_switch_penalty
        if self._ideal_cycles + self.stall_cycles >= self._next_hook_cycles:
            self._next_hook_cycles += self.cycle_hook_interval
            self.cycle_hook(self)

    def _op_branch(self, pc: int, target: int, taken: bool) -> None:
        c = self.counts
        c.instructions += 1
        if self._kernel_mode:
            c.kernel_instructions += 1
        c.branches += 1
        c.uops += 1
        m = self.machine
        self._ideal_cycles += 1.0 / m.pipeline_width
        mispredict, btb_miss = self.branch_unit.resolve(pc, taken, target)
        stalls = self.stalls
        if mispredict:
            stalls[BAD_SPEC] += m.mispredict_penalty
        if btb_miss:
            stalls[FE_RESTEER] += m.btb_resteer_penalty
        if taken:
            stalls[FE_DSB_BW] += self.TAKEN_BRANCH_BUBBLE

    def _op_mem(self, addr: int, is_write: bool) -> None:
        c = self.counts
        c.instructions += 1
        if self._kernel_mode:
            c.kernel_instructions += 1
        c.uops += 1
        m = self.machine
        h = self.hints
        self._ideal_cycles += 1.0 / m.pipeline_width
        stalls = self.stalls
        if is_write:
            c.stores += 1
        else:
            c.loads += 1
        vpn = addr >> 12
        if vpn != self._last_data_vpn:
            self._last_data_vpn = vpn
            if self.dtlb.access(addr) == TLB_WALK:
                if is_write:
                    c.dtlb_store_walks += 1
                else:
                    c.dtlb_load_walks += 1
                stalls[BE_DTLB] += m.page_walk_latency / h.mlp
                fault = self.vm.touch(addr)
                if fault:
                    stalls[BE_DFAULT] += fault
        if self.l1d.access(addr, is_write):
            self.l1d_prefetcher.observe(addr)
            if not is_write:
                stalls[BE_L1] += m.l1d.latency * self.L1_VISIBLE
            return
        level = self._fill_from_l2(addr, is_write=is_write)
        self.l1d.fill(addr, dirty=is_write)
        self.l1d_prefetcher.observe(addr)
        if is_write:
            if level >= L3:
                stalls[BE_STORE] += self.STORE_MISS_PENALTY
            return
        hidden = (1 - self.DATA_OVERLAP) / h.mlp
        if level == L2:
            stalls[BE_L2] += (m.l2.latency - m.l1d.latency) * hidden
        elif level == L3:
            stalls[BE_L3] += (m.llc.latency + self._llc_extra()
                              - m.l2.latency) * hidden
        else:
            stalls[BE_DRAM] += (m.dram_latency - m.llc.latency) * hidden

    # ------------------------------------------------------------------
    def consume(self, ops, max_instructions: int | None = None) -> int:
        """Drive the core with an op iterable.

        Returns the number of instructions executed.  Stops early once
        ``max_instructions`` is reached (checked at block granularity).
        """
        start = self.counts.instructions
        limit = (start + max_instructions
                 if max_instructions is not None else None)
        op_block = self._op_block
        op_branch = self._op_branch
        op_mem = self._op_mem
        counts = self.counts
        for op in ops:
            kind = op[0]
            if kind == OP_LOAD:
                op_mem(op[1], False)
            elif kind == OP_STORE:
                op_mem(op[1], True)
            elif kind == OP_BLOCK:
                op_block(op[1], op[2], op[3], op[4])
                if limit is not None and counts.instructions >= limit:
                    break
            elif kind == OP_BRANCH:
                op_branch(op[1], op[2], op[3])
            elif kind == OP_EVENT:
                ev = op[1]
                if ev == EV_JIT_CODE_EMITTED or ev == EV_JIT_CODE_MOVED:
                    self._on_jit_metadata(ev, op[2])
                if self.event_hook is not None:
                    self.event_hook(ev, op[2], self.cycles)
            else:  # pragma: no cover - malformed trace
                raise ValueError(f"unknown op kind {kind!r}")
        return counts.instructions - start

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all counters/stalls but keep microarchitectural state warm.

        This is the 'discard the first run' step of §III-A: caches, TLBs,
        predictors and the DSB stay trained; only the books are cleared.
        """
        self.counts = CoreCounts()
        self.stalls = {b: 0.0 for b in ALL_BUCKETS}
        self._ideal_cycles = 0.0
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        if self.shared_llc is None:
            self.llc.reset_stats()
        self.itlb.l1.reset_stats()
        self.dtlb.l1.reset_stats()
        if self.itlb.stlb:
            self.itlb.stlb.reset_stats()     # shared with dtlb
        self.branch_unit.reset_stats()
        self.dsb.reset_stats()
        self.l2_prefetcher.reset_stats()
        self.l1i_prefetcher.reset_stats()
        self.l1d_prefetcher.reset_stats()
        self.dram.reset_stats()
        self.vm.reset_stats()
