"""The core pipeline model: consumes trace ops, produces counters + Top-Down.

This is a *slot-accounting* model rather than a cycle-accurate OoO
simulator: every stall source deposits stall cycles into a leaf bucket of
the Top-Down hierarchy as it happens (Yasin's methodology computes the
same attribution post-hoc from PMU counters; we have the luxury of doing
it inline).  Total cycles are::

    cycles = uops / width  (ideal issue)  +  sum(all stall buckets)

so Top-Down percentages sum to 100% by construction.

The frontend is simulated per 64 B code line (I-TLB on page change, L1i +
DSB per line), the backend per memory op — about one structure access per
simulated instruction, which keeps pure-Python throughput high enough for
10^5-10^6 instruction runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.kernel.vm import VirtualMemory
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_EVENT, OP_LOAD, OP_STORE,
                         BLOCK_KERNEL_SHIFT, BLOCK_NBYTES_MASK,
                         EV_JIT_CODE_EMITTED, EV_JIT_CODE_MOVED)
from repro.uarch.branch import BranchUnit
from repro.uarch.cache import Cache, L2, L3, DRAM
from repro.uarch.machine import MachineConfig
from repro.uarch.memory import DramModel
from repro.uarch.prefetch import NextLinePrefetcher, StreamPrefetcher
from repro.uarch.tlb import Tlb, TlbHierarchy, TLB_WALK

# Top-Down leaf bucket names (stall-cycle accumulators).
FE_ICACHE = "fe_icache"
FE_ITLB = "fe_itlb"
FE_RESTEER = "fe_resteer"
FE_MS = "fe_ms_switches"
FE_IFAULT = "fe_ifault"
FE_DSB_BW = "fe_dsb_bandwidth"
FE_MITE_BW = "fe_mite_bandwidth"
BAD_SPEC = "bad_speculation"
BE_L1 = "be_l1_bound"
BE_L2 = "be_l2_bound"
BE_L3 = "be_l3_bound"
BE_DRAM = "be_dram_bound"
BE_DTLB = "be_dtlb_bound"
BE_STORE = "be_store_bound"
BE_DFAULT = "be_dfault"
BE_DIV = "be_divider"
BE_PORTS = "be_ports_utilization"

ALL_BUCKETS = (FE_ICACHE, FE_ITLB, FE_RESTEER, FE_MS, FE_IFAULT,
               FE_DSB_BW, FE_MITE_BW, BAD_SPEC,
               BE_L1, BE_L2, BE_L3, BE_DRAM, BE_DTLB, BE_STORE, BE_DFAULT,
               BE_DIV, BE_PORTS)

FRONTEND_LATENCY = (FE_ICACHE, FE_ITLB, FE_RESTEER, FE_MS, FE_IFAULT)
FRONTEND_BANDWIDTH = (FE_DSB_BW, FE_MITE_BW)
BACKEND_MEMORY = (BE_L1, BE_L2, BE_L3, BE_DRAM, BE_DTLB, BE_STORE, BE_DFAULT)
BACKEND_CORE = (BE_DIV, BE_PORTS)


@dataclass
class WorkloadHints:
    """Per-workload execution-shape hints the trace doesn't carry.

    These describe properties of the *code* being simulated (its intrinsic
    ILP, pointer-chasing-ness, microcode usage), not of the machine.
    """

    ilp: float = 2.6               # intrinsic instruction-level parallelism
    mlp: float = 3.0               # overlapping demand misses
    uop_factor: float = 1.12       # uops per instruction
    microcode_frac: float = 0.004  # instrs needing the MS-ROM
    div_frac: float = 0.002        # divide instructions
    cpu_utilization: float = 1.0   # fraction of one logical CPU used


def _pick_ways(entries: int, preferred: int = 8) -> int:
    """Largest ways <= preferred such that entries/ways is a power of two."""
    for ways in range(min(preferred, entries), 0, -1):
        if entries % ways == 0:
            sets = entries // ways
            if sets & (sets - 1) == 0:
                return ways
    return 1


@dataclass
class CoreCounts:
    """Raw architectural event counts (the 'perf stat' view)."""

    instructions: int = 0
    kernel_instructions: int = 0
    branches: int = 0
    loads: int = 0
    stores: int = 0
    dtlb_load_walks: int = 0
    dtlb_store_walks: int = 0
    itlb_walks: int = 0
    uops: float = 0.0

    def snapshot(self) -> "CoreCounts":
        return CoreCounts(self.instructions, self.kernel_instructions,
                          self.branches, self.loads, self.stores,
                          self.dtlb_load_walks, self.dtlb_store_walks,
                          self.itlb_walks, self.uops)


class Core:
    """One simulated core: frontend + backend structures + slot accounting.

    Parameters
    ----------
    machine:
        Hardware configuration (Table II preset).
    vm:
        The process's virtual-memory map (page-fault source).
    shared_llc:
        Optional shared LLC (multicore runs); ``None`` gives the core a
        private LLC, appropriate for single-process characterization.
    """

    # Fractions of miss latency that OoO execution hides.
    ICACHE_OVERLAP = 0.35
    ITLB_OVERLAP = 0.30
    DATA_OVERLAP = 0.15
    L1_VISIBLE = 0.055             # visible fraction of an L1 hit's latency
    DIV_PENALTY = 9.0
    STORE_MISS_PENALTY = 2.0
    TAKEN_BRANCH_BUBBLE = 0.45     # packet-break cycles per taken branch
    MITE_EFFICIENCY = 0.70

    def __init__(self, machine: MachineConfig, vm: VirtualMemory,
                 shared_llc=None, core_id: int = 0) -> None:
        self.machine = machine
        self.vm = vm
        self.core_id = core_id
        m = machine
        l1i = m.sim_cache(m.l1i, small=True)
        l1d = m.sim_cache(m.l1d, small=True)
        l2 = m.sim_cache(m.l2)
        llc = m.sim_cache(m.llc)
        itlb = m.sim_tlb(m.itlb)
        dtlb = m.sim_tlb(m.dtlb)
        stlb = m.sim_tlb(m.stlb)
        self.l1i = Cache(f"L1i{core_id}", l1i.size_bytes, l1i.line_size,
                         l1i.ways)
        self.l1d = Cache(f"L1d{core_id}", l1d.size_bytes, l1d.line_size,
                         l1d.ways)
        self.l2 = Cache(f"L2-{core_id}", l2.size_bytes, l2.line_size,
                        l2.ways)
        self.shared_llc = shared_llc
        if shared_llc is None:
            self.llc = Cache("LLC", llc.size_bytes, llc.line_size, llc.ways)
        else:
            self.llc = shared_llc.cache
        # The second-level TLB is unified: instruction and data
        # translations compete for it (as on real Intel and Arm cores) —
        # this is what exposes large code footprints to D-side pressure.
        shared_stlb = Tlb(f"STLB{core_id}", stlb.entries, stlb.ways,
                          m.page_size)
        self.itlb = TlbHierarchy(
            Tlb(f"iTLB{core_id}", itlb.entries, itlb.ways, m.page_size),
            shared_stlb)
        self.dtlb = TlbHierarchy(
            Tlb(f"dTLB{core_id}", dtlb.entries, dtlb.ways, m.page_size),
            shared_stlb)
        self.branch_unit = BranchUnit(m.sim_bp_table_bits, m.bp_history_bits,
                                      m.sim_btb_entries, m.btb_ways)
        dsb_bytes = m.sim_dsb_entries * 16
        dsb_ways = _pick_ways(dsb_bytes // 64, 8)
        self.dsb = Cache(f"DSB{core_id}", dsb_bytes, 64, dsb_ways)
        self.l2_prefetcher = StreamPrefetcher(self.l2, degree=2,
                                              page_size=m.page_size,
                                              fetch=self._prefetch_backing)
        self.l1i_prefetcher = NextLinePrefetcher(self.l1i, m.page_size)
        self.l1d_prefetcher = NextLinePrefetcher(
            self.l1d, m.page_size, fetch=self._l1_prefetch_backing)
        self.dram = DramModel(m.dram_banks, base_latency=m.dram_latency,
                              row_miss_extra=m.dram_row_miss_extra)
        self.counts = CoreCounts()
        self.stalls: dict[str, float] = {b: 0.0 for b in ALL_BUCKETS}
        self.hints = WorkloadHints()
        self._last_code_line = -1
        self._last_code_page = -1
        self._last_data_vpn = -1        # 1-entry micro-TLB (AGU filter)
        self._kernel_mode = False
        # Periodic callback support (sampling).
        self.cycle_hook = None           # callable(core) -> None
        self.cycle_hook_interval = 0.0   # in cycles; 0 disables
        self._next_hook_cycles = float("inf")
        self.event_hook = None           # callable(kind, payload, cycles)
        self._ideal_cycles = 0.0

    # ------------------------------------------------------------------
    def set_hints(self, hints: WorkloadHints) -> None:
        self.hints = hints

    def set_cycle_hook(self, hook, interval_cycles: float) -> None:
        self.cycle_hook = hook
        self.cycle_hook_interval = interval_cycles
        self._next_hook_cycles = self.cycles + interval_cycles

    @property
    def stall_cycles(self) -> float:
        return sum(self.stalls.values())

    @property
    def cycles(self) -> float:
        return self._ideal_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        c = self.cycles
        return self.counts.instructions / c if c else 0.0

    @property
    def cpi(self) -> float:
        n = self.counts.instructions
        return self.cycles / n if n else 0.0

    def seconds(self, use_max_freq: bool = True) -> float:
        freq = (self.machine.max_freq_hz if use_max_freq
                else self.machine.nominal_freq_hz)
        return self.cycles / freq

    # ------------------------------------------------------------------
    def _fetch(self, pc: int, n_bytes: int, uops: float) -> None:
        """Fetch the code range; charges FE latency + bandwidth stalls."""
        m = self.machine
        stalls = self.stalls
        first_line = pc >> 6
        last_line = (pc + n_bytes - 1) >> 6
        dsb_hit_lines = 0
        n_lines = last_line - first_line + 1
        for line in range(first_line, last_line + 1):
            if line == self._last_code_line:
                dsb_hit_lines += 1
                continue
            self._last_code_line = line
            addr = line << 6
            page = addr >> 12
            if page != self._last_code_page:
                self._last_code_page = page
                if self.itlb.access(addr) == TLB_WALK:
                    self.counts.itlb_walks += 1
                    stalls[FE_ITLB] += m.page_walk_latency \
                        * (1 - self.ITLB_OVERLAP)
                    fault = self.vm.touch(addr)
                    if fault:
                        stalls[FE_IFAULT] += fault
            if self.l1i.access(addr):
                self.l1i_prefetcher.observe(addr)
            else:
                level = self._fill_from_l2(addr, is_code=True)
                if level == L2:
                    lat = m.l2.latency
                elif level == L3:
                    lat = m.llc.latency + self._llc_extra()
                else:
                    lat = m.dram_latency
                self.l1i.fill(addr)
                stalls[FE_ICACHE] += lat * (1 - self.ICACHE_OVERLAP)
                self.l1i_prefetcher.observe(addr)
            if self.dsb.access(addr):
                dsb_hit_lines += 1
            else:
                self.dsb.fill(addr)
        # Bandwidth: DSB delivers >= pipeline width; MITE decodes slower.
        if n_lines and dsb_hit_lines < n_lines:
            mite_frac = 1.0 - dsb_hit_lines / n_lines
            mite_rate = m.decode_width * self.MITE_EFFICIENCY
            deficit = uops * mite_frac * (1.0 / mite_rate
                                          - 1.0 / m.pipeline_width)
            if deficit > 0:
                stalls[FE_MITE_BW] += deficit

    def _fill_from_l2(self, addr: int, is_code: bool = False,
                      is_write: bool = False) -> int:
        """L2 -> LLC -> DRAM walk with fills; returns service level."""
        if self.l2.access(addr, is_write):
            return L2
        if not is_code:
            self.l2_prefetcher.observe(addr)
        if self.shared_llc is not None:
            hit = self.shared_llc.access(addr, self.core_id, is_write)
        else:
            hit = self.llc.access(addr, is_write)
        if hit:
            self.l2.fill(addr)
            return L3
        self.llc.fill(addr)
        self.l2.fill(addr)
        self.dram.access(addr, is_write)
        return DRAM

    def _llc_extra(self) -> float:
        if self.shared_llc is not None:
            return self.shared_llc.extra_latency
        return 0.0

    def _prefetch_backing(self, addr: int) -> None:
        """Backing fetch for prefetches: LLC lookup, DRAM on miss.

        Does not disturb demand-miss statistics (uses contains/fill), but
        DRAM traffic is real — prefetched streams consume bandwidth, and a
        fraction of the DRAM latency remains visible (finite bandwidth:
        the prefetcher cannot run arbitrarily far ahead), which keeps
        streaming SPEC FP workloads DRAM-bound as the paper observes.
        """
        if self.llc.contains(addr):
            return
        self.llc.fill(addr, prefetch=True)
        self.dram.access(addr)
        self.stalls[BE_DRAM] += (self.machine.dram_latency * 0.22
                                 / self.hints.mlp)

    def _l1_prefetch_backing(self, addr: int) -> None:
        """Backing for the L1d DCU prefetcher: pull through L2 then LLC."""
        if self.l2.contains(addr):
            return
        self._prefetch_backing(addr)
        self.l2.fill(addr, prefetch=True)

    # -- §VIII extension hardware --------------------------------------
    def _on_jit_metadata(self, kind: str, payload) -> None:
        """React to JIT code-page metadata (ISA-hook proposals, §VIII).

        With ``machine.jit_code_prefetch``: an engine walks the freshly
        emitted range, pulling its lines into L2 (through the LLC, so
        DRAM traffic is accounted) and pre-installing I-TLB entries —
        "aggressive prefetching ... for these pages".

        With ``machine.jit_state_transform`` (moves only): PC-indexed
        predictor state is remapped from the old range to the new one,
        so re-tiered methods keep their branch training.
        """
        m = self.machine
        if kind == EV_JIT_CODE_MOVED:
            old_base, new_base, size = payload
            if m.jit_state_transform:
                self.branch_unit.transform_range(old_base, new_base, size)
                # The old range is dead code: drop its I-side lines.
                self.l1i.invalidate_range(old_base, size)
                self.dsb.invalidate_range(old_base, size)
        else:
            new_base, size = payload
        if m.jit_code_prefetch:
            # The JIT's code-write stores have already allocated the lines
            # in L2/LLC (write-allocate); the remaining cold-start cost is
            # in the I-side structures, which a metadata-driven engine can
            # pre-warm: L1i lines, decoded-uop (DSB) lines, I-TLB entries.
            for off in range(0, size, 64):
                addr = new_base + off
                self._prefetch_backing(addr)
                if not self.l2.contains(addr):
                    self.l2.fill(addr, prefetch=True)
                self.l1i.fill(addr, prefetch=True)
                self.dsb.fill(addr, prefetch=True)
            for page in range(new_base >> 12,
                              ((new_base + size - 1) >> 12) + 1):
                addr = page << 12
                if self.itlb.stlb is not None:
                    self.itlb.stlb.fill(addr)
                self.itlb.l1.fill(addr)

    # ------------------------------------------------------------------
    def _op_block(self, pc: int, n_instr: int, n_bytes: int,
                  kernel: bool) -> None:
        h = self.hints
        c = self.counts
        stalls = self.stalls
        self._kernel_mode = kernel
        c.instructions += n_instr
        if kernel:
            c.kernel_instructions += n_instr
        uops = n_instr * h.uop_factor
        c.uops += uops
        m = self.machine
        self._ideal_cycles += uops / m.pipeline_width
        self._fetch(pc, n_bytes, uops)
        # Core-bound: intrinsic ILP below machine width leaves port slots
        # empty; divider serializes.
        ilp = min(h.ilp, m.pipeline_width)
        if ilp < m.pipeline_width:
            stalls[BE_PORTS] += uops * (1.0 / ilp - 1.0 / m.pipeline_width)
        if h.div_frac:
            stalls[BE_DIV] += n_instr * h.div_frac * self.DIV_PENALTY
        if h.microcode_frac:
            stalls[FE_MS] += n_instr * h.microcode_frac \
                * m.ms_switch_penalty
        if self._ideal_cycles + self.stall_cycles >= self._next_hook_cycles:
            self._next_hook_cycles += self.cycle_hook_interval
            self.cycle_hook(self)

    def _op_branch(self, pc: int, target: int, taken: bool) -> None:
        c = self.counts
        c.instructions += 1
        if self._kernel_mode:
            c.kernel_instructions += 1
        c.branches += 1
        c.uops += 1
        m = self.machine
        self._ideal_cycles += 1.0 / m.pipeline_width
        mispredict, btb_miss = self.branch_unit.resolve(pc, taken, target)
        stalls = self.stalls
        if mispredict:
            stalls[BAD_SPEC] += m.mispredict_penalty
        if btb_miss:
            stalls[FE_RESTEER] += m.btb_resteer_penalty
        if taken:
            stalls[FE_DSB_BW] += self.TAKEN_BRANCH_BUBBLE

    def _op_mem(self, addr: int, is_write: bool) -> None:
        c = self.counts
        c.instructions += 1
        if self._kernel_mode:
            c.kernel_instructions += 1
        c.uops += 1
        m = self.machine
        h = self.hints
        self._ideal_cycles += 1.0 / m.pipeline_width
        stalls = self.stalls
        if is_write:
            c.stores += 1
        else:
            c.loads += 1
        vpn = addr >> 12
        if vpn != self._last_data_vpn:
            self._last_data_vpn = vpn
            if self.dtlb.access(addr) == TLB_WALK:
                if is_write:
                    c.dtlb_store_walks += 1
                else:
                    c.dtlb_load_walks += 1
                stalls[BE_DTLB] += m.page_walk_latency / h.mlp
                fault = self.vm.touch(addr)
                if fault:
                    stalls[BE_DFAULT] += fault
        if self.l1d.access(addr, is_write):
            self.l1d_prefetcher.observe(addr)
            if not is_write:
                stalls[BE_L1] += m.l1d.latency * self.L1_VISIBLE
            return
        level = self._fill_from_l2(addr, is_write=is_write)
        self.l1d.fill(addr, dirty=is_write)
        self.l1d_prefetcher.observe(addr)
        if is_write:
            if level >= L3:
                stalls[BE_STORE] += self.STORE_MISS_PENALTY
            return
        hidden = (1 - self.DATA_OVERLAP) / h.mlp
        if level == L2:
            stalls[BE_L2] += (m.l2.latency - m.l1d.latency) * hidden
        elif level == L3:
            stalls[BE_L3] += (m.llc.latency + self._llc_extra()
                              - m.l2.latency) * hidden
        else:
            stalls[BE_DRAM] += (m.dram_latency - m.llc.latency) * hidden

    # ------------------------------------------------------------------
    def consume(self, ops, max_instructions: int | None = None) -> int:
        """Drive the core with an op iterable.

        Returns the number of instructions executed.  Stops early once
        ``max_instructions`` is reached (checked at block granularity).
        """
        start = self.counts.instructions
        limit = (start + max_instructions
                 if max_instructions is not None else None)
        op_block = self._op_block
        op_branch = self._op_branch
        op_mem = self._op_mem
        counts = self.counts
        for op in ops:
            kind = op[0]
            if kind == OP_LOAD:
                op_mem(op[1], False)
            elif kind == OP_STORE:
                op_mem(op[1], True)
            elif kind == OP_BLOCK:
                op_block(op[1], op[2], op[3], op[4])
                if limit is not None and counts.instructions >= limit:
                    break
            elif kind == OP_BRANCH:
                op_branch(op[1], op[2], op[3])
            elif kind == OP_EVENT:
                ev = op[1]
                if ev == EV_JIT_CODE_EMITTED or ev == EV_JIT_CODE_MOVED:
                    self._on_jit_metadata(ev, op[2])
                if self.event_hook is not None:
                    self.event_hook(ev, op[2], self.cycles)
            else:  # pragma: no cover - malformed trace
                raise ValueError(f"unknown op kind {kind!r}")
        return counts.instructions - start

    # ------------------------------------------------------------------
    def consume_stream(self, stream, max_instructions: int | None = None,
                       *, engine: str = "batched") -> int:
        """Batched counterpart of :meth:`consume`.

        Drives the core from a :class:`~repro.trace.TraceBufferStream`
        chunk by chunk; the stream keeps its resume offset, so repeated
        calls (warmup then measure, multicore quanta) continue where the
        previous one stopped — the same contract an op generator gives
        the legacy path.  Produces bit-identical counters, stalls and
        events to ``consume`` over the same op sequence.

        ``engine="vector"`` routes consumption through the native C
        kernel (:mod:`repro.uarch.native`) when it is available and this
        core's configuration is one the kernel models exactly — which
        includes armed cycle hooks (the kernel exits with a ``HOOK``
        resume code, the hook runs in Python against written-back state,
        and the kernel re-enters) and the stock shared LLC (slice
        counting in C, contention math in Python).  Any other case
        silently falls back to the batched loop below, which handles the
        full model.  Both engines are bit-identical to the legacy path,
        so the choice is purely a throughput knob.
        """
        if engine == "vector":
            from repro.uarch import native
            if native.available() and native.nativizable(self):
                return native.consume_stream_native(self, stream,
                                                    max_instructions)
        counts = self.counts
        start = counts.instructions
        limit = (start + max_instructions
                 if max_instructions is not None else None)
        while True:
            buf = stream.buffer()
            if buf is None:
                break
            _t0 = time.perf_counter() if obs.enabled() else None
            next_pos, limit_hit = self.consume_buffer(buf, stream.pos,
                                                      limit)
            if _t0 is not None:
                obs.observe("sim.consume_buffer_seconds",
                            time.perf_counter() - _t0)
            stream.pos = next_pos
            if limit_hit:
                break
        return counts.instructions - start

    def _consume_buffer_interp(self, buf, start: int,
                               limit: int | None) -> tuple[int, bool]:
        """Op-at-a-time buffer consumption through the full-model methods.

        Used when the core's geometry does not match the assumptions the
        inlined paths of :meth:`consume_buffer` are specialized for.
        Semantically identical to feeding ``buf.iter_ops()`` to
        :meth:`consume`.
        """
        kinds = buf.kinds
        a0 = buf.a0
        a1 = buf.a1
        a2 = buf.a2
        events = buf.events
        op_mem = self._op_mem
        op_block = self._op_block
        op_branch = self._op_branch
        c = self.counts
        n_ops = len(kinds)
        i = start
        while i < n_ops:
            kind = kinds[i]
            if kind == 2:
                op_mem(a0[i], False)
            elif kind == 3:
                op_mem(a0[i], True)
            elif kind == 0:
                packed = a2[i]
                op_block(a0[i], a1[i], packed & BLOCK_NBYTES_MASK,
                         bool(packed >> BLOCK_KERNEL_SHIFT))
                if limit is not None and c.instructions >= limit:
                    return i + 1, True
            elif kind == 1:
                op_branch(a0[i], a1[i], bool(a2[i]))
            elif kind == 4:
                ev, payload = events[a0[i]]
                if ev == EV_JIT_CODE_EMITTED or ev == EV_JIT_CODE_MOVED:
                    self._on_jit_metadata(ev, payload)
                if self.event_hook is not None:
                    self.event_hook(ev, payload, self.cycles)
            else:  # pragma: no cover - malformed trace
                raise ValueError(f"unknown op kind {kind!r}")
            i += 1
        return n_ops, False

    def consume_buffer(self, buf, start: int = 0,
                       limit: int | None = None) -> tuple[int, bool]:
        """Consume ops of a sealed :class:`~repro.trace.TraceBuffer`.

        Processes ops from index ``start``; returns ``(next_index,
        limit_hit)`` where ``limit_hit`` reports that
        ``counts.instructions`` reached ``limit`` (checked after blocks,
        exactly like :meth:`consume`).

        This is the inlined fast path of the batched engine: per-op
        state (counters, the seven stall buckets the hit paths touch,
        cache/TLB/branch hit statistics) lives in local mirrors, and the
        all-hit cases of loads/stores (micro-TLB or D-TLB L1 hit + L1d
        hit), branches (the full branch-unit resolve) and single-line
        blocks (DSB-resident, or same-page L1i + DSB hits) commit
        against the structures' internals directly.  Every probe is
        non-mutating until the hit decision is made, so any miss falls
        back to the full-model ``_op_mem``/``_op_block`` methods — all
        replacement, fill and prefetch semantics stay in one place, and
        the two engines produce bit-identical results.
        """
        if buf.lines is None:
            buf.seal()
        kinds = buf.kinds
        a0 = buf.a0
        a1 = buf.a1
        a2 = buf.a2
        lines = buf.lines
        line_ends = buf.line_ends
        events = buf.events
        n_ops = len(kinds)

        # The inlined paths hardcode the geometry every Table II machine
        # shares (64 B lines, 4 KiB pages) so each address decomposition
        # is a shift of the pre-decoded line number, and assume the
        # stock next-line prefetchers; anything else gets the
        # op-at-a-time interpreter, which is always semantically exact.
        pf_ps = self.l1d_prefetcher.page_size
        if not (self.l1d._line_shift == 6 and self.l1i._line_shift == 6
                and self.dsb._line_shift == 6
                and type(self.l1d_prefetcher) is NextLinePrefetcher
                and type(self.l1i_prefetcher) is NextLinePrefetcher
                and self.l1d_prefetcher.line_size == 64
                and self.l1i_prefetcher.line_size == 64
                and self.l1i_prefetcher.page_size == pf_ps
                and pf_ps == 4096
                and self.dtlb.l1.page_shift == 12
                and self.itlb.l1.page_shift == 12):
            return self._consume_buffer_interp(buf, start, limit)

        m = self.machine
        h = self.hints
        c = self.counts
        stalls = self.stalls
        stalls_vals = stalls.values()
        op_block = self._op_block
        op_mem = self._op_mem
        event_hook = self.event_hook
        inf_f = float("inf")
        next_hook = self._next_hook_cycles
        hook_on = next_hook != inf_f
        no_limit = limit is None
        limit_v = inf_f if no_limit else limit

        # Hoisted per-op scalars.  Each hoisted float is the value the
        # legacy path recomputes per op from the same constants, so the
        # accumulated doubles are bit-identical; composite expressions
        # (uops / width, n_instr * frac * penalty) keep their original
        # association.
        width = m.pipeline_width
        inv_width = 1.0 / width
        uop_factor = h.uop_factor
        ilp = min(h.ilp, width)
        ports_on = ilp < width
        ports_coeff = (1.0 / ilp - 1.0 / width) if ports_on else 0.0
        div_frac = h.div_frac
        div_pen = self.DIV_PENALTY
        micro_frac = h.microcode_frac
        ms_pen = m.ms_switch_penalty
        l1_hit_stall = m.l1d.latency * self.L1_VISIBLE
        mis_pen = m.mispredict_penalty
        resteer_pen = m.btb_resteer_penalty
        taken_bubble = self.TAKEN_BRANCH_BUBBLE

        # Block-op arithmetic, vectorized over the chunk: each element
        # reproduces the corresponding legacy per-op expression on the
        # same operands (int64 -> float64 conversion is exact below
        # 2**53 and elementwise IEEE-754 ops match scalar Python), so
        # accumulating the precomputed values is bit-identical to
        # evaluating them op by op.
        a1_arr = np.asarray(a1, dtype=np.int64) if len(a1) else np.zeros(
            0, dtype=np.int64)
        kern_l = ((np.asarray(a2, dtype=np.int64) if len(a2) else a1_arr)
                  >> BLOCK_KERNEL_SHIFT).tolist()
        uops_arr = a1_arr * uop_factor
        uops_l = uops_arr.tolist()
        ideal_l = (uops_arr / width).tolist()
        ports_l = (uops_arr * ports_coeff).tolist() if ports_on else None
        div_l = ((a1_arr * div_frac) * div_pen).tolist() if div_frac \
            else None
        ms_l = ((a1_arr * micro_frac) * ms_pen).tolist() if micro_frac \
            else None

        # Structure internals for the inlined hit paths.
        l1d = self.l1d
        l1d_sets = l1d._sets
        l1d_mask = l1d._index_mask
        l1d_lru = l1d._lru
        l1d_st = l1d.stats
        l1d_fill = l1d.fill
        l1d_pf = self.l1d_prefetcher
        l1d_pf_st = l1d_pf.stats
        l1d_fetch = l1d_pf.fetch
        dtlb = self.dtlb.l1
        dtlb_sets = dtlb._sets
        dtlb_mask = dtlb._index_mask
        dtlb_st = dtlb.stats
        l1i = self.l1i
        l1i_sets = l1i._sets
        l1i_mask = l1i._index_mask
        l1i_lru = l1i._lru
        l1i_st = l1i.stats
        l1i_fill = l1i.fill
        l1i_pf = self.l1i_prefetcher
        l1i_pf_st = l1i_pf.stats
        l1i_fetch = l1i_pf.fetch
        itlb = self.itlb.l1
        itlb_sets = itlb._sets
        itlb_mask = itlb._index_mask
        itlb_st = itlb.stats
        dsb = self.dsb
        dsb_sets = dsb._sets
        dsb_mask = dsb._index_mask
        dsb_lru = dsb._lru
        dsb_st = dsb.stats
        bu = self.branch_unit
        bst = bu.stats
        gs = bu.predictor
        gs_table = gs._table
        gs_mask = gs._mask
        gs_hist_bits = gs.history_bits
        gs_hist_mask = (1 << gs_hist_bits) - 1 if gs_hist_bits else 0
        lp_table = bu.loop_predictor._table
        lp_max = bu.loop_predictor.max_entries
        btb = bu.btb
        btb_sets = btb._sets
        btb_mask = btb._index_mask
        btb_ways = btb.ways

        # Deferred mirrors of every piece of state the inlined hit paths
        # touch.  flush() publishes them before anything outside this
        # loop can observe the core (fallback ops, hooks, events,
        # return); reload() re-reads them afterwards.
        ideal = self._ideal_cycles
        n_i = c.instructions
        n_k = c.kernel_instructions
        n_ld = c.loads
        n_st = c.stores
        n_br = c.branches
        uops_acc = c.uops
        s_l1 = stalls[BE_L1]
        s_ports = stalls[BE_PORTS]
        s_div = stalls[BE_DIV]
        s_ms = stalls[FE_MS]
        s_bad = stalls[BAD_SPEC]
        s_rst = stalls[FE_RESTEER]
        s_dsb = stalls[FE_DSB_BW]
        kernel_mode = self._kernel_mode
        last_vpn = self._last_data_vpn
        last_code_line = self._last_code_line
        last_code_page = self._last_code_page
        gs_history = gs._history
        l1d_acc = l1d_st.accesses
        l1d_dem = l1d_st.demand_accesses
        l1d_useful = l1d_st.useful_prefetches
        dtlb_acc = dtlb_st.accesses
        itlb_acc = itlb_st.accesses
        l1i_acc = l1i_st.accesses
        l1i_dem = l1i_st.demand_accesses
        l1i_useful = l1i_st.useful_prefetches
        dsb_acc = dsb_st.accesses
        dsb_dem = dsb_st.demand_accesses
        dsb_useful = dsb_st.useful_prefetches
        bst_br = bst.branches
        bst_tk = bst.taken
        bst_mis = bst.mispredicts
        bst_btbm = bst.btb_misses
        pf_last_d = l1d_pf._last_line
        pf_last_i = l1i_pf._last_line

        def flush():
            self._ideal_cycles = ideal
            c.instructions = n_i
            c.kernel_instructions = n_k
            c.loads = n_ld
            c.stores = n_st
            c.branches = n_br
            c.uops = uops_acc
            stalls[BE_L1] = s_l1
            stalls[BE_PORTS] = s_ports
            stalls[BE_DIV] = s_div
            stalls[FE_MS] = s_ms
            stalls[BAD_SPEC] = s_bad
            stalls[FE_RESTEER] = s_rst
            stalls[FE_DSB_BW] = s_dsb
            self._kernel_mode = kernel_mode
            self._last_data_vpn = last_vpn
            self._last_code_line = last_code_line
            self._last_code_page = last_code_page
            gs._history = gs_history
            l1d_st.accesses = l1d_acc
            l1d_st.demand_accesses = l1d_dem
            l1d_st.useful_prefetches = l1d_useful
            dtlb_st.accesses = dtlb_acc
            itlb_st.accesses = itlb_acc
            l1i_st.accesses = l1i_acc
            l1i_st.demand_accesses = l1i_dem
            l1i_st.useful_prefetches = l1i_useful
            dsb_st.accesses = dsb_acc
            dsb_st.demand_accesses = dsb_dem
            dsb_st.useful_prefetches = dsb_useful
            bst.branches = bst_br
            bst.taken = bst_tk
            bst.mispredicts = bst_mis
            bst.btb_misses = bst_btbm
            l1d_pf._last_line = pf_last_d
            l1i_pf._last_line = pf_last_i

        def reload():
            nonlocal ideal, n_i, n_k, n_ld, n_st, n_br, uops_acc
            nonlocal s_l1, s_ports, s_div, s_ms, s_bad, s_rst, s_dsb
            nonlocal kernel_mode, last_vpn, last_code_line, last_code_page
            nonlocal gs_history
            nonlocal l1d_acc, l1d_dem, l1d_useful, dtlb_acc, itlb_acc
            nonlocal l1i_acc, l1i_dem, l1i_useful
            nonlocal dsb_acc, dsb_dem, dsb_useful
            nonlocal bst_br, bst_tk, bst_mis, bst_btbm
            nonlocal pf_last_d, pf_last_i, next_hook, hook_on
            ideal = self._ideal_cycles
            n_i = c.instructions
            n_k = c.kernel_instructions
            n_ld = c.loads
            n_st = c.stores
            n_br = c.branches
            uops_acc = c.uops
            s_l1 = stalls[BE_L1]
            s_ports = stalls[BE_PORTS]
            s_div = stalls[BE_DIV]
            s_ms = stalls[FE_MS]
            s_bad = stalls[BAD_SPEC]
            s_rst = stalls[FE_RESTEER]
            s_dsb = stalls[FE_DSB_BW]
            kernel_mode = self._kernel_mode
            last_vpn = self._last_data_vpn
            last_code_line = self._last_code_line
            last_code_page = self._last_code_page
            gs_history = gs._history
            l1d_acc = l1d_st.accesses
            l1d_dem = l1d_st.demand_accesses
            l1d_useful = l1d_st.useful_prefetches
            dtlb_acc = dtlb_st.accesses
            itlb_acc = itlb_st.accesses
            l1i_acc = l1i_st.accesses
            l1i_dem = l1i_st.demand_accesses
            l1i_useful = l1i_st.useful_prefetches
            dsb_acc = dsb_st.accesses
            dsb_dem = dsb_st.demand_accesses
            dsb_useful = dsb_st.useful_prefetches
            bst_br = bst.branches
            bst_tk = bst.taken
            bst_mis = bst.mispredicts
            bst_btbm = bst.btb_misses
            pf_last_d = l1d_pf._last_line
            pf_last_i = l1i_pf._last_line
            next_hook = self._next_hook_cycles
            hook_on = next_hook != inf_f

        # Narrow flush/reload pair for memory-op fallbacks: _op_mem
        # cannot fire hooks, run external code or touch frontend/branch
        # state, so only the D-side mirrors need to round-trip.
        def flush_mem():
            self._ideal_cycles = ideal
            c.instructions = n_i
            c.kernel_instructions = n_k
            c.loads = n_ld
            c.stores = n_st
            c.uops = uops_acc
            stalls[BE_L1] = s_l1
            self._kernel_mode = kernel_mode
            self._last_data_vpn = last_vpn
            l1d_st.accesses = l1d_acc
            l1d_st.demand_accesses = l1d_dem
            l1d_st.useful_prefetches = l1d_useful
            dtlb_st.accesses = dtlb_acc
            l1d_pf._last_line = pf_last_d

        def reload_mem():
            nonlocal ideal, n_i, n_k, n_ld, n_st, uops_acc, s_l1
            nonlocal last_vpn, l1d_acc, l1d_dem, l1d_useful, dtlb_acc
            nonlocal pf_last_d
            ideal = self._ideal_cycles
            n_i = c.instructions
            n_k = c.kernel_instructions
            n_ld = c.loads
            n_st = c.stores
            uops_acc = c.uops
            s_l1 = stalls[BE_L1]
            last_vpn = self._last_data_vpn
            l1d_acc = l1d_st.accesses
            l1d_dem = l1d_st.demand_accesses
            l1d_useful = l1d_st.useful_prefetches
            dtlb_acc = dtlb_st.accesses
            pf_last_d = l1d_pf._last_line

        for i in range(start, n_ops):
            kind = kinds[i]
            if kind == 2:                            # OP_LOAD
                line = lines[i]
                if line == pf_last_d:
                    # Tier-0: repeat access to the previous memory op's
                    # line.  The micro-TLB filter matches (same page),
                    # the entry sits at MRU (hit-promoted or freshly
                    # filled by that op; no other path fills L1d) and
                    # the prefetcher early-returns on a repeated line,
                    # so the whole op is counters plus line flags.  The
                    # tag check guards external invalidation between
                    # consume calls.
                    cb = l1d_sets[line & l1d_mask]
                    if cb:
                        entry = cb[-1]
                        if entry[0] == line:
                            n_i += 1
                            if kernel_mode:
                                n_k += 1
                            uops_acc += 1
                            ideal += inv_width
                            n_ld += 1
                            l1d_acc += 1
                            l1d_dem += 1
                            if entry[1] and not entry[2]:
                                l1d_useful += 1
                            entry[2] = True
                            s_l1 += l1_hit_stall
                            continue
                vpn = line >> 6
                tj = -2                              # micro-TLB hit
                if vpn != last_vpn:
                    tb = dtlb_sets[vpn & dtlb_mask]
                    if tb and tb[-1] == vpn:
                        tj = -3                      # MRU hit: no move
                    else:
                        tj = -1
                        for j in range(len(tb) - 2, -1, -1):
                            if tb[j] == vpn:
                                tj = j
                                break
                if tj != -1:
                    cb = l1d_sets[line & l1d_mask]
                    hj = -1
                    if cb:
                        if cb[-1][0] == line:
                            hj = -3                  # MRU hit: no move
                        else:
                            for j in range(len(cb) - 2, -1, -1):
                                if cb[j][0] == line:
                                    hj = j
                                    break
                    if hj != -1:
                        # All-hit commit, replicating _op_mem's order.
                        n_i += 1
                        if kernel_mode:
                            n_k += 1
                        uops_acc += 1
                        ideal += inv_width
                        n_ld += 1
                        if tj != -2:
                            last_vpn = vpn
                            dtlb_acc += 1
                            if tj != -3:
                                tb.append(tb.pop(tj))
                        l1d_acc += 1
                        l1d_dem += 1
                        if hj == -3:
                            entry = cb[-1]
                        else:
                            entry = cb[hj]
                        if entry[1] and not entry[2]:
                            l1d_useful += 1
                        entry[2] = True
                        if hj != -3 and l1d_lru:
                            cb.append(cb.pop(hj))
                        if line != pf_last_d:
                            # NextLinePrefetcher.observe, inlined.
                            pf_last_d = line
                            nline = line + 1
                            if nline >> 6 != vpn:
                                l1d_pf_st.page_bounded += 1
                            else:
                                nb = l1d_sets[nline & l1d_mask]
                                if not (nb and nb[-1][0] == nline):
                                    for e in nb:
                                        if e[0] == nline:
                                            break
                                    else:
                                        naddr = nline << 6
                                        if l1d_fetch is not None:
                                            l1d_fetch(naddr)
                                        l1d_fill(naddr, True)
                                        l1d_pf_st.issued += 1
                        s_l1 += l1_hit_stall
                        continue
                # Some probe missed: this op through the full model.
                flush_mem()
                op_mem(a0[i], False)
                reload_mem()
            elif kind == 3:                          # OP_STORE
                line = lines[i]
                if line == pf_last_d:
                    cb = l1d_sets[line & l1d_mask]
                    if cb:
                        entry = cb[-1]
                        if entry[0] == line:
                            n_i += 1
                            if kernel_mode:
                                n_k += 1
                            uops_acc += 1
                            ideal += inv_width
                            n_st += 1
                            l1d_acc += 1
                            l1d_dem += 1
                            if entry[1] and not entry[2]:
                                l1d_useful += 1
                            entry[2] = True
                            entry[3] = True
                            continue
                vpn = line >> 6
                tj = -2
                if vpn != last_vpn:
                    tb = dtlb_sets[vpn & dtlb_mask]
                    if tb and tb[-1] == vpn:
                        tj = -3
                    else:
                        tj = -1
                        for j in range(len(tb) - 2, -1, -1):
                            if tb[j] == vpn:
                                tj = j
                                break
                if tj != -1:
                    cb = l1d_sets[line & l1d_mask]
                    hj = -1
                    if cb:
                        if cb[-1][0] == line:
                            hj = -3
                        else:
                            for j in range(len(cb) - 2, -1, -1):
                                if cb[j][0] == line:
                                    hj = j
                                    break
                    if hj != -1:
                        n_i += 1
                        if kernel_mode:
                            n_k += 1
                        uops_acc += 1
                        ideal += inv_width
                        n_st += 1
                        if tj != -2:
                            last_vpn = vpn
                            dtlb_acc += 1
                            if tj != -3:
                                tb.append(tb.pop(tj))
                        l1d_acc += 1
                        l1d_dem += 1
                        if hj == -3:
                            entry = cb[-1]
                        else:
                            entry = cb[hj]
                        if entry[1] and not entry[2]:
                            l1d_useful += 1
                        entry[2] = True
                        entry[3] = True
                        if hj != -3 and l1d_lru:
                            cb.append(cb.pop(hj))
                        if line != pf_last_d:
                            pf_last_d = line
                            nline = line + 1
                            if nline >> 6 != vpn:
                                l1d_pf_st.page_bounded += 1
                            else:
                                nb = l1d_sets[nline & l1d_mask]
                                if not (nb and nb[-1][0] == nline):
                                    for e in nb:
                                        if e[0] == nline:
                                            break
                                    else:
                                        naddr = nline << 6
                                        if l1d_fetch is not None:
                                            l1d_fetch(naddr)
                                        l1d_fill(naddr, True)
                                        l1d_pf_st.issued += 1
                        continue
                flush_mem()
                op_mem(a0[i], True)
                reload_mem()
            elif kind == 0:                          # OP_BLOCK
                line = lines[i]
                last = line_ends[i]
                if last == line == last_code_line:
                    # DSB-resident single line: no frontend work.
                    kernel_mode = kern_l[i]
                    ni = a1[i]
                    n_i += ni
                    if kernel_mode:
                        n_k += ni
                    uops_acc += uops_l[i]
                    ideal += ideal_l[i]
                    if ports_on:
                        s_ports += ports_l[i]
                    if div_frac:
                        s_div += div_l[i]
                    if micro_frac:
                        s_ms += ms_l[i]
                    if hook_on:
                        # Publish the stall mirrors, then evaluate the
                        # hook threshold exactly as _op_block does
                        # (same summation order over the bucket dict).
                        stalls[BE_L1] = s_l1
                        stalls[BE_PORTS] = s_ports
                        stalls[BE_DIV] = s_div
                        stalls[FE_MS] = s_ms
                        stalls[BAD_SPEC] = s_bad
                        stalls[FE_RESTEER] = s_rst
                        stalls[FE_DSB_BW] = s_dsb
                        if ideal + sum(stalls_vals) >= next_hook:
                            flush()
                            self._next_hook_cycles += \
                                self.cycle_hook_interval
                            self.cycle_hook(self)
                            reload()
                    if n_i >= limit_v:
                        flush()
                        return i + 1, True
                    continue
                # Pure probe of every new line: I-TLB (on page change),
                # L1i, DSB.  Nothing is mutated until all lines hit.
                ok = True
                sim_last = last_code_line
                sim_page = last_code_page
                ln = line
                while ln <= last:
                    if ln != sim_last:
                        sim_last = ln
                        page = ln >> 6
                        if page != sim_page:
                            tb = itlb_sets[page & itlb_mask]
                            if not tb or tb[-1] != page:
                                for j in range(len(tb) - 2, -1, -1):
                                    if tb[j] == page:
                                        break
                                else:
                                    ok = False
                                    break
                            sim_page = page
                        fb = l1i_sets[ln & l1i_mask]
                        if not fb or fb[-1][0] != ln:
                            for j in range(len(fb) - 2, -1, -1):
                                if fb[j][0] == ln:
                                    break
                            else:
                                ok = False
                                break
                        db = dsb_sets[ln & dsb_mask]
                        if not db or db[-1][0] != ln:
                            for j in range(len(db) - 2, -1, -1):
                                if db[j][0] == ln:
                                    break
                            else:
                                ok = False
                                break
                    ln += 1
                if ok:
                    # All-hit commit, replicating _op_block + _fetch
                    # order per line.
                    kernel_mode = kern_l[i]
                    ni = a1[i]
                    n_i += ni
                    if kernel_mode:
                        n_k += ni
                    uops_acc += uops_l[i]
                    ideal += ideal_l[i]
                    ln = line
                    while ln <= last:
                        if ln == last_code_line:
                            ln += 1
                            continue
                        last_code_line = ln
                        page = ln >> 6
                        if page != last_code_page:
                            last_code_page = page
                            tb = itlb_sets[page & itlb_mask]
                            itlb_acc += 1
                            if tb[-1] != page:
                                for j in range(len(tb) - 2, -1, -1):
                                    if tb[j] == page:
                                        tb.append(tb.pop(j))
                                        break
                        fb = l1i_sets[ln & l1i_mask]
                        l1i_acc += 1
                        l1i_dem += 1
                        entry = fb[-1]
                        if entry[0] != ln:
                            for j in range(len(fb) - 2, -1, -1):
                                e = fb[j]
                                if e[0] == ln:
                                    if l1i_lru:
                                        fb.append(fb.pop(j))
                                    entry = e
                                    break
                        if entry[1] and not entry[2]:
                            l1i_useful += 1
                        entry[2] = True
                        if ln != pf_last_i:
                            # NextLinePrefetcher.observe, inlined.
                            pf_last_i = ln
                            nline = ln + 1
                            if nline >> 6 != page:
                                l1i_pf_st.page_bounded += 1
                            else:
                                nb = l1i_sets[nline & l1i_mask]
                                if not (nb and nb[-1][0] == nline):
                                    for e in nb:
                                        if e[0] == nline:
                                            break
                                    else:
                                        naddr = nline << 6
                                        if l1i_fetch is not None:
                                            l1i_fetch(naddr)
                                        l1i_fill(naddr, True)
                                        l1i_pf_st.issued += 1
                        db = dsb_sets[ln & dsb_mask]
                        dsb_acc += 1
                        dsb_dem += 1
                        entry = db[-1]
                        if entry[0] != ln:
                            for j in range(len(db) - 2, -1, -1):
                                e = db[j]
                                if e[0] == ln:
                                    if dsb_lru:
                                        db.append(db.pop(j))
                                    entry = e
                                    break
                        if entry[1] and not entry[2]:
                            dsb_useful += 1
                        entry[2] = True
                        ln += 1
                    if ports_on:
                        s_ports += ports_l[i]
                    if div_frac:
                        s_div += div_l[i]
                    if micro_frac:
                        s_ms += ms_l[i]
                    if hook_on:
                        stalls[BE_L1] = s_l1
                        stalls[BE_PORTS] = s_ports
                        stalls[BE_DIV] = s_div
                        stalls[FE_MS] = s_ms
                        stalls[BAD_SPEC] = s_bad
                        stalls[FE_RESTEER] = s_rst
                        stalls[FE_DSB_BW] = s_dsb
                        if ideal + sum(stalls_vals) >= next_hook:
                            flush()
                            self._next_hook_cycles += \
                                self.cycle_hook_interval
                            self.cycle_hook(self)
                            reload()
                    if n_i >= limit_v:
                        flush()
                        return i + 1, True
                    continue
                # Some line missed: this op through the full model.
                flush()
                packed = a2[i]
                op_block(a0[i], a1[i], packed & BLOCK_NBYTES_MASK,
                         bool(packed >> BLOCK_KERNEL_SHIFT))
                reload()
                if n_i >= limit_v:
                    return i + 1, True
            elif kind == 1:                          # OP_BRANCH
                pc = a0[i]
                target = a1[i]
                taken = a2[i]
                n_i += 1
                if kernel_mode:
                    n_k += 1
                n_br += 1
                uops_acc += 1
                ideal += inv_width
                # BranchUnit.resolve, inlined (never falls back).
                bst_br += 1
                entry = lp_table.get(pc)
                if entry is None:
                    predicted = None
                    if taken and target <= pc:
                        # LoopPredictor.allocate (pc absent <=> entry
                        # is None)
                        if len(lp_table) >= lp_max:
                            lp_table.pop(next(iter(lp_table)))
                        entry = [0, 1, 0]
                        lp_table[pc] = entry
                else:
                    if entry[2] < 2:
                        predicted = None
                    else:
                        predicted = entry[1] + 1 < entry[0]
                if entry is not None:
                    # LoopPredictor.update
                    if taken:
                        entry[1] += 1
                        if entry[0] and entry[1] > entry[0] + 1:
                            entry[2] = 0
                    else:
                        trips = entry[1] + 1
                        if entry[0] == trips:
                            entry[2] = min(entry[2] + 1, 3)
                        else:
                            entry[0] = trips
                            entry[2] = 0
                        entry[1] = 0
                key = pc >> 2
                idx = (key ^ gs_history) & gs_mask
                ctr = gs_table.get(idx, 1)
                if predicted is None:
                    predicted = ctr >= 2
                if taken:
                    if ctr < 3:
                        gs_table[idx] = ctr + 1
                elif ctr > 0:
                    gs_table[idx] = ctr - 1
                if gs_hist_bits:
                    gs_history = ((gs_history << 1) | taken) \
                        & gs_hist_mask
                if taken:
                    bst_tk += 1
                    bb = btb_sets[key & btb_mask]
                    if bb and bb[-1][0] == key:
                        entry = bb[-1]
                    else:
                        entry = None
                        for j in range(len(bb) - 2, -1, -1):
                            if bb[j][0] == key:
                                entry = bb.pop(j)
                                bb.append(entry)
                                break
                    if entry is None:
                        bst_btbm += 1
                        s_rst += resteer_pen
                        if len(bb) >= btb_ways:
                            bb.pop(0)
                        bb.append([key, target])
                    else:
                        if entry[1] != target:
                            bst_btbm += 1
                            s_rst += resteer_pen
                            entry[1] = target
                    s_dsb += taken_bubble
                if predicted != taken:
                    bst_mis += 1
                    s_bad += mis_pen
            elif kind == 4:                          # OP_EVENT
                flush()
                ev, payload = events[a0[i]]
                if ev == EV_JIT_CODE_EMITTED or ev == EV_JIT_CODE_MOVED:
                    self._on_jit_metadata(ev, payload)
                if event_hook is not None:
                    event_hook(ev, payload, self.cycles)
                reload()
            else:  # pragma: no cover - malformed trace
                flush()
                raise ValueError(f"unknown op kind {kind!r}")
        flush()
        return n_ops, False

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all counters/stalls but keep microarchitectural state warm.

        This is the 'discard the first run' step of §III-A: caches, TLBs,
        predictors and the DSB stay trained; only the books are cleared.
        """
        self.counts = CoreCounts()
        self.stalls = {b: 0.0 for b in ALL_BUCKETS}
        self._ideal_cycles = 0.0
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        if self.shared_llc is None:
            self.llc.reset_stats()
        self.itlb.l1.reset_stats()
        self.dtlb.l1.reset_stats()
        if self.itlb.stlb:
            self.itlb.stlb.reset_stats()     # shared with dtlb
        self.branch_unit.reset_stats()
        self.dsb.reset_stats()
        self.l2_prefetcher.reset_stats()
        self.l1i_prefetcher.reset_stats()
        self.l1d_prefetcher.reset_stats()
        self.dram.reset_stats()
        self.vm.reset_stats()
