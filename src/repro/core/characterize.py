"""High-level characterization: metric matrix -> PCA -> Table III artifacts."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import METRIC_NAMES, MetricMatrix
from repro.core.pca import PcaResult, cumulative_variance, pca, top_loadings


@dataclass(frozen=True)
class LoadingRow:
    """One Table III cell: a metric and its loading on a PRCO."""

    metric: str
    loading: float


@dataclass(frozen=True)
class PrcoSummary:
    """One principal component's Table III column."""

    index: int
    variance_share: float
    top_metrics: tuple[LoadingRow, ...]


@dataclass(frozen=True)
class CharacterizationPca:
    """PCA over the full 24-metric matrix (§IV-A)."""

    result: PcaResult
    prcos: tuple[PrcoSummary, ...]
    cumulative_variance_4: float

    def scores(self, k: int = 4) -> np.ndarray:
        return self.result.scores[:, :k]


def characterization_pca(matrix: MetricMatrix, n_components: int = 4,
                         top_k: int = 3) -> CharacterizationPca:
    """Run the paper's metric-redundancy PCA and build Table III."""
    result = pca(matrix.values, n_components=n_components)
    prcos = []
    for comp in range(n_components):
        loads = top_loadings(result, comp, k=top_k, names=METRIC_NAMES)
        prcos.append(PrcoSummary(
            index=comp + 1,
            variance_share=float(result.explained_variance_ratio[comp]),
            top_metrics=tuple(LoadingRow(m, l) for m, l in loads)))
    return CharacterizationPca(
        result=result,
        prcos=tuple(prcos),
        cumulative_variance_4=cumulative_variance(result,
                                                  min(4, n_components)))
