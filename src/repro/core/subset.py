"""Representative-subset creation and SPECspeed-style validation (§IV).

Pipeline: PCA scores (top 4 PRCOs) -> hierarchical clustering -> cut at k
clusters -> pick one member per cluster.  Validation follows §IV-C: a
workload's *score* on machine A is ``time(baseline) / time(A)`` (for
throughput-measured suites this is equivalently the throughput ratio); a
suite's composite score is the geometric mean; a subset's accuracy is how
closely its composite tracks the full suite's.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass

import numpy as np

from repro.core.clustering import Linkage, fcluster, linkage_matrix
from repro.core.pca import pca


def pca_scores(values: np.ndarray, n_components: int = 4) -> np.ndarray:
    """Top-``n_components`` PRCO scores of a metric matrix (§IV-A)."""
    result = pca(values, n_components=n_components)
    return result.scores[:, :n_components]


def cluster_assignments(scores: np.ndarray, k: int,
                        method: str = Linkage.AVERAGE) -> np.ndarray:
    Z = linkage_matrix(scores, method=method)
    return fcluster(Z, k)


def select_representatives(names: list[str], scores: np.ndarray, k: int,
                           prefer: tuple[str, ...] = (),
                           method: str = Linkage.AVERAGE,
                           seed: int = 0) -> list[str]:
    """Pick one workload per cluster (k representatives).

    "When more than one choice was available, we picked one randomly"
    (§IV-B) — we do the same with a seeded RNG, except that members listed
    in ``prefer`` win ties (used to align with the paper's published
    picks, which were themselves random draws).
    """
    if len(names) != scores.shape[0]:
        raise ValueError("names/scores length mismatch")
    labels = cluster_assignments(scores, k, method)
    rng = random.Random(seed)
    chosen: list[str] = []
    for cluster in range(labels.max() + 1):
        members = [names[i] for i in np.flatnonzero(labels == cluster)]
        preferred = [m for m in members if m in prefer]
        if preferred:
            chosen.append(preferred[0])
        else:
            chosen.append(members[rng.randrange(len(members))])
    return chosen


# ---------------------------------------------------------------------------
# §IV-C: score validation
# ---------------------------------------------------------------------------

def speed_scores(baseline_times: dict[str, float],
                 target_times: dict[str, float]) -> dict[str, float]:
    """Per-workload score = time(baseline) / time(target) (SPECspeed)."""
    scores = {}
    for name, t_base in baseline_times.items():
        t_tgt = target_times[name]
        if t_base <= 0 or t_tgt <= 0:
            raise ValueError(f"non-positive time for {name}")
        scores[name] = t_base / t_tgt
    return scores


def composite_score(scores: dict[str, float],
                    subset: list[str] | None = None) -> float:
    """Geometric mean of per-workload scores (optionally over a subset)."""
    names = subset if subset is not None else list(scores)
    if not names:
        raise ValueError("empty subset")
    return math.exp(sum(math.log(scores[n]) for n in names) / len(names))


def subset_accuracy(scores: dict[str, float], subset: list[str]) -> float:
    """Percent agreement between subset and full-suite composite scores."""
    full = composite_score(scores)
    sub = composite_score(scores, subset)
    return min(full, sub) / max(full, sub) * 100.0


@dataclass(frozen=True)
class SubsetValidation:
    """Fig 2's data for one subset."""

    label: str
    subset: tuple[str, ...]
    accuracy_percent: float
    composite_full: float
    composite_subset: float


def validate_subset(label: str, scores: dict[str, float],
                    subset: list[str]) -> SubsetValidation:
    return SubsetValidation(
        label=label,
        subset=tuple(subset),
        accuracy_percent=subset_accuracy(scores, subset),
        composite_full=composite_score(scores),
        composite_subset=composite_score(scores, subset),
    )


def optimum_subset(names: list[str], scores_matrix: np.ndarray,
                   speed: dict[str, float], k: int,
                   method: str = Linkage.AVERAGE,
                   max_exhaustive: int = 300_000,
                   search_samples: int = 30_000,
                   seed: int = 0) -> list[str]:
    """The Fig 2 'Subset A(o)' optimum: best one-per-cluster choice.

    Iterates all one-member-per-cluster combinations when their product is
    tractable ("iterating over all possible combinations", §IV-C),
    otherwise falls back to seeded random search over the same space.
    """
    labels = cluster_assignments(scores_matrix, k, method)
    clusters = [[names[i] for i in np.flatnonzero(labels == c)]
                for c in range(labels.max() + 1)]
    n_combos = math.prod(len(c) for c in clusters)

    def accuracy(combo) -> float:
        return subset_accuracy(speed, list(combo))

    if n_combos <= max_exhaustive:
        best = max(itertools.product(*clusters), key=accuracy)
        return list(best)
    rng = random.Random(seed)
    best_combo = tuple(c[0] for c in clusters)
    best_acc = accuracy(best_combo)
    for _ in range(search_samples):
        combo = tuple(c[rng.randrange(len(c))] for c in clusters)
        acc = accuracy(combo)
        if acc > best_acc:
            best_acc, best_combo = acc, combo
    return list(best_combo)
