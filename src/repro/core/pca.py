"""Principal Component Analysis, implemented from scratch (§IV-A).

Follows the paper's recipe exactly: standardize each metric (hence the
negative loading factors the paper remarks on), eigendecompose the
correlation matrix, and keep the top principal components ("PRCOs" in the
paper's terminology).  Loading factors are the eigenvector weights of
Equation 1; explained-variance shares are the normalized eigenvalues
(Table III's parenthesized numbers).

numpy is used for linear algebra only; no sklearn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def standardize(X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zero-mean, unit-variance columns.

    Columns with zero variance (a metric constant across workloads) are
    left centered-only so they contribute nothing rather than NaNs.
    Returns ``(Z, mean, std)``.
    """
    X = np.asarray(X, dtype=float)
    mean = X.mean(axis=0)
    std = X.std(axis=0, ddof=0)
    safe = np.where(std > 0, std, 1.0)
    return (X - mean) / safe, mean, std


@dataclass(frozen=True)
class PcaResult:
    """Outputs of one PCA.

    ``components[k]`` is the k-th PRCO's loading vector (unit length);
    ``scores[n, k]`` is workload n's coordinate on PRCO k;
    ``explained_variance_ratio[k]`` is its share of total variance.
    """

    components: np.ndarray
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    scores: np.ndarray
    mean: np.ndarray
    std: np.ndarray

    @property
    def n_components(self) -> int:
        return self.components.shape[0]

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project new rows into the fitted PC space."""
        safe = np.where(self.std > 0, self.std, 1.0)
        Z = (np.asarray(X, dtype=float) - self.mean) / safe
        return Z @ self.components.T


def pca(X: np.ndarray, n_components: int | None = None) -> PcaResult:
    """PCA on standardized data.

    Deterministic sign convention: each component's largest-magnitude
    loading is made positive, so results are stable across runs/platforms.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D (workloads x metrics)")
    n, d = X.shape
    if n < 2:
        raise ValueError("need at least 2 workloads for PCA")
    k = d if n_components is None else min(n_components, d)
    Z, mean, std = standardize(X)
    cov = (Z.T @ Z) / max(1, n - 1)
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1]
    eigvals = np.clip(eigvals[order], 0.0, None)
    eigvecs = eigvecs[:, order]
    components = eigvecs.T[:k].copy()
    for row in components:
        pivot = np.argmax(np.abs(row))
        if row[pivot] < 0:
            row *= -1.0
    total = eigvals.sum()
    ratio = eigvals / total if total > 0 else np.zeros_like(eigvals)
    scores = Z @ components.T
    return PcaResult(
        components=components,
        explained_variance=eigvals[:k],
        explained_variance_ratio=ratio[:k],
        scores=scores,
        mean=mean,
        std=std,
    )


def top_loadings(result: PcaResult, component: int, k: int = 3,
                 names: tuple[str, ...] | None = None):
    """Top-k metrics by |loading| on one component (Table III's rows).

    Returns ``[(metric_index_or_name, loading), ...]`` in descending
    |loading| order, preserving loading signs.
    """
    row = result.components[component]
    order = np.argsort(np.abs(row))[::-1][:k]
    out = []
    for idx in order:
        label = names[idx] if names is not None else int(idx)
        out.append((label, float(row[idx])))
    return out


def cumulative_variance(result: PcaResult, k: int) -> float:
    """Variance share covered by the first k components (paper: 79% @ 4)."""
    return float(result.explained_variance_ratio[:k].sum())
