"""Steady-state detection and measurement-variance analysis (§III-A).

The paper's protocol: ".NET microbenchmarks ... we ran them 15 times and
discarded the data from the first run.  To measure steady state
performance for ASP.NET ... we ran the benchmarks in warmup mode for a
long duration and progressively reduced the warmup period while ensuring
the steady state measurements had a variance of less than 5%."

This module implements both halves against the simulator:

* :func:`repeated_runs` — the microbenchmark protocol: k measurement
  windows over one warm process, first window discarded;
* :func:`find_min_warmup` — the ASP.NET protocol: progressively shrink
  the warmup until window-to-window variance exceeds the threshold, and
  return the smallest warmup that still satisfies it;
* :func:`coefficient_of_variation` / :class:`VarianceReport` — the
  variance accounting used by both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.kernel.vm import VirtualMemory
from repro.perf.counters import collect_counters
from repro.perf.tracer import LttngTracer
from repro.uarch.machine import MachineConfig
from repro.uarch.pipeline import Core
from repro.workloads.program import build_program
from repro.workloads.spec import WorkloadSpec


def coefficient_of_variation(values) -> float:
    """std / mean (0 for degenerate input) — the paper's 'variance'."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var) / abs(mean)


@dataclass(frozen=True)
class WindowMeasurement:
    """One measurement window's summary."""

    index: int
    instructions: int
    cycles: float
    cpi: float
    l1i_mpki: float
    llc_mpki: float
    jit_started: int


@dataclass(frozen=True)
class VarianceReport:
    """Outcome of a repeated-window measurement."""

    windows: tuple[WindowMeasurement, ...]
    discarded_first: bool

    @property
    def measured(self) -> tuple[WindowMeasurement, ...]:
        return self.windows[1:] if self.discarded_first else self.windows

    @property
    def cpi_cv(self) -> float:
        return coefficient_of_variation([w.cpi for w in self.measured])

    @property
    def mean_cpi(self) -> float:
        ms = self.measured
        return sum(w.cpi for w in ms) / len(ms)

    def is_steady(self, threshold: float = 0.05) -> bool:
        """The paper's acceptance criterion: variance below 5%."""
        return self.cpi_cv < threshold


def _window(core: Core, tracer: LttngTracer, ops, n: int,
            index: int) -> WindowMeasurement:
    core.reset_stats()
    tracer.clear()
    core.consume(ops, max_instructions=n)
    c = collect_counters(core, tracer.counts)
    return WindowMeasurement(
        index=index, instructions=c.instructions, cycles=c.cycles,
        cpi=c.cpi, l1i_mpki=c.mpki(c.l1i_misses),
        llc_mpki=c.mpki(c.llc_misses), jit_started=c.jit_started)


def repeated_runs(spec: WorkloadSpec, machine: MachineConfig,
                  runs: int = 15, window_instructions: int = 50_000,
                  seed: int = 0) -> VarianceReport:
    """§III-A microbenchmark protocol: run ``runs`` windows, drop the
    first (cold) one.  All windows execute in one warm process, exactly
    like BenchmarkDotNet iterations."""
    vm = VirtualMemory()
    core = Core(machine, vm)
    core.set_hints(spec.hints())
    tracer = LttngTracer(machine.max_freq_hz)
    core.event_hook = tracer.hook
    program = build_program(spec, seed=seed,
                            code_bloat=machine.code_bloat)
    program.premap(vm)
    ops = program.ops()
    windows = tuple(_window(core, tracer, ops, window_instructions, i)
                    for i in range(runs))
    return VarianceReport(windows=windows, discarded_first=True)


def measure_after_warmup(spec: WorkloadSpec, machine: MachineConfig,
                         warmup_instructions: int, windows: int = 4,
                         window_instructions: int = 50_000,
                         seed: int = 0) -> VarianceReport:
    """Warm up for ``warmup_instructions``, then measure several windows
    (no discard — the warmup replaces it)."""
    vm = VirtualMemory()
    core = Core(machine, vm)
    core.set_hints(spec.hints())
    tracer = LttngTracer(machine.max_freq_hz)
    core.event_hook = tracer.hook
    program = build_program(spec, seed=seed,
                            code_bloat=machine.code_bloat)
    program.premap(vm)
    ops = program.ops()
    core.consume(ops, max_instructions=warmup_instructions)
    measured = tuple(_window(core, tracer, ops, window_instructions, i)
                     for i in range(windows))
    return VarianceReport(windows=measured, discarded_first=False)


@dataclass(frozen=True)
class WarmupSearchResult:
    """Outcome of the progressive warmup reduction (§III-A, ASP.NET)."""

    min_warmup_instructions: int
    reports: tuple[tuple[int, VarianceReport], ...]   # (warmup, report)

    def accepted(self, threshold: float = 0.05):
        return [(w, r) for w, r in self.reports if r.is_steady(threshold)]


def find_min_warmup(spec: WorkloadSpec, machine: MachineConfig,
                    max_warmup: int = 400_000, min_warmup: int = 12_500,
                    threshold: float = 0.05, windows: int = 4,
                    window_instructions: int = 40_000,
                    seed: int = 0) -> WarmupSearchResult:
    """Progressively halve the warmup period while steady-state variance
    stays under ``threshold``; return the smallest acceptable warmup.

    Mirrors the paper's ASP.NET methodology: start long, shrink until the
    measurements stop being steady, keep the last good value.
    """
    reports: list[tuple[int, VarianceReport]] = []
    best = max_warmup
    warmup = max_warmup
    while warmup >= min_warmup:
        report = measure_after_warmup(
            spec, machine, warmup, windows=windows,
            window_instructions=window_instructions, seed=seed)
        reports.append((warmup, report))
        if report.is_steady(threshold):
            best = warmup
            warmup //= 2
        else:
            break
    return WarmupSearchResult(min_warmup_instructions=best,
                              reports=tuple(reports))
