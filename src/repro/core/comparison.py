"""Cross-suite and cross-ISA PCA comparisons (§V-C, §V-D).

The paper re-runs PCA on *subsets* of the metrics — control-flow metrics
(IDs 2, 7) and memory metrics (IDs 8-14) — over the union of suites, then
compares where each suite's workloads land and how spread out they are
(standard-deviation ratios).  The same machinery serves the x86-vs-Arm
comparison of Fig 7 with runtime-event metrics (IDs 19-23) added.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import MetricMatrix
from repro.core.pca import PcaResult, pca


@dataclass(frozen=True)
class GroupScatter:
    """2-D PC scores of one group (one suite / one ISA)."""

    label: str
    points: np.ndarray          # (n, 2)

    @property
    def std_pc1(self) -> float:
        return float(self.points[:, 0].std())

    @property
    def std_pc2(self) -> float:
        return float(self.points[:, 1].std())

    @property
    def pooled_std(self) -> float:
        return float(np.sqrt(np.mean(self.points.std(axis=0) ** 2)))


@dataclass(frozen=True)
class ComparisonResult:
    """A Fig 5/6/7-style comparison on one metric subset."""

    metric_ids: tuple[int, ...]
    pca: PcaResult
    groups: tuple[GroupScatter, ...]

    def group(self, label: str) -> GroupScatter:
        for g in self.groups:
            if g.label == label:
                return g
        raise KeyError(label)

    def std_ratio(self, a: str, b: str) -> float:
        """Pooled-std ratio between groups (the paper's '5.73x' numbers)."""
        return self.group(a).pooled_std / self.group(b).pooled_std

    def std_ratio_per_pc(self, a: str, b: str) -> tuple[float, float]:
        """Per-PC std ratios (Fig 7 quotes PRCO1 and PRCO2 separately)."""
        ga, gb = self.group(a), self.group(b)
        return (ga.std_pc1 / gb.std_pc1 if gb.std_pc1 else float("inf"),
                ga.std_pc2 / gb.std_pc2 if gb.std_pc2 else float("inf"))


def compare_suites(matrix: MetricMatrix, metric_ids,
                   n_components: int = 2) -> ComparisonResult:
    """PCA a metric subset over all rows; group scores by suite label.

    ``matrix.suites`` supplies the group label of each row (suite name for
    Figs 5-6, ISA name for Fig 7).
    """
    ids = tuple(metric_ids)
    X = matrix.select_metrics(ids)
    result = pca(X, n_components=max(n_components, min(len(ids), 2)))
    scores = result.scores[:, :2]
    labels = sorted(set(matrix.suites))
    groups = []
    for label in labels:
        rows = [i for i, s in enumerate(matrix.suites) if s == label]
        groups.append(GroupScatter(label, scores[rows]))
    return ComparisonResult(metric_ids=ids, pca=result,
                            groups=tuple(groups))


def relabelled(matrix: MetricMatrix, label: str) -> MetricMatrix:
    """Copy of a matrix with every row's group label replaced.

    Used by the Fig 7 experiment to tag rows by ISA instead of suite
    before concatenating x86 and Arm runs of the same workloads.
    """
    return MetricMatrix(matrix.names, matrix.values,
                        [label] * len(matrix.names))
