"""Agglomerative hierarchical clustering, from scratch (§IV-B).

Workloads are clustered on the linkage distance of their first four
principal components; cutting the resulting tree at a level gives the
representative-subset candidates (Fig 1).

The implementation is the nearest-neighbor-chain algorithm with
Lance-Williams distance updates — O(n^2), fast enough for the full
2906-workload corpus — and emits a scipy-compatible ``Z`` matrix (tests
cross-check cluster assignments against ``scipy.cluster.hierarchy``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class Linkage:
    """Linkage-method names for hierarchical clustering."""

    AVERAGE = "average"
    COMPLETE = "complete"
    SINGLE = "single"
    WARD = "ward"

    ALL = (AVERAGE, COMPLETE, SINGLE, WARD)


def _pairwise_distances(X: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix (the paper's 'linkage distance' base)."""
    sq = np.sum(X * X, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def _lw_update(method: str, d_ak: np.ndarray, d_bk: np.ndarray,
               d_ab: float, na: int, nb: int,
               nk: np.ndarray) -> np.ndarray:
    """Lance-Williams update: distance from merged (a∪b) to every k."""
    if method == Linkage.AVERAGE:
        return (na * d_ak + nb * d_bk) / (na + nb)
    if method == Linkage.COMPLETE:
        return np.maximum(d_ak, d_bk)
    if method == Linkage.SINGLE:
        return np.minimum(d_ak, d_bk)
    if method == Linkage.WARD:
        n_abk = na + nb + nk
        return np.sqrt(((na + nk) * d_ak ** 2 + (nb + nk) * d_bk ** 2
                        - nk * d_ab ** 2) / n_abk)
    raise ValueError(f"unknown linkage method {method!r}")


def linkage_matrix(X: np.ndarray,
                   method: str = Linkage.AVERAGE) -> np.ndarray:
    """Hierarchical clustering; returns a scipy-style (n-1, 4) matrix.

    Row t: ``[id_a, id_b, distance, merged_size]`` with leaves 0..n-1 and
    merge t given id n+t, rows sorted by merge distance.
    """
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least 2 observations")
    D = _pairwise_distances(X)
    np.fill_diagonal(D, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=int)
    slot_id = np.arange(n)              # slot -> current cluster id
    merges: list[tuple[int, int, float, int]] = []
    next_id = n
    chain: list[int] = []
    remaining = n
    while remaining > 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        a = chain[-1]
        row = np.where(active, D[a], np.inf)
        row[a] = np.inf
        b = int(np.argmin(row))
        if len(chain) >= 2 and b == chain[-2]:
            chain.pop()
            chain.pop()
            dist = D[a, b]
            na, nb = int(sizes[a]), int(sizes[b])
            # Merge b into slot a.
            mask = active.copy()
            mask[a] = mask[b] = False
            nk = sizes[mask]
            D[a, mask] = D[mask, a] = _lw_update(
                method, D[a, mask], D[b, mask], dist, na, nb, nk)
            merges.append((int(slot_id[a]), int(slot_id[b]), float(dist),
                           na + nb))
            sizes[a] = na + nb
            active[b] = False
            slot_id[a] = next_id
            next_id += 1
            remaining -= 1
        else:
            chain.append(b)
    # NN-chain finds merges out of distance order; re-sort and relabel so
    # the output matches scipy's convention (monotone methods only).
    order = sorted(range(n - 1), key=lambda t: (merges[t][2], t))
    remap = {i: i for i in range(n)}
    Z = np.zeros((n - 1, 4))
    for new_t, old_t in enumerate(order):
        a_id, b_id, dist, size = merges[old_t]
        lo, hi = sorted((remap[a_id], remap[b_id]))
        Z[new_t] = (lo, hi, dist, size)
        remap[n + old_t] = n + new_t
    return Z


def fcluster(Z: np.ndarray, k: int) -> np.ndarray:
    """Cut the tree into exactly ``k`` clusters; returns labels 0..k-1.

    Applies merges in ascending-distance order until k clusters remain
    (scipy's ``fcluster(criterion='maxclust')`` semantics for monotone
    linkages).
    """
    n = Z.shape[0] + 1
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range [1, {n}]")
    parent = list(range(n + Z.shape[0]))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    merges_to_apply = n - k
    for t in range(merges_to_apply):
        a, b = int(Z[t, 0]), int(Z[t, 1])
        node = n + t
        parent[find(a)] = node
        parent[find(b)] = node
    roots: dict[int, int] = {}
    labels = np.zeros(n, dtype=int)
    for leaf in range(n):
        r = find(leaf)
        labels[leaf] = roots.setdefault(r, len(roots))
    return labels


@dataclass
class _Node:
    id: int
    distance: float = 0.0
    children: tuple["_Node", "_Node"] | None = None
    leaves: list[int] = field(default_factory=list)


class ClusterTree:
    """Navigable tree over a linkage matrix (Fig 1's dendrogram)."""

    def __init__(self, Z: np.ndarray, names: list[str] | None = None):
        self.Z = np.asarray(Z, dtype=float)
        n = self.Z.shape[0] + 1
        self.n_leaves = n
        self.names = list(names) if names is not None \
            else [str(i) for i in range(n)]
        if len(self.names) != n:
            raise ValueError("names length does not match leaf count")
        nodes: dict[int, _Node] = {
            i: _Node(i, 0.0, None, [i]) for i in range(n)}
        for t in range(n - 1):
            a, b, dist, _ = self.Z[t]
            left, right = nodes[int(a)], nodes[int(b)]
            nodes[n + t] = _Node(n + t, float(dist), (left, right),
                                 left.leaves + right.leaves)
        self.root = nodes[n + self.Z.shape[0] - 1]
        self._nodes = nodes

    def cut(self, k: int) -> list[list[str]]:
        """Cluster membership (names) at the k-cluster level."""
        labels = fcluster(self.Z, k)
        clusters: dict[int, list[str]] = {}
        for leaf, lab in enumerate(labels):
            clusters.setdefault(int(lab), []).append(self.names[leaf])
        return [clusters[c] for c in sorted(clusters)]

    def leaf_order(self) -> list[str]:
        """Dendrogram leaf ordering (left-to-right traversal)."""
        return [self.names[i] for i in self.root.leaves]

    def render(self, max_width: int = 72) -> str:
        """ASCII dendrogram (Fig 1's tree), deepest merges indented most."""
        lines: list[str] = []
        max_d = self.root.distance or 1.0

        def walk(node: _Node, depth: int) -> None:
            indent = "  " * depth
            if node.children is None:
                lines.append(f"{indent}- {self.names[node.id]}")
                return
            bar = int((node.distance / max_d) * 20)
            lines.append(f"{indent}+ d={node.distance:8.3f} "
                         f"{'#' * bar}")
            hi, lo = node.children
            for child in sorted(node.children,
                                key=lambda c: -len(c.leaves)):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(line[:max_width] for line in lines)

    def cophenetic_distance(self, i: int, j: int) -> float:
        """Merge height at which leaves i and j first join."""
        n = self.n_leaves
        member = {t: {t} for t in range(n)}
        for t in range(self.Z.shape[0]):
            a, b, dist, _ = self.Z[t]
            sa, sb = member[int(a)], member[int(b)]
            if (i in sa and j in sb) or (i in sb and j in sa):
                return float(dist)
            member[n + t] = sa | sb
            del member[int(a)], member[int(b)]
        return float(self.root.distance)
