"""Table I: the 24 characterization metrics.

Exactly the paper's metric list, with the paper's IDs and normalization
units.  :func:`metric_vector` derives all 24 from one
:class:`~repro.perf.counters.CounterSnapshot`; :class:`MetricMatrix` holds
a (workloads x 24) matrix with selection helpers for the metric subsets
the paper re-uses (control flow = IDs {2, 7}, memory = IDs 8-14, runtime
events = IDs 19-23).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.counters import CounterSnapshot


@dataclass(frozen=True)
class MetricDef:
    """One Table I row."""

    id: int
    name: str
    category: str
    unit: str


METRICS: tuple[MetricDef, ...] = (
    MetricDef(0, "inst_mix_kernel", "Inst Mix", "percentage"),
    MetricDef(1, "inst_mix_user", "Inst Mix", "percentage"),
    MetricDef(2, "inst_mix_branch_instructions", "Inst Mix", "percentage"),
    MetricDef(3, "inst_mix_mem_loads", "Inst Mix", "percentage"),
    MetricDef(4, "inst_mix_mem_stores", "Inst Mix", "percentage"),
    MetricDef(5, "cpi", "CPI", "per instruction"),
    MetricDef(6, "cpu_utilization", "CPU Usage", "percentage"),
    MetricDef(7, "branch_mpki", "Branch", "MPKI"),
    MetricDef(8, "l1_dcache_mpki", "Cache", "MPKI"),
    MetricDef(9, "l1_icache_mpki", "Cache", "MPKI"),
    MetricDef(10, "l2_mpki", "Cache", "MPKI"),
    MetricDef(11, "llc_mpki", "Cache", "MPKI"),
    MetricDef(12, "itlb_mpki", "TLB", "MPKI"),
    MetricDef(13, "dtlb_load_mpki", "TLB", "MPKI"),
    MetricDef(14, "dtlb_store_mpki", "TLB", "MPKI"),
    MetricDef(15, "memory_bandwidth_read", "Memory", "MB per sec"),
    MetricDef(16, "memory_bandwidth_write", "Memory", "MB per sec"),
    MetricDef(17, "memory_page_miss_rate", "Memory", "percentage"),
    MetricDef(18, "page_faults", "Memory", "PKI"),
    MetricDef(19, "gc_triggered", "Garbage Collection", "PKI"),
    MetricDef(20, "gc_allocation_tick", "Garbage Collection", "PKI"),
    MetricDef(21, "jit_jitting_started", "JIT", "PKI"),
    MetricDef(22, "exception_start", "Exception", "PKI"),
    MetricDef(23, "contention_start", "Contention", "PKI"),
)

N_METRICS = len(METRICS)
METRIC_NAMES: tuple[str, ...] = tuple(m.name for m in METRICS)

#: Metric-ID subsets the paper analyzes separately (§V-C, §V-D).
CONTROL_FLOW_IDS: tuple[int, ...] = (2, 7)
MEMORY_IDS: tuple[int, ...] = (8, 9, 10, 11, 12, 13, 14)
RUNTIME_EVENT_IDS: tuple[int, ...] = (19, 20, 21, 22, 23)


def metric_vector(s: CounterSnapshot) -> np.ndarray:
    """Derive the 24 Table I metrics from one counter snapshot."""
    instr = max(1, s.instructions)
    pki = 1000.0 / instr
    return np.array([
        s.kernel_instructions / instr * 100.0,
        s.user_instructions / instr * 100.0,
        s.branches / instr * 100.0,
        s.loads / instr * 100.0,
        s.stores / instr * 100.0,
        s.cpi,
        s.cpu_utilization * 100.0,
        s.branch_misses * pki,
        s.l1d_misses * pki,
        s.l1i_misses * pki,
        s.l2_misses * pki,
        s.llc_misses * pki,
        s.itlb_misses * pki,
        s.dtlb_load_misses * pki,
        s.dtlb_store_misses * pki,
        s.read_bandwidth_mb_s,
        s.write_bandwidth_mb_s,
        s.dram_page_miss_rate * 100.0,
        s.page_faults * pki,
        s.gc_triggered * pki,
        s.allocation_ticks * pki,
        s.jit_started * pki,
        s.exceptions * pki,
        s.contentions * pki,
    ])


class MetricMatrix:
    """(workloads x metrics) matrix with names on both axes."""

    def __init__(self, names: list[str], values: np.ndarray,
                 suites: list[str] | None = None) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[0] != len(names):
            raise ValueError(
                f"matrix shape {values.shape} does not match "
                f"{len(names)} workload names")
        if values.shape[1] != N_METRICS:
            raise ValueError(f"expected {N_METRICS} metric columns, got "
                             f"{values.shape[1]}")
        self.names = list(names)
        self.values = values
        self.suites = list(suites) if suites is not None \
            else [""] * len(names)

    def __len__(self) -> int:
        return len(self.names)

    def select_metrics(self, metric_ids) -> np.ndarray:
        """Column subset (e.g. the control-flow or memory metrics)."""
        return self.values[:, list(metric_ids)]

    def row(self, name: str) -> np.ndarray:
        return self.values[self.names.index(name)]

    def filter_rows(self, predicate) -> "MetricMatrix":
        keep = [i for i, n in enumerate(self.names) if predicate(n)]
        return MetricMatrix([self.names[i] for i in keep],
                            self.values[keep],
                            [self.suites[i] for i in keep])

    def concat(self, other: "MetricMatrix") -> "MetricMatrix":
        return MetricMatrix(self.names + other.names,
                            np.vstack([self.values, other.values]),
                            self.suites + other.suites)

    @classmethod
    def from_snapshots(cls, names: list[str],
                       snapshots: list[CounterSnapshot],
                       suites: list[str] | None = None) -> "MetricMatrix":
        values = np.vstack([metric_vector(s) for s in snapshots])
        return cls(names, values, suites)
