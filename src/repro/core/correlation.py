"""Pearson correlation of runtime-event samples vs counter samples (§VII-A).

The paper samples runtime events and performance counters in 1 ms buckets
and reports the Pearson correlation coefficient between the two series
(Fig 13a for JIT-start events, Fig 13b for GC invocations), noting that
the counter change *follows* the event by 10 us - 5 ms; the optional
``max_lag`` scans small sample lags to capture that delayed response.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.sampler import SampleSeries


def pearson(x, y) -> float:
    """Pearson's r, implemented directly from its definition.

    Returns 0.0 for degenerate (constant) series rather than NaN, which
    keeps downstream tables readable.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        return 0.0
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0:
        return 0.0
    return float((xc * yc).sum() / denom)


@dataclass(frozen=True)
class CorrelationResult:
    """One event-vs-counter correlation entry (one Fig 13 bar)."""

    event: str
    counter: str
    r: float
    best_lag: int       # samples by which the counter lags the event


def correlate_series(series: SampleSeries, event: str, counter: str,
                     max_lag: int = 5) -> CorrelationResult:
    """Correlate an event-rate column with a counter column.

    Scans lags 0..max_lag (counter shifted later than the event, matching
    the paper's observed 10 us - 5 ms response delay) and reports the lag
    with the largest |r|.
    """
    ev = np.asarray(series[event], dtype=float)
    ct = np.asarray(series[counter], dtype=float)
    best_r, best_lag = 0.0, 0
    for lag in range(0, max_lag + 1):
        if lag >= ev.size:
            break
        e = ev[:ev.size - lag] if lag else ev
        c = ct[lag:] if lag else ct
        r = pearson(e, c)
        if abs(r) > abs(best_r):
            best_r, best_lag = r, lag
    return CorrelationResult(event=event, counter=counter, r=best_r,
                             best_lag=best_lag)


def correlate_many(series: SampleSeries, event: str,
                   counters: tuple[str, ...],
                   max_lag: int = 5) -> list[CorrelationResult]:
    """Fig 13's full bar set: one event against several counters."""
    return [correlate_series(series, event, c, max_lag) for c in counters]


def event_effect(series: SampleSeries, event: str, counter: str,
                 quantile: float = 0.75) -> float:
    """Relative counter change in high-event vs no-event samples.

    Supports the paper's '%' statements (e.g. "JIT events cause an
    increase, 5%-20%, in these metrics"; "overall decrease in the LLC MPKI
    (of ~8%)").  Returns (mean_active - mean_idle) / mean_idle.
    """
    ev = np.asarray(series[event], dtype=float)
    ct = np.asarray(series[counter], dtype=float)
    if ev.size == 0:
        return 0.0
    active = ev > 0
    if active.all() or not active.any():
        return 0.0
    idle_mean = ct[~active].mean()
    if idle_mean == 0:
        return 0.0
    return float((ct[active].mean() - idle_mean) / idle_mean)
