"""The paper's analysis pipeline: metrics, PCA, clustering, subsetting,
correlation — the primary contribution being reproduced.
"""

from repro.core.metrics import (METRICS, MetricDef, metric_vector,
                                MetricMatrix, CONTROL_FLOW_IDS, MEMORY_IDS,
                                RUNTIME_EVENT_IDS)
from repro.core.pca import PcaResult, pca, standardize, top_loadings
from repro.core.clustering import (Linkage, linkage_matrix, ClusterTree,
                                   fcluster)
from repro.core.subset import (select_representatives, speed_scores,
                               composite_score, subset_accuracy,
                               optimum_subset, SubsetValidation)
from repro.core.correlation import pearson, correlate_series
from repro.core.steady import (VarianceReport, coefficient_of_variation,
                               find_min_warmup, repeated_runs)

__all__ = [
    "METRICS", "MetricDef", "metric_vector", "MetricMatrix",
    "CONTROL_FLOW_IDS", "MEMORY_IDS", "RUNTIME_EVENT_IDS",
    "PcaResult", "pca", "standardize", "top_loadings",
    "Linkage", "linkage_matrix", "ClusterTree", "fcluster",
    "select_representatives", "speed_scores", "composite_score",
    "subset_accuracy", "optimum_subset", "SubsetValidation",
    "pearson", "correlate_series",
    "VarianceReport", "coefficient_of_variation", "find_min_warmup",
    "repeated_runs",
]
