"""The paper's reported numbers, for paper-vs-measured comparison.

Every quantitative claim the evaluation makes is recorded here so benches
and EXPERIMENTS.md can print "paper vs measured" side by side.  Values are
transcribed from the paper text; figure-only quantities (bar heights we
cannot read exactly) are recorded as qualitative expectations instead.
"""

from __future__ import annotations

# --- §IV / Table III / Fig 2 ------------------------------------------------
TABLE3_VARIANCE_SHARES = (0.306, 0.229, 0.148, 0.107)
TOP4_CUMULATIVE_VARIANCE = 0.79
SUBSET_A_ACCURACY = 98.7          # 8 of 44 categories
SUBSET_B_ACCURACY = 96.3          # 64 of 2906 workloads
SUBSET_A_OPT_ACCURACY = 99.9
SUBSET_B_SIZE = 64

TABLE4_DOTNET_SUBSET = ("System.Runtime", "System.Threading",
                        "System.ComponentModel", "System.Linq",
                        "System.Net", "System.MathBenchmarks",
                        "System.Diagnostics", "CscBench")
TABLE4_ASPNET_SUBSET = ("DbFortunesRaw", "MvcDbFortunesRaw",
                        "MvcDbMultiUpdateRaw", "Plaintext", "Json",
                        "CopyToAsync", "MvcJsonNetOutput2M",
                        "MvcJsonNetInput2M")
TABLE4_SPEC_SUBSET = ("mcf", "cactuBSSN", "wrf", "gcc", "omnetpp",
                      "perlbench", "xalancbmk", "bwaves")

# --- §V-B instruction mix (geometric means, Fig 4 text) --------------------
SPEC_LOADS_GM = 35.2              # percent
DOTNET_ASPNET_LOADS_GM = 29.0     # "~29%"
SPEC_STORES_GM = 11.5
DOTNET_ASPNET_STORES_GM = 16.0    # "~16%"

# --- §V-C PCA comparisons ---------------------------------------------------
CONTROL_FLOW_STD_RATIO_SPEC_VS_DOTNET = 5.73
CONTROL_FLOW_STD_RATIO_SPEC_VS_ASPNET = 4.73
MEMORY_STD_RATIO_SPEC_VS_DOTNET = 1.71
MEMORY_STD_RATIO_SPEC_VS_ASPNET = 1.27

# --- §V-D x86 vs Arm --------------------------------------------------------
ARM_CONTROL_FLOW_STD_RATIO = (1.36, 1.20)     # PRCO1, PRCO2
ARM_MEMORY_STD_RATIO = (1.19, 2.32)
ARM_RUNTIME_STD_RATIO = (1.02, 0.58)
ARM_ITLB_MPKI_FACTOR = 80.0       # "Arm does 80x worse on I-TLB MPKI"
ARM_LLC_MPKI_FACTOR = 8.0         # "8x worse on LLC-MPKI"

# --- §V-E raw counters (Fig 8 text, geometric means) -----------------------
ASPNET_L1D_MPKI_GM = 15.9
SPEC_L1D_MPKI_GM = 29.0
ASPNET_L2_MPKI_GM = 20.4
SPEC_L2_MPKI_GM = 11.0
ASPNET_LLC_MPKI_GM = 0.16
SPEC_LLC_MPKI_GM = 0.98
DOTNET_L1D_MPKI_GM = 2.3
DOTNET_L1I_MPKI_GM = 2.2
DOTNET_LLC_MPKI_GM = 0.01
#: .NET categories the paper singles out as "realistic", ASP.NET-like
REALISTIC_DOTNET_CATEGORIES = ("System.Net", "System.Threading",
                               "System.Diagnostics", "CscBench")

# --- §VI Top-Down ------------------------------------------------------------
# Fig 9/10 qualitative expectations the benches assert on:
#   - ASP.NET most backend bound; significant frontend-bound too
#   - bad speculation small for .NET and ASP.NET
#   - ASP.NET L3-bound dominates its memory stalls; SPEC more DRAM bound
#   - .NET/ASP.NET FE latency dominated by icache+itlb+resteers (+MS)
ASPNET_WORKING_SET_LIMIT = 500 * 1024 * 1024       # "all under 500MiB"
SPEC_WORKING_SET_MAX = 16 * 1024 * 1024 * 1024     # "up to 16GB"
CORE_SCALING_POINTS = (1, 2, 4, 8, 16)             # Figs 11-12

# --- §VII-A runtime events ---------------------------------------------------
JIT_METRIC_INCREASE_RANGE = (0.05, 0.20)   # branch/LLC MPKI, page faults
JIT_L1I_INCREASE = 0.05
GC_LLC_MPKI_DECREASE = -0.08               # "overall decrease ... of ~8%"
ASPNET_PAGE_FAULT_FACTOR_VS_SPEC = 300.0
EVENT_RESPONSE_DELAY_RANGE_S = (10e-6, 5e-3)

# --- §VII-B GC comparison (Fig 14) ------------------------------------------
SERVER_GC_TRIGGER_FACTOR = 6.18     # server triggers 6.18x more often
SERVER_GC_LLC_MPKI_FACTOR = 0.59    # 0.59x reduction in LLC-MPKI
SERVER_GC_SPEEDUP = 1.14            # apps run 1.14x faster
GC_HEAP_SIZES_MIB = (200, 2_000, 20_000)
#: categories that fail to run at 200 MiB (§VII-B)
WORKSTATION_200MIB_FAILURES = ("System.Collections",)
SERVER_200MIB_FAILURES = ("System.Text", "System.Collections",
                          "System.Tests")
#: cache-light categories that regress under server GC
SERVER_GC_REGRESSIONS = ("System.MathBenchmarks",)
