"""Garbage collector model: workstation and server flavors (§VII-B).

Both flavors are generational mark-compact collectors; they differ the way
the paper describes:

* **workstation GC** runs on the user thread with a larger gen0 budget —
  collections are rarer, all GC work lands on the measured instruction
  stream, and fragmentation accumulates longer between collections;
* **server GC** runs on several dedicated high-priority threads with a
  smaller per-trigger budget — it is "more aggressive": the paper measures
  it triggering **6.18x more often**, with a **0.59x** LLC-MPKI and a
  **1.14x** speedup for most workloads (Fig 14).

The cache benefit is not injected: it follows from compaction packing the
long-lived set (see :class:`repro.runtime.heap.LongLivedSet`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.codegen import CodeRegion
from repro.runtime.heap import ManagedHeap, LongLivedSet
from repro.trace import (OP_BLOCK, OP_BRANCH, OP_LOAD, OP_STORE, OP_EVENT,
                         EV_GC_TRIGGERED, EV_GC_COMPLETED)

WORKSTATION = "workstation"
SERVER = "server"


@dataclass(frozen=True)
class GcConfig:
    """GC flavor + sizing, mirroring the paper's Fig 14 sweep axes."""

    flavor: str = WORKSTATION
    max_heap_bytes: int = 2_000 * 1024 * 1024
    #: dedicated GC threads (server flavor only)
    server_threads: int = 4
    #: server GC triggers this much more eagerly than workstation
    server_budget_divisor: float = 6.0
    #: §VIII extension: offload tracing/compaction to a hardware engine
    #: ("even limited GC acceleration in hardware can potentially reap
    #: the benefits of greater locality as it does not incur the overhead
    #: of frequent GC events").  The collection's address remapping (and
    #: with it the locality benefit) is unchanged; the instruction
    #: overhead on the application core largely disappears.
    hw_accelerated: bool = False

    def gen0_budget(self) -> int:
        """Gen0 budget derived from flavor and max heap size.

        The budget scales with the heap so that the 200 MiB / 2,000 MiB /
        20,000 MiB sweep of Fig 14 changes GC frequency, and server GC
        divides it per §VII-B ("more aggressive": 6.18x more triggers).

        Scale note: budgets are divided by ~16K relative to real .NET so
        that collections occur within simulated instruction budgets of
        10^5-10^6 (real gen0 budgets amortize over billions of
        instructions); the *ratios* across flavors and heap sizes — which
        are what Fig 14 reports — are preserved.
        """
        base = min(2 * 1024 * 1024,
                   max(3 * 1024, self.max_heap_bytes // 65536))
        if self.flavor == SERVER:
            return max(1024, int(base / self.server_budget_divisor))
        return base

    def min_heap_required(self, long_lived_bytes: int) -> int:
        """Minimum heap the flavor can run with (§VII-B: some categories
        cannot run server GC / 200 MiB)."""
        overhead = 4.0 if self.flavor == SERVER else 2.0
        return int(long_lived_bytes * overhead) + self.gen0_budget()


@dataclass
class GcStats:
    triggered: int = 0
    gen2_collections: int = 0
    bytes_moved: int = 0
    gc_instructions: int = 0

    def snapshot(self) -> "GcStats":
        return GcStats(self.triggered, self.gen2_collections,
                       self.bytes_moved, self.gc_instructions)


class OutOfManagedMemory(RuntimeError):
    """Raised when the live set cannot fit the configured max heap.

    Mirrors the paper's observation that System.Collections fails with
    workstation GC at a 200 MiB cap, and several categories fail with
    server GC at 200 MiB (server GC needs a larger minimum).
    """


class GarbageCollector:
    """Mark-compact collector emitting its own instruction stream.

    ``collect`` is a generator of trace ops: the mark phase loads a sample
    of live-object headers, the compact phase moves surviving bytes, and
    bulk instruction counts are accounted with coarse blocks at the GC's
    code addresses so that I-side structures see GC code.
    """

    #: instructions of GC code per live object marked
    MARK_INSTR_PER_OBJECT = 10
    #: instructions per 64B line moved during compaction
    COMPACT_INSTR_PER_LINE = 6
    #: every Nth collection is a full (gen2) collection; the others are
    #: ephemeral (gen0/gen1): only nursery survivors are traced and moved
    FULL_GC_PERIOD = 8
    #: cap on per-collection *emitted* memory touches (work beyond the cap
    #: is accounted as instruction blocks only, to bound event volume)
    MAX_EMITTED_TOUCHES = 1500

    def __init__(self, config: GcConfig, gc_code: CodeRegion,
                 seed: int = 0) -> None:
        self.config = config
        self.code = gc_code
        self.rng = random.Random(seed)
        self.stats = GcStats()

    # ------------------------------------------------------------------
    def check_heap_fits(self, long_lived_bytes: int) -> None:
        if self.config.min_heap_required(long_lived_bytes) \
                > self.config.max_heap_bytes:
            raise OutOfManagedMemory(
                f"{self.config.flavor} GC needs "
                f"{self.config.min_heap_required(long_lived_bytes)} bytes "
                f"for a {long_lived_bytes}-byte live set but max heap is "
                f"{self.config.max_heap_bytes}")

    def collect(self, heap: ManagedHeap, live_set: LongLivedSet,
                compact: bool = True):
        """Run one collection; yields trace ops and compacts ``live_set``.

        ``compact=False`` is the ablation mode: mark-sweep without moving
        objects — all the GC instruction overhead, none of the locality
        benefit (used by ``bench_ablation_gc_compaction``).
        """
        st = self.stats
        st.triggered += 1
        yield (OP_EVENT, EV_GC_TRIGGERED, st.triggered)
        code = self.code
        n_live = live_set.count
        slot = live_set.slot_bytes
        full = (st.triggered % self.FULL_GC_PERIOD == 0)
        if full:
            st.gen2_collections += 1
        # Server GC spreads its work across dedicated threads; the measured
        # (application) core sees 1/threads of it plus coordination
        # overhead.  Workstation GC runs entirely on the measured thread.
        # A hardware GC engine (§VIII extension) takes almost all of it
        # off the core — only the safe-point handshake remains.
        if self.config.hw_accelerated:
            work_scale = 0.04
        elif self.config.flavor == SERVER:
            work_scale = 1.25 / self.config.server_threads
        else:
            work_scale = 1.0

        scattered = live_set.scattered_indices(heap.gen0_base)
        # --- mark phase -------------------------------------------------
        # Ephemeral collections trace the nursery (allocated bytes +
        # survivors + card-table scan); full collections trace everything.
        if full:
            marked = n_live
            mark_idxs = range(0, n_live,
                              max(1, n_live // self.MAX_EMITTED_TOUCHES))
        else:
            marked = min(n_live, 60 + 2 * len(scattered)
                         + heap.gen0_allocated // 256)
            mark_idxs = scattered[:self.MAX_EMITTED_TOUCHES]
        mark_instr = int(marked * self.MARK_INSTR_PER_OBJECT * work_scale)
        addrs = live_set.addrs
        mark_pc = code.base + 128
        emitted_instr = 0
        for k, i in enumerate(mark_idxs):
            yield (OP_LOAD, addrs[i])
            yield (OP_BLOCK, mark_pc, 3, 24, False)
            emitted_instr += 4
            if k % 8 == 0:
                yield (OP_BRANCH, mark_pc + 20, mark_pc, True)
                emitted_instr += 1
        # Account the un-emitted remainder of the mark work.
        remainder = max(0, mark_instr - emitted_instr)
        if remainder:
            yield (OP_BLOCK, mark_pc + 256, remainder, 2048, False)

        # --- compact phase ----------------------------------------------
        # Ephemeral: promote nursery survivors into packed gen2 space.
        # Full: sliding compaction of gen2 back onto its packed base —
        # in-place, so resident cache lines stay warm (real .NET slides
        # objects; it does not relocate the whole heap).
        if full:
            moves = live_set.compact(live_set.packed_base) if compact \
                else []
        else:
            # Survivors must leave the nursery either way; only the
            # placement density differs between compacting and sweep GC.
            moves = live_set.compact_scattered(
                heap.gen0_base, heap.gen2_alloc,
                stride_slots=1 if compact else 2)
        moved_bytes = len(moves) * slot
        st.bytes_moved += moved_bytes
        lines_moved = max(1, moved_bytes // 64)
        compact_instr = int(lines_moved * self.COMPACT_INSTR_PER_LINE
                            * work_scale)
        emit_moves = moves[:min(self.MAX_EMITTED_TOUCHES,
                                max(1, int(len(moves) * work_scale)))]
        copy_pc = code.base + 4096
        for old, new in emit_moves:
            yield (OP_LOAD, old)
            yield (OP_STORE, new)
            yield (OP_BLOCK, copy_pc, 2, 16, False)
        remainder = max(0, compact_instr - 4 * len(emit_moves))
        if remainder:
            yield (OP_BLOCK, copy_pc + 256, remainder, 2048, False)

        st.gc_instructions += mark_instr + compact_instr
        heap.reset_nursery()
        yield (OP_EVENT, EV_GC_COMPLETED, moved_bytes)
