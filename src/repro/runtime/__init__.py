"""Managed runtime (CLR) model: heap, GC, JIT, runtime events.

This is the substitution for the real .NET CLR.  The two mechanisms the
paper's §VII findings rest on are implemented directly:

* the JIT emits method code at **fresh virtual addresses** (never reused),
  so PC-indexed structures — I-cache, I-TLB, BTB, gshare tables, DSB —
  cold-start after every JIT/tiering event;
* the GC **compacts** surviving objects, so the hot data set's spatial
  locality improves right after a collection and decays as fragmentation
  accumulates between collections.
"""

from repro.runtime.heap import HeapConfig, ManagedHeap, LongLivedSet
from repro.runtime.gc import GcConfig, GarbageCollector, WORKSTATION, SERVER
from repro.runtime.jit import Method, JitCompiler
from repro.runtime.clr import Clr, ClrImage

__all__ = [
    "HeapConfig", "ManagedHeap", "LongLivedSet",
    "GcConfig", "GarbageCollector", "WORKSTATION", "SERVER",
    "Method", "JitCompiler",
    "Clr", "ClrImage",
]
