"""Generational managed heap: bump allocation, promotion, fragmentation.

The model tracks two populations:

* **gen0** — a bump-pointer nursery.  Allocations are sequential stores;
  most objects die before the next collection (generational hypothesis).
* **the long-lived set** — the application's persistent working set
  (caches, session state, static graphs).  Its *addresses* are what the
  data-locality model reads: packed after a compacting GC, increasingly
  scattered as churned objects are re-allocated at bump-pointer positions
  between collections.  This address churn is the entire cache story of
  Fig 13b / Fig 14.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.trace import REGION_HEAP_BASE


@dataclass(frozen=True)
class HeapConfig:
    """Sizing knobs for one managed heap."""

    max_heap_bytes: int = 2_000 * 1024 * 1024
    gen0_budget_bytes: int = 128 * 1024
    #: allocations at or above this size go to the Large Object Heap
    #: (real .NET: 85,000 bytes; scaled with the capacity regime)
    loh_threshold_bytes: int = 4096
    object_size_mean: int = 56          # .NET objects are small
    #: EventPipe AllocationTick cadence (real .NET: 100 KiB; scaled down
    #: with the same factor as the gen0 budget so ticks stay observable
    #: within simulated instruction budgets)
    allocation_tick_bytes: int = 8 * 1024


@dataclass
class HeapStats:
    allocated_bytes: int = 0
    allocations: int = 0
    promoted_bytes: int = 0
    collections_requested: int = 0
    loh_allocations: int = 0
    loh_bytes: int = 0
    loh_reuses: int = 0

    def snapshot(self) -> "HeapStats":
        return HeapStats(self.allocated_bytes, self.allocations,
                         self.promoted_bytes, self.collections_requested)


class LongLivedSet:
    """Addresses of the persistent object working set.

    ``addrs[i]`` is the current address of logical object ``i``; the
    access-pattern layer indexes this list with a Zipf-like distribution.
    ``spread_span`` reports how many bytes of address space the set covers
    — packed it equals ``count * slot``, fragmented it can be many times
    larger.
    """

    def __init__(self, count: int, slot_bytes: int, base: int) -> None:
        self.count = count
        self.slot_bytes = slot_bytes
        self.addrs: list[int] = [base + i * slot_bytes for i in range(count)]
        self.packed_base = base

    def compact(self, new_base: int) -> list[tuple[int, int]]:
        """Pack all objects contiguously at ``new_base`` (full GC).

        Returns ``(old_addr, new_addr)`` move pairs (used by the GC to
        model copy traffic).
        """
        moves = []
        for i in range(self.count):
            new_addr = new_base + i * self.slot_bytes
            if self.addrs[i] != new_addr:
                moves.append((self.addrs[i], new_addr))
            self.addrs[i] = new_addr
        self.packed_base = new_base
        return moves

    def scattered_indices(self, gen0_base: int) -> list[int]:
        """Objects currently living outside gen2 (churned -> in gen0)."""
        return [i for i, a in enumerate(self.addrs) if a >= gen0_base]

    def compact_scattered(self, gen0_base: int, alloc,
                          stride_slots: int = 1) -> list[tuple[int, int]]:
        """Ephemeral (gen0/gen1) collection: promote nursery survivors.

        Only objects whose current address lies in the nursery move; they
        are placed at fresh gen2 space obtained from ``alloc``.  A
        compacting collector packs them densely (``stride_slots=1``); a
        non-compacting (mark-sweep) collector re-homes them into free-list
        holes, which stay interleaved with other allocations
        (``stride_slots=2``) — same copy work, no density gain.
        """
        moves = []
        idxs = self.scattered_indices(gen0_base)
        if not idxs:
            return moves
        step = self.slot_bytes * stride_slots
        base = alloc(len(idxs) * step)
        for k, i in enumerate(idxs):
            new_addr = base + k * step
            moves.append((self.addrs[i], new_addr))
            self.addrs[i] = new_addr
        return moves

    def scatter(self, indices: list[int], new_addrs: list[int]) -> None:
        """Replace objects at ``indices`` with re-allocated ones (churn)."""
        for i, addr in zip(indices, new_addrs):
            self.addrs[i] = addr

    @property
    def spread_span(self) -> int:
        lo = min(self.addrs)
        hi = max(self.addrs)
        return hi - lo + self.slot_bytes

    @property
    def packed_span(self) -> int:
        return self.count * self.slot_bytes

    @property
    def fragmentation(self) -> float:
        """Cache-line density loss: occupied lines / minimum lines.

        1.0 means the set is as line-dense as physically possible (e.g.
        two 32-byte objects per 64-byte line); scattered sets approach
        one line per object.  This is the quantity compaction improves.
        """
        ideal = max(1, (self.count * self.slot_bytes + 63) // 64)
        actual = len({a >> 6 for a in self.addrs})
        return actual / ideal


class ManagedHeap:
    """One generational heap instance.

    Address layout (within :data:`REGION_HEAP_BASE`)::

        [ gen2 segment ............ ][ gen0/gen1 nursery .......... ]

    gen2 grows by compaction epochs: each compaction packs the long-lived
    set at a fresh gen2 frontier (real .NET compacts in place; using a
    fresh frontier keeps the model simple and only consumes virtual — not
    simulated-physical — space; the page-fault cost of touching the new
    frontier is real and is charged).
    """

    GEN2_SPAN = 512 * 1024 * 1024
    LOH_SPAN = 256 * 1024 * 1024

    def __init__(self, config: HeapConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = random.Random(seed)
        self.gen2_base = REGION_HEAP_BASE
        self.gen2_ptr = self.gen2_base
        self.gen0_base = REGION_HEAP_BASE + self.GEN2_SPAN
        self.gen0_ptr = self.gen0_base
        self.gen0_allocated = 0
        self.loh_base = self.gen0_base + self.GEN2_SPAN
        self.loh_ptr = self.loh_base
        # The LOH is never compacted; freed segments go to a free list
        # keyed by size class and are reused — the source of its famous
        # fragmentation behavior (and of its cache friendliness for
        # repeated big-buffer workloads like the 2 MB ASP.NET responses).
        self._loh_free: dict[int, list[int]] = {}
        self.stats = HeapStats()
        self._tick_accum = 0
        self.needs_collection = False

    # -- allocation ----------------------------------------------------
    def allocate(self, size: int) -> int:
        """Bump-allocate ``size`` bytes in gen0; returns the address.

        Sets :attr:`needs_collection` when the gen0 budget is exhausted —
        the CLR facade checks it and runs a collection at a safe point.
        """
        size = (size + 7) & ~7
        addr = self.gen0_ptr
        self.gen0_ptr += size
        self.gen0_allocated += size
        st = self.stats
        st.allocated_bytes += size
        st.allocations += 1
        self._tick_accum += size
        if self.gen0_allocated >= self.config.gen0_budget_bytes:
            if not self.needs_collection:
                st.collections_requested += 1
            self.needs_collection = True
        return addr

    def take_allocation_ticks(self) -> int:
        """Number of AllocationTick events accumulated since last call."""
        ticks = self._tick_accum // self.config.allocation_tick_bytes
        self._tick_accum -= ticks * self.config.allocation_tick_bytes
        return ticks

    # -- collection support ---------------------------------------------
    def reset_nursery(self) -> None:
        """Called by the GC after a collection: reuse the nursery space."""
        self.gen0_ptr = self.gen0_base
        self.gen0_allocated = 0
        self.needs_collection = False

    def gen2_alloc(self, size: int) -> int:
        """Reserve gen2 space (promotion / compaction target)."""
        size = (size + 7) & ~7
        addr = self.gen2_ptr
        self.gen2_ptr += size
        self.stats.promoted_bytes += size
        return addr

    # -- large object heap -------------------------------------------------
    @staticmethod
    def _loh_size_class(size: int) -> int:
        """Round up to a power-of-two size class (free-list key)."""
        return 1 << max(12, (size - 1).bit_length())

    def loh_alloc(self, size: int) -> int:
        """Allocate a large object; reuses freed segments when possible."""
        cls = self._loh_size_class(size)
        free = self._loh_free.get(cls)
        st = self.stats
        st.loh_allocations += 1
        st.loh_bytes += cls
        if free:
            st.loh_reuses += 1
            return free.pop()
        addr = self.loh_ptr
        self.loh_ptr += cls
        return addr

    def loh_free(self, addr: int, size: int) -> None:
        """Return a large object's segment to the free list."""
        cls = self._loh_size_class(size)
        self._loh_free.setdefault(cls, []).append(addr)

    @property
    def loh_used(self) -> int:
        return self.loh_ptr - self.loh_base

    @property
    def gen0_used(self) -> int:
        return self.gen0_ptr - self.gen0_base

    @property
    def total_committed(self) -> int:
        return (self.gen2_ptr - self.gen2_base) + self.gen0_used
