"""Runtime event bookkeeping shared by the tracer and the metric layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace import (EV_GC_TRIGGERED, EV_GC_ALLOCATION_TICK,
                         EV_JIT_STARTED, EV_EXCEPTION, EV_CONTENTION)


@dataclass
class RuntimeEventCounts:
    """Counts of the five Table I runtime-event metrics (IDs 19-23)."""

    gc_triggered: int = 0
    allocation_ticks: int = 0
    jit_started: int = 0
    exceptions: int = 0
    contentions: int = 0

    _FIELD_BY_KIND = {
        EV_GC_TRIGGERED: "gc_triggered",
        EV_GC_ALLOCATION_TICK: "allocation_ticks",
        EV_JIT_STARTED: "jit_started",
        EV_EXCEPTION: "exceptions",
        EV_CONTENTION: "contentions",
    }

    def record(self, kind: str) -> None:
        attr = self._FIELD_BY_KIND.get(kind)
        if attr is not None:
            setattr(self, attr, getattr(self, attr) + 1)

    def snapshot(self) -> "RuntimeEventCounts":
        return RuntimeEventCounts(self.gc_triggered, self.allocation_ticks,
                                  self.jit_started, self.exceptions,
                                  self.contentions)

    def as_dict(self) -> dict[str, int]:
        return {
            EV_GC_TRIGGERED: self.gc_triggered,
            EV_GC_ALLOCATION_TICK: self.allocation_ticks,
            EV_JIT_STARTED: self.jit_started,
            EV_EXCEPTION: self.exceptions,
            EV_CONTENTION: self.contentions,
        }
