"""JIT compiler model.

Methods start un-jitted.  The first call triggers compilation: the JIT's
own code runs (a large, branchy code region — part of the CLR's footprint)
and the method body is emitted into **freshly allocated code pages** in a
dedicated JIT-code address region.  Code addresses are *never reused*,
matching the behavior the paper highlights: "After JITing, code pages are
given new addresses, leading to branch predictor cold starts and
I-cache/I-TLB/branch misses" (§V-E).

Tiered compilation re-emits hot methods at tier 1 — at yet another fresh
address — so warm services keep paying cold-start costs long after
startup, which is why ASP.NET shows sustained JIT activity (Fig 13a).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.codegen import CodeRegion, MixProfile
from repro.trace import (OP_BLOCK, OP_EVENT, OP_STORE, EV_JIT_STARTED,
                         EV_JIT_CODE_EMITTED, EV_JIT_CODE_MOVED,
                         REGION_JIT_CODE_BASE)


@dataclass
class Method:
    """One managed method: identity + current emitted code."""

    id: int
    size_bytes: int
    seed: int
    mix: MixProfile
    region: CodeRegion | None = None
    tier: int = -1                    # -1 = not jitted yet
    call_count: int = 0
    #: set when precompiled (R2R): code address reserved, region built
    #: lazily on first call (most precompiled methods are never called)
    prejit_base: int | None = None
    prejit_size: int = 0

    @property
    def is_jitted(self) -> bool:
        return self.region is not None or self.prejit_base is not None

    def materialize(self) -> CodeRegion:
        """Build the (lazily deferred) precompiled region."""
        if self.region is None:
            if self.prejit_base is None:
                raise RuntimeError(f"method {self.id} has no code")
            self.region = CodeRegion(self.prejit_base, self.prejit_size,
                                     seed=self.seed, mix=self.mix)
        return self.region


@dataclass
class JitStats:
    methods_jitted: int = 0
    tier1_promotions: int = 0
    code_bytes_emitted: int = 0
    jit_instructions: int = 0

    def snapshot(self) -> "JitStats":
        return JitStats(self.methods_jitted, self.tier1_promotions,
                        self.code_bytes_emitted, self.jit_instructions)


class JitCompiler:
    """Compiles methods, owns the JIT code address bump pointer."""

    #: JIT cost model: fixed overhead + per-byte-of-IL work.
    BASE_INSTRUCTIONS = 300
    INSTR_PER_CODE_BYTE = 1.2
    #: tier-1 recompilation threshold (calls)
    TIER1_THRESHOLD = 40
    #: tier-1 code is optimized and somewhat larger (inlining)
    TIER1_SIZE_FACTOR = 1.25

    def __init__(self, jit_code: CodeRegion, metadata_base: int,
                 metadata_bytes: int = 2 * 1024 * 1024,
                 tiering: bool = True, reuse_code_pages: bool = False,
                 code_bloat: float = 1.0, seed: int = 0) -> None:
        """``reuse_code_pages`` is the ablation switch: when True, re-JIT
        lands at the method's previous address (hypothetical hardware/VM
        co-design), eliminating cold starts.  ``code_bloat`` models an
        immature code generator (the Arm preset)."""
        self.code = jit_code
        self._code_ptr = REGION_JIT_CODE_BASE
        self.metadata_base = metadata_base
        self.metadata_bytes = metadata_bytes
        self.tiering = tiering
        self.reuse_code_pages = reuse_code_pages
        self.code_bloat = code_bloat
        self.rng = random.Random(seed)
        self.stats = JitStats()

    def _alloc_code(self, size: int) -> int:
        addr = self._code_ptr
        # Methods are packed, but emission rounds to 64B (jump padding).
        self._code_ptr += (size + 63) & ~63
        return addr

    def compile(self, method: Method, tier: int = 0):
        """Yield the op stream of compiling ``method``; emits its code."""
        st = self.stats
        yield (OP_EVENT, EV_JIT_STARTED, method.id)
        emitted_size = int(method.size_bytes * self.code_bloat
                           * (self.TIER1_SIZE_FACTOR if tier >= 1 else 1.0))
        work = int(self.BASE_INSTRUCTIONS
                   + self.INSTR_PER_CODE_BYTE * emitted_size)
        if tier >= 1:
            work = int(work * 1.6)        # optimizing tier does more analysis
        rng = self.rng
        meta_base = self.metadata_base
        # Hot shared tables (type system, token maps): ~12 KiB, reused by
        # every compile.  The method's own IL/metadata slice is small and
        # compulsory-misses once per first compile — exactly the real mix.
        hot_lines = 192
        il_base = (meta_base + self.metadata_bytes
                   + method.id * 2048)
        il_lines = max(4, min(32, method.size_bytes // 64))

        def meta_addr() -> int:
            if rng.random() < 0.8:
                return meta_base + int(rng.random() ** 2 * hot_lines) * 64
            return il_base + int(rng.random() * il_lines) * 64

        yield from self.code.walk(rng, work, load_addr=meta_addr,
                                  store_addr=meta_addr, is_kernel=False)
        old_region = method.region
        if old_region is not None and self.reuse_code_pages:
            new_base = old_region.base
        else:
            new_base = self._alloc_code(emitted_size)
        # Writing out the compiled code: sequential stores.
        for off in range(0, emitted_size, 64):
            yield (OP_STORE, new_base + off)
        yield (OP_BLOCK, self.code.base + 64, max(1, emitted_size // 16),
               256, False)
        # ISA-hook metadata (§VIII): tell the hardware where the code is,
        # and — on re-JIT — where it came from.
        if old_region is not None and old_region.base != new_base:
            yield (OP_EVENT, EV_JIT_CODE_MOVED,
                   (old_region.base, new_base, emitted_size))
        else:
            yield (OP_EVENT, EV_JIT_CODE_EMITTED, (new_base, emitted_size))
        method.region = CodeRegion(new_base, emitted_size,
                                   seed=method.seed, mix=method.mix)
        method.tier = tier
        st.methods_jitted += 1
        if tier >= 1:
            st.tier1_promotions += 1
        st.code_bytes_emitted += emitted_size
        st.jit_instructions += work

    def precompile(self, method: Method) -> None:
        """ReadyToRun-style ahead-of-time compilation.

        Real .NET ships most framework code precompiled (R2R images); only
        the remainder JITs at run time.  Precompiled methods get a code
        region up front — no JIT event, no compile work, and no later
        tiering (they are already optimized).
        """
        emitted_size = int(method.size_bytes * self.code_bloat
                           * self.TIER1_SIZE_FACTOR)
        method.prejit_base = self._alloc_code(emitted_size)
        method.prejit_size = emitted_size
        method.tier = 1

    def needs_tiering(self, method: Method) -> bool:
        return (self.tiering and method.tier == 0
                and method.call_count >= self.TIER1_THRESHOLD)
