"""The CLR facade: ties heap, GC, JIT, exceptions and contention together.

Workload programs (:mod:`repro.workloads.program`) drive execution through
this class: method calls, allocation batches, exception throws and lock
contention all flow through here, which is where runtime events are
injected into the op stream and where collections/tiering interpose —
exactly the "managed runtime intercedes the regular course of execution"
behavior the paper characterizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.codegen import CodeRegion, MixProfile
from repro.kernel.syscalls import SyscallModel, SyscallKind
from repro.runtime.gc import GarbageCollector, GcConfig
from repro.seeding import stable_seed
from repro.runtime.heap import HeapConfig, LongLivedSet, ManagedHeap
from repro.runtime.jit import JitCompiler, Method
from repro.trace import (OP_BLOCK, OP_EVENT, OP_STORE,
                         EV_GC_ALLOCATION_TICK, EV_EXCEPTION, EV_CONTENTION,
                         REGION_CLR_CODE_BASE, REGION_STACK_BASE)

#: The CLR's own precompiled code: large and branchy.  These footprints are
#: what gives .NET its "large CLR code footprint" frontend profile (§V-E).
_CLR_SUBSYSTEMS: tuple[tuple[str, int], ...] = (
    ("alloc", 48 * 1024),
    ("gc", 224 * 1024),
    ("jit", 640 * 1024),
    ("typesystem", 288 * 1024),
    ("exception", 112 * 1024),
    ("threading", 96 * 1024),
    ("interop", 160 * 1024),
)

_CLR_MIX = MixProfile(branch_frac=0.18, load_frac=0.29, store_frac=0.13,
                      taken_bias=0.44, bias_spread=0.22, loop_frac=0.10,
                      avg_loop_trips=5.0)


_IMAGE_CACHE: dict[tuple[int, float], "ClrImage"] = {}


def shared_clr_image(seed: int = 7, code_bloat: float = 1.0) -> "ClrImage":
    """Process-wide CLR image cache.

    The image is immutable after construction (regions hold no execution
    state), and in reality every .NET process maps the same runtime
    binaries — sharing also avoids rebuilding large code regions per
    workload.
    """
    key = (seed, round(code_bloat, 4))
    image = _IMAGE_CACHE.get(key)
    if image is None:
        image = _IMAGE_CACHE[key] = ClrImage(seed, code_bloat)
    return image


class ClrImage:
    """Code regions of the runtime itself (shared across all programs)."""

    def __init__(self, seed: int = 7, code_bloat: float = 1.0) -> None:
        self.regions: dict[str, CodeRegion] = {}
        base = REGION_CLR_CODE_BASE
        for name, size in _CLR_SUBSYSTEMS:
            size = int(size * code_bloat)
            self.regions[name] = CodeRegion(
                base, size, seed=stable_seed(seed, "clr", name),
                mix=_CLR_MIX)
            base += size + 4096
        self.text_bytes = base - REGION_CLR_CODE_BASE
        #: metadata segment (method tables, IL, type info)
        self.metadata_base = base + (1 << 20)
        self.metadata_bytes = 3 * 1024 * 1024


@dataclass
class ClrStats:
    method_calls: int = 0
    allocations: int = 0
    exceptions_thrown: int = 0
    contentions: int = 0


class Clr:
    """One managed-runtime instance executing one program.

    Parameters
    ----------
    heap_config / gc_config:
        Sizing (Fig 14 sweeps these).
    long_lived_count / long_lived_slot:
        The persistent working set the program will index.
    churn_per_call:
        Long-lived objects re-allocated per method call — the
        fragmentation engine (see :mod:`repro.runtime.gc`).
    """

    #: allocator fast path cost (bump + type check)
    ALLOC_FASTPATH_INSTR = 9

    def __init__(self, image: ClrImage, heap_config: HeapConfig,
                 gc_config: GcConfig, *,
                 long_lived_count: int = 4096,
                 long_lived_slot: int = 64,
                 cold_live_bytes: int = 0,
                 churn_per_call: float = 0.0,
                 tiering: bool = True,
                 reuse_code_pages: bool = False,
                 compaction_enabled: bool = True,
                 code_bloat: float = 1.0,
                 syscalls: SyscallModel | None = None,
                 seed: int = 0) -> None:
        self.image = image
        self.rng = random.Random(seed)
        self.heap = ManagedHeap(heap_config, seed=seed ^ 0x5EED)
        self.gc = GarbageCollector(gc_config, image.regions["gc"],
                                   seed=seed ^ 0x6C)
        self.jit = JitCompiler(image.regions["jit"], image.metadata_base,
                               image.metadata_bytes, tiering=tiering,
                               reuse_code_pages=reuse_code_pages,
                               code_bloat=code_bloat, seed=seed ^ 0x71)
        self.compaction_enabled = compaction_enabled
        self.syscalls = syscalls
        self.stats = ClrStats()
        self._methods: dict[int, Method] = {}
        self._churn_accum = 0.0
        self.churn_per_call = churn_per_call
        base = self.heap.gen2_alloc(long_lived_count * long_lived_slot)
        self.live_set = LongLivedSet(long_lived_count, long_lived_slot, base)
        self.gc.check_heap_fits(long_lived_count * long_lived_slot
                                + cold_live_bytes)
        self._stack_ptr = REGION_STACK_BASE
        #: (addr, size) of the most recent alloc_large (generators cannot
        #: return values to ``yield from`` callers without ceremony)
        self._last_loh: tuple[int, int] = (0, 0)

    # -- method management ----------------------------------------------
    def register_method(self, method: Method) -> None:
        self._methods[method.id] = method

    def get_method(self, method_id: int) -> Method:
        return self._methods[method_id]

    @property
    def methods(self) -> dict[int, Method]:
        return self._methods

    def ensure_jitted(self, method: Method):
        """Yield JIT ops if the method needs (re)compilation."""
        if method.region is None:
            if method.prejit_base is not None:
                method.materialize()        # R2R code: no JIT event
            else:
                yield from self.jit.compile(method, tier=0)
        elif self.jit.needs_tiering(method):
            yield from self.jit.compile(method, tier=1)

    def enter_method(self, method: Method):
        """Call prologue: JIT if needed, account the call, apply churn."""
        method.call_count += 1
        self.stats.method_calls += 1
        yield from self.ensure_jitted(method)
        if self.churn_per_call > 0:
            self._churn_accum += self.churn_per_call
            n = int(self._churn_accum)
            if n:
                self._churn_accum -= n
                self._churn_live_set(n)

    def enter_method_into(self, buf, method: Method) -> None:
        """Push twin of :meth:`enter_method`.

        JIT/tiering op streams are rare and stay generator-based (drained
        through ``buf.extend``), so compilation semantics live in one
        place; only the per-call bookkeeping is duplicated.
        """
        method.call_count += 1
        self.stats.method_calls += 1
        buf.extend(self.ensure_jitted(method))
        if self.churn_per_call > 0:
            self._churn_accum += self.churn_per_call
            n = int(self._churn_accum)
            if n:
                self._churn_accum -= n
                self._churn_live_set(n)

    def _churn_live_set(self, n: int) -> None:
        """Replace ``n`` long-lived objects with freshly allocated ones.

        The replacements land at gen0 bump positions — i.e. scattered far
        from the packed gen2 block — degrading locality until the next
        compaction.
        """
        rng = self.rng
        ls = self.live_set
        indices = [int(rng.random() * ls.count) for _ in range(n)]
        # Replacements are interleaved with short-lived garbage in gen0
        # (the generational hypothesis): one live object per ~3 slots, so
        # scattered objects occupy roughly one cache line each — packing
        # them back at 2-per-line is the compaction win.
        new_addrs = [self.heap.allocate(ls.slot_bytes * 3) + ls.slot_bytes
                     for _ in indices]
        ls.scatter(indices, new_addrs)

    # -- allocation -------------------------------------------------------
    def allocate_batch(self, n: int, mean_size: int | None = None):
        """Allocate ``n`` short-lived objects; yields allocator + init ops.

        Checks the GC trigger afterwards (allocation is the safe point).
        """
        heap = self.heap
        rng = self.rng
        mean_size = mean_size or heap.config.object_size_mean
        alloc_pc = self.image.regions["alloc"].base
        loh_threshold = heap.config.loh_threshold_bytes
        for _ in range(n):
            size = max(16, int(rng.expovariate(1.0 / mean_size)))
            if size >= loh_threshold:
                yield from self.alloc_large(size)
                continue
            addr = heap.allocate(size)
            yield (OP_BLOCK, alloc_pc, self.ALLOC_FASTPATH_INSTR, 64, False)
            # Object initialization: header + field stores.
            for off in range(0, min(size, 256), 64):
                yield (OP_STORE, addr + off)
        self.stats.allocations += n
        for _ in range(heap.take_allocation_ticks()):
            yield (OP_EVENT, EV_GC_ALLOCATION_TICK, None)
        if heap.needs_collection:
            yield from self.maybe_collect()

    def allocate_batch_into(self, buf, n: int,
                            mean_size: int | None = None) -> None:
        """Push twin of :meth:`allocate_batch` — same RNG call order."""
        heap = self.heap
        rng = self.rng
        mean_size = mean_size or heap.config.object_size_mean
        alloc_pc = self.image.regions["alloc"].base
        loh_threshold = heap.config.loh_threshold_bytes
        for _ in range(n):
            size = max(16, int(rng.expovariate(1.0 / mean_size)))
            if size >= loh_threshold:
                buf.extend(self.alloc_large(size))
                continue
            addr = heap.allocate(size)
            buf.block(alloc_pc, self.ALLOC_FASTPATH_INSTR, 64)
            for off in range(0, min(size, 256), 64):
                buf.store(addr + off)
        self.stats.allocations += n
        for _ in range(heap.take_allocation_ticks()):
            buf.event(EV_GC_ALLOCATION_TICK, None)
        if heap.needs_collection:
            buf.extend(self.maybe_collect())

    def alloc_large(self, size: int, zero: bool = True):
        """Allocate on the Large Object Heap (big arrays/buffers).

        The LOH allocator path is slower (free-list search, no bump fast
        path) and large objects are zero-initialized: a sequential store
        sweep that — for recycled segments — hits warm lines, the reason
        buffer pooling matters so much to real ASP.NET.
        """
        addr = self.heap.loh_alloc(size)
        alloc_pc = self.image.regions["alloc"].base + 2048
        yield (OP_BLOCK, alloc_pc, self.ALLOC_FASTPATH_INSTR * 4, 256,
               False)
        if zero:
            step = 64
            for off in range(0, min(size, 16 * 1024), step):
                yield (OP_STORE, addr + off)
        self.stats.allocations += 1
        self._last_loh = (addr, size)
        return

    def free_large(self, addr: int, size: int) -> None:
        """Release a large object's segment for reuse."""
        self.heap.loh_free(addr, size)

    def maybe_collect(self):
        """Run a collection if the heap has requested one."""
        if not self.heap.needs_collection:
            return
        yield from self.gc.collect(self.heap, self.live_set,
                                   compact=self.compaction_enabled)

    # -- exceptional control flow ------------------------------------------
    def throw_exception(self):
        """First-chance exception: unwinder walk through CLR code."""
        self.stats.exceptions_thrown += 1
        yield (OP_EVENT, EV_EXCEPTION, None)
        rng = self.rng
        sp = self._stack_ptr

        def stack_addr() -> int:
            return sp + int(rng.random() * 64) * 64

        yield from self.image.regions["exception"].walk(
            rng, 2200, load_addr=stack_addr, store_addr=stack_addr)

    def contend_lock(self):
        """Contended monitor enter: spin, then futex into the kernel."""
        self.stats.contentions += 1
        yield (OP_EVENT, EV_CONTENTION, None)
        rng = self.rng
        lock_addr = REGION_STACK_BASE + 0x10000

        def lock_load() -> int:
            return lock_addr

        yield from self.image.regions["threading"].walk(
            rng, 600, load_addr=lock_load, store_addr=lock_load)
        if self.syscalls is not None:
            yield from self.syscalls.emit(SyscallKind.FUTEX, rng)
