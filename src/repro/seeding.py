"""Process-stable seeding.

Python's builtin ``hash()`` on strings is salted per interpreter process
(PYTHONHASHSEED), so it must never feed an experiment seed — results would
differ between runs.  :func:`stable_seed` uses CRC32 over the rendered
parts, which is stable across processes, platforms and Python versions.
"""

from __future__ import annotations

import zlib


def stable_seed(*parts: object) -> int:
    """Deterministic 31-bit seed from arbitrary hashable parts."""
    text = "\x1f".join(repr(p) for p in parts)
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF
