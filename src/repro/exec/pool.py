"""Multiprocessing job scheduler with store integration.

:func:`run_jobs` executes a list of :class:`~repro.exec.jobs.JobSpec`
and returns one outcome per job, in job order: a ``RunResult`` on
success or a :class:`JobFailure` for failures the caller asked to
tolerate.  Scheduling properties:

* **store first** — with a :class:`~repro.exec.store.ResultStore`, keys
  are computed once (one source-tree fingerprint for the batch) and
  hits are returned without simulating; fresh results are published to
  the store as they complete;
* **spawn-safe workers** — the worker entry point is a module-level
  function fed picklable ``JobSpec``\\ s, so every start method
  (``fork``, ``spawn``, ``forkserver``) works;
* **chunked dispatch** — jobs are handed to workers in chunks to
  amortize queue round-trips, with results streamed back per job;
* **per-job timeout** — a worker that exceeds ``timeout`` seconds on a
  job is terminated and replaced;
* **transient-failure retry** — a job whose worker died, timed out, or
  raised an ``OSError`` (the transient arm of the error taxonomy; see
  :mod:`repro.exec.campaign`) is requeued up to ``max_retries`` times
  with exponential ``retry_backoff``; exhaustion is recorded as a
  :class:`JobFailure` instead of raised, so one poisonous job cannot
  sink a corpus-scale batch;
* **graceful interruption** — ``should_stop`` (a zero-argument
  callable, e.g. the flag set by a SIGINT handler) is polled between
  completions; once true, no new work is dispatched, workers are torn
  down, and unfinished outcomes stay ``None`` so the caller can journal
  what completed and resume later;
* **serial fallback** — ``n_jobs=1`` (or a platform with no usable
  start method) runs everything in-process with identical semantics.

Because the simulator is seeded-deterministic, the outcome list is
bit-identical across ``n_jobs`` values and start methods — parallelism
is purely a wall-clock optimization.

Deterministic workload exceptions (raised *by the simulator*, not
``OSError``) are never retried.  Types listed in ``catch`` become
:class:`JobFailure` outcomes (the sweep OOM-cell semantics); anything
else propagates to the caller after the pool shuts down.
"""

from __future__ import annotations

import math
import pickle
import queue as queue_mod
import time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.exec import warm as warm_mod
from repro.exec.costmodel import CostModel, lpt_order
from repro.exec.jobs import JobSpec, code_fingerprint, execute_job
from repro.exec.progress import ProgressReporter
from repro.exec.store import ResultStore

#: indirection so tests (and embedders) can swap the job runner; workers
#: resolve it at call time, so under ``fork`` a patched value propagates
_execute = execute_job

#: seconds between scheduler health checks while waiting for results
_POLL_SECONDS = 0.05


class JobTimeout(RuntimeError):
    """A job exceeded the per-job timeout and its worker was killed."""


class WorkerCrash(RuntimeError):
    """A worker process died while a job was in flight."""


@dataclass
class JobFailure:
    """Terminal failure outcome for one job."""

    job: JobSpec
    error: BaseException
    #: True when the job got (and exhausted) at least one retry
    retried: bool = False
    #: execution attempts consumed (1 = failed on the first try)
    attempts: int = 1


def _default_start_method() -> str | None:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:       # cheapest where available (POSIX)
        return "fork"
    if "spawn" in methods:
        return "spawn"
    return None


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: chunks of ``(index, job[, span_ctx])`` in, per-job
    results out.

    Each result carries the job's wall-clock seconds (feeding the
    scheduler's cost model) and, when observability is on, the worker's
    cumulative metrics snapshot (merged once per worker pid by the
    parent).  Chunk items may carry the scheduler's span context as a
    third element, which parents the worker's ``pool.job`` spans across
    the process boundary.  On any failure the worker's warm-state cache
    (:mod:`repro.exec.warm`) is dropped before the error is forwarded —
    a job that died mid-consume may have poisoned a reused model, and a
    retry must start from cold state.
    """
    obs.configure_from_env()
    while True:
        chunk = task_queue.get()
        if chunk is None:
            obs.flush()
            return
        for item in chunk:
            index, job = item[0], item[1]
            parent = item[2] if len(item) > 2 else None
            started = time.perf_counter()
            with obs.span("pool.job", parent=parent,
                          workload=job.name, worker=worker_id) as sp:
                try:
                    ok, payload = True, _execute(job)
                except BaseException as exc:  # noqa: BLE001 — forwarded
                    warm_mod.evict_all()
                    ok, payload = False, exc
                    try:
                        pickle.dumps(payload)
                    except Exception:
                        payload = WorkerCrash(
                            f"worker exception not picklable: {exc!r}")
                    sp.set_attr("error", type(exc).__name__)
            seconds = time.perf_counter() - started
            if ok:
                obs.add("pool.jobs_executed")
                obs.observe("pool.job_seconds", seconds)
            else:
                obs.add("pool.jobs_failed")
            result_queue.put((index, worker_id, ok, payload, seconds,
                              obs.metrics_snapshot()))


@dataclass
class _Worker:
    wid: int
    process: object
    tasks: object
    #: index -> job for everything dispatched and not yet reported
    inflight: dict[int, JobSpec]
    deadline: float | None = None


def _spawn_worker(ctx, wid: int, result_queue) -> _Worker:
    tasks = ctx.SimpleQueue()
    process = ctx.Process(target=_worker_main,
                          args=(wid, tasks, result_queue), daemon=True)
    process.start()
    return _Worker(wid=wid, process=process, tasks=tasks, inflight={})


def run_jobs(jobs: Sequence[JobSpec], n_jobs: int = 1, *,
             store: ResultStore | None = None,
             progress=None,
             reporter: ProgressReporter | None = None,
             catch: tuple[type, ...] = (),
             timeout: float | None = None,
             max_retries: int = 1,
             retry_backoff: float = 0.0,
             should_stop: Callable[[], bool] | None = None,
             start_method: str | None = None,
             chunk_size: int | None = None,
             cost_model: CostModel | None = None) -> list:
    """Execute ``jobs`` and return per-job outcomes in job order.

    ``progress`` is the harness's ``(index, total, name)`` callback
    shape (invoked per completion, including store hits); pass a
    prebuilt ``reporter`` instead for throughput/ETA telemetry.  When
    ``should_stop`` fires, unfinished outcomes are left as ``None``.

    Scheduling is cost-aware: per-workload EWMA runtimes persisted next
    to the result store (``cost_model``, built automatically when a
    ``store`` is given) order misses longest-processing-time-first and
    feed the reporter's work-based ETA.  With no recorded costs the
    order degrades to FIFO — exactly the previous behavior.
    """
    jobs = list(jobs)
    with obs.span("pool.run_jobs", jobs=len(jobs), n_jobs=n_jobs):
        return _run_jobs(jobs, n_jobs, store, progress, reporter, catch,
                         timeout, max_retries, retry_backoff, should_stop,
                         start_method, chunk_size, cost_model)


def _run_jobs(jobs: list, n_jobs: int, store, progress, reporter, catch,
              timeout, max_retries, retry_backoff, should_stop,
              start_method, chunk_size, cost_model) -> list:
    total = len(jobs)
    outcomes: list = [None] * total
    if reporter is None:
        reporter = ProgressReporter(total, callback=progress)
    if total == 0 or (should_stop is not None and should_stop()):
        return outcomes

    keys: list[str] | None = None
    misses = list(range(total))
    if store is not None:
        fingerprint = code_fingerprint()
        keys = [job.cache_key(fingerprint) for job in jobs]
        if cost_model is None:
            cost_model = CostModel.for_store(store)

    method = start_method or _default_start_method()
    serial = n_jobs <= 1 or method is None

    if serial:
        estimates = [cost_model.estimate(job) if cost_model else None
                     for job in jobs]
        for est in estimates:
            if est is not None:
                reporter.add_work(est)
        for i in lpt_order(list(range(total)), estimates):
            if should_stop is not None and should_stop():
                break
            job = jobs[i]
            reporter.worker_busy(0, job.name)
            with obs.span("pool.job", workload=job.name, worker=0) as sp:
                outcomes[i], cached, seconds = _run_one_serial(
                    job, keys[i] if keys else None, store, catch,
                    max_retries, retry_backoff)
                if cached:
                    sp.set_attr("cached", True)
            reporter.worker_idle(0)
            if cached:
                obs.add("pool.store_hits")
            elif isinstance(outcomes[i], JobFailure):
                obs.add("pool.jobs_failed")
            else:
                obs.add("pool.jobs_executed")
                obs.observe("pool.job_seconds", seconds)
            if cost_model is not None and not cached and seconds > 0.0:
                cost_model.observe(job, seconds)
            reporter.job_done(job.name, worker_id=-1 if cached else 0,
                              cached=cached,
                              work=estimates[i] or 0.0)
        if cost_model is not None:
            cost_model.save()
        return outcomes

    # Resolve store hits up front so only real work is dispatched.
    if store is not None and keys is not None:
        still_missing = []
        for i in misses:
            hit = store.get(keys[i], _MISS)
            if hit is _MISS:
                still_missing.append(i)
            else:
                outcomes[i] = hit
                obs.add("pool.store_hits")
                reporter.job_done(jobs[i].name, worker_id=-1, cached=True)
        misses = still_missing
    if not misses:
        return outcomes

    # Longest-processing-time-first over the cost model's estimates
    # (unknown-cost jobs lead; no estimates at all keeps FIFO).
    estimates = {i: (cost_model.estimate(jobs[i]) if cost_model else None)
                 for i in misses}
    misses = lpt_order(misses, [estimates[i] for i in misses])
    for est in estimates.values():
        if est is not None:
            reporter.add_work(est)

    _run_parallel(jobs, misses, outcomes, keys, store, reporter,
                  catch, timeout, method, min(n_jobs, len(misses)),
                  chunk_size, max_retries, retry_backoff, should_stop,
                  cost_model, estimates)
    if cost_model is not None:
        cost_model.save()
    return outcomes


_MISS = object()


def _backoff_seconds(retry_backoff: float, attempt: int) -> float:
    """Exponential backoff before re-attempt ``attempt + 1``."""
    if retry_backoff <= 0.0:
        return 0.0
    return retry_backoff * (2.0 ** (attempt - 1))


def _run_one_serial(job: JobSpec, key: str | None,
                    store: ResultStore | None,
                    catch: tuple[type, ...],
                    max_retries: int = 1,
                    retry_backoff: float = 0.0
                    ) -> tuple[object, bool, float]:
    """One in-process job: ``(outcome, served_from_store, seconds)``.

    Mirrors the worker's failure hygiene: any exception from the job —
    retried or terminal — evicts the process's warm-state cache before
    the next attempt, so a poisoned reused model never leaks forward.
    """
    if store is not None and key is not None:
        hit = store.get(key, _MISS)
        if hit is not _MISS:
            return hit, True, 0.0
    attempt = 0
    while True:
        attempt += 1
        started = time.perf_counter()
        try:
            result = _execute(job)
            break
        except OSError as exc:
            warm_mod.evict_all()
            # Transient per the campaign taxonomy: retry with backoff.
            if attempt <= max_retries:
                delay = _backoff_seconds(retry_backoff, attempt)
                if delay:
                    time.sleep(delay)
                continue
            if isinstance(exc, catch):
                return JobFailure(job=job, error=exc,
                                  retried=attempt > 1,
                                  attempts=attempt), False, 0.0
            raise
        except catch as exc:
            warm_mod.evict_all()
            return JobFailure(job=job, error=exc,
                              attempts=attempt), False, 0.0
        except BaseException:
            warm_mod.evict_all()
            raise
    seconds = time.perf_counter() - started
    if store is not None and key is not None:
        store.put(key, result)
    return result, False, seconds


def _auto_chunk(n_misses: int, n_jobs: int) -> int:
    # ~4 chunks per worker balances dispatch overhead against tail
    # latency (a straggler holds at most 1/4 of its fair share).
    return max(1, min(8, math.ceil(n_misses / (n_jobs * 4))))


def _run_parallel(jobs, misses, outcomes, keys, store, reporter, catch,
                  timeout, method, n_jobs, chunk_size, max_retries,
                  retry_backoff, should_stop, cost_model=None,
                  estimates=None) -> None:
    import multiprocessing

    ctx = multiprocessing.get_context(method)
    chunk = chunk_size or _auto_chunk(len(misses), n_jobs)
    result_queue = ctx.Queue()
    workers = [_spawn_worker(ctx, wid, result_queue)
               for wid in range(n_jobs)]
    pending: deque[int] = deque(misses)
    attempts: Counter[int] = Counter()
    #: earliest monotonic time a retried job may be re-dispatched
    ready_at: dict[int, float] = {}
    done: set[int] = set()
    fatal: BaseException | None = None
    estimates = estimates or {}
    #: scheduler span the workers parent their job spans under
    dispatch_ctx = obs.current_context() if obs.enabled() else None
    #: worker pid -> latest cumulative metrics snapshot (merged once)
    worker_snapshots: dict[int, dict] = {}

    def stopping() -> bool:
        return should_stop is not None and should_stop()

    def work_of(index: int) -> float:
        return estimates.get(index) or 0.0

    def mark_running(worker: _Worker) -> None:
        """Tell the reporter what the worker is (approximately) on.

        Workers drain a chunk in dispatch order and stream one result
        per job, so the first not-yet-reported in-flight job is the one
        running now.
        """
        if worker.inflight:
            running = next(iter(worker.inflight))
            reporter.worker_busy(worker.wid, jobs[running].name)
        else:
            reporter.worker_idle(worker.wid)

    def assign(worker: _Worker) -> None:
        batch = []
        now = time.monotonic()
        for _ in range(len(pending)):
            if len(batch) >= chunk:
                break
            index = pending.popleft()
            if ready_at.get(index, 0.0) > now:
                pending.append(index)     # still backing off
                continue
            attempts[index] += 1
            batch.append((index, jobs[index]))
        if batch:
            worker.inflight.update(batch)
            worker.deadline = (time.monotonic() + timeout
                               if timeout else None)
            if dispatch_ctx is not None:
                worker.tasks.put([(i, job, dispatch_ctx)
                                  for i, job in batch])
            else:
                worker.tasks.put(batch)
            obs.gauge_set("pool.queue_depth", float(len(pending)))
            mark_running(worker)

    def requeue(index: int) -> None:
        obs.add("pool.retries")
        delay = _backoff_seconds(retry_backoff, attempts[index])
        if delay:
            ready_at[index] = time.monotonic() + delay
        pending.appendleft(index)

    def settle_infra_failure(worker: _Worker, make_error) -> None:
        """Requeue (with backoff) or fail every job the dead worker
        held, depending on remaining retry budget."""
        for index, job in list(worker.inflight.items()):
            if index in done:
                continue
            if attempts[index] > max_retries:
                outcomes[index] = JobFailure(
                    job=job, error=make_error(job),
                    retried=attempts[index] > 1,
                    attempts=attempts[index])
                done.add(index)
                reporter.job_done(job.name, worker.wid,
                                  work=work_of(index))
            else:
                requeue(index)
        worker.inflight.clear()
        reporter.worker_idle(worker.wid)

    try:
        while len(done) < len(misses) and fatal is None:
            if stopping():
                break
            for worker in workers:
                if not worker.inflight and pending:
                    if not worker.process.is_alive():
                        workers[worker.wid] = worker = _spawn_worker(
                            ctx, worker.wid, result_queue)
                    assign(worker)
            try:
                item = result_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                pass
            else:
                # 6-tuple from _worker_main; tolerate the legacy
                # 4/5-tuple shapes from embedders that swap the worker.
                index, wid, ok, payload = item[:4]
                seconds = item[4] if len(item) > 4 else 0.0
                snap = item[5] if len(item) > 5 else None
                if snap is not None:
                    worker_snapshots[snap.get("pid", wid)] = snap
                worker = workers[wid]
                worker.inflight.pop(index, None)
                worker.deadline = (time.monotonic() + timeout
                                   if timeout and worker.inflight
                                   else None)
                mark_running(worker)
                if index in done:       # duplicate after a retry race
                    continue
                if ok:
                    outcomes[index] = payload
                    done.add(index)
                    if store is not None and keys is not None:
                        store.put(keys[index], payload)
                    if cost_model is not None and seconds > 0.0:
                        cost_model.observe(jobs[index], seconds)
                    reporter.job_done(jobs[index].name, wid,
                                      work=work_of(index))
                elif (isinstance(payload, OSError)
                        and attempts[index] <= max_retries):
                    requeue(index)      # transient: retry with backoff
                elif isinstance(payload, catch):
                    outcomes[index] = JobFailure(
                        job=jobs[index], error=payload,
                        retried=attempts[index] > 1,
                        attempts=attempts[index])
                    done.add(index)
                    reporter.job_done(jobs[index].name, wid,
                                      work=work_of(index))
                else:
                    fatal = payload
                continue
            now = time.monotonic()
            for worker in workers:
                if not worker.inflight:
                    continue
                if not worker.process.is_alive():
                    obs.add("pool.worker_crashes")
                    settle_infra_failure(
                        worker, lambda job: WorkerCrash(
                            f"worker died running {job.name!r}"))
                    workers[worker.wid] = _spawn_worker(
                        ctx, worker.wid, result_queue)
                elif worker.deadline is not None and now > worker.deadline:
                    obs.add("pool.worker_timeouts")
                    worker.process.terminate()
                    worker.process.join(1.0)
                    settle_infra_failure(
                        worker, lambda job: JobTimeout(
                            f"{job.name!r} exceeded {timeout}s"))
                    workers[worker.wid] = _spawn_worker(
                        ctx, worker.wid, result_queue)
    finally:
        for worker in workers:
            if worker.process.is_alive():
                try:
                    worker.tasks.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
        result_queue.cancel_join_thread()
        result_queue.close()
        for snap in worker_snapshots.values():
            obs.merge_snapshot(snap)

    if fatal is not None:
        raise fatal
