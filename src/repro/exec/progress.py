"""Throughput / ETA / per-worker accounting for the execution engine.

:class:`ProgressReporter` consumes one ``job_done`` event per completed
job and exposes derived telemetry.  It *emits* through the harness's
long-standing progress-callback shape — a callable
``(index, total, name)`` — so every existing caller of
``characterize_suite(progress=...)`` works unchanged whether execution
is serial, parallel, or served from the result store.

Two optional event streams refine the telemetry when the scheduler has
them (``run_jobs`` wires both automatically):

* **work estimates** — :meth:`add_work` declares the expected seconds a
  job will take (from the :class:`~repro.exec.costmodel.CostModel`) and
  ``job_done(..., work=est)`` credits it on completion, so
  :attr:`eta_seconds` reflects remaining *work*, not remaining *count*
  — a batch of 9 micro-benchmarks plus one SPEC trace no longer claims
  90% done by count while 50% of the wall clock remains.  Without any
  estimates the ETA falls back to the historical count-based rate.
* **busy/idle transitions** — :meth:`worker_busy` / :meth:`worker_idle`
  track what each worker is running and since when, so
  :meth:`status_line` can show per-worker state and name the longest-
  running in-flight job (straggler visibility).
"""

from __future__ import annotations

import math
import time
from collections import Counter
from typing import Callable


class ProgressReporter:
    """Aggregate completion events; forward them to a callback.

    ``callback`` (optional) receives ``(completed - 1, total, name)`` on
    every completion — in a serial run this reproduces the historical
    pre-run ``(index, total, name)`` sequence exactly.
    """

    def __init__(self, total: int,
                 callback: Callable[[int, int, str], None] | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 ops_retired: Callable[[], int] | None = None):
        self.total = total
        self.callback = callback
        self._clock = clock
        if ops_retired is None:
            # Default to the native kernel's live progress counter: the
            # sum of retired ops across drained stats and *in-flight*
            # images, readable mid-run because the kernel updates its
            # scalar slots with the GIL released.  Pluggable for tests
            # and for pools whose workers run in other processes.
            try:
                from repro.uarch import native
                ops_retired = native.ops_retired
            except Exception:           # pragma: no cover - import guard
                ops_retired = None
        self._ops_retired = ops_retired
        self._started_at: float | None = None
        self.completed = 0
        self.cache_hits = 0
        self.per_worker: Counter[int] = Counter()
        #: declared / credited expected-seconds (0 when no cost model)
        self.work_total = 0.0
        self.work_done = 0.0
        #: worker id -> (job name, busy-since timestamp)
        self._active: dict[int, tuple[str, float]] = {}
        #: every worker id that ever reported a busy/idle transition
        self._workers_seen: set[int] = set()

    def start(self) -> None:
        """Mark the batch start (implicit on the first completion)."""
        if self._started_at is None:
            self._started_at = self._clock()

    def add_work(self, seconds: float) -> None:
        """Declare expected work for one scheduled job (cost estimate)."""
        if seconds > 0.0:
            self.work_total += seconds

    def job_done(self, name: str, worker_id: int = 0,
                 cached: bool = False, work: float = 0.0) -> None:
        """Record one completed job (``cached`` = served from the store).

        ``work`` credits the job's declared cost estimate back, keeping
        the work-based ETA consistent with :meth:`add_work`.
        """
        self.start()
        self.completed += 1
        self.per_worker[worker_id] += 1
        if cached:
            self.cache_hits += 1
        if work > 0.0:
            self.work_done += work
        if self.callback is not None:
            self.callback(self.completed - 1, self.total, name)

    # -- busy/idle transitions (parallel dispatch telemetry) -------------

    def worker_busy(self, worker_id: int, name: str) -> None:
        """Worker ``worker_id`` started running job ``name`` now."""
        self.start()
        self._workers_seen.add(worker_id)
        self._active[worker_id] = (name, self._clock())

    def worker_idle(self, worker_id: int) -> None:
        """Worker ``worker_id`` has nothing in flight."""
        self._workers_seen.add(worker_id)
        self._active.pop(worker_id, None)

    def active_jobs(self) -> dict[int, tuple[str, float]]:
        """Worker id -> (job name, seconds running) for busy workers."""
        now = self._clock()
        return {wid: (name, now - since)
                for wid, (name, since) in self._active.items()}

    def longest_running(self) -> tuple[str, float] | None:
        """(name, seconds) of the longest in-flight job, or ``None``."""
        active = self.active_jobs()
        if not active:
            return None
        return max(active.values(), key=lambda pair: pair[1])

    # -- derived telemetry ----------------------------------------------

    @property
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def throughput(self) -> float:
        """Completed jobs per second so far (0 before any completes)."""
        elapsed = self.elapsed
        if elapsed <= 0.0 or self.completed == 0:
            return 0.0
        return self.completed / elapsed

    @property
    def eta_seconds(self) -> float | None:
        """Estimated seconds to finish, or ``None`` when unknowable.

        Work-weighted when cost estimates were declared (remaining
        expected-seconds over the observed work rate); otherwise the
        count-based rate the reporter always supported.  Degenerate
        inputs — no completions yet, zero elapsed time (every finished
        job took ~0 s on a coarse clock), or a rate that is zero or
        non-finite — yield ``None`` rather than a division error or an
        infinite/negative estimate, and remaining work/count is clamped
        at zero so duplicate completion events can't drive the ETA
        negative.
        """
        if self.work_total > 0.0 and self.work_done > 0.0:
            elapsed = self.elapsed
            if elapsed > 0.0:
                rate = self.work_done / elapsed
                if rate > 0.0 and math.isfinite(rate):
                    return max(0.0, self.work_total - self.work_done) / rate
        rate = self.throughput
        if rate <= 0.0 or not math.isfinite(rate):
            return None
        return max(0, self.total - self.completed) / rate

    def worker_counts(self) -> dict[int, int]:
        """Completed-job count per worker id (-1 = cache hits)."""
        return dict(self.per_worker)

    def status_line(self) -> str:
        """One-line human summary (throughput, ETA, per-worker state)."""
        parts = [f"{self.completed}/{self.total} jobs"]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        rate = self.throughput
        if rate > 0.0:
            parts.append(f"{rate:.2f} jobs/s")
        eta = self.eta_seconds
        parts.append(f"ETA {eta:.1f}s" if eta is not None
                     else "ETA --:--")
        active = self.active_jobs()
        workers = " ".join(
            f"w{wid}:{self.per_worker.get(wid, 0)}"
            f"{'*' if wid in active else ''}"
            for wid in sorted(self._workers_seen
                              | {w for w in self.per_worker if w >= 0})
            if wid >= 0)
        if workers:
            parts.append(workers)
        if active:
            parts.append(f"busy {len(active)}")
        longest = self.longest_running()
        if longest is not None:
            name, secs = longest
            parts.append(f"longest {name} {secs:.1f}s")
        ops = self.sim_ops_retired()
        if ops:
            parts.append(f"{ops / 1e6:.1f}M sim-ops")
        return " | ".join(parts)

    def sim_ops_retired(self) -> int:
        """Simulated ops retired by the native kernel so far (0 when
        the kernel is absent or nothing ran on it)."""
        if self._ops_retired is None:
            return 0
        try:
            return int(self._ops_retired())
        except Exception:
            return 0
