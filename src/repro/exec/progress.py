"""Throughput / ETA / per-worker accounting for the execution engine.

:class:`ProgressReporter` consumes one ``job_done`` event per completed
job and exposes derived telemetry.  It *emits* through the harness's
long-standing progress-callback shape — a callable
``(index, total, name)`` — so every existing caller of
``characterize_suite(progress=...)`` works unchanged whether execution
is serial, parallel, or served from the result store.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Callable


class ProgressReporter:
    """Aggregate completion events; forward them to a callback.

    ``callback`` (optional) receives ``(completed - 1, total, name)`` on
    every completion — in a serial run this reproduces the historical
    pre-run ``(index, total, name)`` sequence exactly.
    """

    def __init__(self, total: int,
                 callback: Callable[[int, int, str], None] | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.total = total
        self.callback = callback
        self._clock = clock
        self._started_at: float | None = None
        self.completed = 0
        self.cache_hits = 0
        self.per_worker: Counter[int] = Counter()

    def start(self) -> None:
        """Mark the batch start (implicit on the first completion)."""
        if self._started_at is None:
            self._started_at = self._clock()

    def job_done(self, name: str, worker_id: int = 0,
                 cached: bool = False) -> None:
        """Record one completed job (``cached`` = served from the store)."""
        self.start()
        self.completed += 1
        self.per_worker[worker_id] += 1
        if cached:
            self.cache_hits += 1
        if self.callback is not None:
            self.callback(self.completed - 1, self.total, name)

    # -- derived telemetry ----------------------------------------------

    @property
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def throughput(self) -> float:
        """Completed jobs per second so far (0 before any completes)."""
        elapsed = self.elapsed
        if elapsed <= 0.0 or self.completed == 0:
            return 0.0
        return self.completed / elapsed

    @property
    def eta_seconds(self) -> float | None:
        """Estimated seconds to finish, or ``None`` before any data."""
        rate = self.throughput
        if rate == 0.0:
            return None
        return (self.total - self.completed) / rate

    def worker_counts(self) -> dict[int, int]:
        """Completed-job count per worker id (-1 = cache hits)."""
        return dict(self.per_worker)

    def status_line(self) -> str:
        """One-line human summary (throughput, ETA, per-worker counts)."""
        parts = [f"{self.completed}/{self.total} jobs"]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        rate = self.throughput
        if rate > 0.0:
            parts.append(f"{rate:.2f} jobs/s")
        eta = self.eta_seconds
        if eta is not None:
            parts.append(f"ETA {eta:.1f}s")
        workers = " ".join(
            f"w{wid}:{count}" for wid, count
            in sorted(self.per_worker.items()) if wid >= 0)
        if workers:
            parts.append(workers)
        return " | ".join(parts)
