"""On-disk content-addressed result store.

Entries are pickles keyed by :meth:`~repro.exec.jobs.JobSpec.cache_key`
hex digests and laid out as ``<root>/v1/<key[:2]>/<key>.pkl`` (the
two-character fan-out keeps directories small at paper-corpus scale).
Writes go to a temp file in the same directory and are published with
``os.replace``, so concurrent readers — parallel pytest invocations,
several CLI runs — never observe a half-written entry.  Corrupt or
unreadable entries are treated as misses and deleted.

The top-level ``v1`` component is the layout version: a future
incompatible layout bumps it and coexists with (rather than
misinterprets) old entries.  ``gc()`` and ``stats()`` are the
maintenance surface.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

LAYOUT_VERSION = "v1"

_MISSING = object()


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of store occupancy."""

    root: Path
    entries: int
    total_bytes: int


class ResultStore:
    """Content-addressed pickle store with atomic publication."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def _base(self) -> Path:
        return self.root / LAYOUT_VERSION

    def path_for(self, key: str) -> Path:
        return self._base / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str, default=None) -> Any:
        """The stored value, or ``default`` on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return default
        except Exception:
            # Torn write from a killed process or an entry pickled
            # against classes that no longer unpickle (unpickling
            # surfaces anything from UnpicklingError to ValueError):
            # drop it and treat as a miss.
            path.unlink(missing_ok=True)
            return default

    def put(self, key: str, value) -> Path:
        """Atomically publish ``value`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        try:
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def keys(self) -> Iterator[str]:
        if not self._base.exists():
            return
        for path in sorted(self._base.glob("*/*.pkl")):
            yield path.stem

    def gc(self, keep: set[str] | None = None,
           max_age_seconds: float | None = None) -> int:
        """Drop entries outside ``keep`` and/or older than the age cap.

        Also sweeps orphaned temp files from crashed writers.  Returns
        the number of files removed.
        """
        removed = 0
        if not self._base.exists():
            return removed
        now = time.time()
        for tmp in self._base.glob("*/.*.tmp"):
            tmp.unlink(missing_ok=True)
            removed += 1
        for path in self._base.glob("*/*.pkl"):
            stale = ((keep is not None and path.stem not in keep)
                     or (max_age_seconds is not None
                         and now - path.stat().st_mtime > max_age_seconds))
            if stale:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        if self._base.exists():
            for path in self._base.glob("*/*.pkl"):
                entries += 1
                total += path.stat().st_size
        return StoreStats(root=self.root, entries=entries,
                          total_bytes=total)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
