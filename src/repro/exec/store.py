"""On-disk content-addressed result store with integrity framing.

Entries are CRC32-framed pickles keyed by
:meth:`~repro.exec.jobs.JobSpec.cache_key` hex digests and laid out as
``<root>/v2/<key[:2]>/<key>.pkl`` (the two-character fan-out keeps
directories small at paper-corpus scale).  Each file is a fixed header —
magic, CRC32 of the payload, payload length — followed by the pickle
bytes, so a torn write from a killed process, a flipped bit, or an
entry pickled against classes that no longer unpickle is *detected*
rather than trusted.

Writes go to a temp file in the same directory, are fsync'd, and are
published with ``os.replace``, so concurrent readers — parallel pytest
invocations, several CLI runs — never observe a half-written entry.
Corrupt or unreadable entries are quarantined to ``<root>/corrupt/``
(kept for post-mortem, out of the addressable namespace) and treated as
misses, so one bad entry left by a crashed writer can never poison
later runs with the same key.

``gc()`` takes a cross-process exclusive file lock (``<root>/.lock``)
and writers take it shared, so a concurrent ``gc()`` cannot sweep a
temp file out from under an in-flight ``put()``.

The top-level ``v2`` component is the layout version: v1 stored bare
pickles; bumping the version lets the framed layout coexist with (rather
than misinterpret) old entries.  ``gc()``, ``verify()`` and ``stats()``
are the maintenance surface.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro import obs
from repro.exec.backend import LocalDirBackend, StoreBackend, backend_for

LAYOUT_VERSION = "v2"

#: frame header: magic, CRC32 of payload, payload byte length
_FRAME = struct.Struct("<4sIQ")
_MAGIC = b"RPS2"

_MISSING = object()


class StoreCorruption(ValueError):
    """An entry's frame failed validation (torn write / bit rot)."""


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of store occupancy."""

    root: Path
    entries: int
    total_bytes: int
    #: entries quarantined to ``corrupt/`` after failing validation
    corrupt: int = 0


class ResultStore:
    """Content-addressed pickle store with CRC framing and quarantine.

    ``backend`` selects the physical-storage discipline
    (:mod:`repro.exec.backend`): the default
    :class:`~repro.exec.backend.LocalDirBackend` preserves the
    historical local-directory semantics, while a
    :class:`~repro.exec.backend.SharedDirBackend` lets a whole worker
    fleet address one store on a shared mount.  Framing, quarantine and
    layout are backend-independent — the backend only changes how bytes
    are published, read, and locked.
    """

    def __init__(self, root: str | Path | None = None, *,
                 backend: StoreBackend | str | None = None):
        if backend is None:
            if root is None:
                raise TypeError("ResultStore needs a root or a backend")
            backend = LocalDirBackend(root)
        else:
            backend = backend_for(backend)
            if root is not None and Path(root) != backend.root:
                raise ValueError(
                    f"root {root!r} disagrees with backend "
                    f"{backend.describe()!r}; pass one or the other")
        self.backend = backend
        self.root = backend.root

    @property
    def _base(self) -> Path:
        return self.root / LAYOUT_VERSION

    @property
    def corrupt_dir(self) -> Path:
        return self.root / "corrupt"

    def path_for(self, key: str) -> Path:
        return self._base / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # -- locking --------------------------------------------------------

    def _lock(self, exclusive: bool):
        """Cross-process advisory lock: shared for writers, exclusive
        for ``gc()`` — a sweep cannot race a publication."""
        return self.backend.lock(exclusive=exclusive)

    # -- integrity ------------------------------------------------------

    @staticmethod
    def _check_frame(data: bytes) -> bytes:
        """Validate the frame and return the payload bytes."""
        if len(data) < _FRAME.size:
            raise StoreCorruption("truncated frame header")
        magic, crc, length = _FRAME.unpack_from(data)
        if magic != _MAGIC:
            raise StoreCorruption(f"bad magic {magic!r}")
        payload = data[_FRAME.size:]
        if len(payload) != length:
            raise StoreCorruption(
                f"payload length {len(payload)} != framed {length}")
        if zlib.crc32(payload) != crc:
            raise StoreCorruption("payload CRC mismatch")
        return payload

    def _quarantine(self, path: Path) -> Path | None:
        """Move a bad entry to ``corrupt/`` (never deleted, never read)."""
        qdir = self.corrupt_dir
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / path.name
        n = 0
        while dest.exists():
            n += 1
            dest = qdir / f"{path.name}.{n}"
        try:
            self.backend.publish(path, dest)
        except FileNotFoundError:
            return None
        return dest

    # -- core operations ------------------------------------------------

    def get(self, key: str, default=None) -> Any:
        """The stored value, or ``default`` on miss/corruption.

        A corrupt entry — truncated frame, CRC mismatch, unpicklable
        payload — is quarantined and reported as a miss, so later runs
        with the same key recompute instead of crashing.
        """
        path = self.path_for(key)
        try:
            data = self.backend.read_bytes(path)
        except FileNotFoundError:
            obs.add("store.get_misses")
            return default
        except OSError:
            obs.add("store.get_misses")
            return default
        try:
            value = pickle.loads(self._check_frame(data))
        except Exception:
            self._quarantine(path)
            obs.add("store.corrupt_quarantined")
            obs.add("store.get_misses")
            return default
        obs.add("store.get_hits")
        return value

    def put(self, key: str, value) -> Path:
        """Atomically publish ``value`` under ``key`` (framed, fsync'd)."""
        path = self.path_for(key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock(exclusive=False):
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".{key}.{os.getpid()}.tmp"
            try:
                with tmp.open("wb") as fh:
                    fh.write(_FRAME.pack(_MAGIC, zlib.crc32(payload),
                                         len(payload)))
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.backend.publish(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
        obs.add("store.put_count")
        obs.add("store.put_bytes", float(_FRAME.size + len(payload)))
        return path

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def keys(self) -> Iterator[str]:
        if not self._base.exists():
            return
        for path in sorted(self._base.glob("*/*.pkl")):
            yield path.stem

    # -- maintenance ----------------------------------------------------

    def _scan(self) -> tuple[list[tuple[Path, int]], int]:
        """One directory walk: ``([(entry path, size), ...], corrupt)``.

        Both :meth:`verify` and :meth:`stats` derive everything from a
        single ``os.scandir`` sweep — the ``DirEntry`` stat is served
        from the directory read, so no per-field re-walk and no extra
        ``stat()`` round-trip per entry.
        """
        entries: list[tuple[Path, int]] = []
        try:
            fans = sorted(os.scandir(self._base), key=lambda e: e.name)
        except FileNotFoundError:
            fans = []
        for fan in fans:
            if not fan.is_dir():
                continue
            with os.scandir(fan.path) as files:
                for f in sorted(files, key=lambda e: e.name):
                    if f.name.endswith(".pkl") and f.is_file():
                        entries.append((Path(f.path), f.stat().st_size))
        corrupt = 0
        try:
            with os.scandir(self.corrupt_dir) as it:
                corrupt = sum(1 for _ in it)
        except FileNotFoundError:
            pass
        return entries, corrupt

    def verify(self) -> list[str]:
        """Frame-check every entry; quarantine and return the bad keys.

        Cheaper than ``get()`` per entry (no unpickling) — the integrity
        sweep a long campaign runs before trusting a warm store.
        """
        bad: list[str] = []
        entries, _ = self._scan()
        for path, _size in entries:
            try:
                self._check_frame(self.backend.read_bytes(path))
            except Exception:
                self._quarantine(path)
                bad.append(path.stem)
        return bad

    def gc(self, keep: set[str] | None = None,
           max_age_seconds: float | None = None,
           purge_quarantine: bool = False) -> int:
        """Drop entries outside ``keep`` and/or older than the age cap.

        Also sweeps orphaned temp files from crashed writers and — with
        ``purge_quarantine`` — the ``corrupt/`` directory.  Holds the
        exclusive store lock, so a concurrent ``put()`` (shared lock)
        can never have its temp file swept mid-publication.  Returns the
        number of files removed.
        """
        removed = 0
        with self._lock(exclusive=True):
            if purge_quarantine and self.corrupt_dir.exists():
                for path in self.corrupt_dir.iterdir():
                    path.unlink(missing_ok=True)
                    removed += 1
            if not self._base.exists():
                return removed
            now = time.time()
            for tmp in self._base.glob("*/.*.tmp"):
                tmp.unlink(missing_ok=True)
                removed += 1
            for path in self._base.glob("*/*.pkl"):
                stale = ((keep is not None and path.stem not in keep)
                         or (max_age_seconds is not None
                             and now - path.stat().st_mtime
                             > max_age_seconds))
                if stale:
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed

    def stats(self) -> StoreStats:
        entries, corrupt = self._scan()
        return StoreStats(root=self.root, entries=len(entries),
                          total_bytes=sum(size for _, size in entries),
                          corrupt=corrupt)

    def __repr__(self) -> str:
        if type(self.backend) is LocalDirBackend:
            return f"ResultStore({str(self.root)!r})"
        return f"ResultStore(backend={self.backend.describe()!r})"
