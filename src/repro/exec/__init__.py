"""Parallel execution engine with a content-addressed result store.

``repro.exec`` turns suite/sweep execution from "loop over
:func:`~repro.harness.runner.run_workload`" into a scheduled job system:

* :mod:`repro.exec.jobs` — :class:`JobSpec` describes one run; its
  :meth:`~JobSpec.cache_key` is a stable content hash of everything that
  determines the result, including a fingerprint of the ``repro`` source
  tree, so cached results invalidate automatically when simulator code
  changes;
* :mod:`repro.exec.store` — :class:`ResultStore`, an on-disk
  content-addressed store (atomic writes, versioned layout, ``gc`` and
  ``stats`` maintenance);
* :mod:`repro.exec.pool` — :func:`run_jobs`, a multiprocessing scheduler
  with chunked dispatch, per-job timeouts, one crash retry, and a serial
  in-process fallback;
* :mod:`repro.exec.progress` — :class:`ProgressReporter`, throughput /
  ETA / per-worker accounting behind the existing ``(i, total, name)``
  progress-callback shape.

The simulator is seeded-deterministic, so parallel execution is
bit-identical to serial — ``characterize_suite(specs, m, jobs=8)``
returns exactly the matrix of ``jobs=1``, only faster.
"""

from repro.exec.jobs import JobSpec, code_fingerprint, execute_job
from repro.exec.pool import JobFailure, JobTimeout, WorkerCrash, run_jobs
from repro.exec.progress import ProgressReporter
from repro.exec.store import ResultStore, StoreStats

__all__ = [
    "JobSpec", "code_fingerprint", "execute_job",
    "JobFailure", "JobTimeout", "WorkerCrash", "run_jobs",
    "ProgressReporter",
    "ResultStore", "StoreStats",
]
