"""Parallel execution engine with a content-addressed result store.

``repro.exec`` turns suite/sweep execution from "loop over
:func:`~repro.harness.runner.run_workload`" into a scheduled job system:

* :mod:`repro.exec.jobs` — :class:`JobSpec` describes one run; its
  :meth:`~JobSpec.cache_key` is a stable content hash of everything that
  determines the result, including a fingerprint of the ``repro`` source
  tree, so cached results invalidate automatically when simulator code
  changes;
* :mod:`repro.exec.store` — :class:`ResultStore`, an on-disk
  content-addressed store (CRC32-framed entries, atomic fsync'd writes,
  quarantine of corrupt entries, cross-process locked ``gc``,
  ``verify`` and ``stats`` maintenance);
* :mod:`repro.exec.pool` — :func:`run_jobs`, a multiprocessing scheduler
  with chunked dispatch, per-job timeouts, transient-failure retry with
  backoff, graceful interruption, and a serial in-process fallback;
* :mod:`repro.exec.campaign` — the campaign failure model:
  :class:`WorkloadFailure` records, the transient/permanent error
  taxonomy, the append-only :class:`CampaignManifest` journal behind
  ``--resume``, and :func:`graceful_shutdown` signal handling;
* :mod:`repro.exec.chaos` — deterministic fault injection (worker
  crashes, hangs, flaky ``OSError``\\ s, corrupted/truncated store
  writes) that the chaos tests use to prove every recovery path;
* :mod:`repro.exec.progress` — :class:`ProgressReporter`, throughput /
  ETA / per-worker accounting behind the existing ``(i, total, name)``
  progress-callback shape, with work-based ETA and busy/idle straggler
  visibility when the scheduler supplies cost estimates;
* :mod:`repro.exec.costmodel` — :class:`CostModel`, persisted
  per-workload EWMA runtimes (JSON sidecar next to the result store)
  driving :func:`lpt_order` longest-processing-time-first dispatch;
* :mod:`repro.exec.warm` — per-worker warm-state reuse (pristine model
  snapshots, decoded trace chunks) with eviction on any job failure.

The simulator is seeded-deterministic, so parallel execution is
bit-identical to serial — ``characterize_suite(specs, m, jobs=8)``
returns exactly the matrix of ``jobs=1``, only faster.
"""

from repro.exec.backend import (LocalDirBackend, SharedDirBackend,
                                StoreBackend, backend_for)
from repro.exec.campaign import (CampaignInterrupted, CampaignManifest,
                                 WorkloadFailure, classify_error,
                                 graceful_shutdown)
from repro.exec.costmodel import CostModel, cost_key, lpt_order
from repro.exec.jobs import JobSpec, code_fingerprint, execute_job
from repro.exec.pool import JobFailure, JobTimeout, WorkerCrash, run_jobs
from repro.exec.progress import ProgressReporter
from repro.exec.store import (ResultStore, StoreCorruption, StoreStats)
from repro.exec.warm import WarmCache

__all__ = [
    "JobSpec", "code_fingerprint", "execute_job",
    "JobFailure", "JobTimeout", "WorkerCrash", "run_jobs",
    "CampaignInterrupted", "CampaignManifest", "WorkloadFailure",
    "classify_error", "graceful_shutdown",
    "ProgressReporter",
    "CostModel", "cost_key", "lpt_order",
    "WarmCache",
    "ResultStore", "StoreCorruption", "StoreStats",
    "StoreBackend", "LocalDirBackend", "SharedDirBackend", "backend_for",
]
