"""Degraded-mode primitives: typed unavailability, retries, breakers.

The fabric's failure philosophy (DESIGN §8, §10) is that infrastructure
faults are *weather*, not emergencies — but the code that rides weather
out needs three small tools it kept reimplementing ad hoc:

* :class:`BackendUnavailable` — the typed "the storage seam itself is
  down" error.  It subclasses ``OSError`` so every existing transient
  classifier (the campaign taxonomy, the pool's retry arm, the store's
  miss-on-OSError reads) handles it without modification, while callers
  that *want* to distinguish infrastructure outage from a single bad
  file can catch it specifically.
* :func:`retry_call` / :class:`RetryPolicy` — bounded retry with
  exponential backoff and a hard wall-clock deadline.  Unbounded or
  fixed-count retry loops are exactly the bug this replaces: a loop
  that spins on a stale NFS handle forever looks identical to a hang.
* :class:`CircuitBreaker` — after ``threshold`` consecutive failures
  the circuit opens and calls fail fast with
  :class:`BackendUnavailable` for ``cooldown`` seconds, then a single
  probe is let through (half-open).  A worker facing a dead store
  keeps *running* work (results spool locally) instead of stalling in
  kernel-side NFS timeouts on every operation.

All three are dependency-free and thread-safe where it matters (the
breaker is shared between a worker's main loop and its heartbeater
thread).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


class BackendUnavailable(OSError):
    """The storage backend is (transiently) unreachable.

    Raised by bounded retry loops that exhausted their deadline and by
    open circuit breakers.  Subclasses ``OSError`` so the existing
    transient-failure taxonomy and miss-on-error read paths treat it
    correctly without knowing it exists.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with a hard wall-clock deadline."""

    #: attempts beyond the first (0 = one try, no retry)
    retries: int = 3
    #: sleep before the first retry; doubles each retry
    backoff: float = 0.05
    #: backoff ceiling per sleep
    max_backoff: float = 1.0
    #: hard wall-clock budget across all attempts (None = attempts only)
    deadline: float | None = 5.0

    def delays(self):
        """The backoff schedule, one delay per retry."""
        delay = self.backoff
        for _ in range(self.retries):
            yield delay
            delay = min(delay * 2.0, self.max_backoff)


def retry_call(fn, *, policy: RetryPolicy = RetryPolicy(),
               retry_on: tuple[type, ...] = (OSError,),
               on_retry=None):
    """Call ``fn()`` riding out transient errors per ``policy``.

    Retries on ``retry_on`` with exponential backoff until the retry
    budget or the wall-clock deadline is exhausted, then raises
    :class:`BackendUnavailable` chained to the last error.  A breaker
    fast-fail (``BackendUnavailable`` from an open circuit) is never
    retried — the breaker already decided the backend is down.
    """
    start = time.monotonic()
    last: BaseException | None = None
    for attempt, delay in enumerate([None, *policy.delays()]):
        if delay is not None:
            if policy.deadline is not None \
                    and time.monotonic() + delay - start > policy.deadline:
                break
            time.sleep(delay)
        try:
            return fn()
        except BackendUnavailable:
            raise
        except retry_on as exc:
            last = exc
            if on_retry is not None:
                on_retry(attempt + 1, exc)
    raise BackendUnavailable(
        f"gave up after {policy.retries + 1} attempt(s) / "
        f"{time.monotonic() - start:.2f}s: {last}") from last


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    Closed (normal) → ``threshold`` consecutive failures → open (every
    call fails fast with :class:`BackendUnavailable`) → after
    ``cooldown`` seconds one probe call is allowed through (half-open);
    its success closes the circuit, its failure re-opens it for another
    cooldown.  ``clock`` is injectable for tests.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 5.0,
                 clock=time.monotonic):
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.cooldown:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May a call proceed right now? (claims the half-open probe)"""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.cooldown:
                return False
            if self._probing:
                return False
            self._probing = True        # this caller is the probe
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.threshold:
                self._opened_at = self._clock()

    def call(self, fn):
        """Run ``fn()`` under the breaker (fast-fail when open)."""
        if not self.allow():
            raise BackendUnavailable(
                f"circuit open ({self._failures} consecutive failures)")
        try:
            result = fn()
        except BackendUnavailable:
            self.record_failure()
            raise
        except OSError:
            self.record_failure()
            raise
        self.record_success()
        return result

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._failures})")
