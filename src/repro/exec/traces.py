"""Content-addressed trace store: generate each trace once, replay many.

Multi-machine experiments (cross-machine validation, x86-vs-Arm, machine
sweeps) run the *same* op stream through different core geometries — the
stream depends only on the workload model, not on the microarchitecture.
This store keys recorded traces (:mod:`repro.perf.trace_io`) by exactly
the trace-relevant inputs:

* workload spec, seed, ablation flags (``reuse_code_pages``,
  ``compaction_enabled``),
* generation-side sizing (``code_bloat`` — the only machine parameter
  that reaches the generator — plus GC/heap config),
* a fingerprint of the generation-side sources
  (:func:`trace_fingerprint`).

Crucially the key excludes the microarchitectural model, so editing
``uarch/`` or re-running on a second machine config replays the cached
trace instead of regenerating it.  Entries carry a JSON sidecar with the
instruction count and the program's premap ranges, so replay can
reconstruct the initial VM state without building the program at all.

Layout mirrors :class:`repro.exec.store.ResultStore`:
``<root>/traces/v1/<key[:2]>/<key>.trace`` + ``<key>.json``, published
atomically with ``os.replace``.  The sidecar records the CRC32 and byte
length of the trace file; :meth:`TraceStore.lookup` validates both, so
a truncated or bit-rotted trace is quarantined to
``<root>/traces/corrupt/`` and regenerated instead of feeding a decode
error into the runner mid-replay.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path

from repro import obs
from repro.exec.jobs import canonical_encode
from repro.perf.trace_io import record_buffers, replay_buffers
from repro.trace import TraceBuffer

TRACE_LAYOUT_VERSION = "v1"

#: bump when the key schema changes (invalidates every old trace)
TRACE_KEY_VERSION = "1"

#: chunk size used when generating store entries
_CHUNK_INSTRUCTIONS = 65536

#: headroom recorded beyond the first requester's need, so machine
#: configs with slightly larger dynamic instruction budgets still hit
_SLACK = 1.10

#: generation-side subtrees/modules, relative to the ``repro`` package —
#: the microarchitecture (uarch/, most of perf/, harness/, exec/) never
#: influences the op stream and must not invalidate traces
_TRACE_SOURCES = ("trace.py", "seeding.py", "codegen.py", "workloads",
                  "runtime", "kernel", "perf/trace_io.py")

_TRACE_FPRINT: dict[Path, str] = {}


def trace_fingerprint(root: str | Path | None = None, *,
                      refresh: bool = False) -> str:
    """Stable hash of the trace-*generation* sources only.

    The deliberate counterpart of
    :func:`repro.exec.jobs.code_fingerprint` (which hashes the whole
    tree): a pipeline-model edit changes result-cache keys but keeps
    recorded traces valid.
    """
    if root is None:
        import repro
        root = Path(repro.__file__).parent
    root = Path(root).resolve()
    if not refresh and root in _TRACE_FPRINT:
        return _TRACE_FPRINT[root]
    digest = hashlib.sha256()
    for rel in _TRACE_SOURCES:
        path = root / rel
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for f in files:
            if not f.exists():
                continue
            digest.update(f.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(f.read_bytes())
            digest.update(b"\0")
    _TRACE_FPRINT[root] = digest.hexdigest()
    return _TRACE_FPRINT[root]


class TraceStore:
    """Content-addressed store of recorded op-stream traces.

    ``backend`` (:mod:`repro.exec.backend`) selects the physical
    discipline exactly as for :class:`~repro.exec.store.ResultStore`:
    local directory by default, shared-directory semantics (rename
    durability, stale-handle-tolerant reads) when a fleet of hosts
    shares one trace store.
    """

    def __init__(self, root: str | Path | None = None, *,
                 backend=None):
        from repro.exec.backend import LocalDirBackend, backend_for
        if backend is None:
            if root is None:
                raise TypeError("TraceStore needs a root or a backend")
            backend = LocalDirBackend(root)
        else:
            backend = backend_for(backend)
        self.backend = backend
        self.root = backend.root

    @property
    def _base(self) -> Path:
        return self.root / "traces" / TRACE_LAYOUT_VERSION

    def trace_path(self, key: str) -> Path:
        return self._base / key[:2] / f"{key}.trace"

    def meta_path(self, key: str) -> Path:
        return self._base / key[:2] / f"{key}.json"

    @property
    def corrupt_dir(self) -> Path:
        return self.root / "traces" / "corrupt"

    # ------------------------------------------------------------------
    def key_for(self, spec, *, seed: int, code_bloat: float,
                gc_config, heap_config,
                reuse_code_pages: bool = False,
                compaction_enabled: bool = True,
                fingerprint: str | None = None) -> str:
        """Content hash identifying one workload's op stream."""
        if fingerprint is None:
            fingerprint = trace_fingerprint()
        payload = canonical_encode(
            (TRACE_KEY_VERSION, fingerprint, spec, seed,
             round(code_bloat, 6), gc_config, heap_config,
             reuse_code_pages, compaction_enabled))
        return hashlib.sha256(payload).hexdigest()

    def meta(self, key: str) -> dict | None:
        """The entry's sidecar metadata, or ``None`` on miss/corruption."""
        try:
            with self.meta_path(key).open() as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self.quarantine(key)
            return None

    def _verify(self, key: str, meta: dict) -> bool:
        """Check the trace file against the sidecar's size and CRC32.

        Entries written before checksums existed (no ``crc32`` field)
        pass — the runner-level :class:`TraceFormatError` fallback still
        covers them.
        """
        expected_crc = meta.get("crc32")
        if expected_crc is None:
            return True
        path = self.trace_path(key)
        try:
            if (meta.get("bytes") is not None
                    and path.stat().st_size != meta["bytes"]):
                return False
            crc = 0
            with path.open("rb") as fh:
                while chunk := fh.read(1 << 20):
                    crc = zlib.crc32(chunk, crc)
            return crc == expected_crc
        except OSError:
            return False

    def quarantine(self, key: str) -> None:
        """Move a bad entry out of the addressable namespace."""
        qdir = self.corrupt_dir
        for path in (self.trace_path(key), self.meta_path(key)):
            if not path.exists():
                continue
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / path.name
            n = 0
            while dest.exists():
                n += 1
                dest = qdir / f"{path.name}.{n}"
            self.backend.publish(path, dest)

    def lookup(self, key: str, required_instructions: int) -> dict | None:
        """Metadata if a long-enough *valid* trace exists, else ``None``.

        A trace whose bytes no longer match the recorded checksum —
        truncated by a killed writer, corrupted on disk — is quarantined
        and reported as a miss, so :meth:`ensure` regenerates it.
        """
        meta = self.meta(key)
        if meta is None or not self.trace_path(key).exists():
            return None
        if meta.get("n_instructions", 0) < required_instructions:
            return None
        if not self._verify(key, meta):
            self.quarantine(key)
            obs.add("traces.corrupt_quarantined")
            return None
        return meta

    def ensure(self, key: str, required_instructions: int,
               make_program) -> tuple[dict, bool]:
        """Guarantee a trace of ≥ ``required_instructions`` under ``key``.

        ``make_program`` is a zero-argument callable building the
        workload program (only invoked on miss).  Returns ``(meta,
        generated)`` — ``generated`` is ``False`` on a warm hit, which
        is what lets the second machine config of a multi-machine suite
        skip trace generation entirely.
        """
        meta = self.lookup(key, required_instructions)
        if meta is not None:
            obs.add("traces.store_hits")
            return meta, False
        obs.add("traces.store_misses")
        with obs.span("trace.generate", key=key[:12],
                      instructions=required_instructions):
            return self._generate(key, required_instructions, make_program)

    def _generate(self, key: str, required_instructions: int,
                  make_program) -> tuple[dict, bool]:
        program = make_program()
        target = int(required_instructions * _SLACK)

        def chunks():
            emitted = 0
            fill = getattr(program, "fill_buffer", None)
            ops = None if fill is not None else program.ops()
            while emitted < target:
                buf = TraceBuffer()
                if fill is not None:
                    fill(buf, _CHUNK_INSTRUCTIONS)
                else:
                    buf.fill_from(ops, _CHUNK_INSTRUCTIONS)
                emitted += buf.n_instructions
                yield buf

        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.trace.tmp"
        try:
            n_instr = record_buffers(chunks(), tmp)
            crc = 0
            size = 0
            with tmp.open("rb") as fh:
                while chunk := fh.read(1 << 20):
                    crc = zlib.crc32(chunk, crc)
                    size += len(chunk)
            self.backend.publish(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        meta = {
            "n_instructions": n_instr,
            "premap_ranges": [list(r) for r in program.premap_ranges()],
            "crc32": crc,
            "bytes": size,
        }
        mtmp = path.parent / f".{key}.{os.getpid()}.json.tmp"
        try:
            mtmp.write_text(json.dumps(meta))
            self.backend.publish(mtmp, self.meta_path(key))
        finally:
            mtmp.unlink(missing_ok=True)
        return meta, True

    def replay(self, key: str, *, use_mmap: bool | None = None):
        """Sealed :class:`TraceBuffer` chunks of the stored trace.

        ``use_mmap`` forwards to
        :func:`~repro.perf.trace_io.replay_buffers`: default (None)
        memory-maps and streams the file so peak RSS stays bounded by
        one chunk; ``False`` forces the whole-file in-memory read.
        """
        return replay_buffers(self.trace_path(key), use_mmap=use_mmap)

    def delete(self, key: str) -> bool:
        removed = False
        for path in (self.trace_path(key), self.meta_path(key)):
            if path.exists():
                path.unlink()
                removed = True
        return removed

    def keys(self):
        if not self._base.exists():
            return
        for path in sorted(self._base.glob("*/*.trace")):
            yield path.stem

    def __repr__(self) -> str:
        return f"TraceStore({str(self.root)!r})"
