"""Per-worker warm state reused across jobs (models + decoded traces).

A pool worker runs many jobs back to back, and campaign batches repeat
the same machine configs and the same recorded traces (multi-machine
suites, GC/heap sweeps over one workload set).  Two kinds of state are
safely reusable across jobs *within one worker process*:

* **pristine model snapshots** — a freshly constructed
  ``(VirtualMemory, Core)`` pair for a given
  :class:`~repro.uarch.machine.MachineConfig`, captured by pickling it
  *before* any op is consumed.  Rehydrating the snapshot yields state
  bit-identical to constructing from scratch (the equivalence suite
  enforces this), so reuse is purely a wall-clock optimization.
* **sealed trace buffers** — decoded chunks of a
  :class:`~repro.exec.traces.TraceStore` entry, keyed by the trace
  content key.  ``consume_buffer`` never mutates sealed columns and
  single-core replay applies no transform, so the same chunks can feed
  any number of machine configs.  Only traces below an op cap are
  cached; longer ones keep the mmap streaming path so peak RSS stays
  bounded.

Failure hygiene: a job that *fails* may have died mid-consume with
arbitrary shared state — the worker calls :func:`evict_all` before
reporting the failure, so a retry (or the next job) can never see
poisoned warm state.  This preserves the PR-3 chaos/retry semantics:
a crashed worker loses its cache with the process, a flaky in-process
failure drops it explicitly.

Disable with ``REPRO_WARM_MODELS=0``; cap the trace cache with
``REPRO_WARM_CACHE_OPS`` (total buffered ops across entries).
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict

from repro import obs

#: max pristine model snapshots kept (pickle blobs are ~10-20 KB)
_MAX_MODELS = 8

#: default total ops across cached trace entries (~25 B/op on disk;
#: decoded views pin the backing pages, so this bounds added RSS)
_DEFAULT_CACHE_OPS = 4_000_000


def enabled() -> bool:
    return os.environ.get("REPRO_WARM_MODELS", "1") not in ("0", "false", "")


def file_identity(path) -> tuple | None:
    """Inode/size/mtime triple identifying a file's current contents."""
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_ino, st.st_size, st.st_mtime_ns)


def _owned_copy(buf):
    """A sealed buffer whose columns own their memory.

    List-backed buffers already do; zero-copy (memoryview) columns are
    copied byte-for-byte into fresh memoryviews, preserving the exact
    indexing semantics (native Python ints out).
    """
    from repro.trace import TraceBuffer
    if isinstance(buf.a0, list):
        return buf
    new = TraceBuffer.from_columns(
        memoryview(bytes(buf.kinds)),
        memoryview(bytes(buf.a0)).cast("q"),
        memoryview(bytes(buf.a1)).cast("q"),
        memoryview(bytes(buf.a2)).cast("q"),
        buf.events, buf.n_instructions)
    # seal() products are fresh numpy allocations, never file-backed.
    new.lines = buf.lines
    new.line_ends = buf.line_ends
    return new


def _cache_ops_cap() -> int:
    try:
        return int(os.environ.get("REPRO_WARM_CACHE_OPS",
                                  _DEFAULT_CACHE_OPS))
    except ValueError:
        return _DEFAULT_CACHE_OPS


class WarmCache:
    """LRU of pristine model snapshots and decoded trace chunks."""

    def __init__(self, max_models: int = _MAX_MODELS,
                 max_buffer_ops: int | None = None):
        self.max_models = max_models
        self.max_buffer_ops = (max_buffer_ops if max_buffer_ops is not None
                               else _cache_ops_cap())
        self._models: OrderedDict[bytes, bytes] = OrderedDict()
        self._buffers: OrderedDict[str, tuple[list, int]] = OrderedDict()
        self._buffer_ops = 0
        self.model_hits = 0
        self.model_misses = 0
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.evictions = 0

    # -- pristine model snapshots ---------------------------------------

    @staticmethod
    def _model_key(machine) -> bytes:
        # Lazy import: jobs -> harness.runner -> (here) would otherwise
        # form an import cycle through the package __init__.
        from repro.exec.jobs import canonical_encode
        return canonical_encode(machine)

    def model(self, machine):
        """A fresh ``(vm, core)`` pair rehydrated from the snapshot, or
        ``None`` when this config was never snapshotted."""
        key = self._model_key(machine)
        blob = self._models.get(key)
        if blob is None:
            self.model_misses += 1
            obs.add("warm.model_misses")
            return None
        self._models.move_to_end(key)
        self.model_hits += 1
        obs.add("warm.model_hits")
        return pickle.loads(blob)

    def put_model(self, machine, vm, core) -> None:
        """Snapshot a *pristine* (never-consumed) model pair."""
        key = self._model_key(machine)
        if key in self._models:
            return
        try:
            blob = pickle.dumps((vm, core),
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return                    # unpicklable hook etc.: skip cache
        self._models[key] = blob
        while len(self._models) > self.max_models:
            self._models.popitem(last=False)
            self.evictions += 1
            obs.add("warm.evictions")

    # -- decoded sealed trace chunks ------------------------------------

    def buffers(self, trace_key: str, identity=None):
        """The cached sealed chunks for ``trace_key``, or ``None``.

        ``identity`` (see :func:`file_identity`) must match the value
        recorded when the entry was cached; a mismatch — the trace file
        was replaced, truncated, or regenerated — drops the entry and
        misses, so the caller re-reads (and re-validates) the file.
        """
        entry = self._buffers.get(trace_key)
        if entry is None:
            self.buffer_misses += 1
            obs.add("warm.buffer_misses")
            return None
        bufs, n_ops, cached_identity = entry
        if identity != cached_identity:
            del self._buffers[trace_key]
            self._buffer_ops -= n_ops
            self.evictions += 1
            self.buffer_misses += 1
            obs.add("warm.evictions")
            obs.add("warm.buffer_misses")
            return None
        self._buffers.move_to_end(trace_key)
        self.buffer_hits += 1
        obs.add("warm.buffer_hits")
        return bufs

    def put_buffers(self, trace_key: str, bufs: list,
                    identity=None) -> None:
        """Cache sealed chunks, copied into process-owned memory.

        Chunks decoded zero-copy hold views into an mmap of the trace
        file; caching those would pin the map and — worse — SIGBUS if
        the file were ever truncated in place.  The copy detaches the
        cache from the filesystem entirely.
        """
        if trace_key in self._buffers:
            return
        n_ops = sum(len(b) for b in bufs)
        if n_ops > self.max_buffer_ops:
            return                    # too long: keep streaming it
        bufs = [_owned_copy(b) for b in bufs]
        self._buffers[trace_key] = (bufs, n_ops, identity)
        self._buffer_ops += n_ops
        while (self._buffer_ops > self.max_buffer_ops
               and len(self._buffers) > 1):
            _, (_, dropped, _) = self._buffers.popitem(last=False)
            self._buffer_ops -= dropped
            self.evictions += 1
            obs.add("warm.evictions")

    # -- failure hygiene -------------------------------------------------

    def evict_all(self) -> None:
        """Drop everything (called by the worker on any job failure)."""
        if self._models or self._buffers:
            dropped = len(self._models) + len(self._buffers)
            self.evictions += dropped
            obs.add("warm.evictions", float(dropped))
        self._models.clear()
        self._buffers.clear()
        self._buffer_ops = 0

    def __len__(self) -> int:
        return len(self._models) + len(self._buffers)


_CACHE: WarmCache | None = None


def get_cache() -> WarmCache | None:
    """The process-global cache, or ``None`` when disabled."""
    global _CACHE
    if not enabled():
        return None
    if _CACHE is None:
        _CACHE = WarmCache()
    return _CACHE


def evict_all() -> None:
    """Module-level eviction hook for the pool's failure paths."""
    if _CACHE is not None:
        _CACHE.evict_all()
