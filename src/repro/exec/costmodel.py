"""Per-workload runtime cost model for the job scheduler.

Campaign batches mix workloads whose runtimes span orders of magnitude
(a SPEC trace vs. a micro-benchmark), so FIFO dispatch routinely leaves
one long job running at the tail while every other worker sits idle.
:class:`CostModel` persists an EWMA of observed per-job wall-clock
seconds keyed by the *workload/fidelity* component of the job — the
part of :meth:`~repro.exec.jobs.JobSpec.cache_key` that determines how
much work a job is, independent of the machine config or source-tree
fingerprint — so estimates survive simulator edits that invalidate
result-cache keys.

The model lives in a small JSON sidecar next to the
:class:`~repro.exec.store.ResultStore` (``<root>/costs.json``) and is
written with the same atomic ``os.replace`` discipline, under the same
cross-process ``flock`` discipline as the store itself: :meth:`save`
takes an exclusive lock on ``costs.json.lock``, re-reads the sidecar,
folds in only the keys *this* process actually observed, and publishes
atomically.  Concurrent writers — several worker hosts sharing one
store directory (:mod:`repro.fabric`) — therefore cannot interleave a
torn write or clobber each other's observations: each save is a locked
read-merge-write, and a key observed by two hosts resolves to the last
merger's EWMA (estimate freshness, never correctness).

:func:`lpt_order` is the scheduling policy: longest processing time
first.  For ``m`` identical workers LPT's makespan is within 4/3 of
optimal (Graham 1969), and in particular never worse than dispatching
the longest job last — the pathological FIFO case.  Jobs with no
estimate yet are scheduled *first* (conservatively treated as long), so
an unknown straggler cannot hide at the tail of the first campaign run.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path
from typing import Sequence

try:
    import fcntl
except ImportError:          # non-POSIX: locking degrades to a no-op
    fcntl = None

from repro import obs
from repro.exec.jobs import JobSpec, canonical_encode

#: sidecar filename, rooted next to the ResultStore layout dirs
COSTS_FILENAME = "costs.json"

#: EWMA smoothing factor: ~3 observations to mostly forget an outlier
EWMA_ALPHA = 0.3

#: schema marker so a future format change can migrate/ignore old files
_SCHEMA = 1


def cost_key(job: JobSpec) -> str:
    """Stable key of the job's work-determining inputs.

    Covers workload spec, fidelity and seed-independent run kwargs that
    change trace length (everything in ``run_kwargs`` except the seed
    override); excludes the machine config — geometry changes simulated
    *state*, not op-stream length — and the code fingerprint, so
    estimates survive simulator edits.  Prefixed with the workload name
    for a human-auditable sidecar.
    """
    kwargs = {k: v for k, v in dict(job.run_kwargs).items() if k != "seed"}
    try:
        payload = canonical_encode((job.spec, job.fidelity, kwargs))
    except TypeError:
        # Unencodable run kwargs (e.g. an injected trace_store object):
        # fall back to the workload/fidelity pair alone.
        payload = canonical_encode((job.spec, job.fidelity))
    digest = hashlib.sha256(payload).hexdigest()[:16]
    return f"{job.name}:{digest}"


class CostModel:
    """EWMA per-workload runtime estimates with a JSON sidecar."""

    def __init__(self, path: str | Path, alpha: float = EWMA_ALPHA):
        self.path = Path(path)
        self.alpha = alpha
        self._costs: dict[str, float] = {}
        #: keys this process observed since the last save — the only
        #: entries a locked read-merge-write may overwrite on disk
        self._observed: set[str] = set()
        self._dirty = False
        self._load()

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive cross-process lock fencing read-merge-write saves.

        Same flock discipline as the result store: multiple hosts
        writing one shared sidecar serialize here, so no writer can
        interleave with (and lose) another's just-merged observations.
        """
        if fcntl is None:
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        with lock_path.open("a+b") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    @classmethod
    def for_store(cls, store) -> "CostModel":
        """The sidecar model next to a :class:`ResultStore`."""
        return cls(Path(store.root) / COSTS_FILENAME)

    def _read_disk(self) -> dict[str, float]:
        """The sidecar's current (valid) costs, or ``{}``."""
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("schema") != _SCHEMA:
            return {}
        costs = raw.get("costs")
        if not isinstance(costs, dict):
            return {}
        return {str(k): float(v) for k, v in costs.items()
                if isinstance(v, (int, float)) and v >= 0.0}

    def _load(self) -> None:
        self._costs = self._read_disk()

    def save(self) -> None:
        """Persist the model: locked read-merge-write, atomic publish.

        No-op when nothing changed.  Under the exclusive sidecar lock
        the on-disk file is re-read and only the keys *this process*
        observed overwrite it, so concurrent writers (other worker
        hosts on a shared store dir) never lose each other's entries;
        keys we did not touch are adopted back into the in-memory model
        as the fresher estimates.
        """
        if not self._dirty:
            return
        try:
            with self._locked():
                disk = self._read_disk()
                merged = {**self._costs, **disk}
                for key in self._observed:
                    if key in self._costs:
                        merged[key] = self._costs[key]
                self._costs = merged
                payload = json.dumps(
                    {"schema": _SCHEMA, "alpha": self.alpha,
                     "costs": merged}, sort_keys=True)
                self.path.parent.mkdir(parents=True, exist_ok=True)
                tmp = self.path.parent \
                    / f".{self.path.name}.{os.getpid()}.tmp"
                try:
                    tmp.write_text(payload)
                    os.replace(tmp, self.path)
                finally:
                    tmp.unlink(missing_ok=True)
        except OSError:
            return                    # telemetry only — never fail a run
        self._dirty = False
        self._observed.clear()

    # -- estimates -------------------------------------------------------

    def estimate(self, job: JobSpec) -> float | None:
        """Expected seconds for ``job``, or ``None`` if never observed."""
        est = self._costs.get(cost_key(job))
        obs.add("costmodel.estimate_hits" if est is not None
                else "costmodel.estimate_misses")
        return est

    def observe(self, job: JobSpec, seconds: float) -> None:
        """Fold one observed runtime into the EWMA."""
        if seconds < 0.0:
            return
        key = cost_key(job)
        prev = self._costs.get(key)
        if prev is None:
            self._costs[key] = seconds
        else:
            self._costs[key] = (self.alpha * seconds
                                + (1.0 - self.alpha) * prev)
        self._observed.add(key)
        self._dirty = True
        obs.add("costmodel.observations")
        obs.gauge_set("costmodel.size", float(len(self._costs)))

    def __len__(self) -> int:
        return len(self._costs)


def lpt_order(indices: Sequence[int],
              estimates: Sequence[float | None]) -> list[int]:
    """Order job indices longest-processing-time-first.

    ``estimates[i]`` is the expected cost of job ``indices[i]`` (or
    ``None`` for unknown).  Unknown-cost jobs come first — an
    unmeasured job must not end up scheduled last, where a surprise
    straggler maximizes makespan.  Ties (and the unknown block) keep
    submission order, so with no estimates at all this is exactly FIFO.
    """
    if len(indices) != len(estimates):
        raise ValueError("indices and estimates must align")
    unknown = [i for i, est in zip(indices, estimates) if est is None]
    known = [(i, est) for i, est in zip(indices, estimates)
             if est is not None]
    known.sort(key=lambda pair: -pair[1])
    return unknown + [i for i, _ in known]
