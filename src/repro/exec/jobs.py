"""Job descriptions and content-addressed cache keys.

A :class:`JobSpec` is the unit of work the execution engine schedules:
one ``(workload spec, machine, fidelity, seed, run kwargs)`` tuple.  Its
:meth:`~JobSpec.cache_key` is a stable SHA-256 over a canonical encoding
of all of those *plus* a fingerprint of the ``repro`` source tree
(:func:`code_fingerprint`), so

* two processes that build the same job independently agree on the key
  (results are shareable across pytest invocations, CLI runs, and
  worker processes), and
* any edit to any ``src/repro/**/*.py`` file changes the fingerprint and
  with it every key — stale results can never be served after a
  simulator change.

The canonical encoding covers the value shapes that legitimately appear
in run configuration (dataclasses such as ``GcConfig``, primitives,
tuples, dicts).  Anything whose representation is not stable across
processes — lambdas, open files, default-``repr`` objects — is rejected
with ``TypeError`` rather than silently producing an unstable key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.harness.runner import Fidelity, RunResult, run_workload
from repro.uarch.machine import MachineConfig
from repro.workloads.spec import WorkloadSpec

#: bump when the key schema itself changes (invalidates every old entry)
KEY_VERSION = "1"


# ---------------------------------------------------------------------------
# Canonical encoding
# ---------------------------------------------------------------------------

def _encode(value, out: list[bytes]) -> None:
    """Append a canonical, type-tagged byte encoding of ``value``."""
    if value is None:
        out.append(b"N")
    elif value is True or value is False:
        out.append(b"T" if value else b"F")
    elif isinstance(value, int):
        out.append(b"i%d" % value)
    elif isinstance(value, float):
        out.append(b"f" + repr(value).encode())
    elif isinstance(value, str):
        raw = value.encode()
        out.append(b"s%d:" % len(raw))
        out.append(raw)
    elif isinstance(value, bytes):
        out.append(b"b%d:" % len(value))
        out.append(value)
    elif isinstance(value, (tuple, list)):
        out.append(b"(")
        for item in value:
            _encode(item, out)
        out.append(b")")
    elif isinstance(value, Mapping):
        out.append(b"{")
        for key in sorted(value, key=repr):
            _encode(key, out)
            _encode(value[key], out)
        out.append(b"}")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(b"D")
        _encode(type(value).__qualname__, out)
        for f in dataclasses.fields(value):
            if not f.compare:
                continue
            _encode(f.name, out)
            _encode(getattr(value, f.name), out)
        out.append(b"d")
    else:
        raise TypeError(
            f"cannot canonically encode {type(value).__name__!r} for a "
            f"cache key; use primitives, tuples, dicts, or dataclasses")


def canonical_encode(value) -> bytes:
    """Deterministic byte encoding of ``value`` (see module docstring)."""
    out: list[bytes] = []
    _encode(value, out)
    return b"".join(out)


# ---------------------------------------------------------------------------
# Simulator-code fingerprint
# ---------------------------------------------------------------------------

_FINGERPRINTS: dict[Path, str] = {}


def code_fingerprint(root: str | Path | None = None, *,
                     refresh: bool = False) -> str:
    """Stable hash of the simulator source tree.

    Hashes the path and content of every ``*.py`` file under ``root``
    (default: the installed ``repro`` package directory) in sorted
    order.  The result is memoized per root for the life of the process
    — pass ``refresh=True`` to rehash after on-disk changes.
    """
    if root is None:
        import repro
        root = Path(repro.__file__).parent
    root = Path(root).resolve()
    if not refresh and root in _FINGERPRINTS:
        return _FINGERPRINTS[root]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _FINGERPRINTS[root] = digest.hexdigest()
    return _FINGERPRINTS[root]


# ---------------------------------------------------------------------------
# JobSpec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JobSpec:
    """One schedulable workload run.

    ``run_kwargs`` carries extra :func:`~repro.harness.runner.run_workload`
    keyword arguments (``gc_config``, ``sampling``, ...); a ``"seed"``
    entry there overrides the ``seed`` field (sweeps drive the seed as a
    run axis).
    """

    spec: WorkloadSpec
    machine: MachineConfig
    fidelity: Fidelity
    seed: int = 0
    run_kwargs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    def cache_key(self, fingerprint: str | None = None) -> str:
        """Content hash identifying this job's result.

        ``fingerprint`` defaults to :func:`code_fingerprint` of the live
        ``repro`` tree; schedulers pass it explicitly so a batch of keys
        hashes the source tree once.
        """
        if fingerprint is None:
            fingerprint = code_fingerprint()
        payload = canonical_encode(
            (KEY_VERSION, fingerprint, self.spec, self.machine,
             self.fidelity, self.seed, dict(self.run_kwargs)))
        return hashlib.sha256(payload).hexdigest()


def execute_job(job: JobSpec) -> RunResult:
    """Run one job in the current process.

    ``REPRO_TRACE_DIR`` attaches a :class:`~repro.exec.traces.TraceStore`
    to every job, so a batch over several machine configs generates each
    workload's trace once and replays it thereafter.  The trace store is
    deliberately not part of the cache key — it changes how a result is
    produced, never what it is.  When the run was configured with
    ``--obs-profile``, the job body runs under the opt-in
    :func:`repro.obs.profiler.profile_job` harness.
    """
    kwargs = dict(job.run_kwargs)
    seed = kwargs.pop("seed", job.seed)
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if trace_dir and "trace_store" not in kwargs:
        from repro.exec.traces import TraceStore
        kwargs["trace_store"] = TraceStore(os.path.expanduser(trace_dir))
    from repro import obs
    if obs.profile_mode() is not None:
        from repro.obs.profiler import profile_job
        with profile_job(job.name):
            return run_workload(job.spec, job.machine, job.fidelity,
                                seed=seed, **kwargs)
    return run_workload(job.spec, job.machine, job.fidelity,
                        seed=seed, **kwargs)
