"""Deterministic fault injection for the execution engine.

Robustness guarantees rot unless something exercises them on every PR.
This module injects the campaign failure modes — worker crashes, hangs,
transient exceptions, corrupted and truncated store entries — under
test control, with two properties the chaos tests depend on:

* **seed-driven determinism** — every fault decision is a pure function
  of ``(seed, fault kind, target)`` via :func:`roll`, so a chaos run is
  reproducible and a test can *predict* exactly which jobs are doomed;
* **cross-process once-markers** — with ``once=True`` a fault fires on
  the first attempt only (marker files under ``state_dir`` survive
  worker boundaries), modelling transient weather that a retry rides
  out; ``once=False`` models a persistently poisonous target that must
  exhaust its retry budget and surface as a failure record.

:class:`ChaosExecutor` wraps the pool's job runner (install it with
:func:`injected`; the pool resolves ``_execute`` at call time, so under
``fork`` workers inherit the patched value).  :class:`ChaosStore`
sabotages a deterministic fraction of result-store writes with bit
flips or partial writes — exactly the damage a killed writer or bad
disk inflicts — which the store's CRC framing must then catch.

:class:`ChaosBackend` extends the same discipline to the
:class:`~repro.exec.backend.StoreBackend` seam the whole fleet now
rides: every read, publish, and hardlink can be made to fail with
``EIO``, ``ENOSPC``, a latency spike, a torn (truncated) write that
*reports success*, or a stale NFS read — deterministically per
``(seed, kind, target, attempt)``, so a retry rolls a fresh decision
and transient weather is distinguishable from a dead mount.  Activate
it in subprocesses via the ``REPRO_CHAOS_BACKEND`` environment
variable (see :func:`repro.exec.backend.backend_for`).
"""

from __future__ import annotations

import errno
import hashlib
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import repro.exec.pool as pool_mod
from repro import obs
from repro.exec.backend import StoreBackend, backend_for
from repro.exec.jobs import execute_job
from repro.exec.store import ResultStore


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates in [0, 1]; a rate of 0 disables that fault."""

    seed: int = 0
    #: worker calls ``os._exit`` mid-job (parallel runs only — in a
    #: serial run this would kill the test process itself)
    crash_rate: float = 0.0
    #: raise ``OSError`` (the transient taxonomy arm); serial-safe
    flaky_rate: float = 0.0
    #: sleep ``hang_seconds`` so the pool's timeout must kill the worker
    hang_rate: float = 0.0
    hang_seconds: float = 30.0
    #: flip a byte in the middle of a just-written store entry
    corrupt_rate: float = 0.0
    #: truncate a just-written store entry (partial-write model)
    truncate_rate: float = 0.0
    #: fire each fault once per target (needs ``state_dir``); False =
    #: the target is doomed on every attempt
    once: bool = True
    #: directory for cross-process once-markers
    state_dir: str | None = None


def roll(seed: int, kind: str, target: str) -> float:
    """Deterministic uniform draw in [0, 1) for one fault decision."""
    digest = hashlib.sha256(f"{seed}:{kind}:{target}".encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2.0 ** 64


def doomed(config: ChaosConfig, kind: str, rate: float,
           target: str) -> bool:
    """Would this fault fire for ``target`` (ignoring once-markers)?"""
    return rate > 0.0 and roll(config.seed, kind, target) < rate


def _first_firing(config: ChaosConfig, kind: str, target: str) -> bool:
    """Consume the once-marker; True exactly once per (kind, target)."""
    state = Path(config.state_dir)
    state.mkdir(parents=True, exist_ok=True)
    tag = hashlib.sha256(target.encode()).hexdigest()[:16]
    marker = state / f"{kind}-{tag}"
    try:
        marker.touch(exist_ok=False)
        return True
    except FileExistsError:
        return False


def _fire(config: ChaosConfig, kind: str, rate: float,
          target: str) -> bool:
    if not doomed(config, kind, rate, target):
        return False
    if config.once:
        if config.state_dir is None:
            raise ValueError(
                "ChaosConfig(once=True) needs a state_dir so retries "
                "can observe that the fault already fired")
        return _first_firing(config, kind, target)
    return True


class ChaosExecutor:
    """Wrap the pool's job executor with seed-driven faults."""

    def __init__(self, config: ChaosConfig, inner=execute_job):
        self.config = config
        self.inner = inner

    def doomed_names(self, kind: str, names) -> list[str]:
        """The subset of ``names`` this config will fault (prediction
        helper for tests)."""
        rate = {"crash": self.config.crash_rate,
                "flaky": self.config.flaky_rate,
                "hang": self.config.hang_rate}[kind]
        return [n for n in names if doomed(self.config, kind, rate, n)]

    def __call__(self, job):
        cfg = self.config
        name = job.name
        if _fire(cfg, "crash", cfg.crash_rate, name):
            os._exit(86)
        if _fire(cfg, "flaky", cfg.flaky_rate, name):
            raise OSError(f"chaos: injected transient fault in {name!r}")
        if _fire(cfg, "hang", cfg.hang_rate, name):
            time.sleep(cfg.hang_seconds)
        return self.inner(job)


class _Injection:
    """Handle returned by :func:`injected`; also a context manager."""

    def __init__(self, executor):
        self.executor = executor
        self._previous = pool_mod._execute
        pool_mod._execute = executor

    def uninstall(self) -> None:
        pool_mod._execute = self._previous

    def __enter__(self):
        return self.executor

    def __exit__(self, *exc):
        self.uninstall()
        return False


def injected(config_or_executor) -> _Injection:
    """Install a chaos executor as the pool's job runner.

    Accepts a :class:`ChaosConfig` or a prebuilt executor.  Use as a
    context manager (or call ``.uninstall()``) to restore the real
    executor — forked workers resolve the module attribute at call
    time, so installation covers serial and ``fork``-parallel runs.
    """
    executor = (config_or_executor
                if callable(config_or_executor)
                else ChaosExecutor(config_or_executor))
    return _Injection(executor)


class ChaosStore(ResultStore):
    """Result store that sabotages a deterministic fraction of writes.

    Damage is applied *after* the atomic publish — the entry looks
    successfully written (exactly like a bad disk or a writer killed
    after ``os.replace``), and only the CRC framing can tell.
    """

    def __init__(self, root, config: ChaosConfig):
        super().__init__(root)
        self.config = config

    def doomed_keys(self, kind: str, keys) -> list[str]:
        rate = {"corrupt": self.config.corrupt_rate,
                "truncate": self.config.truncate_rate}[kind]
        return [k for k in keys if doomed(self.config, kind, rate, k)]

    def put(self, key: str, value) -> Path:
        path = super().put(key, value)
        cfg = self.config
        if _fire(cfg, "corrupt", cfg.corrupt_rate, key):
            data = bytearray(path.read_bytes())
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))
        elif _fire(cfg, "truncate", cfg.truncate_rate, key):
            data = path.read_bytes()
            path.write_bytes(data[:max(1, int(len(data) * 0.6))])
        return path


# ---------------------------------------------------------------------------
# I/O-seam fault injection (the StoreBackend proxy)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BackendChaosConfig:
    """Fault rates in [0, 1] for the :class:`ChaosBackend` proxy.

    Decisions are deterministic per ``(seed, kind, target, attempt)``:
    a retried operation rolls fresh, so with a rate < 1 a bounded
    retry loop always converges — which is exactly the contract the
    degraded-mode machinery is supposed to honour.
    """

    seed: int = 0
    #: reads and publishes/links raise ``OSError(EIO)`` (bad disk)
    eio_rate: float = 0.0
    #: publishes/links raise ``OSError(ENOSPC)`` (full disk)
    enospc_rate: float = 0.0
    #: reads raise ``OSError(ESTALE)`` (stale NFS file handle)
    stale_rate: float = 0.0
    #: publishes/links land *truncated* bytes but report success — the
    #: damage only CRC framing (or a torn-tolerant JSON reader) catches
    torn_rate: float = 0.0
    #: any operation first sleeps ``latency_seconds`` (slow mount)
    latency_rate: float = 0.0
    latency_seconds: float = 0.02

    @classmethod
    def parse(cls, spec: str) -> "BackendChaosConfig":
        """Parse the env spelling: ``"seed=7,eio=0.05,stale=0.1"``.

        Keys: ``seed``, ``eio``, ``enospc``, ``stale``, ``torn``,
        ``latency``, ``latency_seconds``.
        """
        fields = {"eio": "eio_rate", "enospc": "enospc_rate",
                  "stale": "stale_rate", "torn": "torn_rate",
                  "latency": "latency_rate",
                  "latency_seconds": "latency_seconds"}
        kwargs: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, value = part.partition("=")
            name = name.strip()
            if name == "seed":
                kwargs["seed"] = int(value)
            elif name in fields:
                kwargs[fields[name]] = float(value)
            else:
                raise ValueError(
                    f"unknown REPRO_CHAOS_BACKEND key {name!r}")
        return cls(**kwargs)


class ChaosBackend(StoreBackend):
    """Fault-injecting proxy over any :class:`StoreBackend`.

    Every verb of the physical-storage protocol can fail the way a
    real deployment fails: ``EIO`` from a dying disk, ``ENOSPC`` from
    a full one, latency spikes from a congested mount, *torn writes*
    that report success and leave truncated bytes, and stale NFS
    reads.  Fault decisions are pure functions of
    ``(seed, kind, file name, attempt number)`` — reproducible run to
    run, fresh per retry — and the per-process attempt counters mean a
    fixed rate behaves like independent weather, not a cursed file.
    """

    def __init__(self, inner: StoreBackend | str | os.PathLike,
                 config: BackendChaosConfig):
        self.inner = backend_for(inner)
        super().__init__(self.inner.root)
        self.scheme = f"chaos+{self.inner.scheme}"
        self.config = config
        self._attempts: Counter = Counter()
        self._mutex = threading.Lock()

    def _fires(self, kind: str, rate: float, name: str) -> bool:
        if rate <= 0.0:
            return False
        with self._mutex:
            n = self._attempts[(kind, name)]
            self._attempts[(kind, name)] += 1
        if roll(self.config.seed, kind, f"{name}#{n}") < rate:
            obs.add("chaos.backend_faults")
            obs.add(f"chaos.backend_{kind}")
            return True
        return False

    def _maybe_latency(self, name: str) -> None:
        if self._fires("latency", self.config.latency_rate, name):
            time.sleep(self.config.latency_seconds)

    def read_bytes(self, path: str | os.PathLike) -> bytes:
        name = Path(path).name
        self._maybe_latency(name)
        if self._fires("stale", self.config.stale_rate, name):
            raise OSError(errno.ESTALE,
                          f"chaos: stale NFS read of {name}")
        if self._fires("eio-read", self.config.eio_rate, name):
            raise OSError(errno.EIO, f"chaos: read error on {name}")
        return self.inner.read_bytes(path)

    def _tear(self, src: Path) -> None:
        data = src.read_bytes()
        src.write_bytes(data[:max(1, int(len(data) * 0.6))])

    def _write_faults(self, name: str) -> None:
        self._maybe_latency(name)
        if self._fires("enospc", self.config.enospc_rate, name):
            raise OSError(errno.ENOSPC,
                          f"chaos: no space publishing {name}")
        if self._fires("eio-write", self.config.eio_rate, name):
            raise OSError(errno.EIO, f"chaos: write error on {name}")

    def publish(self, tmp: Path, dst: Path) -> None:
        self._write_faults(dst.name)
        if self._fires("torn", self.config.torn_rate, dst.name):
            self._tear(tmp)
        self.inner.publish(tmp, dst)

    def link(self, src: Path, dst: Path) -> None:
        self._write_faults(dst.name)
        if self._fires("torn", self.config.torn_rate, dst.name):
            self._tear(src)
        self.inner.link(src, dst)

    def lock(self, name: str = ".lock", exclusive: bool = False):
        return self.inner.lock(name, exclusive=exclusive)

    def describe(self) -> str:
        return f"chaos+{self.inner.describe()}"

    def __repr__(self) -> str:
        return f"ChaosBackend({self.inner!r}, {self.config!r})"
