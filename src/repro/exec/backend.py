"""Store backends: where content-addressed bytes physically live.

:class:`~repro.exec.store.ResultStore` and
:class:`~repro.exec.traces.TraceStore` own the *logical* store — keys,
layout, CRC framing, quarantine.  This module owns the *physical*
questions underneath: how bytes are published atomically, how
cross-process locks behave, and what a reader may assume about
visibility.  Factoring that out is what lets one fleet of worker hosts
share a single store (:mod:`repro.fabric`): every host points its
stores at the same backend and each result/trace is produced once
fleet-wide.

Two implementations cover the deployment shapes the fabric needs:

* :class:`LocalDirBackend` — a directory on a local filesystem; exactly
  the pre-backend semantics (atomic ``os.replace`` publication, fsync'd
  data, ``flock`` advisory locks);
* :class:`SharedDirBackend` — a directory on a *shared* filesystem
  (NFS, CIFS, a bind-mounted volume).  Publication additionally fsyncs
  the parent directory so the rename itself is durable and visible
  under close-to-open consistency, and reads ride out the transient
  ``ESTALE`` races a concurrent cross-host rename can expose with a
  *bounded* exponential-backoff retry loop: when the staleness
  persists past a hard deadline the read surfaces as a typed
  :class:`~repro.exec.resilience.BackendUnavailable` instead of
  spinning, and the caller's quarantine-or-recompute path takes over.

Both speak the same four-verb protocol (:class:`StoreBackend`):
``read_bytes``, ``publish`` (tmp file -> final path, atomic), ``link``
(hardlink, first-writer-wins), and ``lock``.  The stores keep doing
their own framing and layout on top, so integrity guarantees are
backend-independent by construction — and because *every* fleet I/O
crosses this seam, a single fault-injecting proxy
(:class:`~repro.exec.chaos.ChaosBackend`) can model a failing disk or
a flaky NFS mount for the whole system at once.

:func:`backend_for` parses the CLI/fabric spelling — a bare path is
local, ``shared:<path>`` selects the shared-dir discipline.  Setting
``REPRO_CHAOS_BACKEND`` (e.g. ``"seed=7,eio=0.05,stale=0.05"``) wraps
every backend this factory builds in a :class:`ChaosBackend`, which is
how the chaos acceptance tests subject real worker subprocesses to a
deterministic fault storm without touching their code.
"""

from __future__ import annotations

import abc
import contextlib
import errno
import os
import tempfile
import time
from pathlib import Path

from repro.exec.resilience import BackendUnavailable

try:
    import fcntl
except ImportError:          # non-POSIX: locking degrades to a no-op
    fcntl = None


class StoreBackend(abc.ABC):
    """Physical-storage personality under a content-addressed store.

    A backend is rooted at a directory; stores derive their layout
    paths with :meth:`path` and route every publication, raw read, and
    cross-process lock through it.
    """

    #: spelling used by :func:`backend_for` / CLI flags
    scheme = "local"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, *rel: str) -> Path:
        """A path under the backend root (no I/O)."""
        return self.root.joinpath(*rel)

    def read_bytes(self, path: str | os.PathLike) -> bytes:
        """Raw bytes of ``path`` (raises ``OSError`` family on miss)."""
        return Path(path).read_bytes()

    @abc.abstractmethod
    def publish(self, tmp: Path, dst: Path) -> None:
        """Atomically move a fully-written temp file to its final path.

        ``tmp`` must already be flushed/fsync'd by the caller; after
        return, any reader of ``dst`` — including one on another host
        for shared backends — sees either the old entry or the complete
        new one, never a torn write.
        """

    def publish_bytes(self, data: bytes, dst: Path) -> None:
        """Write ``data`` to a sibling temp file and :meth:`publish` it.

        The small-payload convenience (telemetry rings, status
        documents): same atomicity/durability/chaos discipline as any
        store publication, without the caller managing temp files.
        """
        dst = Path(dst)
        dst.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=dst.parent, prefix=".pub-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            self.publish(Path(tmp), dst)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def link(self, src: Path, dst: Path) -> None:
        """Hardlink ``src`` to ``dst`` — atomic first-writer-wins.

        Raises ``FileExistsError`` when ``dst`` already exists, which
        is the lease ledger's duplicate-completion detection.  Routed
        through the backend so fault injection covers the completion
        record path too.
        """
        os.link(src, dst)

    @contextlib.contextmanager
    def lock(self, name: str = ".lock", exclusive: bool = False):
        """Cross-process advisory lock scoped to this backend root.

        ``flock`` on a lock file under the root: shared for writers,
        exclusive for sweeps — the discipline
        :meth:`~repro.exec.store.ResultStore.gc` relies on.  On
        filesystems without ``fcntl`` this degrades to a no-op (the
        atomic-rename publication path stays safe; only sweep-vs-put
        fencing is lost).
        """
        if fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path(name).open("a+b") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def describe(self) -> str:
        return f"{self.scheme}:{self.root}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self.root)!r})"


class LocalDirBackend(StoreBackend):
    """A directory on a local filesystem — the historical semantics."""

    scheme = "local"

    def publish(self, tmp: Path, dst: Path) -> None:
        os.replace(tmp, dst)


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (durability of the rename)."""
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SharedDirBackend(StoreBackend):
    """A directory on a shared filesystem mounted by several hosts.

    Same atomic-rename publication as :class:`LocalDirBackend`, plus:

    * the destination's parent directory is fsync'd after the rename
      (and after a hardlink), so the publication is durable and —
      under NFS close-to-open consistency — visible to the next opener
      on any host;
    * :meth:`read_bytes` retries ``ESTALE`` (a concurrent cross-host
      rename invalidated the file handle mid-read) with exponential
      backoff, bounded by both a retry budget and a hard wall-clock
      deadline; staleness that persists past the deadline raises
      :class:`~repro.exec.resilience.BackendUnavailable` — still an
      ``OSError``, so store reads degrade to misses, but typed so a
      worker's circuit breaker can tell an unreachable mount from one
      missing file.
    """

    scheme = "shared"

    def __init__(self, root: str | os.PathLike, *,
                 stale_retries: int = 5,
                 stale_backoff: float = 0.02,
                 stale_deadline: float = 2.0):
        super().__init__(root)
        self.stale_retries = stale_retries
        self.stale_backoff = stale_backoff
        self.stale_deadline = stale_deadline

    def publish(self, tmp: Path, dst: Path) -> None:
        os.replace(tmp, dst)
        _fsync_dir(dst.parent)

    def link(self, src: Path, dst: Path) -> None:
        super().link(src, dst)
        _fsync_dir(dst.parent)

    def read_bytes(self, path: str | os.PathLike) -> bytes:
        estale = getattr(errno, "ESTALE", None)
        deadline = time.monotonic() + self.stale_deadline
        delay = self.stale_backoff
        attempt = 0
        while True:
            try:
                return Path(path).read_bytes()
            except OSError as exc:
                if exc.errno != estale:
                    raise
                attempt += 1
                if attempt > self.stale_retries \
                        or time.monotonic() + delay > deadline:
                    raise BackendUnavailable(
                        f"stale read of {path} persisted through "
                        f"{attempt} attempt(s)") from exc
                time.sleep(delay)
                delay = min(delay * 2.0, 0.5)


def backend_for(spec: str | os.PathLike | StoreBackend) -> StoreBackend:
    """Resolve a backend from its CLI spelling.

    A prebuilt backend passes through untouched; ``shared:<dir>``
    selects :class:`SharedDirBackend`; ``local:<dir>`` or a bare path
    selects :class:`LocalDirBackend`.  With ``REPRO_CHAOS_BACKEND``
    set, the freshly built backend is wrapped in a fault-injecting
    :class:`~repro.exec.chaos.ChaosBackend` — the hook the chaos
    harness uses to storm whole worker subprocesses.
    """
    if isinstance(spec, StoreBackend):
        return spec
    text = os.fspath(spec)
    if text.startswith("shared:"):
        backend = SharedDirBackend(
            os.path.expanduser(text[len("shared:"):]))
    elif text.startswith("local:"):
        backend = LocalDirBackend(os.path.expanduser(text[len("local:"):]))
    else:
        backend = LocalDirBackend(os.path.expanduser(text))
    chaos_spec = os.environ.get("REPRO_CHAOS_BACKEND")
    if chaos_spec:
        # Imported lazily: chaos depends on the store, which depends
        # on this module.
        from repro.exec.chaos import BackendChaosConfig, ChaosBackend
        backend = ChaosBackend(backend,
                               BackendChaosConfig.parse(chaos_spec))
    return backend
