"""Store backends: where content-addressed bytes physically live.

:class:`~repro.exec.store.ResultStore` and
:class:`~repro.exec.traces.TraceStore` own the *logical* store — keys,
layout, CRC framing, quarantine.  This module owns the *physical*
questions underneath: how bytes are published atomically, how
cross-process locks behave, and what a reader may assume about
visibility.  Factoring that out is what lets one fleet of worker hosts
share a single store (:mod:`repro.fabric`): every host points its
stores at the same backend and each result/trace is produced once
fleet-wide.

Two implementations cover the deployment shapes the fabric needs:

* :class:`LocalDirBackend` — a directory on a local filesystem; exactly
  the pre-backend semantics (atomic ``os.replace`` publication, fsync'd
  data, ``flock`` advisory locks);
* :class:`SharedDirBackend` — a directory on a *shared* filesystem
  (NFS, CIFS, a bind-mounted volume).  Publication additionally fsyncs
  the parent directory so the rename itself is durable and visible
  under close-to-open consistency, and reads tolerate the transient
  ``ESTALE``/``FileNotFoundError`` races a concurrent cross-host
  rename can expose (one retry, then surfaced as a miss to the caller's
  quarantine-or-recompute path).

Both speak the same three-verb protocol (:class:`StoreBackend`):
``read_bytes``, ``publish`` (tmp file -> final path, atomic), and
``lock``.  The stores keep doing their own framing and layout on top,
so integrity guarantees are backend-independent by construction.

:func:`backend_for` parses the CLI/fabric spelling — a bare path is
local, ``shared:<path>`` selects the shared-dir discipline.
"""

from __future__ import annotations

import abc
import contextlib
import errno
import os
from pathlib import Path

try:
    import fcntl
except ImportError:          # non-POSIX: locking degrades to a no-op
    fcntl = None


class StoreBackend(abc.ABC):
    """Physical-storage personality under a content-addressed store.

    A backend is rooted at a directory; stores derive their layout
    paths with :meth:`path` and route every publication, raw read, and
    cross-process lock through it.
    """

    #: spelling used by :func:`backend_for` / CLI flags
    scheme = "local"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, *rel: str) -> Path:
        """A path under the backend root (no I/O)."""
        return self.root.joinpath(*rel)

    def read_bytes(self, path: str | os.PathLike) -> bytes:
        """Raw bytes of ``path`` (raises ``OSError`` family on miss)."""
        return Path(path).read_bytes()

    @abc.abstractmethod
    def publish(self, tmp: Path, dst: Path) -> None:
        """Atomically move a fully-written temp file to its final path.

        ``tmp`` must already be flushed/fsync'd by the caller; after
        return, any reader of ``dst`` — including one on another host
        for shared backends — sees either the old entry or the complete
        new one, never a torn write.
        """

    @contextlib.contextmanager
    def lock(self, name: str = ".lock", exclusive: bool = False):
        """Cross-process advisory lock scoped to this backend root.

        ``flock`` on a lock file under the root: shared for writers,
        exclusive for sweeps — the discipline
        :meth:`~repro.exec.store.ResultStore.gc` relies on.  On
        filesystems without ``fcntl`` this degrades to a no-op (the
        atomic-rename publication path stays safe; only sweep-vs-put
        fencing is lost).
        """
        if fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path(name).open("a+b") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def describe(self) -> str:
        return f"{self.scheme}:{self.root}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self.root)!r})"


class LocalDirBackend(StoreBackend):
    """A directory on a local filesystem — the historical semantics."""

    scheme = "local"

    def publish(self, tmp: Path, dst: Path) -> None:
        os.replace(tmp, dst)


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (durability of the rename)."""
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SharedDirBackend(StoreBackend):
    """A directory on a shared filesystem mounted by several hosts.

    Same atomic-rename publication as :class:`LocalDirBackend`, plus:

    * the destination's parent directory is fsync'd after the rename,
      so the publication is durable and — under NFS close-to-open
      consistency — visible to the next opener on any host;
    * :meth:`read_bytes` retries once on ``ESTALE`` (a concurrent
      cross-host rename invalidated the file handle mid-read) before
      letting the error surface as an ordinary miss.
    """

    scheme = "shared"

    def publish(self, tmp: Path, dst: Path) -> None:
        os.replace(tmp, dst)
        _fsync_dir(dst.parent)

    def read_bytes(self, path: str | os.PathLike) -> bytes:
        try:
            return Path(path).read_bytes()
        except OSError as exc:
            if exc.errno != getattr(errno, "ESTALE", None):
                raise
            return Path(path).read_bytes()


def backend_for(spec: str | os.PathLike | StoreBackend) -> StoreBackend:
    """Resolve a backend from its CLI spelling.

    A prebuilt backend passes through; ``shared:<dir>`` selects
    :class:`SharedDirBackend`; ``local:<dir>`` or a bare path selects
    :class:`LocalDirBackend`.
    """
    if isinstance(spec, StoreBackend):
        return spec
    text = os.fspath(spec)
    if text.startswith("shared:"):
        return SharedDirBackend(os.path.expanduser(text[len("shared:"):]))
    if text.startswith("local:"):
        return LocalDirBackend(os.path.expanduser(text[len("local:"):]))
    return LocalDirBackend(os.path.expanduser(text))
